//! `lwvmm-farm` — one host process serving N concurrent guests.
//!
//! ```console
//! $ lwvmm-farm --guests 32 --port 7700
//! $ lwvmm-farm --guests 8 --ms 200 --fault all --fault-guest 0
//! ```
//!
//! Boots `--guests` independent machines (any `--platform`, any `--cores`),
//! shards them across `--workers` threads, and serves each machine's debug
//! stub on its own TCP port (`--port base`: control on `base`, guest *i* on
//! `base+1+i`; without `--port`, ephemeral ports are printed at startup).
//! Attach any rdbg client — `dbgctl session --connect 127.0.0.1:PORT` — to
//! as many guests at once as you like; each lvmm guest records a flight
//! recorder, so sessions can time-travel independently.
//!
//! The control port answers line commands with one JSON line each:
//! `status`, `stats [id]`, `prof [id]`, `metrics [id]` (fleet totals plus
//! per-guest drill-down), `evict <id>`, `shutdown`.
//!
//! With `--ms` the fleet simulates that many milliseconds and exits,
//! printing per-guest reports; the journal each guest seals at the horizon
//! is byte-identical to a standalone run of the same guest (`tests/farm.rs`
//! proves it differentially).

use lwvmm::farm::{control_request, Farm, FarmConfig, FarmPlatform, GuestSpec};
use lwvmm::machine::timing;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    guests: usize,
    platform: String,
    cores: usize,
    rate: u64,
    workers: usize,
    ms: Option<u64>,
    record: bool,
    profile: bool,
    hostprof: bool,
    fault: Option<String>,
    fault_guest: usize,
    fault_seed: u64,
    port: Option<u16>,
    slice: u64,
    dump: Option<(u32, u32)>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        guests: 4,
        platform: "lvmm".into(),
        cores: 1,
        rate: 100,
        workers: 0,
        ms: None,
        record: true,
        profile: false,
        hostprof: false,
        fault: None,
        fault_guest: 0,
        fault_seed: 42,
        port: None,
        slice: 20_000,
        dump: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |what: &str| args.next().ok_or(format!("missing {what} value"));
        match arg.as_str() {
            "--guests" => {
                opts.guests = val("--guests")?
                    .parse()
                    .map_err(|_| "--guests expects a number")?
            }
            "--platform" => opts.platform = val("--platform")?,
            "--cores" => {
                opts.cores = val("--cores")?
                    .parse()
                    .map_err(|_| "--cores expects a number")?
            }
            "--rate" => {
                opts.rate = val("--rate")?
                    .parse()
                    .map_err(|_| "--rate expects Mbit/s")?
            }
            "--workers" => {
                opts.workers = val("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a number")?
            }
            "--ms" => {
                opts.ms = Some(
                    val("--ms")?
                        .parse()
                        .map_err(|_| "--ms expects simulated milliseconds")?,
                )
            }
            "--no-record" => opts.record = false,
            "--profile" => opts.profile = true,
            "--hostprof" => opts.hostprof = true,
            "--fault" => opts.fault = Some(val("--fault")?),
            "--fault-guest" => {
                opts.fault_guest = val("--fault-guest")?
                    .parse()
                    .map_err(|_| "--fault-guest expects a guest id")?
            }
            "--fault-seed" => {
                opts.fault_seed = val("--fault-seed")?
                    .parse()
                    .map_err(|_| "--fault-seed expects a number")?
            }
            "--port" => {
                opts.port = Some(
                    val("--port")?
                        .parse()
                        .map_err(|_| "--port expects a TCP port")?,
                )
            }
            "--slice" => {
                opts.slice = val("--slice")?
                    .parse()
                    .map_err(|_| "--slice expects cycles")?
            }
            "--dump" => {
                let spec = val("--dump")?;
                let (addr, len) = spec.split_once(':').ok_or("--dump expects addr:len")?;
                // Shared strict parser: single 0x/0X prefix only.
                let addr = lwvmm::cli::parse_hex32(addr)?;
                let len: u32 = len.parse().map_err(|_| "--dump length must be decimal")?;
                opts.dump = Some((addr, len));
            }
            "--help" | "-h" => {
                println!(
                    "usage: lwvmm-farm [--guests N] [--platform raw|lvmm|hosted] [--cores N] \
                     [--rate MBPS] [--workers W] [--ms SIM_MS] [--no-record] [--profile] \
                     [--hostprof] [--fault all|CLASS] [--fault-guest ID] [--fault-seed N] \
                     [--port BASE] [--slice CYCLES] [--dump 0xADDR:LEN]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.guests == 0 {
        return Err("--guests must be at least 1".into());
    }
    if opts.fault.is_some() && opts.fault_guest >= opts.guests {
        return Err(format!(
            "--fault-guest {} out of range (guests: {})",
            opts.fault_guest, opts.guests
        ));
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("lwvmm-farm: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(platform) = FarmPlatform::from_label(&opts.platform) else {
        eprintln!("lwvmm-farm: unknown platform `{}`", opts.platform);
        return ExitCode::FAILURE;
    };

    let guests = (0..opts.guests)
        .map(|i| GuestSpec {
            platform,
            cores: opts.cores,
            rate_mbps: opts.rate,
            record: opts.record,
            profile: opts.profile,
            hostprof: opts.hostprof,
            fault: opts
                .fault
                .clone()
                .filter(|_| i == opts.fault_guest)
                .map(|class| (class, opts.fault_seed)),
        })
        .collect::<Vec<_>>();
    let workers = if opts.workers == 0 {
        opts.guests.min(4)
    } else {
        opts.workers
    };
    let horizon = opts.ms.map(|ms| timing::DEFAULT_CLOCK_HZ / 1_000 * ms);
    let cfg = FarmConfig {
        guests,
        workers,
        slice: opts.slice,
        horizon,
        base_port: opts.port,
        ..FarmConfig::default()
    };

    let farm = match Farm::launch(cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lwvmm-farm: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "farm up: {} guest(s) on {} worker thread(s)",
        opts.guests, workers
    );
    println!("control: 127.0.0.1:{}", farm.control_port());
    for (i, port) in farm.ports().iter().enumerate() {
        println!("guest {i}: 127.0.0.1:{port}");
    }

    if let Some(ms) = opts.ms {
        // Bounded run: simulate to the horizon, report, exit. Allow ample
        // wall time — a loaded machine may be 10x slower than sim speed.
        let timeout = Duration::from_secs(30 + ms / 10);
        if !farm.wait_settled(timeout) {
            eprintln!("lwvmm-farm: fleet did not settle within {timeout:?}");
        }
        match control_request(farm.control_port(), "stats") {
            Ok(stats) => println!("{stats}"),
            Err(e) => eprintln!("lwvmm-farm: stats request failed: {e}"),
        }
        if let Some((addr, len)) = opts.dump {
            for i in 0..opts.guests {
                let bytes = farm.with_guest(i, |p| {
                    (0..len)
                        .map(|o| {
                            p.machine_mut()
                                .bus_read(addr + o, lwvmm::cpu::MemSize::Byte)
                                .map(|b| format!("{b:02x}"))
                                .unwrap_or_else(|_| "??".into())
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                });
                println!("guest {i} memory at {addr:#010x}: {}", bytes.unwrap());
            }
        }
        for r in farm.shutdown() {
            println!(
                "guest {}: platform={} health={} now={} instret={} sessions={} journal_bytes={}",
                r.id,
                r.platform,
                r.health.label(),
                r.now,
                r.instret,
                r.sessions,
                r.journal.as_ref().map_or(0, String::len)
            );
        }
    } else {
        // Serve until a control `shutdown` arrives.
        while farm.serving() {
            std::thread::sleep(Duration::from_millis(100));
        }
        let n = farm.shutdown().len();
        println!("farm down: {n} guest(s) retired");
    }
    ExitCode::SUCCESS
}
