//! `dbgctl` — machine-readable debug control for scripted and CI use.
//!
//! Every subcommand prints JSON lines (one object per line, deterministic
//! across reruns) so transcripts can be diffed byte-for-byte:
//!
//! ```console
//! $ dbgctl run --platform lvmm --ms 100 --journal lvmm.jnl
//! $ dbgctl run --platform hosted --ms 100 --journal hosted.jnl
//! $ dbgctl audit lvmm.jnl hosted.jnl
//! $ dbgctl query lvmm.jnl "irq 3 in 0..0x100000"
//! $ dbgctl session script.dbg
//! $ dbgctl diverge --symbol frames --ms 60
//! ```
//!
//! `session` drives a remote-debugger session against a freshly booted
//! lightweight-monitor guest from a line-oriented script (file argument or
//! stdin); see [`session_line`] for the command set. `diverge` is the
//! end-to-end "find the first cycle a kernel counter went wrong" recipe:
//! it samples a named guest symbol under both the hosted and the
//! lightweight monitor, finds the first sample where the two runs
//! disagree, refines that to an exact cycle with a `Qq` timeline query
//! over the lvmm flight recording, seeks the replay there, and dumps
//! state.

use lwvmm::fault::{FaultKind, FaultPlan};
use lwvmm::guest::{apps, kernel::layout, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{smp, Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::{LvmmPlatform, UartLink};
use lwvmm::obs::{audit, FlowClass, Journal};
use lwvmm::query::json::JsonObj;
use lwvmm::query::{first_divergent_event, JournalQuery};
use rdbg::{DbgError, Debugger, StopReason, WatchKind};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let r = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("session") => cmd_session(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("flow") => cmd_flow(&args[1..]),
        Some("diverge") => cmd_diverge(&args[1..]),
        _ => Err(
            "usage: dbgctl <run|audit|query|session|metrics|flow|diverge> [args]\n\
                  run     --platform raw|lvmm|hosted [--ms N] [--workload MBPS] [--cores N] [--journal PATH]\n\
                  audit   A.jnl B.jnl\n\
                  query   JOURNAL.jnl \"<irq N [in A..B] | first-event STREAM | logs [ADDR] | irqlat N [over K] | trace [ID]>\"\n\
                  session [--cores N] [--connect HOST:PORT] [SCRIPT]   (stdin when omitted)\n\
                  metrics [--ms N] [--workload MBPS] [--cores N]\n\
                  flow    [--cycle N] [--ms N] [--workload MBPS] [--cores N] [--seek]\n\
                  diverge [--symbol NAME|0xADDR] [--ms N]\n\
                  diverge --race [--cores N] [--ms N] [--fault-seed N]"
                .to_string(),
        ),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dbgctl: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--flag value` lookup over a raw argument slice.
fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    lwvmm::cli::parse_num64(s)
}

fn parse_addr(s: &str) -> Result<u32, String> {
    lwvmm::cli::parse_hex32(s)
}

/// Parses and validates a `--cores` value (1 to [`smp::MAX_CORES`]).
fn parse_cores(s: &str) -> Result<usize, String> {
    let n: usize = s
        .parse()
        .map_err(|_| format!("--cores expects a number, got `{s}`"))?;
    if n == 0 || n > smp::MAX_CORES {
        return Err(format!(
            "--cores must be between 1 and {}, got {n}",
            smp::MAX_CORES
        ));
    }
    Ok(n)
}

/// The `--cores` option of a subcommand, defaulting to single-core.
fn opt_cores(args: &[String]) -> Result<usize, String> {
    opt(args, "--cores").map_or(Ok(1), parse_cores)
}

/// Boots the built-in streaming workload on a machine with `cores` vCPUs.
fn boot_machine(rate: u64, cores: usize) -> Machine {
    let mut machine = Machine::new(MachineConfig {
        num_cores: cores,
        ..MachineConfig::default()
    });
    let program = Workload::new(rate)
        .build(&machine)
        .expect("built-in kernel assembles");
    machine.load_program(&program);
    machine
}

// ---------------------------------------------------------------- run ----

fn cmd_run(args: &[String]) -> Result<(), String> {
    let platform_name = opt(args, "--platform").unwrap_or("lvmm");
    let ms = parse_u64(opt(args, "--ms").unwrap_or("100"))?;
    let rate = parse_u64(opt(args, "--workload").unwrap_or("100"))?;
    let cores = opt_cores(args)?;
    let journal_path = opt(args, "--journal");

    let machine = boot_machine(rate, cores);
    let clock = machine.config().clock_hz;
    let mut platform: Box<dyn Platform> = match platform_name {
        "raw" | "real-hw" => Box::new(RawPlatform::new(machine)),
        "lvmm" => Box::new(LvmmPlatform::new(machine, layout::ENTRY)),
        "hosted" => Box::new(HostedPlatform::new(machine, layout::ENTRY)),
        other => return Err(format!("unknown platform `{other}` (raw|lvmm|hosted)")),
    };
    if journal_path.is_some() {
        let name = platform.name().to_string();
        platform.machine_mut().obs.enable_journal(&name);
    }
    let ran = platform.run_for(clock / 1_000 * ms);

    let m = platform.machine();
    let mut o = JsonObj::new();
    o.str("event", "run")
        .str("platform", platform.name())
        .u64("ran_cycles", ran)
        .u64("now", m.now())
        .hex("pc", m.cpu.pc() as u64)
        .u64("instret", m.cpu.instret())
        .u64("tx_frames", m.nic.counters().tx_frames);
    println!("{}", o.finish());

    if let Some(path) = journal_path {
        let now = m.now();
        let mut journal = m.obs.journal().cloned().expect("journal enabled above");
        journal.seal(now);
        std::fs::write(path, journal.save()).map_err(|e| format!("cannot write {path}: {e}"))?;
        let mut o = JsonObj::new();
        o.str("event", "journal")
            .str("path", path)
            .u64("events", journal.events.len() as u64);
        println!("{}", o.finish());
    }
    Ok(())
}

// -------------------------------------------------------------- audit ----

fn load_journal(path: &str) -> Result<Journal, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Journal::parse(&text).map_err(|e| format!("{path}: {e:?}"))
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let [a_path, b_path] = args else {
        return Err("audit expects exactly two journal paths".into());
    };
    let a = load_journal(a_path)?;
    let b = load_journal(b_path)?;
    for s in audit(&a, &b) {
        let mut o = JsonObj::new();
        o.str("event", "stream")
            .str("name", &s.name)
            .u64("len_a", s.len_a as u64)
            .u64("len_b", s.len_b as u64)
            .bool("clean", s.clean());
        match &s.divergence {
            Some(d) => o.u64("divergence_index", d.index as u64),
            None => o.null("divergence_index"),
        };
        println!("{}", o.finish());
    }
    let mut o = JsonObj::new();
    o.str("event", "first-divergence");
    match first_divergent_event(&a, &b) {
        Some(d) => {
            o.bool("found", true)
                .str("stream", &d.stream)
                .u64("index", d.index as u64);
            match d.at_a {
                Some(c) => o.u64("at_a", c),
                None => o.null("at_a"),
            };
            match d.at_b {
                Some(c) => o.u64("at_b", c),
                None => o.null("at_b"),
            };
        }
        None => {
            o.bool("found", false);
        }
    }
    println!("{}", o.finish());
    Ok(())
}

// -------------------------------------------------------------- query ----

fn cmd_query(args: &[String]) -> Result<(), String> {
    let [path, text] = args else {
        return Err("query expects a journal path and a query string".into());
    };
    let j = load_journal(path)?;
    let q = JournalQuery::parse(text).ok_or(format!("bad query `{text}`"))?;
    println!("{}", q.run(&j).to_json());
    Ok(())
}

// ------------------------------------------------------------ session ----

fn stop_json(event: &str, stop: &StopReason) -> String {
    let mut o = JsonObj::new();
    o.str("event", event);
    let (reason, pc) = match *stop {
        StopReason::Halted { pc } => ("halted", pc),
        StopReason::Breakpoint { pc } => ("breakpoint", pc),
        StopReason::Step { pc } => ("step", pc),
        StopReason::Watchpoint { pc, addr } => {
            o.str("reason", "watchpoint").hex("pc", pc as u64);
            o.hex("addr", addr as u64);
            return o.finish();
        }
        StopReason::Fault { pc, cause } => {
            o.str("reason", "fault").hex("pc", pc as u64);
            o.u64("cause", cause as u64);
            return o.finish();
        }
        StopReason::TimeTravel { pc, cycle } => {
            o.str("reason", "time-travel").hex("pc", pc as u64);
            o.u64("cycle", cycle);
            return o.finish();
        }
    };
    o.str("reason", reason).hex("pc", pc as u64);
    o.finish()
}

fn dbg_json(cmd: &str, err: &DbgError) {
    let mut o = JsonObj::new();
    o.str("event", "error")
        .str("cmd", cmd)
        .str("error", &err.to_string());
    println!("{}", o.finish());
}

/// How `run MS` advances simulated time for a session; returns the guest's
/// new `now` cycle (local sessions drive the platform, remote ones reject).
type RunMs<'a, L> = &'a mut dyn FnMut(&mut Debugger<L>, u64) -> Result<u64, String>;

/// Runs one script line and prints its JSON line(s). The script language,
/// one command per line (`#` comments and blank lines are skipped):
///
/// ```text
/// run MS                          let the guest run MS simulated ms (local only)
/// halt | step | resume
/// continue                        resume and wait for the next stop
/// reverse-step | reverse-continue
/// seek CYCLE
/// break 0xADDR [EXPR...]          breakpoint, optionally conditional
/// clear-break 0xADDR
/// watch 0xADDR LEN [w|r|rw] [EXPR...]
/// clear-watch 0xADDR
/// logpoint 0xADDR LABEL [EXPR...]
/// clear-logpoint 0xADDR
/// query EXPR...                   Qq: seek to first cycle EXPR holds
/// regs | mem 0xADDR LEN | stats | metrics | flow
/// ```
///
/// Generic over the [`rdbg::Link`] so the same script language drives both a
/// locally booted guest (`UartLink`) and a farm guest over TCP
/// (`lwvmm::farm::TcpLink`). `run_ms` is how `run MS` advances time: local
/// sessions drive the platform directly; remote guests run continuously in
/// the farm, so their `run_ms` rejects the command.
fn session_line<L: rdbg::Link>(
    dbg: &mut Debugger<L>,
    run_ms: RunMs<'_, L>,
    line: &str,
) -> Result<(), String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let ok = |cmd: &str| {
        let mut o = JsonObj::new();
        o.str("event", "ok").str("cmd", cmd);
        println!("{}", o.finish());
    };
    // One closure per reply shape keeps every arm a one-liner below.
    let cmd = words[0];
    let stop = |r: Result<StopReason, DbgError>| match r {
        Ok(s) => println!("{}", stop_json("stop", &s)),
        Err(e) => dbg_json(cmd, &e),
    };
    let unit = |r: Result<(), DbgError>| match r {
        Ok(()) => ok(cmd),
        Err(e) => dbg_json(cmd, &e),
    };
    match words.as_slice() {
        ["run", ms] => {
            let ms = parse_u64(ms)?;
            let now = run_ms(dbg, ms)?;
            let mut o = JsonObj::new();
            o.str("event", "ran").u64("ms", ms).u64("now", now);
            println!("{}", o.finish());
        }
        ["halt"] => stop(dbg.halt()),
        ["step"] => stop(dbg.step()),
        ["resume"] => unit(dbg.resume()),
        ["continue"] => stop(dbg.continue_until_stop()),
        ["reverse-step"] => stop(dbg.reverse_step()),
        ["reverse-continue"] => stop(dbg.reverse_continue()),
        ["seek", cycle] => stop(dbg.seek(parse_u64(cycle)?)),
        ["break", addr] => unit(dbg.set_breakpoint(parse_addr(addr)?)),
        ["break", addr, expr @ ..] => {
            let addr = parse_addr(addr)?;
            unit(
                dbg.set_breakpoint(addr)
                    .and_then(|()| dbg.set_break_condition(addr, &expr.join(" "))),
            );
        }
        ["clear-break", addr] => unit(dbg.clear_breakpoint(parse_addr(addr)?)),
        ["watch", addr, len, rest @ ..] => {
            let addr = parse_addr(addr)?;
            let len = parse_u64(len)? as u32;
            let (kind, expr) = match rest {
                ["w", e @ ..] => (WatchKind::Write, e),
                ["r", e @ ..] => (WatchKind::Read, e),
                ["rw", e @ ..] => (WatchKind::Access, e),
                e => (WatchKind::Write, e),
            };
            let mut r = dbg.set_watchpoint_kind(addr, len, kind);
            if r.is_ok() && !expr.is_empty() {
                r = dbg.set_watch_condition(addr, &expr.join(" "));
            }
            unit(r);
        }
        ["clear-watch", addr] => unit(dbg.clear_watchpoint(parse_addr(addr)?)),
        ["logpoint", addr, label, expr @ ..] => {
            unit(dbg.set_logpoint(parse_addr(addr)?, label, &expr.join(" ")));
        }
        ["clear-logpoint", addr] => unit(dbg.clear_logpoint(parse_addr(addr)?)),
        ["query", expr @ ..] if !expr.is_empty() => match dbg.query_first(&expr.join(" ")) {
            Ok(Some((cycle, s))) => {
                let mut o = JsonObj::new();
                o.str("event", "query-first")
                    .bool("found", true)
                    .u64("cycle", cycle);
                println!("{}", o.finish());
                println!("{}", stop_json("stop", &s));
            }
            Ok(None) => {
                let mut o = JsonObj::new();
                o.str("event", "query-first").bool("found", false);
                println!("{}", o.finish());
            }
            Err(e) => {
                dbg_json(cmd, &e);
            }
        },
        ["regs"] => match dbg.read_registers() {
            Ok(r) => {
                let gprs: Vec<u64> = r.gprs.iter().map(|&v| v as u64).collect();
                let mut o = JsonObj::new();
                o.str("event", "regs").hex("pc", r.pc as u64);
                o.u64_list("gprs", &gprs);
                println!("{}", o.finish());
            }
            Err(e) => {
                dbg_json(cmd, &e);
            }
        },
        ["mem", addr, len] => {
            let addr = parse_addr(addr)?;
            match dbg.read_memory(addr, parse_u64(len)? as u32) {
                Ok(bytes) => {
                    let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
                    let mut o = JsonObj::new();
                    o.str("event", "mem").hex("addr", addr as u64);
                    o.u64("len", bytes.len() as u64).str("bytes", &hex);
                    println!("{}", o.finish());
                }
                Err(e) => {
                    dbg_json(cmd, &e);
                }
            }
        }
        ["metrics"] => match dbg.query_metrics() {
            Ok(s) => println!("{}", metrics_json(&s)),
            Err(e) => dbg_json(cmd, &e),
        },
        ["flow"] => match dbg.query_flow() {
            // Every value in the sample is simulation-derived, so the
            // transcript stays byte-identical across reruns.
            Ok(s) => {
                let mut o = JsonObj::new();
                o.str("event", "flow")
                    .u64("now", s.now)
                    .u64("completed", s.completed)
                    .u64("dropped", s.dropped)
                    .u64("orphan_ends", s.orphan_ends)
                    .u64("instants", s.instants);
                println!("{}", o.finish());
                for (i, &(n, p50, p99, max)) in s.classes.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let mut o = JsonObj::new();
                    o.str("event", "flow-class")
                        .str("class", FlowClass::ALL[i].label())
                        .u64("n", n)
                        .u64("p50", p50)
                        .u64("p99", p99)
                        .u64("max", max);
                    println!("{}", o.finish());
                }
            }
            Err(e) => dbg_json(cmd, &e),
        },
        ["stats"] => match dbg.query_stats() {
            Ok(s) => {
                let mut o = JsonObj::new();
                o.str("event", "stats")
                    .u64("now", s.now)
                    .u64("guest", s.guest)
                    .u64("monitor", s.monitor)
                    .u64("idle", s.idle);
                o.u64_list("exits", &s.exits);
                o.u64_list("faults", &s.faults)
                    .u64("blocked", s.fault_blocked);
                // SMP keys appear only on multi-core targets so single-core
                // session transcripts stay byte-identical to the golden.
                if s.cores > 1 {
                    o.u64("cores", s.cores);
                    o.u64_list("core_instret", &s.core_instret);
                    o.u64_list("core_exits", &s.core_exits);
                }
                println!("{}", o.finish());
            }
            Err(e) => {
                dbg_json(cmd, &e);
            }
        },
        other => return Err(format!("bad session command `{}`", other.join(" "))),
    }
    Ok(())
}

fn cmd_session(args: &[String]) -> Result<(), String> {
    let cores = opt_cores(args)?;
    let connect = opt(args, "--connect").map(str::to_string);
    // Everything that is not an `--option value` pair is the script path.
    let positional: Vec<&String> = {
        let mut skip = false;
        args.iter()
            .filter(|a| {
                if skip {
                    skip = false;
                    return false;
                }
                if *a == "--cores" || *a == "--connect" {
                    skip = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let script = match positional.as_slice() {
        [] => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            s
        }
        [path] => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?,
        _ => return Err("session expects at most one script path".into()),
    };

    if let Some(addr) = connect {
        // Remote session: attach to a guest an `lwvmm-farm` process is
        // already serving. The farm owns the simulation, so `run MS` is
        // rejected — everything else in the script language works as-is.
        let link = lwvmm::farm::TcpLink::connect(&addr)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let mut dbg = Debugger::new(link);
        let mut o = JsonObj::new();
        o.str("event", "session")
            .str("platform", "remote")
            .str("target", &addr);
        println!("{}", o.finish());
        let mut run_ms = |_: &mut Debugger<lwvmm::farm::TcpLink>, _: u64| {
            Err("`run` is local-only: farm guests run continuously (use `continue`)".to_string())
        };
        for line in script.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            session_line(&mut dbg, &mut run_ms, line)?;
        }
        return Ok(());
    }

    let mut machine = boot_machine(100, cores);
    // Host-time attribution for the `metrics` script command; simulation-
    // invisible, so the session transcript stays deterministic.
    machine.obs.enable_hostprof();
    // Causal flows for the `flow` script command. Observation-only: it adds
    // recorded events, never perturbs the simulated run.
    machine.obs.enable_tracing();
    machine.obs.enable_causal();
    let clock = machine.config().clock_hz;
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    vmm.enable_flight_recorder(100_000);
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    let mut o = JsonObj::new();
    o.str("event", "session")
        .str("platform", "lvmm")
        .u64("clock_hz", clock);
    println!("{}", o.finish());

    let mut run_ms = |dbg: &mut Debugger<UartLink<LvmmPlatform>>, ms: u64| {
        dbg.link_mut().platform.run_for(clock / 1_000 * ms);
        Ok(dbg.link_ref().platform.machine().now())
    };
    for line in script.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        session_line(&mut dbg, &mut run_ms, line)?;
    }
    Ok(())
}

// ------------------------------------------------------------ metrics ----

/// Renders a host-time metrics sample as one JSON line. The *values* are
/// host-clock-derived and vary run to run; the *schema* — key set and key
/// order (the canonical `HostPhase::ALL` order) — is fixed, so scripts can
/// parse any run's output the same way.
fn metrics_json(s: &rdbg::MetricsSample) -> String {
    let mut o = JsonObj::new();
    o.str("event", "metrics")
        .u64("now", s.now)
        .u64("wall_ns", s.wall_ns)
        .u64("marks", s.marks)
        .u64("attributed_ns", s.attributed_ns());
    for (i, phase) in lwvmm::obs::HostPhase::ALL.iter().enumerate() {
        o.u64(&phase.label(), s.phase_ns[i]);
    }
    o.finish()
}

/// `dbgctl metrics` — boot the lightweight monitor with the host profiler
/// on, run the streaming workload, and report where the monitor's own
/// wall-clock went, sampled live over the debug wire (`qMetrics`).
fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let ms = parse_u64(opt(args, "--ms").unwrap_or("50"))?;
    let rate = parse_u64(opt(args, "--workload").unwrap_or("100"))?;
    let cores = opt_cores(args)?;

    let mut machine = boot_machine(rate, cores);
    machine.obs.enable_hostprof();
    let clock = machine.config().clock_hz;
    let vmm = LvmmPlatform::new(machine, layout::ENTRY);
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    dbg.link_mut().platform.run_for(clock / 1_000 * ms);
    let s = dbg.query_metrics().map_err(|e| format!("qMetrics: {e}"))?;
    println!("{}", metrics_json(&s));
    // Per-core work grouped under the host-time report, mirroring the
    // `core="N"`-labeled Prometheus series the platforms publish. The wire
    // carries the per-core vectors only for multi-core targets (single-core
    // samples stay byte-identical to the pre-SMP encoding), so a 1-core run
    // prints no per-core lines rather than inventing zeros.
    let stats = dbg.query_stats().map_err(|e| format!("qStats: {e}"))?;
    for core in 0..stats.core_instret.len() {
        let mut o = JsonObj::new();
        o.str("event", "core-metrics")
            .u64("core", core as u64)
            .u64("instret", stats.core_instret[core])
            .u64("exits", stats.core_exits.get(core).copied().unwrap_or(0));
        println!("{}", o.finish());
    }
    Ok(())
}

// --------------------------------------------------------------- flow ----

/// `dbgctl flow` — boot the lightweight monitor with causal tracing and the
/// flight recorder on, run the streaming workload, and print the causal
/// chain that leads to a given cycle (default: the end of the run): the
/// flow completing most recently at or before it, then each upstream flow
/// whose completion triggered it. With `--seek`, park the time-travel
/// debugger at the chain head's completion cycle and dump registers —
/// "show me the state at the end of the causal story".
fn cmd_flow(args: &[String]) -> Result<(), String> {
    let ms = parse_u64(opt(args, "--ms").unwrap_or("50"))?;
    let rate = parse_u64(opt(args, "--workload").unwrap_or("100"))?;
    let cores = opt_cores(args)?;
    let seek = args.iter().any(|a| a == "--seek");

    let mut machine = boot_machine(rate, cores);
    machine.obs.enable_tracing();
    machine.obs.enable_causal();
    let clock = machine.config().clock_hz;
    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    vmm.enable_flight_recorder(100_000);
    vmm.run_for(clock / 1_000 * ms);

    let now = vmm.machine().now();
    let cycle = match opt(args, "--cycle") {
        Some(s) => parse_u64(s)?,
        None => now,
    };

    let c = vmm.machine().obs.causal().expect("causal enabled above");
    let mut o = JsonObj::new();
    o.str("event", "flow-summary")
        .u64("now", now)
        .u64("cycle", cycle)
        .u64("completed", c.completed())
        .u64("dropped", c.dropped_flows())
        .u64("orphan_ends", c.orphan_ends())
        .u64("instants", c.instants());
    println!("{}", o.finish());
    for class in FlowClass::ALL {
        let h = c.hist(class);
        if h.count() == 0 {
            continue;
        }
        let mut o = JsonObj::new();
        o.str("event", "flow-class")
            .str("class", class.label())
            .u64("n", h.count())
            .u64("p50", h.p50())
            .u64("p99", h.p99())
            .u64("max", h.max());
        println!("{}", o.finish());
    }

    let Some(head) = c.flow_ending_by(cycle) else {
        let mut o = JsonObj::new();
        o.str("event", "flow-chain").bool("found", false);
        println!("{}", o.finish());
        return Ok(());
    };
    // Own the chain before the platform moves into the debugger below.
    let chain = c.chain_to(head);
    let mut o = JsonObj::new();
    o.str("event", "flow-chain")
        .bool("found", true)
        .u64("len", chain.len() as u64);
    println!("{}", o.finish());
    // `chain_to` returns oldest cause first, so the chain reads as a story
    // ending at `cycle`.
    for (depth, f) in chain.iter().enumerate() {
        let mut o = JsonObj::new();
        o.str("event", "flow")
            .u64("depth", depth as u64)
            .str("class", f.class.label())
            .u64("key", f.key as u64)
            .u64("begin", f.begin)
            .u64("end", f.end)
            .u64("latency", f.latency())
            .u64("begin_core", f.begin_core as u64)
            .u64("end_core", f.end_core as u64);
        println!("{}", o.finish());
    }

    if seek {
        // Ride the existing time-travel machinery: halt, seek the replay to
        // the chain's final completion, and dump state there.
        let target = chain.last().expect("chain is never empty").end;
        let mut dbg = Debugger::new(UartLink {
            platform: vmm,
            slice: 2_000,
        });
        dbg.halt().map_err(|e| format!("halt: {e}"))?;
        let stop = dbg
            .seek(target)
            .map_err(|e| format!("seek {target}: {e}"))?;
        println!("{}", stop_json("seek", &stop));
        let regs = dbg.read_registers().map_err(|e| format!("regs: {e}"))?;
        let gprs: Vec<u64> = regs.gprs.iter().map(|&v| v as u64).collect();
        let mut o = JsonObj::new();
        o.str("event", "state")
            .u64("cycle", target)
            .hex("pc", regs.pc as u64);
        o.u64_list("gprs", &gprs);
        println!("{}", o.finish());
    }
    Ok(())
}

// ------------------------------------------------------------ diverge ----

/// Known guest data symbols (the workload kernel's stats block plus its
/// globals page); a bare hex address works for anything else.
fn resolve_symbol(name: &str) -> Option<u32> {
    Some(match name {
        "bytes" => layout::STATS,
        "frames" => layout::STATS + 8,
        "ticks" => layout::STATS + 12,
        "underruns" => layout::STATS + 16,
        "glob" => layout::GLOB,
        hex => return parse_addr(hex).ok(),
    })
}

/// Reads the 32-bit little-endian word at physical `addr`.
fn read_word(m: &mut Machine, addr: u32) -> u32 {
    let mut v = 0u32;
    for i in 0..4 {
        let b = m.bus_read(addr + i, lwvmm::cpu::MemSize::Byte).unwrap_or(0);
        v |= b << (8 * i);
    }
    v
}

fn cmd_diverge(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--race") {
        return cmd_diverge_race(args);
    }
    let symbol = opt(args, "--symbol").unwrap_or("frames");
    let ms = parse_u64(opt(args, "--ms").unwrap_or("60"))?;
    let addr = resolve_symbol(symbol).ok_or(format!(
        "unknown symbol `{symbol}` (bytes|frames|ticks|underruns|glob|0xADDR)"
    ))?;

    let machine = boot_machine(100, 1);
    let clock = machine.config().clock_hz;
    let interval = clock / 10_000; // sample every 100 simulated µs
    let steps = ms * clock / 1_000 / interval;

    // Trajectory of the symbol's word under each monitor, sampled on the
    // same simulated-time grid.
    let sample = |platform: &mut dyn Platform| -> Vec<(u64, u32)> {
        (0..steps)
            .map(|_| {
                platform.run_for(interval);
                let m = platform.machine_mut();
                (m.now(), read_word(m, addr))
            })
            .collect()
    };
    let mut hosted = HostedPlatform::new(boot_machine(100, 1), layout::ENTRY);
    let hosted_track = sample(&mut hosted);

    let mut vmm = LvmmPlatform::new(machine, layout::ENTRY);
    vmm.enable_flight_recorder(100_000);
    let lvmm_track = sample(&mut vmm);

    let mut o = JsonObj::new();
    o.str("event", "samples")
        .str("symbol", symbol)
        .hex("addr", addr as u64)
        .u64("interval", interval)
        .u64("count", steps);
    println!("{}", o.finish());

    // First sample index where the two runs disagree on the value.
    let Some(i) = (0..steps as usize).find(|&i| hosted_track[i].1 != lvmm_track[i].1) else {
        let mut o = JsonObj::new();
        o.str("event", "diverge").bool("found", false);
        println!("{}", o.finish());
        return Ok(());
    };
    let (prev_cycle, prev_val) = if i == 0 { (0, 0) } else { lvmm_track[i - 1] };
    let mut o = JsonObj::new();
    o.str("event", "first-differing-sample")
        .u64("index", i as u64)
        .u64("hosted_value", hosted_track[i].1 as u64)
        .u64("lvmm_value", lvmm_track[i].1 as u64)
        .u64("agreed_value", prev_val as u64)
        .u64("agreed_cycle", prev_cycle);
    println!("{}", o.finish());

    // Refine on the lvmm timeline: the first recorded cycle after the last
    // agreement at which the symbol no longer holds the agreed value.
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    dbg.halt().map_err(|e| format!("halt: {e}"))?;
    let expr = format!("cycle > {prev_cycle} && [0x{addr:x}] != {prev_val}");
    let hit = dbg
        .query_first(&expr)
        .map_err(|e| format!("query `{expr}`: {e}"))?;
    let mut o = JsonObj::new();
    o.str("event", "diverge").str("expr", &expr);
    let Some((cycle, stop)) = hit else {
        o.bool("found", false);
        println!("{}", o.finish());
        return Ok(());
    };
    o.bool("found", true).u64("cycle", cycle);
    println!("{}", o.finish());
    println!("{}", stop_json("seek", &stop));

    // Parked at the divergence: dump state, then prove single-stepping
    // works from here.
    let regs = dbg.read_registers().map_err(|e| format!("regs: {e}"))?;
    let gprs: Vec<u64> = regs.gprs.iter().map(|&v| v as u64).collect();
    let mut o = JsonObj::new();
    // `cycle` is the parked replay position; the machine's own clock keeps
    // ticking while the stub services the wire, so `now()` would mislead.
    o.str("event", "state")
        .u64("cycle", cycle)
        .hex("pc", regs.pc as u64)
        .u64(
            "value",
            read_word(dbg.link_mut().platform.machine_mut(), addr) as u64,
        );
    o.u64_list("gprs", &gprs);
    println!("{}", o.finish());
    let stepped = dbg.step().map_err(|e| format!("step: {e}"))?;
    println!("{}", stop_json("step", &stepped));
    Ok(())
}

/// `dbgctl diverge --race` — the cross-core race demo. Boots the two-core
/// racy-counter guest under the lightweight monitor with the
/// `racy-increment` fault class armed, samples the shared counter against
/// the per-core tallies on a fixed simulated-time grid, and then seeks the
/// flight recording to the exact cycle the invariant
/// `counter >= tally0 + tally1` first breaks — the first lost update,
/// whether a quantum switch split a read-modify-write or the fault
/// injector replayed a stale value.
fn cmd_diverge_race(args: &[String]) -> Result<(), String> {
    use apps::smp_layout::{COUNTER, TALLY};
    let ms = parse_u64(opt(args, "--ms").unwrap_or("40"))?;
    let cores = opt(args, "--cores").map_or(Ok(2), parse_cores)?;
    if cores < 2 {
        return Err("--race needs --cores of at least 2".into());
    }
    let seed = parse_u64(opt(args, "--fault-seed").unwrap_or("42"))?;

    let program = apps::racy_counter_guest();
    let entry = program.symbols.get("start").expect("racy guest has start");
    let mut machine = Machine::new(MachineConfig {
        num_cores: cores,
        ..MachineConfig::default()
    });
    machine.load_program(&program);
    machine.enable_fault_injection(
        FaultPlan::new(seed)
            .only(FaultKind::RacyIncrement)
            .race(COUNTER)
            .period(200_000),
    );
    let clock = machine.config().clock_hz;
    let mut vmm = LvmmPlatform::new(machine, entry);
    vmm.enable_flight_recorder(100_000);

    let interval = clock / 10_000; // sample every 100 simulated µs
    let steps = ms * clock / 1_000 / interval;
    let mut track = Vec::new();
    for _ in 0..steps {
        vmm.run_for(interval);
        let m = vmm.machine_mut();
        let counter = read_word(m, COUNTER);
        let sum = read_word(m, TALLY) + read_word(m, TALLY + 4);
        track.push((m.now(), counter, sum));
    }
    let mut o = JsonObj::new();
    o.str("event", "samples")
        .str("invariant", "counter >= tally0 + tally1")
        .hex("addr", COUNTER as u64)
        .u64("cores", cores as u64)
        .u64("interval", interval)
        .u64("count", steps);
    println!("{}", o.finish());

    // First sample where the shared counter has fallen behind the work the
    // cores actually performed — some increments are gone.
    let Some(i) = track.iter().position(|&(_, counter, sum)| counter < sum) else {
        let mut o = JsonObj::new();
        o.str("event", "diverge").bool("found", false);
        println!("{}", o.finish());
        return Ok(());
    };
    let prev_cycle = if i == 0 { 0 } else { track[i - 1].0 };
    let mut o = JsonObj::new();
    o.str("event", "first-lost-update-sample")
        .u64("index", i as u64)
        .u64("counter", track[i].1 as u64)
        .u64("expected", track[i].2 as u64)
        .u64("agreed_cycle", prev_cycle);
    println!("{}", o.finish());

    // Refine on the recording: the first cycle after the last healthy
    // sample at which the invariant no longer holds.
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });
    dbg.halt().map_err(|e| format!("halt: {e}"))?;
    let expr = format!(
        "cycle > {prev_cycle} && [{COUNTER:#x}] < [{TALLY:#x}] + [{t1:#x}]",
        t1 = TALLY + 4
    );
    let hit = dbg
        .query_first(&expr)
        .map_err(|e| format!("query `{expr}`: {e}"))?;
    let mut o = JsonObj::new();
    o.str("event", "diverge").str("expr", &expr);
    let Some((cycle, stop)) = hit else {
        o.bool("found", false);
        println!("{}", o.finish());
        return Ok(());
    };
    o.bool("found", true).u64("cycle", cycle);
    println!("{}", o.finish());
    println!("{}", stop_json("seek", &stop));

    // Parked at the first lost update: name the core that was running and
    // dump its view of the evidence.
    let core = dbg.last_stop_core();
    dbg.set_thread(core as u32)
        .map_err(|e| format!("Hg{core}: {e}"))?;
    let regs = dbg.read_registers().map_err(|e| format!("regs: {e}"))?;
    let m = dbg.link_mut().platform.machine_mut();
    let counter = read_word(m, COUNTER) as u64;
    let tallies: Vec<u64> = (0..2).map(|i| read_word(m, TALLY + 4 * i) as u64).collect();
    let mut o = JsonObj::new();
    o.str("event", "state")
        .u64("cycle", cycle)
        .u64("core", core as u64)
        .hex("pc", regs.pc as u64)
        .u64("counter", counter)
        .u64_list("tallies", &tallies);
    println!("{}", o.finish());
    Ok(())
}
