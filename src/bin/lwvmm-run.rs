//! `lwvmm-run` — boot an HX32 guest (assembly source) on a chosen platform
//! and report what happened.
//!
//! ```console
//! $ lwvmm-run guest.s --platform lvmm --ms 200
//! $ lwvmm-run guest.s --platform raw --ms 50 --dump 0x900:16
//! $ lwvmm-run --workload 100 --platform hosted --ms 250
//! ```
//!
//! `--workload <mbps>` runs the built-in HiTactix streaming kernel instead
//! of a source file. Platforms: `raw` (real hardware), `lvmm` (the paper's
//! lightweight monitor, default), `hosted` (the conventional full monitor).
//!
//! `--fault all` (or a single class such as `--fault wild-write-kernel`)
//! arms the deterministic fault injector: the campaign is a pure function
//! of `--fault-seed` and the simulated clock, so the same invocation always
//! wrecks the guest the same way.
//!
//! `--logpoint 0xADDR[:label[:expr]]` (repeatable) arms a logpoint: every
//! retirement of the instruction at `ADDR` where `expr` (condition grammar
//! of `hx-query`; absent means "always") evaluates nonzero records a hit
//! without stopping the guest. `--query-json` switches the whole run report
//! to JSON lines — one object per line, deterministic across reruns — for
//! scripting against.
//!
//! `--causal out.json` turns on causal-flow tracking (IRQ dispatch/service,
//! IPI delivery, device command→completion, guest tracepoint spans), writes
//! the run as a Chrome/Perfetto trace with flow arrows, and prints per-class
//! latency histograms. The trace bytes are a pure function of the simulated
//! run, so identical invocations produce identical files.

use lwvmm::fault::{FaultKind, FaultPlan};
use lwvmm::guest::{kernel::layout, GuestStats, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::LvmmPlatform;
use lwvmm::obs::{ChromeTrace, EventKind, MetricsRegistry, Profiler, SymbolMap};
use lwvmm::query::json::JsonObj;
use lwvmm::query::Expr;
use std::process::ExitCode;

struct Options {
    input: Option<String>,
    workload: Option<u64>,
    platform: String,
    cores: usize,
    ms: u64,
    dump: Option<(u32, u32)>,
    engine_stats: bool,
    no_decode_cache: bool,
    profile: Option<String>,
    fault: Option<String>,
    fault_seed: u64,
    logpoints: Vec<(u32, String, Option<String>)>,
    query_json: bool,
    metrics: Option<String>,
    heartbeat: Option<u64>,
    causal: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        input: None,
        workload: None,
        platform: "lvmm".into(),
        cores: 1,
        ms: 100,
        dump: None,
        engine_stats: false,
        no_decode_cache: false,
        profile: None,
        fault: None,
        fault_seed: 42,
        logpoints: Vec::new(),
        query_json: false,
        metrics: None,
        heartbeat: None,
        causal: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--platform" => opts.platform = args.next().ok_or("missing --platform value")?,
            "--cores" => {
                let v = args.next().ok_or("missing --cores value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--cores expects a number, got `{v}`"))?;
                if n == 0 || n > lwvmm::machine::smp::MAX_CORES {
                    return Err(format!(
                        "--cores must be between 1 and {}, got {n}",
                        lwvmm::machine::smp::MAX_CORES
                    ));
                }
                opts.cores = n;
            }
            "--ms" => {
                opts.ms = args
                    .next()
                    .ok_or("missing --ms value")?
                    .parse()
                    .map_err(|_| "--ms expects a number")?
            }
            "--workload" => {
                opts.workload = Some(
                    args.next()
                        .ok_or("missing --workload value")?
                        .parse()
                        .map_err(|_| "--workload expects Mbit/s")?,
                )
            }
            "--dump" => {
                let spec = args.next().ok_or("missing --dump value")?;
                let (addr, len) = spec.split_once(':').ok_or("--dump expects addr:len")?;
                let addr = lwvmm::cli::parse_hex32(addr)?;
                let len: u32 = len.parse().map_err(|_| "--dump length must be decimal")?;
                opts.dump = Some((addr, len));
            }
            "--engine-stats" => opts.engine_stats = true,
            "--fault" => opts.fault = Some(args.next().ok_or("missing --fault value")?),
            "--fault-seed" => {
                opts.fault_seed = args
                    .next()
                    .ok_or("missing --fault-seed value")?
                    .parse()
                    .map_err(|_| "--fault-seed expects a number")?
            }
            "--profile" => opts.profile = Some(args.next().ok_or("missing --profile value")?),
            "--logpoint" => {
                let spec = args.next().ok_or("missing --logpoint value")?;
                // addr[:label[:expr]] — the expression may itself contain
                // no colons (the grammar has none), but splitn keeps any
                // future ones intact anyway.
                let mut parts = spec.splitn(3, ':');
                let addr = parts.next().unwrap_or("");
                let addr = lwvmm::cli::parse_hex32(addr)?;
                let label = match parts.next() {
                    Some(l) if !l.is_empty() => l.to_string(),
                    _ => format!("lp@{addr:#x}"),
                };
                let expr = parts.next().map(str::to_string);
                opts.logpoints.push((addr, label, expr));
            }
            "--query-json" => opts.query_json = true,
            "--metrics" => opts.metrics = Some(args.next().ok_or("missing --metrics value")?),
            "--causal" => opts.causal = Some(args.next().ok_or("missing --causal value")?),
            "--heartbeat" => {
                let ms: u64 = args
                    .next()
                    .ok_or("missing --heartbeat value")?
                    .parse()
                    .map_err(|_| "--heartbeat expects milliseconds")?;
                if ms == 0 {
                    return Err("--heartbeat expects a nonzero interval".into());
                }
                opts.heartbeat = Some(ms);
            }
            "--no-decode-cache" => opts.no_decode_cache = true,
            "-h" | "--help" => return Err(String::new()),
            other if opts.input.is_none() => opts.input = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.input.is_none() && opts.workload.is_none() {
        return Err("need an input file or --workload".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("lwvmm-run: {e}");
            }
            eprintln!(
                "usage: lwvmm-run [guest.s | --workload <mbps>] [--platform raw|lvmm|hosted] \
                 [--cores N] [--ms <simulated ms>] [--dump 0xADDR:LEN] [--engine-stats] \
                 [--profile out.folded] [--fault all|<class>] [--fault-seed N] \
                 [--logpoint 0xADDR[:label[:expr]]]... [--query-json] \
                 [--metrics out.prom] [--causal out.json] \
                 [--heartbeat <host report interval, simulated ms>]"
            );
            return if e.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let mut machine = Machine::new(MachineConfig {
        num_cores: opts.cores,
        ..MachineConfig::default()
    });
    if opts.no_decode_cache {
        // Must be bit-identical to the default; kept for A/B timing and
        // determinism checks.
        machine.cpu.set_decode_cache(false);
    }
    let clock = machine.config().clock_hz;
    let (program, is_workload) = if let Some(rate) = opts.workload {
        (
            Workload::new(rate)
                .build(&machine)
                .expect("built-in kernel assembles"),
            true,
        )
    } else {
        let path = opts.input.as_ref().unwrap();
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lwvmm-run: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match hx_asm::assemble(&source) {
            Ok(p) => (p, false),
            Err(e) => {
                eprintln!("{path}:{e}");
                return ExitCode::FAILURE;
            }
        }
    };
    machine.load_program(&program);
    let entry = program.symbols.get("start").unwrap_or(program.base());

    if opts.profile.is_some() {
        // Curated function-level ranges for the built-in kernel; every
        // in-image label for ad-hoc guests.
        let ranges = if is_workload {
            lwvmm::guest::kernel::profile_symbols(&program)
        } else {
            program.code_symbols()
        };
        machine.obs.enable_profiler(Profiler::new(
            SymbolMap::from_ranges(ranges),
            Profiler::DEFAULT_INTERVAL,
        ));
    }

    if !opts.logpoints.is_empty() {
        // Hits are read back from the trace ring after the run.
        machine.obs.enable_tracing();
        for (addr, label, expr) in &opts.logpoints {
            let cond = match expr {
                None => None,
                Some(src) => match Expr::parse(src) {
                    Ok(e) => Some(e),
                    Err(e) => {
                        eprintln!("lwvmm-run: bad --logpoint condition `{src}`: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            machine.add_logpoint(*addr, label, cond);
        }
    }

    if let Some(spec) = &opts.fault {
        let ram_size = machine.config().ram_size as u32;
        // Wild attempts span all of RAM; the monitors block everything at or
        // above their reserved region, raw hardware blocks nothing.
        let wild_limit = match opts.platform.as_str() {
            "raw" | "real-hw" => ram_size,
            "hosted" => ram_size - lwvmm::hosted::HostedConfig::default().host_mem,
            _ => ram_size - lwvmm::monitor::LvmmConfig::default().monitor_mem,
        };
        let mut plan = FaultPlan::new(opts.fault_seed).wild(ram_size, wild_limit);
        if spec != "all" {
            let Some(kind) = FaultKind::from_label(spec) else {
                eprintln!(
                    "lwvmm-run: unknown fault class `{spec}` (all|{})",
                    FaultKind::ALL.map(|k| k.label()).join("|")
                );
                return ExitCode::FAILURE;
            };
            plan = plan.only(kind);
        }
        machine.enable_fault_injection(plan);
    }

    if opts.causal.is_some() {
        // Flow endpoints ride the event ring, so the causal exporter needs
        // tracing on as well. Both are observation-only: the simulated run
        // is bit-identical with or without them.
        machine.obs.enable_tracing();
        machine.obs.enable_causal();
    }

    if opts.metrics.is_some() || opts.heartbeat.is_some() {
        // Host-time attribution is simulation-invisible: wall-clock reads
        // never feed guest state, so enabling it (and the heartbeat's
        // sliced run loop) keeps record/replay byte-identical.
        machine.obs.enable_hostprof();
    }

    let mut platform: Box<dyn Platform> = match opts.platform.as_str() {
        "raw" | "real-hw" => Box::new(RawPlatform::new(machine)),
        "lvmm" => Box::new(LvmmPlatform::new(machine, entry)),
        "hosted" => Box::new(HostedPlatform::new(machine, entry)),
        other => {
            eprintln!("lwvmm-run: unknown platform `{other}` (raw|lvmm|hosted)");
            return ExitCode::FAILURE;
        }
    };

    if !opts.query_json {
        println!(
            "running {} ({} bytes at {:#x}) on {} for {} simulated ms",
            opts.input
                .as_deref()
                .unwrap_or("<built-in streaming workload>"),
            program.bytes().len(),
            program.base(),
            platform.name(),
            opts.ms
        );
    }
    let target = clock / 1_000 * opts.ms;
    let ran = match opts.heartbeat {
        Some(hb) => {
            // Slicing is simulation-invisible: `run_for(a); run_for(b)` is
            // identical to `run_for(a+b)` (the engine loops on the clock,
            // not on call boundaries), and the report goes to stderr so
            // stdout stays deterministic across reruns.
            let slice = (clock / 1_000 * hb).max(1);
            let reg = MetricsRegistry::global();
            let name = platform.name().to_string();
            let mut ran = 0u64;
            let mut prev_instr = 0u64;
            let mut prev_exits = 0u64;
            while ran < target {
                let chunk = slice.min(target - ran);
                let t0 = std::time::Instant::now();
                let step = platform.run_for(chunk);
                let host_s = t0.elapsed().as_secs_f64().max(1e-9);
                ran += step;
                platform.publish_metrics(reg);
                let snap = reg.snapshot();
                let instr =
                    snap.counter(&format!("lwvmm_instructions_total{{platform=\"{name}\"}}"));
                let exit_prefix = format!("lwvmm_exits_total{{platform=\"{name}\"");
                let exits: u64 = snap
                    .counters
                    .iter()
                    .filter(|(k, _)| k.starts_with(&exit_prefix))
                    .map(|(_, v)| *v)
                    .sum();
                let journal = snap.counter(&format!(
                    "lwvmm_journal_payload_bytes_total{{platform=\"{name}\"}}"
                ));
                eprintln!(
                    "heartbeat: sim {:.1}/{} ms  {:.2} Minstr/s  {:.0} exits/s  journal {journal} B",
                    ran as f64 * 1e3 / clock as f64,
                    opts.ms,
                    (instr - prev_instr) as f64 / host_s / 1e6,
                    (exits - prev_exits) as f64 / host_s,
                );
                prev_instr = instr;
                prev_exits = exits;
                if step < chunk {
                    break; // stuck: no event can ever wake the guest
                }
            }
            ran
        }
        None => platform.run_for(target),
    };
    if let Some(path) = &opts.metrics {
        platform.publish_metrics(MetricsRegistry::global());
        let text = MetricsRegistry::global().snapshot().prometheus();
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("lwvmm-run: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.causal {
        let mut trace = ChromeTrace::new();
        trace.add_platform(1, platform.name(), &platform.machine().obs);
        if let Err(e) = std::fs::write(path, trace.finish()) {
            eprintln!("lwvmm-run: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if opts.query_json {
        return emit_json(&opts, platform.as_mut(), ran, clock, is_workload);
    }
    let t = platform.time_stats();
    println!(
        "\nsimulated {:.3} ms   cpu load {:.1}%  (guest {:.1}%, monitor {:.1}%, host {:.1}%, idle {:.1}%)",
        ran as f64 * 1e3 / clock as f64,
        t.cpu_load() * 100.0,
        t.guest as f64 / t.total().max(1) as f64 * 100.0,
        t.monitor as f64 / t.total().max(1) as f64 * 100.0,
        t.host_model as f64 / t.total().max(1) as f64 * 100.0,
        t.idle as f64 / t.total().max(1) as f64 * 100.0,
    );
    let m = platform.machine();
    println!(
        "cpu: pc={:#010x}  {} instructions retired, {} cycles",
        m.cpu.pc(),
        m.cpu.instret(),
        m.cpu.cycles()
    );
    let nic = m.nic.counters();
    if nic.tx_frames > 0 {
        let mbps = nic.tx_bytes as f64 * 8.0 / (m.now() as f64 / clock as f64) / 1e6;
        println!(
            "nic: {} frames, {} payload bytes ({mbps:.1} Mbit/s)",
            nic.tx_frames, nic.tx_bytes
        );
    }
    if let Some(f) = m.fault_stats() {
        let classes: Vec<String> = FaultKind::ALL
            .iter()
            .filter(|&&k| f.injected_for(k) > 0)
            .map(|&k| format!("{} {}", f.injected_for(k), k.label()))
            .collect();
        println!(
            "faults: {} injected, {} wild attempts blocked by protection ({})",
            f.total(),
            f.blocked,
            if classes.is_empty() {
                "none".to_string()
            } else {
                classes.join(", ")
            }
        );
    }
    let hdc = m.hdc.stats();
    if hdc.commands > 0 {
        println!(
            "disk: {} commands, {} bytes, {} errors",
            hdc.commands, hdc.bytes, hdc.errors
        );
    }
    if is_workload {
        match GuestStats::read(m) {
            Ok(stats) => println!(
                "guest: {} frames, {} bytes, {} ticks, {} underruns, fault={}",
                stats.frames, stats.bytes, stats.ticks, stats.underruns, stats.fault_cause
            ),
            Err(e) => println!("guest: stats unavailable ({e})"),
        }
        let _ = layout::ENTRY;
    }
    if opts.engine_stats {
        let d = m.cpu.decode_stats();
        let (tlb_hits, tlb_misses) = m.cpu.tlb_stats();
        println!(
            "engine: decode cache {:.1}% hit ({} hits, {} misses), \
             {} fast-path fetches, {} invalidations",
            d.hit_rate() * 100.0,
            d.hits,
            d.misses,
            d.fast_fetches,
            d.invalidations
        );
        println!("engine: tlb {tlb_hits} hits, {tlb_misses} misses");
    }
    if let Some(path) = &opts.profile {
        let obs = &platform.machine().obs;
        let Some(prof) = obs.prof() else {
            eprintln!("lwvmm-run: profiler vanished (internal error)");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(path, prof.fold()) {
            eprintln!("lwvmm-run: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        let total = prof.total_cycles().max(1);
        println!(
            "\nprofile: {} guest cycles, {} samples (interval {}), hottest symbols:",
            prof.total_cycles(),
            prof.total_samples(),
            prof.interval()
        );
        println!("  {:>12}  {:>6}  {:>8}  symbol", "cycles", "%", "samples");
        for (name, cycles, samples) in prof.top(10) {
            println!(
                "  {cycles:>12}  {:>5.1}%  {samples:>8}  {name}",
                cycles as f64 / total as f64 * 100.0
            );
        }
        println!("profile written to {path}");
    }
    if let Some(path) = &opts.causal {
        let Some(c) = platform.machine().obs.causal() else {
            eprintln!("lwvmm-run: causal tracker vanished (internal error)");
            return ExitCode::FAILURE;
        };
        println!(
            "\ncausal: {} flows ({} dropped, {} orphan ends, {} instants), trace written to {path}",
            c.completed(),
            c.dropped_flows(),
            c.orphan_ends(),
            c.instants()
        );
        for line in c.summary_lines() {
            println!("  {line}");
        }
    }
    if let Some((addr, len)) = opts.dump {
        print!("memory at {addr:#010x}:");
        for i in 0..len {
            if i % 16 == 0 {
                print!("\n  {:#010x}: ", addr + i);
            }
            match platform
                .machine_mut()
                .bus_read(addr + i, hx_cpu::MemSize::Byte)
            {
                Ok(b) => print!("{b:02x} "),
                Err(_) => print!("?? "),
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// The `--query-json` report: one JSON object per line, every value taken
/// from simulated state so identical invocations print identical bytes.
fn emit_json(
    opts: &Options,
    platform: &mut dyn Platform,
    ran: u64,
    clock: u64,
    is_workload: bool,
) -> ExitCode {
    let m = platform.machine();
    let nic = m.nic.counters();
    let mut run = JsonObj::new();
    run.str("event", "run")
        .str("platform", platform.name())
        .u64("clock_hz", clock)
        .u64("ran_cycles", ran)
        .u64("now", m.now())
        .hex("pc", m.cpu.pc() as u64)
        .u64("instret", m.cpu.instret())
        .u64("tx_frames", nic.tx_frames)
        .u64("tx_bytes", nic.tx_bytes);
    println!("{}", run.finish());

    if is_workload {
        let mut o = JsonObj::new();
        o.str("event", "guest");
        match GuestStats::read(m) {
            Ok(s) => {
                o.u64("frames", s.frames as u64)
                    .u64("bytes", s.bytes)
                    .u64("ticks", s.ticks as u64)
                    .u64("underruns", s.underruns as u64)
                    .u64("fault_cause", s.fault_cause as u64);
            }
            Err(e) => {
                o.str("error", &e.to_string());
            }
        }
        println!("{}", o.finish());
    }

    if let Some(f) = m.fault_stats() {
        let mut o = JsonObj::new();
        o.str("event", "faults");
        o.u64_list("attempted", &f.injected);
        o.u64("blocked", f.blocked);
        println!("{}", o.finish());
    }

    // Logpoint hits, oldest surviving first (the ring may have dropped the
    // earliest ones on very long runs — say so rather than lie by omission).
    if !opts.logpoints.is_empty() {
        let label_of = |addr: u32| {
            m.logpoints()
                .iter()
                .find(|lp| lp.addr == addr)
                .map(|lp| lp.label.clone())
                .unwrap_or_default()
        };
        if m.obs.ring.dropped() > 0 {
            let mut o = JsonObj::new();
            o.str("event", "ring-dropped")
                .u64("events", m.obs.ring.dropped());
            println!("{}", o.finish());
        }
        for ev in m.obs.ring.iter() {
            if let EventKind::Logpoint { addr, value } = ev.kind {
                let mut o = JsonObj::new();
                o.str("event", "logpoint")
                    .u64("at", ev.at)
                    .hex("addr", addr as u64)
                    .str("label", &label_of(addr))
                    .u64("value", value);
                println!("{}", o.finish());
            }
        }
    }

    if let Some((addr, len)) = opts.dump {
        let mut bytes = String::with_capacity(len as usize * 2);
        for i in 0..len {
            match platform
                .machine_mut()
                .bus_read(addr + i, hx_cpu::MemSize::Byte)
            {
                Ok(b) => bytes.push_str(&format!("{b:02x}")),
                Err(_) => bytes.push_str("??"),
            }
        }
        let mut o = JsonObj::new();
        o.str("event", "memory")
            .hex("addr", addr as u64)
            .u64("len", len as u64)
            .str("bytes", &bytes);
        println!("{}", o.finish());
    }

    if let Some(path) = &opts.profile {
        let Some(prof) = platform.machine().obs.prof() else {
            eprintln!("lwvmm-run: profiler vanished (internal error)");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(path, prof.fold()) {
            eprintln!("lwvmm-run: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        let mut o = JsonObj::new();
        o.str("event", "profile")
            .str("path", path)
            .u64("samples", prof.total_samples());
        println!("{}", o.finish());
    }

    if let Some(path) = &opts.causal {
        let Some(c) = platform.machine().obs.causal() else {
            eprintln!("lwvmm-run: causal tracker vanished (internal error)");
            return ExitCode::FAILURE;
        };
        let mut o = JsonObj::new();
        o.str("event", "causal")
            .str("path", path)
            .u64("flows", c.completed())
            .u64("dropped", c.dropped_flows())
            .u64("orphan_ends", c.orphan_ends())
            .u64("instants", c.instants());
        println!("{}", o.finish());
    }
    ExitCode::SUCCESS
}
