//! `lwvmm-run` — boot an HX32 guest (assembly source) on a chosen platform
//! and report what happened.
//!
//! ```console
//! $ lwvmm-run guest.s --platform lvmm --ms 200
//! $ lwvmm-run guest.s --platform raw --ms 50 --dump 0x900:16
//! $ lwvmm-run --workload 100 --platform hosted --ms 250
//! ```
//!
//! `--workload <mbps>` runs the built-in HiTactix streaming kernel instead
//! of a source file. Platforms: `raw` (real hardware), `lvmm` (the paper's
//! lightweight monitor, default), `hosted` (the conventional full monitor).
//!
//! `--fault all` (or a single class such as `--fault wild-write-kernel`)
//! arms the deterministic fault injector: the campaign is a pure function
//! of `--fault-seed` and the simulated clock, so the same invocation always
//! wrecks the guest the same way.

use lwvmm::fault::{FaultKind, FaultPlan};
use lwvmm::guest::{kernel::layout, GuestStats, Workload};
use lwvmm::hosted::HostedPlatform;
use lwvmm::machine::{Machine, MachineConfig, Platform, RawPlatform};
use lwvmm::monitor::LvmmPlatform;
use lwvmm::obs::{Profiler, SymbolMap};
use std::process::ExitCode;

struct Options {
    input: Option<String>,
    workload: Option<u64>,
    platform: String,
    ms: u64,
    dump: Option<(u32, u32)>,
    engine_stats: bool,
    no_decode_cache: bool,
    profile: Option<String>,
    fault: Option<String>,
    fault_seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        input: None,
        workload: None,
        platform: "lvmm".into(),
        ms: 100,
        dump: None,
        engine_stats: false,
        no_decode_cache: false,
        profile: None,
        fault: None,
        fault_seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--platform" => opts.platform = args.next().ok_or("missing --platform value")?,
            "--ms" => {
                opts.ms = args
                    .next()
                    .ok_or("missing --ms value")?
                    .parse()
                    .map_err(|_| "--ms expects a number")?
            }
            "--workload" => {
                opts.workload = Some(
                    args.next()
                        .ok_or("missing --workload value")?
                        .parse()
                        .map_err(|_| "--workload expects Mbit/s")?,
                )
            }
            "--dump" => {
                let spec = args.next().ok_or("missing --dump value")?;
                let (addr, len) = spec.split_once(':').ok_or("--dump expects addr:len")?;
                let addr = u32::from_str_radix(addr.trim_start_matches("0x"), 16)
                    .map_err(|_| "--dump address must be hex")?;
                let len: u32 = len.parse().map_err(|_| "--dump length must be decimal")?;
                opts.dump = Some((addr, len));
            }
            "--engine-stats" => opts.engine_stats = true,
            "--fault" => opts.fault = Some(args.next().ok_or("missing --fault value")?),
            "--fault-seed" => {
                opts.fault_seed = args
                    .next()
                    .ok_or("missing --fault-seed value")?
                    .parse()
                    .map_err(|_| "--fault-seed expects a number")?
            }
            "--profile" => opts.profile = Some(args.next().ok_or("missing --profile value")?),
            "--no-decode-cache" => opts.no_decode_cache = true,
            "-h" | "--help" => return Err(String::new()),
            other if opts.input.is_none() => opts.input = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.input.is_none() && opts.workload.is_none() {
        return Err("need an input file or --workload".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("lwvmm-run: {e}");
            }
            eprintln!(
                "usage: lwvmm-run [guest.s | --workload <mbps>] [--platform raw|lvmm|hosted] \
                 [--ms <simulated ms>] [--dump 0xADDR:LEN] [--engine-stats] \
                 [--profile out.folded] [--fault all|<class>] [--fault-seed N]"
            );
            return if e.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let mut machine = Machine::new(MachineConfig::default());
    if opts.no_decode_cache {
        // Must be bit-identical to the default; kept for A/B timing and
        // determinism checks.
        machine.cpu.set_decode_cache(false);
    }
    let clock = machine.config().clock_hz;
    let (program, is_workload) = if let Some(rate) = opts.workload {
        (
            Workload::new(rate)
                .build(&machine)
                .expect("built-in kernel assembles"),
            true,
        )
    } else {
        let path = opts.input.as_ref().unwrap();
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lwvmm-run: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match hx_asm::assemble(&source) {
            Ok(p) => (p, false),
            Err(e) => {
                eprintln!("{path}:{e}");
                return ExitCode::FAILURE;
            }
        }
    };
    machine.load_program(&program);
    let entry = program.symbols.get("start").unwrap_or(program.base());

    if opts.profile.is_some() {
        // Curated function-level ranges for the built-in kernel; every
        // in-image label for ad-hoc guests.
        let ranges = if is_workload {
            lwvmm::guest::kernel::profile_symbols(&program)
        } else {
            program.code_symbols()
        };
        machine.obs.enable_profiler(Profiler::new(
            SymbolMap::from_ranges(ranges),
            Profiler::DEFAULT_INTERVAL,
        ));
    }

    if let Some(spec) = &opts.fault {
        let ram_size = machine.config().ram_size as u32;
        // Wild attempts span all of RAM; the monitors block everything at or
        // above their reserved region, raw hardware blocks nothing.
        let wild_limit = match opts.platform.as_str() {
            "raw" | "real-hw" => ram_size,
            "hosted" => ram_size - lwvmm::hosted::HostedConfig::default().host_mem,
            _ => ram_size - lwvmm::monitor::LvmmConfig::default().monitor_mem,
        };
        let mut plan = FaultPlan::new(opts.fault_seed).wild(ram_size, wild_limit);
        if spec != "all" {
            let Some(kind) = FaultKind::from_label(spec) else {
                eprintln!(
                    "lwvmm-run: unknown fault class `{spec}` (all|{})",
                    FaultKind::ALL.map(|k| k.label()).join("|")
                );
                return ExitCode::FAILURE;
            };
            plan = plan.only(kind);
        }
        machine.enable_fault_injection(plan);
    }

    let mut platform: Box<dyn Platform> = match opts.platform.as_str() {
        "raw" | "real-hw" => Box::new(RawPlatform::new(machine)),
        "lvmm" => Box::new(LvmmPlatform::new(machine, entry)),
        "hosted" => Box::new(HostedPlatform::new(machine, entry)),
        other => {
            eprintln!("lwvmm-run: unknown platform `{other}` (raw|lvmm|hosted)");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "running {} ({} bytes at {:#x}) on {} for {} simulated ms",
        opts.input
            .as_deref()
            .unwrap_or("<built-in streaming workload>"),
        program.bytes().len(),
        program.base(),
        platform.name(),
        opts.ms
    );
    let ran = platform.run_for(clock / 1_000 * opts.ms);
    let t = platform.time_stats();
    println!(
        "\nsimulated {:.3} ms   cpu load {:.1}%  (guest {:.1}%, monitor {:.1}%, host {:.1}%, idle {:.1}%)",
        ran as f64 * 1e3 / clock as f64,
        t.cpu_load() * 100.0,
        t.guest as f64 / t.total().max(1) as f64 * 100.0,
        t.monitor as f64 / t.total().max(1) as f64 * 100.0,
        t.host_model as f64 / t.total().max(1) as f64 * 100.0,
        t.idle as f64 / t.total().max(1) as f64 * 100.0,
    );
    let m = platform.machine();
    println!(
        "cpu: pc={:#010x}  {} instructions retired, {} cycles",
        m.cpu.pc(),
        m.cpu.instret(),
        m.cpu.cycles()
    );
    let nic = m.nic.counters();
    if nic.tx_frames > 0 {
        let mbps = nic.tx_bytes as f64 * 8.0 / (m.now() as f64 / clock as f64) / 1e6;
        println!(
            "nic: {} frames, {} payload bytes ({mbps:.1} Mbit/s)",
            nic.tx_frames, nic.tx_bytes
        );
    }
    if let Some(f) = m.fault_stats() {
        let classes: Vec<String> = FaultKind::ALL
            .iter()
            .filter(|&&k| f.injected_for(k) > 0)
            .map(|&k| format!("{} {}", f.injected_for(k), k.label()))
            .collect();
        println!(
            "faults: {} injected, {} wild attempts blocked by protection ({})",
            f.total(),
            f.blocked,
            if classes.is_empty() {
                "none".to_string()
            } else {
                classes.join(", ")
            }
        );
    }
    let hdc = m.hdc.stats();
    if hdc.commands > 0 {
        println!(
            "disk: {} commands, {} bytes, {} errors",
            hdc.commands, hdc.bytes, hdc.errors
        );
    }
    if is_workload {
        match GuestStats::read(m) {
            Ok(stats) => println!(
                "guest: {} frames, {} bytes, {} ticks, {} underruns, fault={}",
                stats.frames, stats.bytes, stats.ticks, stats.underruns, stats.fault_cause
            ),
            Err(e) => println!("guest: stats unavailable ({e})"),
        }
        let _ = layout::ENTRY;
    }
    if opts.engine_stats {
        let d = m.cpu.decode_stats();
        let (tlb_hits, tlb_misses) = m.cpu.tlb_stats();
        println!(
            "engine: decode cache {:.1}% hit ({} hits, {} misses), \
             {} fast-path fetches, {} invalidations",
            d.hit_rate() * 100.0,
            d.hits,
            d.misses,
            d.fast_fetches,
            d.invalidations
        );
        println!("engine: tlb {tlb_hits} hits, {tlb_misses} misses");
    }
    if let Some(path) = &opts.profile {
        let obs = &platform.machine().obs;
        let Some(prof) = obs.prof() else {
            eprintln!("lwvmm-run: profiler vanished (internal error)");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(path, prof.fold()) {
            eprintln!("lwvmm-run: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        let total = prof.total_cycles().max(1);
        println!(
            "\nprofile: {} guest cycles, {} samples (interval {}), hottest symbols:",
            prof.total_cycles(),
            prof.total_samples(),
            prof.interval()
        );
        println!("  {:>12}  {:>6}  {:>8}  symbol", "cycles", "%", "samples");
        for (name, cycles, samples) in prof.top(10) {
            println!(
                "  {cycles:>12}  {:>5.1}%  {samples:>8}  {name}",
                cycles as f64 / total as f64 * 100.0
            );
        }
        println!("profile written to {path}");
    }
    if let Some((addr, len)) = opts.dump {
        print!("memory at {addr:#010x}:");
        for i in 0..len {
            if i % 16 == 0 {
                print!("\n  {:#010x}: ", addr + i);
            }
            match platform
                .machine_mut()
                .bus_read(addr + i, hx_cpu::MemSize::Byte)
            {
                Ok(b) => print!("{b:02x} "),
                Err(_) => print!("?? "),
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}
