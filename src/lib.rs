//! **lwvmm** — OS debugging with a lightweight virtual machine monitor.
//!
//! This is the umbrella crate of the reproduction of *"OS Debugging Method
//! Using a Lightweight Virtual Machine Monitor"* (Tadashi Takeuchi, DATE
//! 2005). It re-exports every component so examples, integration tests and
//! downstream users can depend on one crate:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`cpu`] | `hx-cpu` | HX32 CPU: two privilege modes, paged MMU, precise traps |
//! | [`asm`] | `hx-asm` | assembler / disassembler for HX32 |
//! | [`machine`] | `hx-machine` | bus, RAM, PIC, PIT, UART, SCSI-like disks, gigabit NIC |
//! | [`monitor`] | `lvmm` | **the paper's contribution**: the lightweight monitor |
//! | [`hosted`] | `hosted-vmm` | VMware-Workstation-style hosted full monitor (baseline) |
//! | [`guest`] | `hitactix` | HiTactix-like guest RTOS + streaming workload |
//! | [`debugger`] | `rdbg` | wire protocol + host-side remote debugger |
//!
//! # Quick start
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use lwvmm::guest::Workload;
//! use lwvmm::machine::{Machine, MachineConfig, Platform};
//! use lwvmm::monitor::LvmmPlatform;
//!
//! // Boot the streaming guest under the lightweight monitor.
//! let mut machine = Machine::new(MachineConfig::default());
//! let program = Workload::new(100).build(&machine)?;
//! machine.load_program(&program);
//! let mut vmm = LvmmPlatform::new(machine, lwvmm::guest::kernel::layout::ENTRY);
//!
//! // Run 100 simulated milliseconds.
//! vmm.run_for(machine_clock(&vmm) / 10);
//! let stats = lwvmm::guest::GuestStats::read(vmm.machine())?;
//! assert!(stats.frames > 0);
//! # fn machine_clock(p: &impl Platform) -> u64 { p.machine().config().clock_hz }
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` / `EXPERIMENTS.md`
//! for the system inventory and the paper-vs-measured record.

/// The HX32 processor model (re-export of `hx-cpu`).
pub use hx_cpu as cpu;

/// Assembler and disassembler (re-export of `hx-asm`).
pub use hx_asm as asm;

/// The machine model: devices, bus, platforms (re-export of `hx-machine`).
pub use hx_machine as machine;

/// The lightweight virtual machine monitor (re-export of `lvmm`).
pub use lvmm as monitor;

/// The hosted full-VMM baseline (re-export of `hosted-vmm`).
pub use hosted_vmm as hosted;

/// The guest RTOS and workloads (re-export of `hitactix`).
pub use hitactix as guest;

/// The remote-debugging protocol and host client (re-export of `rdbg`).
pub use rdbg as debugger;

/// Cycle-attributed tracing and metrics (`hx-obs`).
pub use hx_obs as obs;

/// Deterministic fault injection: guest fault campaigns and lossy-link
/// mangling (`hx-fault`).
pub use hx_fault as fault;

/// Trace queries, condition expressions and JSON-line output (`hx-query`).
pub use hx_query as query;

/// Debug farm: one host process serving N concurrent guests over per-guest
/// debug sockets plus a fleet control endpoint.
pub use hx_farm as farm;

/// Shared CLI parsing helpers (strict hex address parsing) used by every
/// `lwvmm-*` binary.
pub mod cli;
