//! Shared command-line parsing helpers for the `lwvmm-*` binaries.
//!
//! Every binary that accepts guest addresses (`lwvmm-run --dump/--logpoint`,
//! `dbgctl`'s script addresses, `lwvmm-farm --dump`) parses them through
//! [`parse_hex32`] so malformed input fails loudly and identically
//! everywhere. The historical bug this guards against: parsing via
//! `trim_start_matches("0x")` strips *repeated* prefixes, so `0x0xff`
//! silently parsed as `0xff`, while the equally-valid uppercase `0X` prefix
//! was rejected.

/// Parses a 32-bit address written in hex, with an optional single `0x` /
/// `0X` prefix. Exactly one prefix is stripped — `0x0xff` is malformed,
/// not `0xff` — and the digits themselves may be upper- or lowercase.
pub fn parse_hex32(s: &str) -> Result<u32, String> {
    let digits = strip_hex_prefix(s);
    if digits.is_empty() {
        return Err(format!("bad hex address `{s}`: no digits"));
    }
    u32::from_str_radix(digits, 16).map_err(|_| format!("bad hex address `{s}`"))
}

/// Parses a 64-bit number: hex with a single `0x`/`0X` prefix, decimal
/// without one.
pub fn parse_num64(s: &str) -> Result<u64, String> {
    let digits = strip_hex_prefix(s);
    let r = if digits.len() != s.len() {
        u64::from_str_radix(digits, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| format!("bad number `{s}`"))
}

/// Strips at most one hex prefix, accepting both `0x` and `0X`.
fn strip_hex_prefix(s: &str) -> &str {
    s.strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_both_prefix_cases_and_bare_digits() {
        assert_eq!(parse_hex32("0xff"), Ok(0xff));
        assert_eq!(parse_hex32("0XFF"), Ok(0xff));
        assert_eq!(parse_hex32("ff"), Ok(0xff));
        assert_eq!(parse_hex32("0xDeadBeef"), Ok(0xdead_beef));
        assert_eq!(parse_hex32("0"), Ok(0));
    }

    #[test]
    fn rejects_repeated_prefixes_and_garbage() {
        // The regression: exactly one prefix strip, so a doubled prefix is
        // an error instead of silently parsing as `ff`.
        assert!(parse_hex32("0x0xff").is_err());
        assert!(parse_hex32("0X0xff").is_err());
        assert!(parse_hex32("0x").is_err());
        assert!(parse_hex32("").is_err());
        assert!(parse_hex32("0xgg").is_err());
        assert!(parse_hex32("-0x10").is_err());
        assert!(parse_hex32("0x 10").is_err());
        // Out of 32-bit range.
        assert!(parse_hex32("0x100000000").is_err());
    }

    #[test]
    fn num64_hex_needs_prefix_decimal_does_not() {
        assert_eq!(parse_num64("0x10"), Ok(16));
        assert_eq!(parse_num64("0X10"), Ok(16));
        assert_eq!(parse_num64("10"), Ok(10));
        assert!(parse_num64("0x0x10").is_err());
        assert!(parse_num64("ff").is_err()); // bare hex digits are not decimal
        assert!(parse_num64("").is_err());
    }
}
