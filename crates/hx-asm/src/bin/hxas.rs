//! `hxas` — command-line assembler for HX32.
//!
//! ```console
//! $ hxas kernel.s -o kernel.bin --symbols kernel.sym
//! ```
//!
//! Writes the flat image (`-o`, default `a.out`) whose first byte is the
//! program's base address (printed on stdout together with the entry
//! symbols), and optionally a symbol listing.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut input = None;
    let mut output = "a.out".to_string();
    let mut symbols_out = None;
    let mut listing = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => match args.next() {
                Some(o) => output = o,
                None => return usage("missing argument to -o"),
            },
            "--listing" => listing = true,
            "--symbols" => match args.next() {
                Some(s) => symbols_out = Some(s),
                None => return usage("missing argument to --symbols"),
            },
            "-h" | "--help" => return usage(""),
            other if input.is_none() => input = Some(other.to_string()),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(input) = input else {
        return usage("no input file");
    };

    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hxas: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match hx_asm::assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{input}:{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&output, program.bytes()) {
        eprintln!("hxas: cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{}: {} bytes, base {:#x}, {} symbols -> {}",
        input,
        program.bytes().len(),
        program.base(),
        program.symbols.len(),
        output
    );
    if let Some(path) = symbols_out {
        if let Err(e) = std::fs::write(&path, program.symbols.to_string()) {
            eprintln!("hxas: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if listing {
        print!("{}", program.listing());
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("hxas: {err}");
    }
    eprintln!("usage: hxas <input.s> [-o out.bin] [--symbols out.sym] [--listing]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
