//! `hxdis` — command-line disassembler for HX32 flat images.
//!
//! ```console
//! $ hxdis kernel.bin --base 0x1000 [--symbols kernel.sym]
//! ```

use hx_asm::SymbolTable;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut input = None;
    let mut base = 0u32;
    let mut symbols = SymbolTable::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--base" => {
                let Some(v) = args.next() else {
                    return usage("missing argument to --base");
                };
                let v = v.trim_start_matches("0x");
                base = match u32::from_str_radix(v, 16) {
                    Ok(b) => b,
                    Err(_) => return usage("--base expects a hex address"),
                };
            }
            "--symbols" => {
                let Some(path) = args.next() else {
                    return usage("missing argument to --symbols");
                };
                match std::fs::read_to_string(&path) {
                    Ok(text) => {
                        for line in text.lines() {
                            // Format written by hxas: "0x00001000 name"
                            if let Some((addr, name)) = line.trim().split_once(' ') {
                                if let Ok(a) =
                                    u32::from_str_radix(addr.trim_start_matches("0x"), 16)
                                {
                                    symbols.define(name.trim(), a);
                                }
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("hxdis: cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-h" | "--help" => return usage(""),
            other if input.is_none() => input = Some(other.to_string()),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(input) = input else {
        return usage("no input file");
    };
    let bytes = match std::fs::read(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hxdis: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let mut word = [0u8; 4];
        word[..chunk.len()].copy_from_slice(chunk);
        let w = u32::from_le_bytes(word);
        let addr = base + (i as u32) * 4;
        if let Some((name, 0)) = symbols.resolve(addr) {
            println!("{name}:");
        }
        println!("  {addr:#010x}: {:08x}  {}", w, hx_asm::disasm(w, addr));
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("hxdis: {err}");
    }
    eprintln!("usage: hxdis <image.bin> [--base 0x1000] [--symbols file.sym]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
