//! Two-pass assembler and disassembler for the HX32 ISA.
//!
//! The guest operating system of this reproduction (the HiTactix-like RTOS in
//! the `hitactix` crate) is written in HX32 assembly and assembled by this
//! crate into a loadable [`Program`]. The debugger uses the [`SymbolTable`]
//! to address breakpoints by name and [`disasm`] to print instructions.
//!
//! # Syntax overview
//!
//! ```text
//! ; comment        # comment        // comment
//!         .org    0x1000          ; set location counter
//!         .equ    BUF, 0x8000     ; named constant
//! start:  li      a0, 0xdeadbeef  ; pseudo: lui+ori
//!         la      a1, message     ; pseudo: lui+ori
//!         lw      t0, 4(a1)
//!         addi    t0, t0, -1
//!         bnez    t0, start
//!         jal     subroutine
//!         ret
//! message:
//!         .asciz  "hello"
//!         .align  4
//!         .word   1, 2, 3
//! ```
//!
//! Registers accept ABI names (`zero, ra, sp, gp, a0–a5, t0–t7, s0–s9, k0,
//! k1, fp, at`) or raw names (`r0`–`r31`). Numbers may be decimal, `0x` hex,
//! `0b` binary or `'c'` character literals; operand expressions support `+`,
//! `-`, symbols, `%hi(expr)` and `%lo(expr)`.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), hx_asm::AsmError> {
//! use hx_asm::assemble;
//!
//! let program = assemble(
//!     "        .org 0x100\n\
//!      entry:  addi a0, zero, 41\n\
//!              addi a0, a0, 1\n\
//!      halt:   j halt\n",
//! )?;
//! assert_eq!(program.base(), 0x100);
//! assert_eq!(program.symbols.get("entry"), Some(0x100));
//! assert_eq!(program.bytes().len(), 12);
//! # Ok(())
//! # }
//! ```

mod asm;
mod disasm;
mod expr;
mod program;

pub use asm::{assemble, AsmError};
pub use disasm::disasm;
pub use program::{Program, SymbolTable};
