//! Assembler output: a loadable image plus its symbol table.

use std::collections::BTreeMap;
use std::fmt;

/// Symbols (labels and `.equ` constants) defined by an assembly unit.
///
/// Iteration order is the symbol name order ([`BTreeMap`] underneath), so
/// listings are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    map: BTreeMap<String, u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Defines or redefines a symbol.
    pub fn define(&mut self, name: impl Into<String>, value: u32) {
        self.map.insert(name.into(), value);
    }

    /// Looks up a symbol value.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    /// Returns `true` if the symbol exists.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when no symbols are defined.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Finds the symbol at or closest below `addr`, for symbolized
    /// backtraces (`name+offset`).
    pub fn resolve(&self, addr: u32) -> Option<(&str, u32)> {
        self.map
            .iter()
            .filter(|&(_, &v)| v <= addr)
            .max_by_key(|&(_, &v)| v)
            .map(|(k, &v)| (k.as_str(), addr - v))
    }
}

impl FromIterator<(String, u32)> for SymbolTable {
    fn from_iter<I: IntoIterator<Item = (String, u32)>>(iter: I) -> SymbolTable {
        let mut t = SymbolTable::new();
        t.extend(iter);
        t
    }
}

impl Extend<(String, u32)> for SymbolTable {
    fn extend<I: IntoIterator<Item = (String, u32)>>(&mut self, iter: I) {
        for (name, value) in iter {
            self.define(name, value);
        }
    }
}

impl fmt::Display for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            writeln!(f, "{value:#010x} {name}")?;
        }
        Ok(())
    }
}

/// An assembled, loadable image.
///
/// The image is a contiguous byte range starting at [`Program::base`]
/// (gaps produced by `.org` jumps are zero-filled), plus the symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    base: u32,
    bytes: Vec<u8>,
    /// Labels and constants defined by the source.
    pub symbols: SymbolTable,
}

impl Program {
    /// Builds a program from raw parts (assembler use).
    pub fn from_parts(base: u32, bytes: Vec<u8>, symbols: SymbolTable) -> Program {
        Program {
            base,
            bytes,
            symbols,
        }
    }

    /// Lowest address occupied by the image.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One-past-the-end address of the image.
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// The image bytes, starting at [`Program::base`].
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reads back the little-endian word at an absolute address, for tests
    /// and listings.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the image.
    pub fn word_at(&self, addr: u32) -> u32 {
        let off = (addr - self.base) as usize;
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Copies the image into a byte slice representing physical memory.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in `memory` at its base address.
    pub fn load_into(&self, memory: &mut [u8]) {
        let start = self.base as usize;
        memory[start..start + self.bytes.len()].copy_from_slice(&self.bytes);
    }

    /// Half-open `(name, start, end)` PC ranges for code symbols, sorted by
    /// address: symbols whose value lies inside the image (`.equ` constants
    /// outside it are excluded), each range ending at the next kept symbol
    /// or the image end. `keep` selects which symbols start a range —
    /// dropped symbols are absorbed into the preceding range, which is how
    /// internal labels (loop targets, tails) fold into their containing
    /// function for the profiler. Same-address symbols keep the
    /// lexicographically-first name.
    pub fn code_symbols_filtered(&self, keep: impl Fn(&str) -> bool) -> Vec<(String, u32, u32)> {
        let mut syms: Vec<(String, u32)> = self
            .symbols
            .iter()
            .filter(|&(name, v)| v >= self.base && v < self.end() && keep(name))
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        syms.sort_by_key(|&(_, v)| v);
        syms.dedup_by(|a, b| a.1 == b.1);
        (0..syms.len())
            .map(|i| {
                let end = syms.get(i + 1).map_or(self.end(), |&(_, v)| v);
                let (name, start) = syms[i].clone();
                (name, start, end)
            })
            .collect()
    }

    /// [`Program::code_symbols_filtered`] keeping every in-image symbol.
    pub fn code_symbols(&self) -> Vec<(String, u32, u32)> {
        self.code_symbols_filtered(|_| true)
    }

    /// Renders a disassembly listing of the whole image, with symbol labels
    /// interleaved — what `hxas --listing` prints.
    pub fn listing(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        for (i, chunk) in self.bytes.chunks(4).enumerate() {
            let addr = self.base + (i as u32) * 4;
            if let Some((name, 0)) = self.symbols.resolve(addr) {
                let _ = writeln!(out, "{name}:");
            }
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            let w = u32::from_le_bytes(word);
            let _ = writeln!(out, "  {addr:#010x}: {w:08x}  {}", crate::disasm(w, addr));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_table_roundtrip() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        t.define("start", 0x100);
        t.define("loop", 0x108);
        assert_eq!(t.get("start"), Some(0x100));
        assert_eq!(t.get("missing"), None);
        assert!(t.contains("loop"));
        assert_eq!(t.len(), 2);
        let names: Vec<_> = t.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, ["loop", "start"]); // name order
    }

    #[test]
    fn symbol_resolve_closest_below() {
        let mut t = SymbolTable::new();
        t.define("a", 0x100);
        t.define("b", 0x200);
        assert_eq!(t.resolve(0x1ff), Some(("a", 0xff)));
        assert_eq!(t.resolve(0x200), Some(("b", 0)));
        assert_eq!(t.resolve(0x50), None);
    }

    #[test]
    fn program_accessors() {
        let mut syms = SymbolTable::new();
        syms.define("x", 0x1004);
        let p = Program::from_parts(0x1000, vec![1, 0, 0, 0, 2, 0, 0, 0], syms);
        assert_eq!(p.base(), 0x1000);
        assert_eq!(p.end(), 0x1008);
        assert_eq!(p.word_at(0x1004), 2);
        let mut mem = vec![0u8; 0x2000];
        p.load_into(&mut mem);
        assert_eq!(mem[0x1000], 1);
        assert_eq!(mem[0x1004], 2);
    }

    #[test]
    fn code_symbols_are_half_open_and_skip_constants() {
        let p = crate::assemble(
            ".equ DEV, 0xf0000000
             .org 0x100
             start: addi a0, zero, 1
             loop:  addi a0, a0, 1
                    j loop
             tail:  j tail
            ",
        )
        .unwrap();
        assert_eq!(
            p.code_symbols(),
            vec![
                ("start".to_string(), 0x100, 0x104),
                ("loop".to_string(), 0x104, 0x10c),
                ("tail".to_string(), 0x10c, p.end()),
            ]
        );
        // Filtering absorbs dropped labels into the preceding range.
        assert_eq!(
            p.code_symbols_filtered(|n| n != "loop"),
            vec![
                ("start".to_string(), 0x100, 0x10c),
                ("tail".to_string(), 0x10c, p.end()),
            ]
        );
    }

    #[test]
    fn listing_interleaves_symbols() {
        let p = crate::assemble(".org 0x100\nstart: addi a0, zero, 1\nloop: j loop\n").unwrap();
        let l = p.listing();
        assert!(l.contains("start:"));
        assert!(l.contains("loop:"));
        assert!(l.contains("addi a0, zero, 1"));
        assert!(l.contains("0x00000104"));
    }

    #[test]
    fn symbol_collect_and_extend() {
        let t: SymbolTable = vec![("a".to_string(), 1u32), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        assert_eq!(t.get("a"), Some(1));
        let mut t = t;
        t.extend([("c".to_string(), 3u32)]);
        assert_eq!(t.get("c"), Some(3));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn symbol_display_nonempty() {
        let mut t = SymbolTable::new();
        t.define("s", 4);
        assert!(format!("{t}").contains("s"));
    }
}
