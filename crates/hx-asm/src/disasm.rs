//! Instruction-word disassembly, for listings and the debugger.

use hx_cpu::csr::Csr;
use hx_cpu::isa::{CsrOp, Instr, LoadKind, Reg, StoreKind};

/// Disassembles one instruction word fetched from `pc`.
///
/// Branch and jump targets are shown as absolute addresses. Undefined words
/// render as `.word 0x…` so listings never fail.
///
/// # Example
///
/// ```
/// use hx_asm::disasm;
/// use hx_cpu::isa::{Instr, Reg};
///
/// let w = Instr::Addi { rd: Reg::SP, rs1: Reg::SP, imm: -16 }.encode();
/// assert_eq!(disasm(w, 0), "addi sp, sp, -16");
/// ```
pub fn disasm(word: u32, pc: u32) -> String {
    let Ok(instr) = Instr::decode(word) else {
        return format!(".word {word:#010x}");
    };
    match instr {
        Instr::Alu { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", op.mnemonic())
        }
        Instr::Addi { rd, rs1, imm } => format!("addi {rd}, {rs1}, {imm}"),
        Instr::Andi { rd, rs1, imm } => format!("andi {rd}, {rs1}, {:#x}", imm as u16),
        Instr::Ori { rd, rs1, imm } => format!("ori {rd}, {rs1}, {:#x}", imm as u16),
        Instr::Xori { rd, rs1, imm } => format!("xori {rd}, {rs1}, {:#x}", imm as u16),
        Instr::Slti { rd, rs1, imm } => format!("slti {rd}, {rs1}, {imm}"),
        Instr::Sltiu { rd, rs1, imm } => format!("sltiu {rd}, {rs1}, {imm}"),
        Instr::Slli { rd, rs1, shamt } => format!("slli {rd}, {rs1}, {shamt}"),
        Instr::Srli { rd, rs1, shamt } => format!("srli {rd}, {rs1}, {shamt}"),
        Instr::Srai { rd, rs1, shamt } => format!("srai {rd}, {rs1}, {shamt}"),
        Instr::Lui { rd, imm } => format!("lui {rd}, {imm:#x}"),
        Instr::Auipc { rd, imm } => format!("auipc {rd}, {imm:#x}"),
        Instr::Load {
            kind,
            rd,
            rs1,
            offset,
        } => {
            let m = match kind {
                LoadKind::B => "lb",
                LoadKind::Bu => "lbu",
                LoadKind::H => "lh",
                LoadKind::Hu => "lhu",
                LoadKind::W => "lw",
            };
            format!("{m} {rd}, {offset}({rs1})")
        }
        Instr::Store {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            let m = match kind {
                StoreKind::B => "sb",
                StoreKind::H => "sh",
                StoreKind::W => "sw",
            };
            format!("{m} {rs2}, {offset}({rs1})")
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let target = pc.wrapping_add(offset as i32 as u32);
            format!("{} {rs1}, {rs2}, {target:#x}", cond.mnemonic())
        }
        Instr::Jal { rd, offset } => {
            let target = pc.wrapping_add(offset as u32);
            if rd == Reg::ZERO {
                format!("j {target:#x}")
            } else if rd == Reg::RA {
                format!("jal {target:#x}")
            } else {
                format!("jal {rd}, {target:#x}")
            }
        }
        Instr::Jalr { rd, rs1, offset } => {
            if rd == Reg::ZERO && rs1 == Reg::RA && offset == 0 {
                "ret".to_string()
            } else {
                format!("jalr {rd}, {rs1}, {offset}")
            }
        }
        Instr::Sys { op } => op.mnemonic().to_string(),
        Instr::Csr { op, rd, rs1, csr } => {
            let m = match op {
                CsrOp::Rw => "csrrw",
                CsrOp::Rs => "csrrs",
                CsrOp::Rc => "csrrc",
            };
            let name = Csr::from_number(csr)
                .map(|c| c.name().to_string())
                .unwrap_or_else(|| format!("{csr:#x}"));
            format!("{m} {rd}, {name}, {rs1}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;
    use proptest::prelude::*;

    #[test]
    fn representative_forms() {
        let cases = [
            ("add a0, a1, a2", "add a0, a1, a2"),
            ("lw t0, -8(sp)", "lw t0, -8(sp)"),
            ("sw t0, 12(gp)", "sw t0, 12(gp)"),
            ("ret", "ret"),
            ("ecall", "ecall"),
            ("tlbflush", "tlbflush"),
            ("csrr a0, status", "csrrs a0, status, zero"),
        ];
        for (src, expect) in cases {
            let p = assemble(src).unwrap();
            assert_eq!(disasm(p.word_at(0), 0), expect, "source `{src}`");
        }
    }

    #[test]
    fn branch_targets_absolute() {
        let p = assemble(".org 0x100\nloop: beq a0, a1, loop\nj loop\n").unwrap();
        assert_eq!(disasm(p.word_at(0x100), 0x100), "beq a0, a1, 0x100");
        assert_eq!(disasm(p.word_at(0x104), 0x104), "j 0x100");
    }

    #[test]
    fn undefined_word_renders_as_data() {
        assert_eq!(disasm(0xffff_ffff, 0), ".word 0xffffffff");
    }

    proptest! {
        /// Disassembling any word never panics and never yields an empty
        /// string (the debugger prints it verbatim).
        #[test]
        fn total_on_arbitrary_words(word in any::<u32>(), pc in any::<u32>()) {
            let s = disasm(word, pc & !3);
            prop_assert!(!s.is_empty());
        }

        /// Round trip: disassembled text of an assembled single instruction
        /// re-assembles to the same word (for mnemonics whose syntax the
        /// disassembler emits verbatim).
        #[test]
        fn reassembles(imm in -2048i16..2048) {
            let src = format!("addi t3, t4, {imm}");
            let p = assemble(&src).unwrap();
            let text = disasm(p.word_at(0), 0);
            let p2 = assemble(&text).unwrap();
            prop_assert_eq!(p.word_at(0), p2.word_at(0));
        }
    }
}
