//! The two-pass assembler.

use crate::expr;
use crate::program::{Program, SymbolTable};
use hx_cpu::csr::Csr;
use hx_cpu::isa::{AluOp, BranchCond, CsrOp, Instr, LoadKind, Reg, StoreKind, SysOp};
use std::fmt;

/// An assembly error, with the 1-based source line that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// A parsed statement with its assigned address.
#[derive(Debug, Clone)]
enum Stmt {
    Instr {
        mnemonic: String,
        operands: Vec<String>,
    },
    Word(Vec<String>),
    Half(Vec<String>),
    Byte(Vec<String>),
    Ascii(Vec<u8>),
    Space(u32),
}

#[derive(Debug, Clone)]
struct Placed {
    line: usize,
    addr: u32,
    stmt: Stmt,
}

/// Assembles HX32 source text into a loadable [`Program`].
///
/// See the [crate documentation](crate) for the accepted syntax.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: unknown mnemonics, bad
/// operands, undefined symbols, immediates or branch targets out of range,
/// and overlapping emissions are all reported with their source line.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut symbols = SymbolTable::new();
    let mut placed: Vec<Placed> = Vec::new();
    let mut lc: u32 = 0;
    let mut lc_set = false;

    // Pass 1: parse, size, place, and collect symbols.
    for (idx, raw_line) in source.lines().enumerate() {
        let line = idx + 1;
        let mut text = strip_comment(raw_line).trim().to_string();

        // Labels (possibly several on one line).
        while let Some(colon) = find_label_colon(&text) {
            let label = text[..colon].trim().to_string();
            if label.is_empty() || !is_symbol_name(&label) {
                return err(line, format!("bad label `{label}`"));
            }
            if symbols.contains(&label) {
                return err(line, format!("duplicate symbol `{label}`"));
            }
            symbols.define(label, lc);
            text = text[colon + 1..].trim().to_string();
        }
        if text.is_empty() {
            continue;
        }

        let (head, rest) = match text.find(char::is_whitespace) {
            Some(p) => (&text[..p], text[p..].trim()),
            None => (text.as_str(), ""),
        };
        let head_lc = head.to_ascii_lowercase();

        if let Some(directive) = head_lc.strip_prefix('.') {
            match directive {
                "org" => {
                    let v =
                        expr::eval(rest, &symbols).map_err(|m| AsmError { line, message: m })?;
                    lc = v;
                    lc_set = true;
                }
                "equ" => {
                    let (name, value) = rest.split_once(',').ok_or_else(|| AsmError {
                        line,
                        message: ".equ needs `name, value`".into(),
                    })?;
                    let name = name.trim();
                    if !is_symbol_name(name) {
                        return err(line, format!("bad symbol name `{name}`"));
                    }
                    let v =
                        expr::eval(value, &symbols).map_err(|m| AsmError { line, message: m })?;
                    if symbols.contains(name) {
                        return err(line, format!("duplicate symbol `{name}`"));
                    }
                    symbols.define(name, v);
                }
                "word" | "half" | "byte" => {
                    let args = split_operands(rest);
                    if args.is_empty() {
                        return err(line, format!(".{directive} needs at least one value"));
                    }
                    let (unit, stmt) = match directive {
                        "word" => (4, Stmt::Word(args.clone())),
                        "half" => (2, Stmt::Half(args.clone())),
                        _ => (1, Stmt::Byte(args.clone())),
                    };
                    placed.push(Placed {
                        line,
                        addr: lc,
                        stmt,
                    });
                    lc += unit * args.len() as u32;
                }
                "ascii" | "asciz" => {
                    let mut bytes =
                        parse_string(rest).map_err(|m| AsmError { line, message: m })?;
                    if directive == "asciz" {
                        bytes.push(0);
                    }
                    lc += bytes.len() as u32;
                    placed.push(Placed {
                        line,
                        addr: lc - bytes.len() as u32,
                        stmt: Stmt::Ascii(bytes),
                    });
                }
                "align" => {
                    let v =
                        expr::eval(rest, &symbols).map_err(|m| AsmError { line, message: m })?;
                    if v == 0 || !v.is_power_of_two() {
                        return err(line, ".align needs a power of two");
                    }
                    let pad = (v - (lc % v)) % v;
                    if pad > 0 {
                        placed.push(Placed {
                            line,
                            addr: lc,
                            stmt: Stmt::Space(pad),
                        });
                        lc += pad;
                    }
                }
                "space" => {
                    let v =
                        expr::eval(rest, &symbols).map_err(|m| AsmError { line, message: m })?;
                    placed.push(Placed {
                        line,
                        addr: lc,
                        stmt: Stmt::Space(v),
                    });
                    lc += v;
                }
                other => return err(line, format!("unknown directive `.{other}`")),
            }
            continue;
        }

        // Instruction (or pseudo-instruction).
        let operands = split_operands(rest);
        let size = instr_size(&head_lc, &operands);
        if size == 0 {
            return err(line, format!("unknown mnemonic `{head_lc}`"));
        }
        placed.push(Placed {
            line,
            addr: lc,
            stmt: Stmt::Instr {
                mnemonic: head_lc,
                operands,
            },
        });
        lc += size;
        let _ = lc_set;
    }

    // Pass 2: encode.
    let mut chunks: Vec<(u32, Vec<u8>, usize)> = Vec::new();
    for p in &placed {
        let bytes = match &p.stmt {
            Stmt::Instr { mnemonic, operands } => {
                let words =
                    encode_instr(mnemonic, operands, p.addr, &symbols).map_err(|m| AsmError {
                        line: p.line,
                        message: m,
                    })?;
                let mut b = Vec::with_capacity(words.len() * 4);
                for w in words {
                    b.extend_from_slice(&w.to_le_bytes());
                }
                b
            }
            Stmt::Word(args) => {
                let mut b = Vec::new();
                for a in args {
                    let v = expr::eval(a, &symbols).map_err(|m| AsmError {
                        line: p.line,
                        message: m,
                    })?;
                    b.extend_from_slice(&v.to_le_bytes());
                }
                b
            }
            Stmt::Half(args) => {
                let mut b = Vec::new();
                for a in args {
                    let v = expr::eval(a, &symbols).map_err(|m| AsmError {
                        line: p.line,
                        message: m,
                    })?;
                    if v > 0xffff && v < 0xffff_8000 {
                        return err(p.line, format!("half value {v:#x} out of range"));
                    }
                    b.extend_from_slice(&(v as u16).to_le_bytes());
                }
                b
            }
            Stmt::Byte(args) => {
                let mut b = Vec::new();
                for a in args {
                    let v = expr::eval(a, &symbols).map_err(|m| AsmError {
                        line: p.line,
                        message: m,
                    })?;
                    if v > 0xff && v < 0xffff_ff80 {
                        return err(p.line, format!("byte value {v:#x} out of range"));
                    }
                    b.push(v as u8);
                }
                b
            }
            Stmt::Ascii(bytes) => bytes.clone(),
            Stmt::Space(n) => vec![0u8; *n as usize],
        };
        if !bytes.is_empty() {
            chunks.push((p.addr, bytes, p.line));
        }
    }

    // Compose the image, checking overlap.
    chunks.sort_by_key(|&(addr, _, _)| addr);
    let base = chunks.first().map_or(0, |&(a, _, _)| a);
    let mut image: Vec<u8> = Vec::new();
    let mut cursor = base;
    for (addr, bytes, line) in &chunks {
        if *addr < cursor {
            return err(
                *line,
                format!("emission at {addr:#x} overlaps previous output"),
            );
        }
        image.extend(std::iter::repeat_n(0, (*addr - cursor) as usize));
        image.extend_from_slice(bytes);
        cursor = *addr + bytes.len() as u32;
    }
    Ok(Program::from_parts(base, image, symbols))
}

/// Size in bytes each mnemonic assembles to (0 = unknown). Sizing is
/// decided during pass 1, so it may only depend on the operand *text*, not
/// on symbol values.
fn instr_size(mnemonic: &str, operands: &[String]) -> u32 {
    match mnemonic {
        "li" | "la" => 8,
        // `csrw status, 1` (immediate source) expands to li at, imm + csrrw.
        "csrw" | "csrs" | "csrc"
            if operands.len() == 2 && Reg::from_name(operands[1].trim()).is_none() =>
        {
            12
        }
        m if KNOWN_MNEMONICS.contains(&m) => 4,
        _ => 0,
    }
}

const KNOWN_MNEMONICS: &[&str] = &[
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu", "mul", "mulhu", "div",
    "rem", "divu", "remu", "addi", "andi", "ori", "xori", "slti", "sltiu", "slli", "srli", "srai",
    "lui", "auipc", "lb", "lbu", "lh", "lhu", "lw", "sb", "sh", "sw", "beq", "bne", "blt", "bge",
    "bltu", "bgeu", "jal", "jalr", "ecall", "ebreak", "tret", "wfi", "tlbflush", "csrrw", "csrrs",
    "csrrc", "nop", "mv", "j", "b", "jr", "call", "ret", "beqz", "bnez", "bltz", "bgez", "bgtz",
    "blez", "neg", "seqz", "snez", "csrr", "csrw", "csrs", "csrc",
];

fn reg_operand(s: &str) -> Result<Reg, String> {
    Reg::from_name(s.trim()).ok_or_else(|| format!("bad register `{s}`"))
}

fn csr_operand(s: &str) -> Result<u16, String> {
    let s = s.trim();
    if let Some(c) = Csr::from_name(s) {
        return Ok(c.number());
    }
    expr::parse_number(s)
        .map(|v| v as u16)
        .map_err(|_| format!("bad CSR `{s}`"))
}

fn imm_signed(s: &str, symbols: &SymbolTable) -> Result<i16, String> {
    let v = expr::eval(s, symbols)?;
    let sv = v as i32;
    if (-32768..=32767).contains(&sv) {
        Ok(sv as i16)
    } else {
        Err(format!("immediate {sv} out of signed 16-bit range"))
    }
}

fn imm_logical(s: &str, symbols: &SymbolTable) -> Result<i16, String> {
    let v = expr::eval(s, symbols)?;
    if v <= 0xffff {
        Ok(v as u16 as i16)
    } else {
        Err(format!("immediate {v:#x} out of 16-bit range"))
    }
}

fn imm_upper(s: &str, symbols: &SymbolTable) -> Result<u16, String> {
    let v = expr::eval(s, symbols)?;
    if v <= 0xffff {
        Ok(v as u16)
    } else {
        Err(format!("upper immediate {v:#x} out of 16-bit range"))
    }
}

fn shamt(s: &str, symbols: &SymbolTable) -> Result<u8, String> {
    let v = expr::eval(s, symbols)?;
    if v < 32 {
        Ok(v as u8)
    } else {
        Err(format!("shift amount {v} out of range 0..32"))
    }
}

/// Parses `offset(reg)` or `(reg)` memory operands.
fn mem_operand(s: &str, symbols: &SymbolTable) -> Result<(Reg, i16), String> {
    let s = s.trim();
    let open = s
        .rfind('(')
        .ok_or_else(|| format!("bad memory operand `{s}` (need off(reg))"))?;
    if !s.ends_with(')') {
        return Err(format!("bad memory operand `{s}`"));
    }
    let reg = reg_operand(&s[open + 1..s.len() - 1])?;
    let off_str = s[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        imm_signed(off_str, symbols)?
    };
    Ok((reg, off))
}

fn branch_offset(target: &str, addr: u32, symbols: &SymbolTable) -> Result<i16, String> {
    let t = expr::eval(target, symbols)?;
    let delta = t.wrapping_sub(addr) as i32;
    if delta % 4 != 0 {
        return Err(format!("branch target {t:#x} not word-aligned"));
    }
    if (-32768..=32767).contains(&delta) {
        Ok(delta as i16)
    } else {
        Err(format!("branch target {t:#x} out of range from {addr:#x}"))
    }
}

fn jump_offset(target: &str, addr: u32, symbols: &SymbolTable) -> Result<i32, String> {
    let t = expr::eval(target, symbols)?;
    let delta = t.wrapping_sub(addr) as i32;
    if delta % 4 != 0 {
        return Err(format!("jump target {t:#x} not word-aligned"));
    }
    if (-(1 << 20)..(1 << 20)).contains(&delta) {
        Ok(delta)
    } else {
        Err(format!("jump target {t:#x} out of range from {addr:#x}"))
    }
}

fn want(ops: &[String], n: usize, mnemonic: &str) -> Result<(), String> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(format!(
            "`{mnemonic}` expects {n} operand(s), got {}",
            ops.len()
        ))
    }
}

/// Encodes one (possibly pseudo) instruction into 1–2 words.
fn encode_instr(
    mnemonic: &str,
    ops: &[String],
    addr: u32,
    symbols: &SymbolTable,
) -> Result<Vec<u32>, String> {
    let alu = |op: AluOp| -> Result<Vec<u32>, String> {
        want(ops, 3, mnemonic)?;
        Ok(vec![Instr::Alu {
            op,
            rd: reg_operand(&ops[0])?,
            rs1: reg_operand(&ops[1])?,
            rs2: reg_operand(&ops[2])?,
        }
        .encode()])
    };
    let branch = |cond: BranchCond| -> Result<Vec<u32>, String> {
        want(ops, 3, mnemonic)?;
        Ok(vec![Instr::Branch {
            cond,
            rs1: reg_operand(&ops[0])?,
            rs2: reg_operand(&ops[1])?,
            offset: branch_offset(&ops[2], addr, symbols)?,
        }
        .encode()])
    };
    let branch_z = |cond: BranchCond, swap: bool| -> Result<Vec<u32>, String> {
        want(ops, 2, mnemonic)?;
        let r = reg_operand(&ops[0])?;
        let (rs1, rs2) = if swap { (Reg::ZERO, r) } else { (r, Reg::ZERO) };
        Ok(vec![Instr::Branch {
            cond,
            rs1,
            rs2,
            offset: branch_offset(&ops[1], addr, symbols)?,
        }
        .encode()])
    };
    let load = |kind: LoadKind| -> Result<Vec<u32>, String> {
        want(ops, 2, mnemonic)?;
        let (rs1, offset) = mem_operand(&ops[1], symbols)?;
        Ok(vec![Instr::Load {
            kind,
            rd: reg_operand(&ops[0])?,
            rs1,
            offset,
        }
        .encode()])
    };
    let store = |kind: StoreKind| -> Result<Vec<u32>, String> {
        want(ops, 2, mnemonic)?;
        let (rs1, offset) = mem_operand(&ops[1], symbols)?;
        Ok(vec![Instr::Store {
            kind,
            rs1,
            rs2: reg_operand(&ops[0])?,
            offset,
        }
        .encode()])
    };
    let csr_full = |op: CsrOp| -> Result<Vec<u32>, String> {
        want(ops, 3, mnemonic)?;
        Ok(vec![Instr::Csr {
            op,
            rd: reg_operand(&ops[0])?,
            rs1: reg_operand(&ops[2])?,
            csr: csr_operand(&ops[1])?,
        }
        .encode()])
    };
    let sys = |op: SysOp| -> Result<Vec<u32>, String> {
        want(ops, 0, mnemonic)?;
        Ok(vec![Instr::Sys { op }.encode()])
    };

    match mnemonic {
        "add" => alu(AluOp::Add),
        "sub" => alu(AluOp::Sub),
        "and" => alu(AluOp::And),
        "or" => alu(AluOp::Or),
        "xor" => alu(AluOp::Xor),
        "sll" => alu(AluOp::Sll),
        "srl" => alu(AluOp::Srl),
        "sra" => alu(AluOp::Sra),
        "slt" => alu(AluOp::Slt),
        "sltu" => alu(AluOp::Sltu),
        "mul" => alu(AluOp::Mul),
        "mulhu" => alu(AluOp::Mulhu),
        "div" => alu(AluOp::Div),
        "rem" => alu(AluOp::Rem),
        "divu" => alu(AluOp::Divu),
        "remu" => alu(AluOp::Remu),
        "addi" | "slti" | "sltiu" => {
            want(ops, 3, mnemonic)?;
            let rd = reg_operand(&ops[0])?;
            let rs1 = reg_operand(&ops[1])?;
            let imm = imm_signed(&ops[2], symbols)?;
            Ok(vec![match mnemonic {
                "addi" => Instr::Addi { rd, rs1, imm },
                "slti" => Instr::Slti { rd, rs1, imm },
                _ => Instr::Sltiu { rd, rs1, imm },
            }
            .encode()])
        }
        "andi" | "ori" | "xori" => {
            want(ops, 3, mnemonic)?;
            let rd = reg_operand(&ops[0])?;
            let rs1 = reg_operand(&ops[1])?;
            let imm = imm_logical(&ops[2], symbols)?;
            Ok(vec![match mnemonic {
                "andi" => Instr::Andi { rd, rs1, imm },
                "ori" => Instr::Ori { rd, rs1, imm },
                _ => Instr::Xori { rd, rs1, imm },
            }
            .encode()])
        }
        "slli" | "srli" | "srai" => {
            want(ops, 3, mnemonic)?;
            let rd = reg_operand(&ops[0])?;
            let rs1 = reg_operand(&ops[1])?;
            let sh = shamt(&ops[2], symbols)?;
            Ok(vec![match mnemonic {
                "slli" => Instr::Slli { rd, rs1, shamt: sh },
                "srli" => Instr::Srli { rd, rs1, shamt: sh },
                _ => Instr::Srai { rd, rs1, shamt: sh },
            }
            .encode()])
        }
        "lui" | "auipc" => {
            want(ops, 2, mnemonic)?;
            let rd = reg_operand(&ops[0])?;
            let imm = imm_upper(&ops[1], symbols)?;
            Ok(vec![if mnemonic == "lui" {
                Instr::Lui { rd, imm }
            } else {
                Instr::Auipc { rd, imm }
            }
            .encode()])
        }
        "lb" => load(LoadKind::B),
        "lbu" => load(LoadKind::Bu),
        "lh" => load(LoadKind::H),
        "lhu" => load(LoadKind::Hu),
        "lw" => load(LoadKind::W),
        "sb" => store(StoreKind::B),
        "sh" => store(StoreKind::H),
        "sw" => store(StoreKind::W),
        "beq" => branch(BranchCond::Eq),
        "bne" => branch(BranchCond::Ne),
        "blt" => branch(BranchCond::Lt),
        "bge" => branch(BranchCond::Ge),
        "bltu" => branch(BranchCond::Ltu),
        "bgeu" => branch(BranchCond::Geu),
        "beqz" => branch_z(BranchCond::Eq, false),
        "bnez" => branch_z(BranchCond::Ne, false),
        "bltz" => branch_z(BranchCond::Lt, false),
        "bgez" => branch_z(BranchCond::Ge, false),
        "bgtz" => branch_z(BranchCond::Lt, true),
        "blez" => branch_z(BranchCond::Ge, true),
        "jal" => {
            let (rd, target) = match ops.len() {
                1 => (Reg::RA, &ops[0]),
                2 => (reg_operand(&ops[0])?, &ops[1]),
                n => return Err(format!("`jal` expects 1 or 2 operands, got {n}")),
            };
            Ok(vec![Instr::Jal {
                rd,
                offset: jump_offset(target, addr, symbols)?,
            }
            .encode()])
        }
        "j" | "b" => {
            want(ops, 1, mnemonic)?;
            Ok(vec![Instr::Jal {
                rd: Reg::ZERO,
                offset: jump_offset(&ops[0], addr, symbols)?,
            }
            .encode()])
        }
        "call" => {
            want(ops, 1, mnemonic)?;
            Ok(vec![Instr::Jal {
                rd: Reg::RA,
                offset: jump_offset(&ops[0], addr, symbols)?,
            }
            .encode()])
        }
        "jalr" => {
            let (rd, rs1, offset) = match ops.len() {
                1 => (Reg::RA, reg_operand(&ops[0])?, 0),
                3 => (
                    reg_operand(&ops[0])?,
                    reg_operand(&ops[1])?,
                    imm_signed(&ops[2], symbols)?,
                ),
                n => return Err(format!("`jalr` expects 1 or 3 operands, got {n}")),
            };
            Ok(vec![Instr::Jalr { rd, rs1, offset }.encode()])
        }
        "jr" => {
            want(ops, 1, mnemonic)?;
            Ok(vec![Instr::Jalr {
                rd: Reg::ZERO,
                rs1: reg_operand(&ops[0])?,
                offset: 0,
            }
            .encode()])
        }
        "ret" => {
            want(ops, 0, mnemonic)?;
            Ok(vec![Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            }
            .encode()])
        }
        "ecall" => sys(SysOp::Ecall),
        "ebreak" => sys(SysOp::Ebreak),
        "tret" => sys(SysOp::Tret),
        "wfi" => sys(SysOp::Wfi),
        "tlbflush" => sys(SysOp::TlbFlush),
        "csrrw" => csr_full(CsrOp::Rw),
        "csrrs" => csr_full(CsrOp::Rs),
        "csrrc" => csr_full(CsrOp::Rc),
        "csrr" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::Csr {
                op: CsrOp::Rs,
                rd: reg_operand(&ops[0])?,
                rs1: Reg::ZERO,
                csr: csr_operand(&ops[1])?,
            }
            .encode()])
        }
        "csrw" | "csrs" | "csrc" => {
            want(ops, 2, mnemonic)?;
            let op = match mnemonic {
                "csrw" => CsrOp::Rw,
                "csrs" => CsrOp::Rs,
                _ => CsrOp::Rc,
            };
            let csr = csr_operand(&ops[0])?;
            match Reg::from_name(ops[1].trim()) {
                Some(rs1) => Ok(vec![Instr::Csr {
                    op,
                    rd: Reg::ZERO,
                    rs1,
                    csr,
                }
                .encode()]),
                None => {
                    // Immediate source: materialize through the assembler
                    // temporary, matching the size chosen in pass 1.
                    let v = expr::eval(&ops[1], symbols)?;
                    Ok(vec![
                        Instr::Lui {
                            rd: Reg::AT,
                            imm: (v >> 16) as u16,
                        }
                        .encode(),
                        Instr::Ori {
                            rd: Reg::AT,
                            rs1: Reg::AT,
                            imm: (v & 0xffff) as u16 as i16,
                        }
                        .encode(),
                        Instr::Csr {
                            op,
                            rd: Reg::ZERO,
                            rs1: Reg::AT,
                            csr,
                        }
                        .encode(),
                    ])
                }
            }
        }
        "nop" => {
            want(ops, 0, mnemonic)?;
            Ok(vec![Instr::Addi {
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                imm: 0,
            }
            .encode()])
        }
        "mv" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::Addi {
                rd: reg_operand(&ops[0])?,
                rs1: reg_operand(&ops[1])?,
                imm: 0,
            }
            .encode()])
        }
        "neg" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::Alu {
                op: AluOp::Sub,
                rd: reg_operand(&ops[0])?,
                rs1: Reg::ZERO,
                rs2: reg_operand(&ops[1])?,
            }
            .encode()])
        }
        "seqz" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::Sltiu {
                rd: reg_operand(&ops[0])?,
                rs1: reg_operand(&ops[1])?,
                imm: 1,
            }
            .encode()])
        }
        "snez" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::Alu {
                op: AluOp::Sltu,
                rd: reg_operand(&ops[0])?,
                rs1: Reg::ZERO,
                rs2: reg_operand(&ops[1])?,
            }
            .encode()])
        }
        "li" | "la" => {
            want(ops, 2, mnemonic)?;
            let rd = reg_operand(&ops[0])?;
            let v = expr::eval(&ops[1], symbols)?;
            Ok(vec![
                Instr::Lui {
                    rd,
                    imm: (v >> 16) as u16,
                }
                .encode(),
                Instr::Ori {
                    rd,
                    rs1: rd,
                    imm: (v & 0xffff) as u16 as i16,
                }
                .encode(),
            ])
        }
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

/// Strips `;`, `#` and `//` comments outside string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if c == b'\\' {
                i += 1;
            } else if c == b'"' {
                in_str = false;
            }
        } else {
            match c {
                b'"' => in_str = true,
                b';' | b'#' => return &line[..i],
                b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => return &line[..i],
                _ => {}
            }
        }
        i += 1;
    }
    line
}

/// Finds the colon ending a leading label, ignoring colons inside operands.
fn find_label_colon(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    let head = &text[..colon];
    if !head.is_empty()
        && head
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        Some(colon)
    } else {
        None
    }
}

fn is_symbol_name(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with(|c: char| c.is_ascii_digit())
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Splits an operand list on commas, respecting quotes and parentheses.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut cur = String::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if !in_str => {
                in_str = true;
                cur.push(c);
            }
            '"' if in_str => {
                in_str = false;
                cur.push(c);
            }
            '\\' if in_str => {
                cur.push(c);
                if let Some(n) = chars.next() {
                    cur.push(n);
                }
            }
            '(' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ')' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            ',' if !in_str && depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    let last = cur.trim();
    if !last.is_empty() {
        out.push(last.to_string());
    }
    out
}

/// Parses a quoted string literal with `\n \t \0 \\ \"` escapes.
fn parse_string(s: &str) -> Result<Vec<u8>, String> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("expected quoted string, got `{s}`"))?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                other => return Err(format!("bad escape \\{other:?}")),
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hx_cpu::isa::Instr;

    fn ok(src: &str) -> Program {
        assemble(src).unwrap_or_else(|e| panic!("assemble failed: {e}\nsource:\n{src}"))
    }

    fn first_instr(src: &str) -> Instr {
        let p = ok(src);
        Instr::decode(p.word_at(p.base())).unwrap()
    }

    #[test]
    fn basic_alu_and_imm() {
        assert_eq!(
            first_instr("add a0, a1, a2"),
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::R4,
                rs1: Reg::R5,
                rs2: Reg::R6
            }
        );
        assert_eq!(
            first_instr("addi sp, sp, -16"),
            Instr::Addi {
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: -16
            }
        );
        assert_eq!(
            first_instr("ori t0, t0, 0x8000"),
            Instr::Ori {
                rd: Reg::R10,
                rs1: Reg::R10,
                imm: 0x8000u16 as i16
            }
        );
        assert_eq!(
            first_instr("slli t0, t0, 12"),
            Instr::Slli {
                rd: Reg::R10,
                rs1: Reg::R10,
                shamt: 12
            }
        );
    }

    #[test]
    fn memory_operands() {
        assert_eq!(
            first_instr("lw a0, 8(sp)"),
            Instr::Load {
                kind: LoadKind::W,
                rd: Reg::R4,
                rs1: Reg::SP,
                offset: 8
            }
        );
        assert_eq!(
            first_instr("sb a1, (t0)"),
            Instr::Store {
                kind: StoreKind::B,
                rs1: Reg::R10,
                rs2: Reg::R5,
                offset: 0
            }
        );
        assert_eq!(
            first_instr("lhu a0, -2(a1)"),
            Instr::Load {
                kind: LoadKind::Hu,
                rd: Reg::R4,
                rs1: Reg::R5,
                offset: -2
            }
        );
    }

    #[test]
    fn labels_branches_jumps() {
        let p = ok("start: addi t0, zero, 3\nloop: addi t0, t0, -1\n bnez t0, loop\n j start\n");
        assert_eq!(p.symbols.get("start"), Some(0));
        assert_eq!(p.symbols.get("loop"), Some(4));
        // bnez at addr 8 targeting 4 → offset -4
        assert_eq!(
            Instr::decode(p.word_at(8)).unwrap(),
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::R10,
                rs2: Reg::ZERO,
                offset: -4
            }
        );
        assert_eq!(
            Instr::decode(p.word_at(12)).unwrap(),
            Instr::Jal {
                rd: Reg::ZERO,
                offset: -12
            }
        );
    }

    #[test]
    fn li_la_expand_to_lui_ori() {
        let p = ok(".equ VALUE, 0xdeadbeef\n li a0, VALUE\n");
        assert_eq!(
            Instr::decode(p.word_at(0)).unwrap(),
            Instr::Lui {
                rd: Reg::R4,
                imm: 0xdead
            }
        );
        assert_eq!(
            Instr::decode(p.word_at(4)).unwrap(),
            Instr::Ori {
                rd: Reg::R4,
                rs1: Reg::R4,
                imm: 0xbeefu16 as i16
            }
        );
        // And `la` of a forward label.
        let p = ok("la a0, target\nnop\ntarget: .word 7\n");
        assert_eq!(
            Instr::decode(p.word_at(0)).unwrap(),
            Instr::Lui {
                rd: Reg::R4,
                imm: 0
            }
        );
        assert_eq!(
            Instr::decode(p.word_at(4)).unwrap(),
            Instr::Ori {
                rd: Reg::R4,
                rs1: Reg::R4,
                imm: 12
            }
        );
    }

    #[test]
    fn csr_forms() {
        assert_eq!(
            first_instr("csrr a0, status"),
            Instr::Csr {
                op: CsrOp::Rs,
                rd: Reg::R4,
                rs1: Reg::ZERO,
                csr: 0
            }
        );
        assert_eq!(
            first_instr("csrw tvec, a0"),
            Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::ZERO,
                rs1: Reg::R4,
                csr: 1
            }
        );
        assert_eq!(
            first_instr("csrrc a1, status, a2"),
            Instr::Csr {
                op: CsrOp::Rc,
                rd: Reg::R5,
                rs1: Reg::R6,
                csr: 0
            }
        );
        assert_eq!(
            first_instr("csrw 0x005, a0"),
            Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::ZERO,
                rs1: Reg::R4,
                csr: 5
            }
        );
    }

    #[test]
    fn directives_and_layout() {
        let p = ok(".org 0x1000\n\
             .word 1, 2, 3\n\
             .half 0xbeef\n\
             .byte 1, 2, 3\n\
             .align 4\n\
             str: .asciz \"hi\\n\"\n\
             .align 4\n\
             end: .space 8\n");
        assert_eq!(p.base(), 0x1000);
        assert_eq!(p.word_at(0x1008), 3);
        assert_eq!(p.symbols.get("str"), Some(0x1014));
        let s = p.symbols.get("str").unwrap() - p.base();
        assert_eq!(&p.bytes()[s as usize..s as usize + 4], b"hi\n\0");
        assert_eq!(p.symbols.get("end"), Some(0x1018));
        assert_eq!(p.end(), 0x1020);
    }

    #[test]
    fn org_gap_zero_fill() {
        let p = ok(".org 0x100\n.word 1\n.org 0x110\n.word 2\n");
        assert_eq!(p.base(), 0x100);
        assert_eq!(p.word_at(0x108), 0);
        assert_eq!(p.word_at(0x110), 2);
    }

    #[test]
    fn comments_all_styles() {
        let p = ok("; full line\n# also\n// and this\naddi a0, zero, 1 ; trailing\naddi a0, a0, 1 # t\naddi a0, a0, 1 // t\n");
        assert_eq!(p.bytes().len(), 12);
    }

    #[test]
    fn pseudo_instructions() {
        assert_eq!(
            first_instr("nop"),
            Instr::Addi {
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                imm: 0
            }
        );
        assert_eq!(
            first_instr("mv a0, a1"),
            Instr::Addi {
                rd: Reg::R4,
                rs1: Reg::R5,
                imm: 0
            }
        );
        assert_eq!(
            first_instr("ret"),
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0
            }
        );
        assert_eq!(
            first_instr("jr t0"),
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::R10,
                offset: 0
            }
        );
        assert_eq!(
            first_instr("neg a0, a1"),
            Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::R4,
                rs1: Reg::ZERO,
                rs2: Reg::R5
            }
        );
        assert_eq!(
            first_instr("seqz a0, a1"),
            Instr::Sltiu {
                rd: Reg::R4,
                rs1: Reg::R5,
                imm: 1
            }
        );
        assert_eq!(
            first_instr("snez a0, a1"),
            Instr::Alu {
                op: AluOp::Sltu,
                rd: Reg::R4,
                rs1: Reg::ZERO,
                rs2: Reg::R5
            }
        );
        assert_eq!(first_instr("ecall"), Instr::Sys { op: SysOp::Ecall });
        assert_eq!(first_instr("wfi"), Instr::Sys { op: SysOp::Wfi });
        assert_eq!(
            first_instr("tlbflush"),
            Instr::Sys {
                op: SysOp::TlbFlush
            }
        );
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = assemble("nop\nbogus a0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("addi a0, zero, 99999\n").unwrap_err();
        assert!(e.message.contains("range"));

        let e = assemble("lw a0, a1\n").unwrap_err();
        assert!(e.message.contains("memory operand"));

        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = assemble("beq a0, a1, far\n.org 0x100000\nfar: nop\n").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = assemble(".align 3\n").unwrap_err();
        assert!(e.message.contains("power of two"));

        let e = assemble(".org 0x10\nnop\n.org 0x10\nnop\n").unwrap_err();
        assert!(e.message.contains("overlap"));

        assert!(!format!("{e}").is_empty());
    }

    #[test]
    fn equ_and_expressions() {
        let p = ok(".equ BASE, 0x4000\n\
             .equ SLOT, BASE + 0x10\n\
             lw a0, %lo(SLOT)(zero)\n\
             lui a1, %hi(SLOT)\n");
        assert_eq!(
            Instr::decode(p.word_at(0)).unwrap(),
            Instr::Load {
                kind: LoadKind::W,
                rd: Reg::R4,
                rs1: Reg::ZERO,
                offset: 0x4010
            }
        );
        assert_eq!(
            Instr::decode(p.word_at(4)).unwrap(),
            Instr::Lui {
                rd: Reg::R5,
                imm: 0
            }
        );
    }

    #[test]
    fn jal_forms() {
        let p = ok("jal sub\njal t0, sub\nsub: ret\n");
        assert_eq!(
            Instr::decode(p.word_at(0)).unwrap(),
            Instr::Jal {
                rd: Reg::RA,
                offset: 8
            }
        );
        assert_eq!(
            Instr::decode(p.word_at(4)).unwrap(),
            Instr::Jal {
                rd: Reg::R10,
                offset: 4
            }
        );
    }

    #[test]
    fn executes_assembled_program() {
        use hx_cpu::{Cpu, FlatRam, StepOutcome};
        // Sum 1..=10 with a loop, then ebreak.
        let p = ok("        li   t0, 10\n\
                     li   t1, 0\n\
             loop:   add  t1, t1, t0\n\
                     addi t0, t0, -1\n\
                     bnez t0, loop\n\
                     ebreak\n");
        let mut ram = FlatRam::new(4096);
        p.load_into(ram.as_bytes_mut());
        let mut cpu = Cpu::new();
        loop {
            match cpu.step(&mut ram) {
                StepOutcome::Executed { .. } => {}
                StepOutcome::Trapped { trap, .. } => {
                    assert_eq!(trap.cause, hx_cpu::Cause::Breakpoint);
                    break;
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(cpu.reg(Reg::R11), 55);
    }
}
