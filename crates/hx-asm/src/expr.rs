//! Operand expression evaluation.
//!
//! Grammar (whitespace-tolerant):
//!
//! ```text
//! expr    := product (('+' | '-') product)*
//! product := term ('*' term)*
//! term    := number | symbol | '%hi' '(' expr ')' | '%lo' '(' expr ')'
//!          | '-' term | '(' expr ')'
//! number  := decimal | 0x… | 0b… | 'c'
//! ```
//!
//! `%hi(e)` is `e >> 16`, `%lo(e)` is `e & 0xffff` — the halves consumed by
//! `lui`/`ori` pairs. All arithmetic wraps at 32 bits.

use crate::program::SymbolTable;

/// Evaluates an operand expression against a symbol table.
///
/// Returns `Err` with a human-readable message on syntax errors or undefined
/// symbols.
pub fn eval(input: &str, symbols: &SymbolTable) -> Result<u32, String> {
    let mut p = Parser {
        rest: input.trim(),
        symbols,
    };
    let v = p.expr()?;
    if !p.rest.is_empty() {
        return Err(format!("trailing input {:?} in expression", p.rest));
    }
    Ok(v)
}

struct Parser<'a> {
    rest: &'a str,
    symbols: &'a SymbolTable,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if let Some(r) = self.rest.strip_prefix(token) {
            self.rest = r;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<u32, String> {
        let mut acc = self.product()?;
        loop {
            if self.eat("+") {
                acc = acc.wrapping_add(self.product()?);
            } else if self.eat("-") {
                acc = acc.wrapping_sub(self.product()?);
            } else {
                break;
            }
        }
        Ok(acc)
    }

    fn product(&mut self) -> Result<u32, String> {
        let mut acc = self.term()?;
        while self.eat("*") {
            acc = acc.wrapping_mul(self.term()?);
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<u32, String> {
        self.skip_ws();
        if self.eat("-") {
            return Ok(self.term()?.wrapping_neg());
        }
        if self.eat("%hi") {
            let inner = self.parenthesized()?;
            return Ok(inner >> 16);
        }
        if self.eat("%lo") {
            let inner = self.parenthesized()?;
            return Ok(inner & 0xffff);
        }
        if self.rest.starts_with('(') {
            return self.parenthesized();
        }
        if self.rest.starts_with('\'') {
            return self.char_literal();
        }
        let end = self
            .rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(format!("expected operand at {:?}", self.rest));
        }
        let tok = &self.rest[..end];
        self.rest = &self.rest[end..];
        if tok.starts_with(|c: char| c.is_ascii_digit()) {
            parse_number(tok)
        } else {
            self.symbols
                .get(tok)
                .ok_or_else(|| format!("undefined symbol `{tok}`"))
        }
    }

    fn parenthesized(&mut self) -> Result<u32, String> {
        if !self.eat("(") {
            return Err(format!("expected '(' at {:?}", self.rest));
        }
        let v = self.expr()?;
        if !self.eat(")") {
            return Err(format!("expected ')' at {:?}", self.rest));
        }
        Ok(v)
    }

    fn char_literal(&mut self) -> Result<u32, String> {
        let mut chars = self.rest.chars();
        chars.next(); // opening quote
        let c = match chars.next() {
            Some('\\') => match chars.next() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some('0') => '\0',
                Some('\\') => '\\',
                Some('\'') => '\'',
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => c,
            None => return Err("unterminated char literal".into()),
        };
        if chars.next() != Some('\'') {
            return Err("unterminated char literal".into());
        }
        self.rest = chars.as_str();
        Ok(c as u32)
    }
}

/// Parses a bare number token (decimal, `0x`, `0b`).
pub fn parse_number(tok: &str) -> Result<u32, String> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u32::from_str_radix(&hex.replace('_', ""), 16)
    } else if let Some(bin) = tok.strip_prefix("0b").or_else(|| tok.strip_prefix("0B")) {
        u32::from_str_radix(&bin.replace('_', ""), 2)
    } else {
        tok.replace('_', "").parse::<u32>()
    };
    parsed.map_err(|_| format!("bad number `{tok}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symtab() -> SymbolTable {
        let mut t = SymbolTable::new();
        t.define("start", 0x0040_0000);
        t.define("size", 24);
        t
    }

    #[test]
    fn numbers() {
        let t = SymbolTable::new();
        assert_eq!(eval("42", &t), Ok(42));
        assert_eq!(eval("0x2a", &t), Ok(42));
        assert_eq!(eval("0b101010", &t), Ok(42));
        assert_eq!(eval("1_000", &t), Ok(1000));
        assert_eq!(eval("'A'", &t), Ok(65));
        assert_eq!(eval("'\\n'", &t), Ok(10));
        assert_eq!(eval("-1", &t), Ok(0xffff_ffff));
    }

    #[test]
    fn symbols_and_arithmetic() {
        let t = symtab();
        assert_eq!(eval("start", &t), Ok(0x0040_0000));
        assert_eq!(eval("start + 8", &t), Ok(0x0040_0008));
        assert_eq!(eval("start - size", &t), Ok(0x0040_0000 - 24));
        assert_eq!(eval("size + size - 8", &t), Ok(40));
        assert_eq!(eval("(size + 8) - (4 + 4)", &t), Ok(24));
        assert_eq!(eval("size * 2", &t), Ok(48));
        assert_eq!(eval("2 + 3 * 4", &t), Ok(14), "precedence");
        assert_eq!(eval("(2 + 3) * 4", &t), Ok(20));
    }

    #[test]
    fn hi_lo() {
        let t = symtab();
        assert_eq!(eval("%hi(start)", &t), Ok(0x0040));
        assert_eq!(eval("%lo(start + 0x1234)", &t), Ok(0x1234));
        assert_eq!(eval("%hi(0xdeadbeef)", &t), Ok(0xdead));
        assert_eq!(eval("%lo(0xdeadbeef)", &t), Ok(0xbeef));
    }

    #[test]
    fn errors() {
        let t = symtab();
        assert!(eval("nosuch", &t).is_err());
        assert!(eval("1 +", &t).is_err());
        assert!(eval("%hi 4", &t).is_err());
        assert!(eval("(1", &t).is_err());
        assert!(eval("1 2", &t).is_err());
        assert!(eval("0xzz", &t).is_err());
        assert!(eval("'a", &t).is_err());
        assert!(eval("", &t).is_err());
    }
}
