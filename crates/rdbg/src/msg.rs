//! Command and reply payloads carried inside [`crate::wire`] packets.
//!
//! Both ends share these types: the host [`crate::Debugger`] formats
//! [`Command`]s and parses [`Reply`]s; the monitor's stub does the reverse.
//!
//! Every command receives an immediate reply. Stop events (`T…` payloads)
//! are *asynchronous*: after a `c` (continue) or `s` (step) is acknowledged
//! with `OK`, the stub sends a [`StopReason`] packet whenever the guest next
//! stops.

use crate::wire::{from_hex, to_hex};
use core::fmt;

/// Register selector used by [`Command::WriteRegister`]:
/// `0..=31` general-purpose, `32` the PC.
pub const REG_PC: u8 = 32;

/// Which accesses a watchpoint traps on. The wire digit after `Z`/`z`
/// follows the GDB remote convention: `2` write, `3` read, `4` access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    /// Stores into the watched range (`Z2`).
    Write,
    /// Loads from the watched range (`Z3`).
    Read,
    /// Both loads and stores (`Z4`).
    Access,
}

impl WatchKind {
    /// The wire digit after `Z`.
    pub fn code(self) -> char {
        match self {
            WatchKind::Write => '2',
            WatchKind::Read => '3',
            WatchKind::Access => '4',
        }
    }

    /// Parses the wire digit.
    pub fn from_code(code: &str) -> Option<WatchKind> {
        match code {
            "2" => Some(WatchKind::Write),
            "3" => Some(WatchKind::Read),
            "4" => Some(WatchKind::Access),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            WatchKind::Write => "write",
            WatchKind::Read => "read",
            WatchKind::Access => "access",
        }
    }

    /// Whether this kind traps stores.
    pub fn watches_write(self) -> bool {
        matches!(self, WatchKind::Write | WatchKind::Access)
    }

    /// Whether this kind traps loads.
    pub fn watches_read(self) -> bool {
        matches!(self, WatchKind::Read | WatchKind::Access)
    }
}

/// A debugger → stub command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Stop the guest now and report a stop reason.
    Halt,
    /// Report the current stop reason (target must be stopped).
    QueryStop,
    /// Read all registers: r0–r31 then pc (33 little-endian words).
    ReadRegisters,
    /// Write one register (see [`REG_PC`]).
    WriteRegister {
        /// Register selector.
        index: u8,
        /// New value.
        value: u32,
    },
    /// Read guest memory by **virtual** address.
    ReadMemory {
        /// Start address.
        addr: u32,
        /// Byte count.
        len: u32,
    },
    /// Write guest memory by virtual address.
    WriteMemory {
        /// Start address.
        addr: u32,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Plant a software breakpoint (`ebreak` patch).
    SetBreakpoint {
        /// Virtual address of the instruction.
        addr: u32,
    },
    /// Remove a software breakpoint.
    ClearBreakpoint {
        /// Virtual address of the instruction.
        addr: u32,
    },
    /// Arm a watchpoint over `[addr, addr+len)`.
    SetWatchpoint {
        /// Start address.
        addr: u32,
        /// Watched length in bytes.
        len: u32,
        /// Which accesses trap.
        kind: WatchKind,
    },
    /// Disarm a watchpoint.
    ClearWatchpoint {
        /// Start address it was armed with.
        addr: u32,
    },
    /// Attach (or replace) a condition on a planted breakpoint. An empty
    /// expression clears the condition, making the breakpoint
    /// unconditional again.
    SetBreakCondition {
        /// Breakpoint address.
        addr: u32,
        /// Condition source text (see `hx-query`'s expression grammar).
        expr: String,
    },
    /// Attach (or replace) a condition on an armed watchpoint. An empty
    /// expression clears the condition.
    SetWatchCondition {
        /// Watchpoint start address.
        addr: u32,
        /// Condition source text.
        expr: String,
    },
    /// Arm a logpoint: when the instruction at `addr` retires and `expr`
    /// (empty means "always") is nonzero, the target records a trace event
    /// carrying the condition value — without stopping.
    SetLogpoint {
        /// Instruction address.
        addr: u32,
        /// Free-form label for the target's reports.
        label: String,
        /// Condition source text; empty fires unconditionally.
        expr: String,
    },
    /// Disarm every logpoint at `addr`.
    ClearLogpoint {
        /// Instruction address.
        addr: u32,
    },
    /// Search the recorded timeline for the first cycle at which `expr`
    /// evaluates nonzero, and seek the replay there. Requires the flight
    /// recorder and a stopped guest; answered with [`Reply::Query`]
    /// followed (on a hit) by a [`StopReason::TimeTravel`] stop.
    QueryFirst {
        /// Predicate source text.
        expr: String,
    },
    /// Execute one guest instruction, then stop.
    Step,
    /// Resume the guest.
    Continue,
    /// Reset the guest to its boot entry point.
    Reset,
    /// Sample the monitor's cycle accounting and exit counters **without**
    /// stopping the guest. The reply is a [`StatsSample`] packet.
    QueryStats,
    /// Sample the monitor's live profiler **without** stopping the guest:
    /// the reply is a [`ProfSample`] carrying the `max` hottest symbols.
    QueryProf {
        /// Maximum number of symbols to return.
        max: u8,
    },
    /// Sample the monitor's host-time self-profiler **without** stopping
    /// the guest: the reply is a [`MetricsSample`] carrying per-phase
    /// host-nanosecond totals. Stubs built without the metrics registry
    /// answer with the stable `metrics unavailable` error code.
    QueryMetrics,
    /// Sample the target's causal-flow tracker **without** stopping the
    /// guest: the reply is a [`FlowSample`] with per-class flow counts and
    /// latency percentiles. Targets without causal tracing enabled answer
    /// with the stable `causal unavailable` error code.
    QueryFlow,
    /// Time travel: rewind to just before the most recently executed guest
    /// instruction. Requires the flight recorder; stops with
    /// [`StopReason::TimeTravel`].
    ReverseStep,
    /// Time travel: rewind to the previous stop (breakpoint, watchpoint,
    /// fault, …) in this run's history.
    ReverseContinue,
    /// Time travel: seek to an absolute simulated cycle. Seeking backwards
    /// restores a checkpoint and deterministically re-runs; the discarded
    /// future is forgotten (new-branch semantics).
    Seek {
        /// Target simulated cycle.
        cycle: u64,
    },
    /// Select which core subsequent register/memory commands operate on
    /// (GDB's `Hg<thread>`). Core 0 is the boot core and the default.
    SetThread {
        /// Core index to select.
        core: u32,
    },
    /// Ask whether a core exists and has been started (GDB's `T<thread>`).
    /// Answered `OK` for a live core, an error otherwise.
    ThreadAlive {
        /// Core index to probe.
        core: u32,
    },
}

impl Command {
    /// Formats the command as a packet payload.
    pub fn format(&self) -> String {
        match self {
            Command::Halt => "H".into(),
            Command::QueryStop => "?".into(),
            Command::ReadRegisters => "g".into(),
            Command::WriteRegister { index, value } => format!("P{index:x}={value:x}"),
            Command::ReadMemory { addr, len } => format!("m{addr:x},{len:x}"),
            Command::WriteMemory { addr, data } => {
                format!("M{addr:x},{:x}:{}", data.len(), to_hex(data))
            }
            Command::SetBreakpoint { addr } => format!("Z0,{addr:x}"),
            Command::ClearBreakpoint { addr } => format!("z0,{addr:x}"),
            Command::SetWatchpoint { addr, len, kind } => {
                format!("Z{},{addr:x},{len:x}", kind.code())
            }
            Command::ClearWatchpoint { addr } => format!("z2,{addr:x}"),
            Command::SetBreakCondition { addr, expr } => {
                format!("Qb,{addr:x},{}", to_hex(expr.as_bytes()))
            }
            Command::SetWatchCondition { addr, expr } => {
                format!("Qw,{addr:x},{}", to_hex(expr.as_bytes()))
            }
            Command::SetLogpoint { addr, label, expr } => format!(
                "Ql,{addr:x},{},{}",
                to_hex(label.as_bytes()),
                to_hex(expr.as_bytes())
            ),
            Command::ClearLogpoint { addr } => format!("ql,{addr:x}"),
            Command::QueryFirst { expr } => format!("Qq,{}", to_hex(expr.as_bytes())),
            Command::Step => "s".into(),
            Command::Continue => "c".into(),
            Command::Reset => "k".into(),
            Command::QueryStats => "qStats".into(),
            Command::QueryProf { max } => format!("qProf{max:x}"),
            Command::QueryMetrics => "qMetrics".into(),
            Command::QueryFlow => "qFlow".into(),
            Command::ReverseStep => "bs".into(),
            Command::ReverseContinue => "bc".into(),
            Command::Seek { cycle } => format!("bg{cycle:x}"),
            Command::SetThread { core } => format!("Hg{core:x}"),
            Command::ThreadAlive { core } => format!("T{core:x}"),
        }
    }

    /// Parses a packet payload into a command.
    ///
    /// Returns `None` for malformed payloads — the stub answers those with
    /// an error reply rather than crashing.
    pub fn parse(payload: &str) -> Option<Command> {
        let rest = |p: &str| payload.get(p.len()..).map(str::to_string);
        match payload.chars().next()? {
            'H' if payload == "H" => Some(Command::Halt),
            'H' => {
                let core = u32::from_str_radix(payload.strip_prefix("Hg")?, 16).ok()?;
                Some(Command::SetThread { core })
            }
            'T' => {
                let core = u32::from_str_radix(payload.strip_prefix('T')?, 16).ok()?;
                Some(Command::ThreadAlive { core })
            }
            '?' if payload == "?" => Some(Command::QueryStop),
            'g' if payload == "g" => Some(Command::ReadRegisters),
            's' if payload == "s" => Some(Command::Step),
            'c' if payload == "c" => Some(Command::Continue),
            'k' if payload == "k" => Some(Command::Reset),
            'q' if payload == "qStats" => Some(Command::QueryStats),
            'q' if payload == "qMetrics" => Some(Command::QueryMetrics),
            'q' if payload == "qFlow" => Some(Command::QueryFlow),
            'q' if payload.starts_with("ql,") => {
                let addr = u32::from_str_radix(payload.strip_prefix("ql,")?, 16).ok()?;
                Some(Command::ClearLogpoint { addr })
            }
            'q' => {
                let max = u8::from_str_radix(payload.strip_prefix("qProf")?, 16).ok()?;
                Some(Command::QueryProf { max })
            }
            'Q' => {
                let (tag, body) = payload.split_once(',')?;
                let text = |hex: &str| String::from_utf8(from_hex(hex)?).ok();
                match tag {
                    "Qb" | "Qw" => {
                        let (a, x) = body.split_once(',')?;
                        let addr = u32::from_str_radix(a, 16).ok()?;
                        let expr = text(x)?;
                        Some(if tag == "Qb" {
                            Command::SetBreakCondition { addr, expr }
                        } else {
                            Command::SetWatchCondition { addr, expr }
                        })
                    }
                    "Ql" => {
                        let mut f = body.split(',');
                        let addr = u32::from_str_radix(f.next()?, 16).ok()?;
                        let label = text(f.next()?)?;
                        let expr = text(f.next()?)?;
                        if f.next().is_some() {
                            return None;
                        }
                        Some(Command::SetLogpoint { addr, label, expr })
                    }
                    "Qq" => Some(Command::QueryFirst { expr: text(body)? }),
                    _ => None,
                }
            }
            'b' => match payload {
                "bs" => Some(Command::ReverseStep),
                "bc" => Some(Command::ReverseContinue),
                _ => {
                    let cycle = u64::from_str_radix(payload.strip_prefix("bg")?, 16).ok()?;
                    Some(Command::Seek { cycle })
                }
            },
            'P' => {
                let body = rest("P")?;
                let (idx, val) = body.split_once('=')?;
                Some(Command::WriteRegister {
                    index: u8::from_str_radix(idx, 16).ok()?,
                    value: u32::from_str_radix(val, 16).ok()?,
                })
            }
            'm' => {
                let body = rest("m")?;
                let (a, l) = body.split_once(',')?;
                Some(Command::ReadMemory {
                    addr: u32::from_str_radix(a, 16).ok()?,
                    len: u32::from_str_radix(l, 16).ok()?,
                })
            }
            'M' => {
                let body = rest("M")?;
                let (head, hex) = body.split_once(':')?;
                let (a, l) = head.split_once(',')?;
                let data = from_hex(hex)?;
                let len = u32::from_str_radix(l, 16).ok()?;
                let addr = u32::from_str_radix(a, 16).ok()?;
                (data.len() as u32 == len).then_some(Command::WriteMemory { addr, data })
            }
            'Z' | 'z' => {
                let set = payload.starts_with('Z');
                let body = payload.get(1..)?;
                let mut parts = body.split(',');
                let kind = parts.next()?;
                let addr = u32::from_str_radix(parts.next()?, 16).ok()?;
                match (kind, set) {
                    ("0", true) => Some(Command::SetBreakpoint { addr }),
                    ("0", false) => Some(Command::ClearBreakpoint { addr }),
                    ("2" | "3" | "4", true) => {
                        let len = u32::from_str_radix(parts.next()?, 16).ok()?;
                        Some(Command::SetWatchpoint {
                            addr,
                            len,
                            kind: WatchKind::from_code(kind)?,
                        })
                    }
                    ("2" | "3" | "4", false) => Some(Command::ClearWatchpoint { addr }),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// A live sample of the target monitor's cycle accounting, carried in the
/// reply to [`Command::QueryStats`].
///
/// The stub produces it from whatever counters it keeps; the wire format is
/// monitor-agnostic. `exits` is a list of per-cause exit counts whose order
/// is defined by the target (for this repository's monitors: the
/// `hx_obs::ExitCause::ALL` order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSample {
    /// Simulated-cycle timestamp of the sample.
    pub now: u64,
    /// Cycles attributed to guest execution.
    pub guest: u64,
    /// Cycles attributed to the monitor.
    pub monitor: u64,
    /// Cycles attributed to the modeled host OS (hosted monitor only).
    pub host: u64,
    /// Cycles attributed to idle.
    pub idle: u64,
    /// Decode-cache hits (instructions served predecoded).
    pub decode_hits: u64,
    /// Decode-cache misses (instructions decoded the slow way).
    pub decode_misses: u64,
    /// Fetch translations served from the fast-path line.
    pub fast_fetches: u64,
    /// Predecoded pages dropped after their contents changed.
    pub decode_invalidations: u64,
    /// Per-cause guest-exit counts, in target-defined order.
    pub exits: Vec<u64>,
    /// Injected-fault counts per fault class, in target-defined order (for
    /// this repository's monitors: the `hx_fault::FaultKind` order). Empty
    /// when no fault campaign is armed.
    pub faults: Vec<u64>,
    /// Wild writes blocked by memory protection (lvmm only; the hosted
    /// monitor and raw hardware let them through).
    pub fault_blocked: u64,
    /// Number of guest cores. Zero or one means a single-core target; the
    /// per-core fields below travel (and are meaningful) only when this is
    /// greater than one, which keeps single-core wire traffic byte-identical
    /// to pre-SMP stubs.
    pub cores: u64,
    /// Instructions retired per core, core 0 first (SMP targets only).
    pub core_instret: Vec<u64>,
    /// Guest exits handled per core, core 0 first (SMP targets only).
    pub core_exits: Vec<u64>,
}

impl StatsSample {
    /// Formats as an `S…` payload.
    pub fn format(&self) -> String {
        let exits: Vec<String> = self.exits.iter().map(|c| format!("{c:x}")).collect();
        let faults: Vec<String> = self.faults.iter().map(|c| format!("{c:x}")).collect();
        let mut out = format!(
            "S{:x};g:{:x};m:{:x};h:{:x};i:{:x};dh:{:x};dm:{:x};df:{:x};dv:{:x};x:{};f:{};fb:{:x}",
            self.now,
            self.guest,
            self.monitor,
            self.host,
            self.idle,
            self.decode_hits,
            self.decode_misses,
            self.fast_fetches,
            self.decode_invalidations,
            exits.join(","),
            faults.join(","),
            self.fault_blocked
        );
        // SMP extension keys: emitted only for multi-core targets so a
        // single-core sample is byte-identical to the pre-SMP encoding.
        if self.cores > 1 {
            let ci: Vec<String> = self.core_instret.iter().map(|c| format!("{c:x}")).collect();
            let cx: Vec<String> = self.core_exits.iter().map(|c| format!("{c:x}")).collect();
            out.push_str(&format!(
                ";nc:{:x};ci:{};cx:{}",
                self.cores,
                ci.join(","),
                cx.join(",")
            ));
        }
        out
    }

    /// Parses an `S…` payload.
    pub fn parse(payload: &str) -> Option<StatsSample> {
        let body = payload.strip_prefix('S')?;
        let mut parts = body.split(';');
        let now = u64::from_str_radix(parts.next()?, 16).ok()?;
        let mut sample = StatsSample {
            now,
            ..StatsSample::default()
        };
        for part in parts {
            let (k, v) = part.split_once(':')?;
            match k {
                "g" => sample.guest = u64::from_str_radix(v, 16).ok()?,
                "m" => sample.monitor = u64::from_str_radix(v, 16).ok()?,
                "h" => sample.host = u64::from_str_radix(v, 16).ok()?,
                "i" => sample.idle = u64::from_str_radix(v, 16).ok()?,
                "dh" => sample.decode_hits = u64::from_str_radix(v, 16).ok()?,
                "dm" => sample.decode_misses = u64::from_str_radix(v, 16).ok()?,
                "df" => sample.fast_fetches = u64::from_str_radix(v, 16).ok()?,
                "dv" => sample.decode_invalidations = u64::from_str_radix(v, 16).ok()?,
                "x" if !v.is_empty() => {
                    for c in v.split(',') {
                        sample.exits.push(u64::from_str_radix(c, 16).ok()?);
                    }
                }
                "f" if !v.is_empty() => {
                    for c in v.split(',') {
                        sample.faults.push(u64::from_str_radix(c, 16).ok()?);
                    }
                }
                "fb" => sample.fault_blocked = u64::from_str_radix(v, 16).ok()?,
                "nc" => sample.cores = u64::from_str_radix(v, 16).ok()?,
                "ci" if !v.is_empty() => {
                    for c in v.split(',') {
                        sample.core_instret.push(u64::from_str_radix(c, 16).ok()?);
                    }
                }
                "cx" if !v.is_empty() => {
                    for c in v.split(',') {
                        sample.core_exits.push(u64::from_str_radix(c, 16).ok()?);
                    }
                }
                _ => {}
            }
        }
        Some(sample)
    }
}

/// A live sample of the target's guest profiler, carried in the reply to
/// [`Command::QueryProf`].
///
/// `top` lists the hottest symbols as `(name, cycles, samples)` triples in
/// descending cycle order; symbol names travel hex-encoded so arbitrary
/// names (including the profiler's `[unknown]` bucket) survive the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfSample {
    /// Simulated-cycle timestamp of the sample.
    pub now: u64,
    /// The profiler's deterministic sampling interval, in cycles.
    pub interval: u64,
    /// Guest cycles attributed so far (all symbols plus `[unknown]`).
    pub total_cycles: u64,
    /// PC samples taken so far.
    pub total_samples: u64,
    /// The hottest symbols: `(name, cycles, samples)`, hottest first.
    pub top: Vec<(String, u64, u64)>,
}

impl ProfSample {
    /// Formats as a `P…` payload.
    pub fn format(&self) -> String {
        let top: Vec<String> = self
            .top
            .iter()
            .map(|(name, cyc, n)| format!("{}:{cyc:x}:{n:x}", to_hex(name.as_bytes())))
            .collect();
        format!(
            "P{:x};v:{:x};c:{:x};s:{:x};t:{}",
            self.now,
            self.interval,
            self.total_cycles,
            self.total_samples,
            top.join(",")
        )
    }

    /// Parses a `P…` payload.
    pub fn parse(payload: &str) -> Option<ProfSample> {
        let body = payload.strip_prefix('P')?;
        let mut parts = body.split(';');
        let now = u64::from_str_radix(parts.next()?, 16).ok()?;
        let mut sample = ProfSample {
            now,
            ..ProfSample::default()
        };
        for part in parts {
            let (k, v) = part.split_once(':')?;
            match k {
                "v" => sample.interval = u64::from_str_radix(v, 16).ok()?,
                "c" => sample.total_cycles = u64::from_str_radix(v, 16).ok()?,
                "s" => sample.total_samples = u64::from_str_radix(v, 16).ok()?,
                "t" if !v.is_empty() => {
                    for entry in v.split(',') {
                        let mut fields = entry.split(':');
                        let name = String::from_utf8(from_hex(fields.next()?)?).ok()?;
                        let cycles = u64::from_str_radix(fields.next()?, 16).ok()?;
                        let samples = u64::from_str_radix(fields.next()?, 16).ok()?;
                        if fields.next().is_some() {
                            return None;
                        }
                        sample.top.push((name, cycles, samples));
                    }
                }
                _ => {}
            }
        }
        Some(sample)
    }
}

/// Number of host-time phases in a [`MetricsSample`].
///
/// This must equal `hx_obs::HostPhase::COUNT`; the monitors cross-check the
/// two constants with a test so the wire format cannot silently drift from
/// the profiler.
pub const METRICS_PHASES: usize = 18;

/// A live sample of the target monitor's host-time self-profiler, carried
/// in the reply to [`Command::QueryMetrics`].
///
/// `phase_ns` is indexed by `hx_obs::HostPhase::index()` — the canonical
/// `HostPhase::ALL` order. The wire encoding is **fixed width** (every
/// field is a zero-padded 16-digit hex number and the field count is
/// constant): reply bytes cost simulated cycles in the stub's cost model,
/// so the nondeterministic host-nanosecond values must never change the
/// reply's length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSample {
    /// Simulated-cycle timestamp of the sample.
    pub now: u64,
    /// Host wall-clock nanoseconds since the profiler was enabled.
    pub wall_ns: u64,
    /// Phase-boundary marks taken so far.
    pub marks: u64,
    /// Host nanoseconds attributed to each phase, in `HostPhase::ALL` order.
    pub phase_ns: [u64; METRICS_PHASES],
}

impl MetricsSample {
    /// Host nanoseconds attributed to any phase (the sum of `phase_ns`).
    pub fn attributed_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Formats as a fixed-width `M…` payload.
    pub fn format(&self) -> String {
        let phases: Vec<String> = self.phase_ns.iter().map(|n| format!("{n:016x}")).collect();
        format!(
            "M{:016x};w:{:016x};k:{:016x};p:{}",
            self.now,
            self.wall_ns,
            self.marks,
            phases.join(",")
        )
    }

    /// Parses an `M…` payload.
    pub fn parse(payload: &str) -> Option<MetricsSample> {
        let body = payload.strip_prefix('M')?;
        let mut parts = body.split(';');
        let now = u64::from_str_radix(parts.next()?, 16).ok()?;
        let mut sample = MetricsSample {
            now,
            ..MetricsSample::default()
        };
        let mut phases = Vec::new();
        for part in parts {
            let (k, v) = part.split_once(':')?;
            match k {
                "w" => sample.wall_ns = u64::from_str_radix(v, 16).ok()?,
                "k" => sample.marks = u64::from_str_radix(v, 16).ok()?,
                "p" => {
                    for n in v.split(',') {
                        phases.push(u64::from_str_radix(n, 16).ok()?);
                    }
                }
                _ => {}
            }
        }
        sample.phase_ns = phases.try_into().ok()?;
        Some(sample)
    }
}

/// Number of flow classes in a [`FlowSample`].
///
/// This must equal `hx_obs::FlowClass::COUNT`; the monitors cross-check
/// the two constants with a test so the wire format cannot silently drift
/// from the causal tracker.
pub const FLOW_CLASSES: usize = 6;

/// A live sample of the target's causal-flow tracker, carried in the reply
/// to [`Command::QueryFlow`].
///
/// `classes` summarises end-to-end latency per flow class, indexed by
/// `hx_obs::FlowClass::index()` — the canonical `FlowClass::ALL` order —
/// as `(count, p50, p99, max)` cycle tuples. Every value is a pure
/// function of the simulation, so the variable-width encoding cannot leak
/// host nondeterminism into the reply's simulated byte cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowSample {
    /// Simulated-cycle timestamp of the sample.
    pub now: u64,
    /// Completed flows across all classes (including any later dropped
    /// from the buffer — histograms keep counting).
    pub completed: u64,
    /// Completed flows dropped after the flow buffer filled.
    pub dropped: u64,
    /// `end`-style hooks that arrived with nothing pending to close.
    pub orphan_ends: u64,
    /// Guest instant tracepoints observed.
    pub instants: u64,
    /// Per-class `(count, p50, p99, max)` latency summaries, in
    /// `FlowClass::ALL` order.
    pub classes: Vec<(u64, u64, u64, u64)>,
}

impl FlowSample {
    /// Formats as an `F…` payload.
    pub fn format(&self) -> String {
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|(n, p50, p99, max)| format!("{n:x}:{p50:x}:{p99:x}:{max:x}"))
            .collect();
        format!(
            "F{:x};n:{:x};d:{:x};o:{:x};t:{:x};h:{}",
            self.now,
            self.completed,
            self.dropped,
            self.orphan_ends,
            self.instants,
            classes.join(",")
        )
    }

    /// Parses an `F…` payload.
    pub fn parse(payload: &str) -> Option<FlowSample> {
        let body = payload.strip_prefix('F')?;
        let mut parts = body.split(';');
        let now = u64::from_str_radix(parts.next()?, 16).ok()?;
        let mut sample = FlowSample {
            now,
            ..FlowSample::default()
        };
        for part in parts {
            let (k, v) = part.split_once(':')?;
            match k {
                "n" => sample.completed = u64::from_str_radix(v, 16).ok()?,
                "d" => sample.dropped = u64::from_str_radix(v, 16).ok()?,
                "o" => sample.orphan_ends = u64::from_str_radix(v, 16).ok()?,
                "t" => sample.instants = u64::from_str_radix(v, 16).ok()?,
                "h" if !v.is_empty() => {
                    for entry in v.split(',') {
                        let mut fields = entry.split(':');
                        let n = u64::from_str_radix(fields.next()?, 16).ok()?;
                        let p50 = u64::from_str_radix(fields.next()?, 16).ok()?;
                        let p99 = u64::from_str_radix(fields.next()?, 16).ok()?;
                        let max = u64::from_str_radix(fields.next()?, 16).ok()?;
                        if fields.next().is_some() {
                            return None;
                        }
                        sample.classes.push((n, p50, p99, max));
                    }
                }
                _ => {}
            }
        }
        Some(sample)
    }
}

/// Why the guest stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Halted on host request (or initial connection).
    Halted {
        /// Guest PC at the stop.
        pc: u32,
    },
    /// A planted breakpoint fired.
    Breakpoint {
        /// Guest PC of the breakpoint.
        pc: u32,
    },
    /// A single step completed.
    Step {
        /// Guest PC after the step.
        pc: u32,
    },
    /// A write watchpoint fired.
    Watchpoint {
        /// Guest PC of the faulting store.
        pc: u32,
        /// The watched address that was written.
        addr: u32,
    },
    /// The guest took a fault the stub intercepted (it has no handler of
    /// its own, or debug-on-fault is enabled).
    Fault {
        /// Guest PC of the fault.
        pc: u32,
        /// Architectural cause code (`hx_cpu::Cause::code`).
        cause: u32,
    },
    /// A time-travel command (`bs`/`bc`/`bg…`) completed: the guest is
    /// parked at `cycle` on the rewound timeline.
    TimeTravel {
        /// Guest PC at the landing point.
        pc: u32,
        /// Simulated cycle landed on.
        cycle: u64,
    },
}

impl StopReason {
    /// Guest PC at the stop.
    pub fn pc(&self) -> u32 {
        match *self {
            StopReason::Halted { pc }
            | StopReason::Breakpoint { pc }
            | StopReason::Step { pc }
            | StopReason::Watchpoint { pc, .. }
            | StopReason::Fault { pc, .. }
            | StopReason::TimeTravel { pc, .. } => pc,
        }
    }

    /// Formats as a `T…` payload.
    pub fn format(&self) -> String {
        match *self {
            StopReason::Halted { pc } => format!("T0;pc:{pc:x}"),
            StopReason::Breakpoint { pc } => format!("T1;pc:{pc:x}"),
            StopReason::Step { pc } => format!("T2;pc:{pc:x}"),
            StopReason::Watchpoint { pc, addr } => format!("T3;pc:{pc:x};addr:{addr:x}"),
            StopReason::Fault { pc, cause } => format!("T4;pc:{pc:x};cause:{cause:x}"),
            StopReason::TimeTravel { pc, cycle } => format!("T5;pc:{pc:x};cycle:{cycle:x}"),
        }
    }

    /// Formats as a `T…` payload that also names the core the stop happened
    /// on. Core 0 produces the plain (pre-SMP) encoding, so single-core
    /// stubs stay byte-identical on the wire; parsers that predate the `c:`
    /// key skip it as an unknown field.
    pub fn format_on(&self, core: u8) -> String {
        let mut out = self.format();
        if core != 0 {
            out.push_str(&format!(";c:{core:x}"));
        }
        out
    }

    /// Parses a `T…` payload together with the core it stopped on (`c:`
    /// key; absent means core 0).
    pub fn parse_with_core(payload: &str) -> Option<(StopReason, u8)> {
        let reason = StopReason::parse(payload)?;
        let core = payload
            .split(';')
            .find_map(|part| part.strip_prefix("c:"))
            .map_or(Some(0), |v| u8::from_str_radix(v, 16).ok())?;
        Some((reason, core))
    }

    /// Parses a `T…` payload.
    pub fn parse(payload: &str) -> Option<StopReason> {
        let body = payload.strip_prefix('T')?;
        let mut parts = body.split(';');
        let kind = parts.next()?;
        let mut pc = None;
        let mut addr = None;
        let mut cause = None;
        let mut cycle = None;
        for part in parts {
            let (k, v) = part.split_once(':')?;
            // `cycle` is a 64-bit cycle count; the rest are 32-bit values.
            match k {
                "pc" => pc = Some(u32::from_str_radix(v, 16).ok()?),
                "addr" => addr = Some(u32::from_str_radix(v, 16).ok()?),
                "cause" => cause = Some(u32::from_str_radix(v, 16).ok()?),
                "cycle" => cycle = Some(u64::from_str_radix(v, 16).ok()?),
                _ => {}
            }
        }
        let pc = pc?;
        match kind {
            "0" => Some(StopReason::Halted { pc }),
            "1" => Some(StopReason::Breakpoint { pc }),
            "2" => Some(StopReason::Step { pc }),
            "3" => Some(StopReason::Watchpoint { pc, addr: addr? }),
            "4" => Some(StopReason::Fault { pc, cause: cause? }),
            "5" => Some(StopReason::TimeTravel { pc, cycle: cycle? }),
            _ => None,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StopReason::Halted { pc } => write!(f, "halted at {pc:#010x}"),
            StopReason::Breakpoint { pc } => write!(f, "breakpoint at {pc:#010x}"),
            StopReason::Step { pc } => write!(f, "stepped to {pc:#010x}"),
            StopReason::Watchpoint { pc, addr } => {
                write!(f, "watchpoint on {addr:#010x} at {pc:#010x}")
            }
            StopReason::Fault { pc, cause } => {
                write!(f, "fault (cause {cause}) at {pc:#010x}")
            }
            StopReason::TimeTravel { pc, cycle } => {
                write!(f, "time-traveled to cycle {cycle} at {pc:#010x}")
            }
        }
    }
}

/// A stub → debugger reply payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Command succeeded with no data.
    Ok,
    /// Command failed; the code is stub-defined (see `lvmm::stub`).
    Error(u8),
    /// Asynchronous or queried stop reason.
    Stopped(StopReason),
    /// Live monitor statistics (reply to [`Command::QueryStats`]).
    Stats(StatsSample),
    /// Live profiler sample (reply to [`Command::QueryProf`]).
    Prof(ProfSample),
    /// Live host-time attribution sample (reply to
    /// [`Command::QueryMetrics`]).
    Metrics(MetricsSample),
    /// Live causal-flow sample (reply to [`Command::QueryFlow`]).
    Flow(FlowSample),
    /// Answer to [`Command::QueryFirst`]: whether the predicate was
    /// satisfied in the recorded window and, if so, at which cycle. A hit
    /// is followed by an asynchronous [`StopReason::TimeTravel`] stop once
    /// the seek lands.
    Query {
        /// Whether a satisfying cycle was found.
        found: bool,
        /// The first satisfying cycle (the target's current cycle on a
        /// miss).
        cycle: u64,
    },
    /// Hex data (register file or memory contents, per the command sent).
    Hex(Vec<u8>),
}

impl Reply {
    /// Formats the reply as a packet payload.
    pub fn format(&self) -> String {
        match self {
            Reply::Ok => "OK".into(),
            Reply::Error(code) => format!("E{code:02x}"),
            Reply::Stopped(r) => r.format(),
            Reply::Stats(s) => s.format(),
            Reply::Prof(s) => s.format(),
            Reply::Metrics(s) => s.format(),
            Reply::Flow(s) => s.format(),
            Reply::Query { found, cycle } => {
                format!("Q{};c:{cycle:x}", if *found { 1 } else { 0 })
            }
            Reply::Hex(data) => to_hex(data),
        }
    }

    /// Parses a packet payload into a reply.
    pub fn parse(payload: &str) -> Option<Reply> {
        if payload == "OK" {
            return Some(Reply::Ok);
        }
        if let Some(code) = payload.strip_prefix('E') {
            return Some(Reply::Error(u8::from_str_radix(code, 16).ok()?));
        }
        if payload.starts_with('T') {
            return Some(Reply::Stopped(StopReason::parse(payload)?));
        }
        if payload.starts_with('S') {
            return Some(Reply::Stats(StatsSample::parse(payload)?));
        }
        if payload.starts_with('P') {
            return Some(Reply::Prof(ProfSample::parse(payload)?));
        }
        if payload.starts_with('M') {
            return Some(Reply::Metrics(MetricsSample::parse(payload)?));
        }
        // `F` cannot collide with hex data: `to_hex` emits lowercase only.
        if payload.starts_with('F') {
            return Some(Reply::Flow(FlowSample::parse(payload)?));
        }
        if let Some(body) = payload.strip_prefix('Q') {
            let found = match body.chars().next()? {
                '0' => false,
                '1' => true,
                _ => return None,
            };
            let cycle = u64::from_str_radix(body.get(1..)?.strip_prefix(";c:")?, 16).ok()?;
            return Some(Reply::Query { found, cycle });
        }
        from_hex(payload).map(Reply::Hex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn command_examples() {
        assert_eq!(Command::parse("g"), Some(Command::ReadRegisters));
        assert_eq!(
            Command::parse("m1000,40"),
            Some(Command::ReadMemory {
                addr: 0x1000,
                len: 0x40
            })
        );
        assert_eq!(
            Command::parse("M20,2:beef"),
            Some(Command::WriteMemory {
                addr: 0x20,
                data: vec![0xbe, 0xef]
            })
        );
        assert_eq!(
            Command::parse("Z0,104"),
            Some(Command::SetBreakpoint { addr: 0x104 })
        );
        assert_eq!(
            Command::parse("Z2,8000,10"),
            Some(Command::SetWatchpoint {
                addr: 0x8000,
                len: 0x10,
                kind: WatchKind::Write
            })
        );
        assert_eq!(
            Command::parse("Z3,8000,4"),
            Some(Command::SetWatchpoint {
                addr: 0x8000,
                len: 4,
                kind: WatchKind::Read
            })
        );
        assert_eq!(
            Command::parse("z4,8000"),
            Some(Command::ClearWatchpoint { addr: 0x8000 })
        );
        // Condition/logpoint/query commands carry their text hex-encoded.
        assert_eq!(
            Command::parse("Qb,104,7230203d3d2035"),
            Some(Command::SetBreakCondition {
                addr: 0x104,
                expr: "r0 == 5".into()
            })
        );
        assert_eq!(
            Command::parse("Ql,104,686974,"),
            Some(Command::SetLogpoint {
                addr: 0x104,
                label: "hit".into(),
                expr: String::new()
            })
        );
        assert_eq!(
            Command::parse("ql,104"),
            Some(Command::ClearLogpoint { addr: 0x104 })
        );
        assert_eq!(
            Command::parse("Qq,6379636c65"),
            Some(Command::QueryFirst {
                expr: "cycle".into()
            })
        );
        assert_eq!(
            Command::parse("P20=dead"),
            Some(Command::WriteRegister {
                index: 0x20,
                value: 0xdead
            })
        );
        assert_eq!(Command::parse("qStats"), Some(Command::QueryStats));
        assert_eq!(Command::parse("qMetrics"), Some(Command::QueryMetrics));
        assert_eq!(Command::parse("qFlow"), Some(Command::QueryFlow));
        assert_eq!(Command::parse("H"), Some(Command::Halt));
        assert_eq!(Command::parse("Hg1"), Some(Command::SetThread { core: 1 }));
        assert_eq!(Command::parse("T2"), Some(Command::ThreadAlive { core: 2 }));
        assert_eq!(
            Command::parse("qProfa"),
            Some(Command::QueryProf { max: 10 })
        );
        // Malformed inputs are rejected, not panicking.
        for bad in [
            "",
            "m1000",
            "M20,3:beef",
            "Z9,0",
            "Pxx=1",
            "q",
            "Z2",
            "Z5,0,4",
            "qStat",
            "qStatsX",
            "qMetric",
            "qMetricsX",
            "qFlo",
            "qFlowX",
            "qProf",
            "qProfzz",
            "ql,zz",
            "Qb,104",
            "Ql,104,6869",
            "Qx,104,00",
            "Qq,xyz",
            "Hg",
            "Hgzz",
            "Hx1",
            "T",
            "Tzz",
        ] {
            assert_eq!(Command::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn stats_sample_examples() {
        let s = StatsSample {
            now: 0x1234,
            guest: 10,
            monitor: 2,
            host: 0,
            idle: 7,
            decode_hits: 0x40,
            decode_misses: 3,
            fast_fetches: 0x3f,
            decode_invalidations: 1,
            exits: vec![4, 0, 0x99],
            faults: vec![2, 0, 1],
            fault_blocked: 1,
            ..StatsSample::default()
        };
        // A single-core sample never emits the SMP keys: the wire bytes are
        // identical to the pre-SMP encoding.
        assert!(!s.format().contains(";nc:"));
        assert_eq!(StatsSample::parse(&s.format()), Some(s.clone()));
        assert_eq!(
            Reply::parse(&Reply::Stats(s.clone()).format()),
            Some(Reply::Stats(s.clone()))
        );
        // A multi-core sample carries per-core instruction and exit counts.
        let smp = StatsSample {
            cores: 2,
            core_instret: vec![0x100, 0x80],
            core_exits: vec![9, 3],
            ..s
        };
        assert!(smp.format().contains(";nc:2;ci:100,80;cx:9,3"));
        assert_eq!(StatsSample::parse(&smp.format()), Some(smp));
        // No exit counters at all is representable.
        let empty = StatsSample {
            now: 5,
            ..StatsSample::default()
        };
        assert_eq!(StatsSample::parse(&empty.format()), Some(empty));
        // Malformed samples are rejected, not panicking.
        for bad in ["S", "Szz", "S1;g", "S1;g:zz", "S1;x:1,zz", "X1"] {
            assert_eq!(StatsSample::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn prof_sample_examples() {
        let s = ProfSample {
            now: 0x4000,
            interval: 997,
            total_cycles: 0x1234,
            total_samples: 5,
            top: vec![("main".into(), 0x1000, 4), ("[unknown]".into(), 0x234, 1)],
        };
        assert_eq!(ProfSample::parse(&s.format()), Some(s.clone()));
        assert_eq!(
            Reply::parse(&Reply::Prof(s.clone()).format()),
            Some(Reply::Prof(s))
        );
        // An empty profile (no symbols hit yet) is representable.
        let empty = ProfSample {
            now: 9,
            ..ProfSample::default()
        };
        assert_eq!(ProfSample::parse(&empty.format()), Some(empty));
        // Malformed samples are rejected, not panicking.
        for bad in ["P", "Pzz", "P1;v", "P1;v:zz", "P1;t:6d:1", "P1;t:xx:1:2"] {
            assert_eq!(ProfSample::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn metrics_sample_examples() {
        let mut phase_ns = [0u64; METRICS_PHASES];
        phase_ns[0] = 0x1234_5678;
        phase_ns[METRICS_PHASES - 1] = 7;
        let s = MetricsSample {
            now: 0x9000,
            wall_ns: 0x1_0000_0000,
            marks: 42,
            phase_ns,
        };
        assert_eq!(MetricsSample::parse(&s.format()), Some(s.clone()));
        assert_eq!(
            Reply::parse(&Reply::Metrics(s.clone()).format()),
            Some(Reply::Metrics(s.clone()))
        );
        // The encoding is fixed-width: the reply length must not depend on
        // the (nondeterministic, host-clock-derived) values, because reply
        // bytes cost simulated cycles in the stub's cost model.
        let zero = MetricsSample::default();
        assert_eq!(s.format().len(), zero.format().len());
        let max = MetricsSample {
            now: u64::MAX,
            wall_ns: u64::MAX,
            marks: u64::MAX,
            phase_ns: [u64::MAX; METRICS_PHASES],
        };
        assert_eq!(max.format().len(), zero.format().len());
        assert_eq!(MetricsSample::parse(&max.format()), Some(max));
        // Malformed samples are rejected, not panicking: wrong phase
        // counts, bad hex, missing sections.
        for bad in ["M", "Mzz", "M1;w:1;k:1;p:1", "M1;w:1;k:1", "M1;w:zz"] {
            assert_eq!(MetricsSample::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn flow_sample_examples() {
        let s = FlowSample {
            now: 0x2000,
            completed: 12,
            dropped: 0,
            orphan_ends: 1,
            instants: 3,
            classes: vec![
                (5, 0x40, 0x80, 0x9f),
                (5, 0x10, 0x20, 0x2f),
                (0, 0, 0, 0),
                (2, 0x100, 0x100, 0x13f),
                (0, 0, 0, 0),
                (0, 0, 0, 0),
            ],
        };
        assert_eq!(FlowSample::parse(&s.format()), Some(s.clone()));
        assert_eq!(
            Reply::parse(&Reply::Flow(s.clone()).format()),
            Some(Reply::Flow(s))
        );
        // An empty sample (tracker just enabled) is representable.
        let empty = FlowSample {
            now: 9,
            ..FlowSample::default()
        };
        assert_eq!(FlowSample::parse(&empty.format()), Some(empty));
        // Malformed samples are rejected, not panicking.
        for bad in [
            "F",
            "Fzz",
            "F1;n",
            "F1;n:zz",
            "F1;h:1:2:3",
            "F1;h:1:2:3:4:5",
        ] {
            assert_eq!(FlowSample::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn stop_reason_examples() {
        let r = StopReason::Watchpoint {
            pc: 0x104,
            addr: 0x8000,
        };
        assert_eq!(StopReason::parse(&r.format()), Some(r));
        assert_eq!(StopReason::parse("T1"), None, "missing pc");
        assert_eq!(StopReason::parse("T3;pc:4"), None, "missing addr");
        assert!(format!("{r}").contains("watchpoint"));
        // Core 0 keeps the plain (pre-SMP) encoding; other cores append a
        // `c:` key that core-unaware parsers skip.
        assert_eq!(r.format_on(0), r.format());
        assert_eq!(r.format_on(3), format!("{};c:3", r.format()));
        assert_eq!(StopReason::parse(&r.format_on(3)), Some(r));
        assert_eq!(StopReason::parse_with_core(&r.format_on(3)), Some((r, 3)));
        assert_eq!(StopReason::parse_with_core(&r.format()), Some((r, 0)));
        assert_eq!(StopReason::parse_with_core("T3;pc:4;addr:8;c:zz"), None);
    }

    #[test]
    fn reply_examples() {
        assert_eq!(Reply::parse("OK"), Some(Reply::Ok));
        assert_eq!(Reply::parse("E03"), Some(Reply::Error(3)));
        assert_eq!(Reply::parse("dead"), Some(Reply::Hex(vec![0xde, 0xad])));
        assert_eq!(
            Reply::parse("T2;pc:8"),
            Some(Reply::Stopped(StopReason::Step { pc: 8 }))
        );
        assert_eq!(
            Reply::parse("Q1;c:2a"),
            Some(Reply::Query {
                found: true,
                cycle: 42
            })
        );
        assert_eq!(
            Reply::parse("Q0;c:0"),
            Some(Reply::Query {
                found: false,
                cycle: 0
            })
        );
        assert_eq!(Reply::parse("Q2;c:0"), None);
        assert_eq!(Reply::parse("Q1"), None);
        assert_eq!(Reply::parse("xyz"), None);
    }

    fn arb_command() -> impl Strategy<Value = Command> {
        prop_oneof![
            Just(Command::Halt),
            Just(Command::QueryStop),
            Just(Command::ReadRegisters),
            Just(Command::Step),
            Just(Command::Continue),
            Just(Command::Reset),
            Just(Command::QueryStats),
            any::<u8>().prop_map(|max| Command::QueryProf { max }),
            Just(Command::QueryMetrics),
            Just(Command::QueryFlow),
            (any::<u8>(), any::<u32>())
                .prop_map(|(index, value)| Command::WriteRegister { index, value }),
            (any::<u32>(), any::<u32>()).prop_map(|(addr, len)| Command::ReadMemory { addr, len }),
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(addr, data)| Command::WriteMemory { addr, data }),
            any::<u32>().prop_map(|addr| Command::SetBreakpoint { addr }),
            any::<u32>().prop_map(|addr| Command::ClearBreakpoint { addr }),
            (any::<u32>(), 1u32..4096, arb_watch_kind())
                .prop_map(|(addr, len, kind)| Command::SetWatchpoint { addr, len, kind }),
            any::<u32>().prop_map(|addr| Command::ClearWatchpoint { addr }),
            (any::<u32>(), "\\PC{0,16}")
                .prop_map(|(addr, expr)| Command::SetBreakCondition { addr, expr }),
            (any::<u32>(), "\\PC{0,16}")
                .prop_map(|(addr, expr)| Command::SetWatchCondition { addr, expr }),
            (any::<u32>(), "\\PC{0,8}", "\\PC{0,16}")
                .prop_map(|(addr, label, expr)| Command::SetLogpoint { addr, label, expr }),
            any::<u32>().prop_map(|addr| Command::ClearLogpoint { addr }),
            "\\PC{0,16}".prop_map(|expr| Command::QueryFirst { expr }),
            Just(Command::ReverseStep),
            Just(Command::ReverseContinue),
            any::<u64>().prop_map(|cycle| Command::Seek { cycle }),
            any::<u32>().prop_map(|core| Command::SetThread { core }),
            any::<u32>().prop_map(|core| Command::ThreadAlive { core }),
        ]
    }

    fn arb_watch_kind() -> impl Strategy<Value = WatchKind> {
        proptest::sample::select(&[WatchKind::Write, WatchKind::Read, WatchKind::Access])
    }

    fn arb_stop() -> impl Strategy<Value = StopReason> {
        prop_oneof![
            any::<u32>().prop_map(|pc| StopReason::Halted { pc }),
            any::<u32>().prop_map(|pc| StopReason::Breakpoint { pc }),
            any::<u32>().prop_map(|pc| StopReason::Step { pc }),
            (any::<u32>(), any::<u32>()).prop_map(|(pc, addr)| StopReason::Watchpoint { pc, addr }),
            (any::<u32>(), 0u32..16).prop_map(|(pc, cause)| StopReason::Fault { pc, cause }),
            (any::<u32>(), any::<u64>())
                .prop_map(|(pc, cycle)| StopReason::TimeTravel { pc, cycle }),
        ]
    }

    fn arb_stats() -> impl Strategy<Value = StatsSample> {
        (
            (
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
            ),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            (
                proptest::collection::vec(any::<u64>(), 0..12),
                proptest::collection::vec(any::<u64>(), 0..6),
                any::<u64>(),
            ),
            arb_stats_smp(),
        )
            .prop_map(
                |(
                    (now, guest, monitor, host, idle),
                    (dh, dm, df, dv),
                    (exits, faults, fb),
                    (cores, core_instret, core_exits),
                )| {
                    StatsSample {
                        now,
                        guest,
                        monitor,
                        host,
                        idle,
                        decode_hits: dh,
                        decode_misses: dm,
                        fast_fetches: df,
                        decode_invalidations: dv,
                        exits,
                        faults,
                        fault_blocked: fb,
                        cores,
                        core_instret,
                        core_exits,
                    }
                },
            )
    }

    /// SMP stats fields that survive a roundtrip: either no SMP data at all
    /// (the single-core encoding drops the keys, so the vectors must be
    /// empty and the count zero) or 2+ cores with per-core vectors.
    fn arb_stats_smp() -> impl Strategy<Value = (u64, Vec<u64>, Vec<u64>)> {
        (
            0u64..4,
            proptest::collection::vec(any::<u64>(), 4..5),
            proptest::collection::vec(any::<u64>(), 4..5),
        )
            .prop_map(|(sel, ci, cx)| {
                if sel < 2 {
                    (0, Vec::new(), Vec::new())
                } else {
                    (
                        sel,
                        ci[..sel as usize].to_vec(),
                        cx[..sel as usize].to_vec(),
                    )
                }
            })
    }

    fn arb_prof() -> impl Strategy<Value = ProfSample> {
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(("\\PC{0,12}", any::<u64>(), any::<u64>()), 0..8),
        )
            .prop_map(
                |(now, interval, total_cycles, total_samples, top)| ProfSample {
                    now,
                    interval,
                    total_cycles,
                    total_samples,
                    top,
                },
            )
    }

    fn arb_flow() -> impl Strategy<Value = FlowSample> {
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(
                (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
                0..FLOW_CLASSES + 2,
            ),
        )
            .prop_map(
                |(now, completed, dropped, orphan_ends, instants, classes)| FlowSample {
                    now,
                    completed,
                    dropped,
                    orphan_ends,
                    instants,
                    classes,
                },
            )
    }

    fn arb_metrics() -> impl Strategy<Value = MetricsSample> {
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u64>(), METRICS_PHASES..METRICS_PHASES + 1),
        )
            .prop_map(|(now, wall_ns, marks, phases)| MetricsSample {
                now,
                wall_ns,
                marks,
                phase_ns: phases.try_into().unwrap(),
            })
    }

    proptest! {
        #[test]
        fn command_roundtrip(cmd in arb_command()) {
            prop_assert_eq!(Command::parse(&cmd.format()), Some(cmd));
        }

        #[test]
        fn metrics_roundtrip_and_fixed_width(sample in arb_metrics()) {
            let wire = sample.format();
            prop_assert_eq!(wire.len(), MetricsSample::default().format().len());
            let r = Reply::Metrics(sample);
            prop_assert_eq!(Reply::parse(&wire), Some(r));
        }

        #[test]
        fn stats_roundtrip(sample in arb_stats()) {
            let r = Reply::Stats(sample);
            prop_assert_eq!(Reply::parse(&r.format()), Some(r));
        }

        #[test]
        fn prof_roundtrip(sample in arb_prof()) {
            let r = Reply::Prof(sample);
            prop_assert_eq!(Reply::parse(&r.format()), Some(r));
        }

        #[test]
        fn flow_roundtrip(sample in arb_flow()) {
            let r = Reply::Flow(sample);
            prop_assert_eq!(Reply::parse(&r.format()), Some(r));
        }

        #[test]
        fn reply_roundtrip(stop in arb_stop()) {
            let r = Reply::Stopped(stop);
            prop_assert_eq!(Reply::parse(&r.format()), Some(r));
        }

        #[test]
        fn stop_core_roundtrip(stop in arb_stop(), core in any::<u8>()) {
            prop_assert_eq!(
                StopReason::parse_with_core(&stop.format_on(core)),
                Some((stop, core))
            );
            // Core-unaware parsers still read the reason itself.
            prop_assert_eq!(StopReason::parse(&stop.format_on(core)), Some(stop));
        }

    }

    proptest! {
        #[test]
        fn query_reply_roundtrip(fc in (any::<bool>(), any::<u64>())) {
            let (found, cycle) = fc;
            let r = Reply::Query { found, cycle };
            prop_assert_eq!(Reply::parse(&r.format()), Some(r));
        }

        #[test]
        fn command_parse_total(s in "\\PC{0,40}") {
            let _ = Command::parse(&s); // must not panic
        }

        #[test]
        fn reply_parse_total(s in "\\PC{0,40}") {
            let _ = Reply::parse(&s); // must not panic
        }
    }
}
