//! Packet framing: `$<payload>#<checksum>` with `+`/`-` acknowledgements.
//!
//! The checksum is the modulo-256 sum of the payload bytes, written as two
//! lowercase hex digits. Payloads are ASCII by construction (binary data is
//! hex-encoded one level up, in [`crate::msg`]), so no escaping is needed.
//! A raw `0x03` byte outside a packet is the break-in request
//! ([`BREAK_BYTE`]), used by the host to halt a running guest.

/// Out-of-band "halt the target" byte (like GDB's `^C`).
pub const BREAK_BYTE: u8 = 0x03;

/// Positive acknowledgement byte.
pub const ACK: u8 = b'+';

/// Negative acknowledgement byte (retransmit request).
pub const NAK: u8 = b'-';

fn checksum(payload: &[u8]) -> u8 {
    payload.iter().fold(0u8, |a, &b| a.wrapping_add(b))
}

/// Frames a payload into a `$payload#ck` packet.
///
/// # Panics
///
/// Panics if the payload contains `$`, `#` or the break byte — callers
/// produce ASCII command text that never includes them.
pub fn encode_packet(payload: &str) -> Vec<u8> {
    assert!(
        payload
            .bytes()
            .all(|b| b != b'$' && b != b'#' && b != BREAK_BYTE),
        "payload must not contain framing bytes"
    );
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.push(b'$');
    out.extend_from_slice(payload.as_bytes());
    out.push(b'#');
    let ck = checksum(payload.as_bytes());
    out.extend_from_slice(format!("{ck:02x}").as_bytes());
    out
}

/// What the parser extracted from the byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireEvent {
    /// A complete, checksum-valid packet payload. The receiver should send
    /// [`ACK`].
    Packet(String),
    /// A corrupt packet was discarded. The receiver should send [`NAK`].
    Corrupt,
    /// The break-in byte arrived outside a packet.
    BreakIn,
    /// The peer acknowledged our last packet.
    Ack,
    /// The peer rejected our last packet (retransmit).
    Nak,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    Idle,
    Payload(Vec<u8>),
    Check(Vec<u8>, Option<u8>),
}

/// Incremental packet parser; feed it bytes, drain [`WireEvent`]s.
///
/// The parser is total: arbitrary garbage produces at worst
/// [`WireEvent::Corrupt`] events, never a panic — property-tested, since the
/// stub must survive a hostile or broken serial line.
#[derive(Debug, Clone)]
pub struct PacketParser {
    state: State,
    events: Vec<WireEvent>,
}

impl Default for PacketParser {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketParser {
    /// Creates an idle parser.
    pub fn new() -> PacketParser {
        PacketParser {
            state: State::Idle,
            events: Vec::new(),
        }
    }

    /// Feeds received bytes into the parser.
    pub fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push_byte(b);
        }
    }

    fn push_byte(&mut self, b: u8) {
        self.state = match std::mem::replace(&mut self.state, State::Idle) {
            State::Idle => match b {
                b'$' => State::Payload(Vec::new()),
                BREAK_BYTE => {
                    self.events.push(WireEvent::BreakIn);
                    State::Idle
                }
                ACK => {
                    self.events.push(WireEvent::Ack);
                    State::Idle
                }
                NAK => {
                    self.events.push(WireEvent::Nak);
                    State::Idle
                }
                _ => State::Idle, // line noise between packets
            },
            State::Payload(mut buf) => match b {
                b'#' => State::Check(buf, None),
                b'$' => State::Payload(Vec::new()), // restart on stray '$'
                _ => {
                    buf.push(b);
                    State::Payload(buf)
                }
            },
            State::Check(buf, _) if b == b'$' => {
                // A new packet start aborts a truncated one.
                self.events.push(WireEvent::Corrupt);
                let _ = buf;
                State::Payload(Vec::new())
            }
            State::Check(buf, first) => match first {
                None => State::Check(buf, Some(b)),
                Some(hi) => {
                    let ck = hex_val(hi).zip(hex_val(b)).map(|(h, l)| h * 16 + l);
                    match (ck, String::from_utf8(buf.clone())) {
                        (Some(ck), Ok(s)) if ck == checksum(&buf) => {
                            self.events.push(WireEvent::Packet(s));
                        }
                        _ => self.events.push(WireEvent::Corrupt),
                    }
                    State::Idle
                }
            },
        };
    }

    /// Takes the next parsed event, if any.
    pub fn next_event(&mut self) -> Option<WireEvent> {
        if self.events.is_empty() {
            None
        } else {
            Some(self.events.remove(0))
        }
    }
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Hex-encodes bytes (lowercase).
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Decodes a lowercase/uppercase hex string into bytes.
///
/// Returns `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return None;
    }
    b.chunks(2)
        .map(|p| hex_val(p[0]).zip(hex_val(p[1])).map(|(h, l)| h * 16 + l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_roundtrip() {
        let pkt = encode_packet("m1000,40");
        assert_eq!(pkt[0], b'$');
        let mut p = PacketParser::new();
        p.push(&pkt);
        assert_eq!(p.next_event(), Some(WireEvent::Packet("m1000,40".into())));
        assert_eq!(p.next_event(), None);
    }

    #[test]
    fn bad_checksum_is_corrupt() {
        let mut pkt = encode_packet("g");
        let n = pkt.len();
        pkt[n - 1] ^= 1;
        let mut p = PacketParser::new();
        p.push(&pkt);
        assert_eq!(p.next_event(), Some(WireEvent::Corrupt));
    }

    #[test]
    fn break_and_acks() {
        let mut p = PacketParser::new();
        p.push(&[BREAK_BYTE, ACK, NAK]);
        assert_eq!(p.next_event(), Some(WireEvent::BreakIn));
        assert_eq!(p.next_event(), Some(WireEvent::Ack));
        assert_eq!(p.next_event(), Some(WireEvent::Nak));
    }

    #[test]
    fn noise_between_packets_ignored() {
        let mut p = PacketParser::new();
        p.push(b"xyz");
        p.push(&encode_packet("?"));
        assert_eq!(p.next_event(), Some(WireEvent::Packet("?".into())));
    }

    #[test]
    fn split_delivery() {
        let pkt = encode_packet("m1000,40");
        let mut p = PacketParser::new();
        for b in pkt {
            p.push(&[b]);
        }
        assert_eq!(p.next_event(), Some(WireEvent::Packet("m1000,40".into())));
    }

    #[test]
    fn restart_on_stray_dollar() {
        let mut p = PacketParser::new();
        p.push(b"$abc$");
        p.push(&encode_packet("ok")[1..]); // continues the second packet
        assert_eq!(p.next_event(), Some(WireEvent::Packet("ok".into())));
    }

    #[test]
    fn hex_helpers() {
        assert_eq!(to_hex(&[0xde, 0xad]), "dead");
        assert_eq!(from_hex("dead"), Some(vec![0xde, 0xad]));
        assert_eq!(from_hex("DEAD"), Some(vec![0xde, 0xad]));
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex(""), Some(vec![]));
    }

    proptest! {
        /// The parser never panics and the encoder round-trips through it,
        /// regardless of surrounding garbage.
        #[test]
        fn parser_total_and_roundtrips(
            payload in "[ -\"%-~]{0,64}",   // printable ASCII minus $, #
            garbage in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut p = PacketParser::new();
            p.push(&garbage);
            while p.next_event().is_some() {}
            p.push(&encode_packet(&payload));
            // Drain; the last packet-type event must be our payload.
            let mut found = None;
            while let Some(ev) = p.next_event() {
                if let WireEvent::Packet(s) = ev {
                    found = Some(s);
                }
            }
            prop_assert_eq!(found, Some(payload));
        }

        #[test]
        fn hex_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            prop_assert_eq!(from_hex(&to_hex(&bytes)), Some(bytes));
        }
    }
}
