//! Packet framing: `$<payload>#<checksum>` with `+`/`-` acknowledgements.
//!
//! The checksum is the modulo-256 sum of the payload bytes *as transmitted*
//! (escaped form), written as two lowercase hex digits. Payloads that
//! contain framing bytes are escaped GDB-style: `}` followed by the byte
//! XOR [`ESCAPE_XOR`]. GDB proper XORs with `0x20`, but that maps `#` to
//! `0x03` — and this protocol treats a raw `0x03` on the wire as the
//! out-of-band break-in request ([`BREAK_BYTE`]) in *every* parser state,
//! so the escape constant is `0x40` instead, which keeps every escaped
//! byte printable. A break must never be swallowed just because line
//! corruption opened a phantom packet: a runaway guest has to be haltable
//! over a dirty line.

/// Out-of-band "halt the target" byte (like GDB's `^C`).
pub const BREAK_BYTE: u8 = 0x03;

/// Positive acknowledgement byte.
pub const ACK: u8 = b'+';

/// Negative acknowledgement byte (retransmit request).
pub const NAK: u8 = b'-';

/// Escape introducer inside a payload (GDB's `}`).
pub const ESCAPE: u8 = b'}';

/// Escaped bytes are XORed with this constant (see module docs for why it
/// is not GDB's `0x20`).
pub const ESCAPE_XOR: u8 = 0x40;

/// Must this byte be escaped inside a payload?
fn needs_escape(b: u8) -> bool {
    matches!(b, b'$' | b'#' | ESCAPE | BREAK_BYTE)
}

/// Frames a payload into a `$payload#ck` packet, escaping `$`, `#`, `}`
/// and the break byte so any payload — including a corrupted or hostile
/// symbol name coming back through `qProf` — is transmittable.
pub fn encode_packet(payload: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.push(b'$');
    let mut sum = 0u8;
    for &b in payload.as_bytes() {
        if needs_escape(b) {
            out.push(ESCAPE);
            out.push(b ^ ESCAPE_XOR);
            sum = sum.wrapping_add(ESCAPE).wrapping_add(b ^ ESCAPE_XOR);
        } else {
            out.push(b);
            sum = sum.wrapping_add(b);
        }
    }
    out.push(b'#');
    out.extend_from_slice(format!("{sum:02x}").as_bytes());
    out
}

/// What the parser extracted from the byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireEvent {
    /// A complete, checksum-valid packet payload. The receiver should send
    /// [`ACK`].
    Packet(String),
    /// A corrupt packet was discarded. The receiver should send [`NAK`].
    Corrupt,
    /// The break-in byte arrived (out-of-band in every state).
    BreakIn,
    /// The peer acknowledged our last packet.
    Ack,
    /// The peer rejected our last packet (retransmit).
    Nak,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    Idle,
    Payload {
        /// Decoded (unescaped) payload bytes.
        buf: Vec<u8>,
        /// Running checksum over the bytes as transmitted.
        sum: u8,
        /// The previous byte was the escape introducer.
        esc: bool,
    },
    Check {
        buf: Vec<u8>,
        sum: u8,
        first: Option<u8>,
    },
}

/// Incremental packet parser; feed it bytes, drain [`WireEvent`]s.
///
/// The parser is total: arbitrary garbage produces at worst
/// [`WireEvent::Corrupt`] events, never a panic — property-tested, since the
/// stub must survive a hostile or broken serial line. [`BREAK_BYTE`] is
/// honoured in every state: mid-payload or mid-checksum it aborts the
/// packet (as [`WireEvent::Corrupt`]) *and* reports [`WireEvent::BreakIn`].
#[derive(Debug, Clone)]
pub struct PacketParser {
    state: State,
    events: std::collections::VecDeque<WireEvent>,
}

impl Default for PacketParser {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketParser {
    /// Creates an idle parser.
    pub fn new() -> PacketParser {
        PacketParser {
            state: State::Idle,
            events: std::collections::VecDeque::new(),
        }
    }

    /// Feeds received bytes into the parser.
    pub fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push_byte(b);
        }
    }

    fn push_byte(&mut self, b: u8) {
        // Framing bytes win over everything, even a pending escape: our
        // encoder never emits them raw inside a packet, so seeing one means
        // the line lost bytes. The break byte additionally reports BreakIn —
        // it is the host's halt request and must survive any parser state.
        if b == BREAK_BYTE {
            if !matches!(self.state, State::Idle) {
                self.events.push_back(WireEvent::Corrupt);
            }
            self.events.push_back(WireEvent::BreakIn);
            self.state = State::Idle;
            return;
        }
        self.state = match std::mem::replace(&mut self.state, State::Idle) {
            State::Idle => match b {
                b'$' => State::Payload {
                    buf: Vec::new(),
                    sum: 0,
                    esc: false,
                },
                ACK => {
                    self.events.push_back(WireEvent::Ack);
                    State::Idle
                }
                NAK => {
                    self.events.push_back(WireEvent::Nak);
                    State::Idle
                }
                _ => State::Idle, // line noise between packets
            },
            State::Payload { mut buf, sum, esc } => match b {
                b'#' => State::Check {
                    buf,
                    sum,
                    first: None,
                },
                b'$' => State::Payload {
                    // Restart on stray '$' (dropped terminator upstream).
                    buf: Vec::new(),
                    sum: 0,
                    esc: false,
                },
                ESCAPE if !esc => State::Payload {
                    buf,
                    sum: sum.wrapping_add(b),
                    esc: true,
                },
                _ => {
                    buf.push(if esc { b ^ ESCAPE_XOR } else { b });
                    State::Payload {
                        buf,
                        sum: sum.wrapping_add(b),
                        esc: false,
                    }
                }
            },
            State::Check { buf, sum, first } => match b {
                b'$' => {
                    // A new packet start aborts a truncated one.
                    self.events.push_back(WireEvent::Corrupt);
                    let _ = buf;
                    State::Payload {
                        buf: Vec::new(),
                        sum: 0,
                        esc: false,
                    }
                }
                _ => match first {
                    None => State::Check {
                        buf,
                        sum,
                        first: Some(b),
                    },
                    Some(hi) => {
                        let ck = hex_val(hi).zip(hex_val(b)).map(|(h, l)| h * 16 + l);
                        match (ck, String::from_utf8(buf)) {
                            (Some(ck), Ok(s)) if ck == sum => {
                                self.events.push_back(WireEvent::Packet(s));
                            }
                            _ => self.events.push_back(WireEvent::Corrupt),
                        }
                        State::Idle
                    }
                },
            },
        };
    }

    /// Takes the next parsed event, if any. The queue is a `VecDeque`, so a
    /// burst of N events drains in O(N), not O(N²).
    pub fn next_event(&mut self) -> Option<WireEvent> {
        self.events.pop_front()
    }
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Hex-encodes bytes (lowercase).
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Decodes a lowercase/uppercase hex string into bytes.
///
/// Returns `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return None;
    }
    b.chunks(2)
        .map(|p| hex_val(p[0]).zip(hex_val(p[1])).map(|(h, l)| h * 16 + l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_roundtrip() {
        let pkt = encode_packet("m1000,40");
        assert_eq!(pkt[0], b'$');
        let mut p = PacketParser::new();
        p.push(&pkt);
        assert_eq!(p.next_event(), Some(WireEvent::Packet("m1000,40".into())));
        assert_eq!(p.next_event(), None);
    }

    #[test]
    fn framing_bytes_are_escaped_not_fatal() {
        // The old encoder asserted on these; a hostile symbol name coming
        // back through qProf would kill the debugger. Now they round-trip.
        for payload in ["a$b", "a#b", "a}b", "a\u{3}b", "$#}\u{3}", "}"] {
            let pkt = encode_packet(payload);
            assert!(
                pkt[1..pkt.len() - 3]
                    .iter()
                    .all(|&b| !matches!(b, b'$' | b'#' | BREAK_BYTE)),
                "framing bytes must not appear raw on the wire: {pkt:?}"
            );
            let mut p = PacketParser::new();
            p.push(&pkt);
            assert_eq!(
                p.next_event(),
                Some(WireEvent::Packet(payload.into())),
                "payload {payload:?}"
            );
            assert_eq!(p.next_event(), None, "no stray events for {payload:?}");
        }
    }

    #[test]
    fn bad_checksum_is_corrupt() {
        let mut pkt = encode_packet("g");
        let n = pkt.len();
        pkt[n - 1] ^= 1;
        let mut p = PacketParser::new();
        p.push(&pkt);
        assert_eq!(p.next_event(), Some(WireEvent::Corrupt));
    }

    #[test]
    fn break_and_acks() {
        let mut p = PacketParser::new();
        p.push(&[BREAK_BYTE, ACK, NAK]);
        assert_eq!(p.next_event(), Some(WireEvent::BreakIn));
        assert_eq!(p.next_event(), Some(WireEvent::Ack));
        assert_eq!(p.next_event(), Some(WireEvent::Nak));
    }

    #[test]
    fn break_mid_payload_is_out_of_band() {
        // Line corruption opens a phantom packet; the host's break-in must
        // still get through (and the phantom is reported corrupt).
        let mut p = PacketParser::new();
        p.push(b"$phantom");
        p.push(&[BREAK_BYTE]);
        assert_eq!(p.next_event(), Some(WireEvent::Corrupt));
        assert_eq!(p.next_event(), Some(WireEvent::BreakIn));
        assert_eq!(p.next_event(), None);
        // And the parser is back in a usable state.
        p.push(&encode_packet("?"));
        assert_eq!(p.next_event(), Some(WireEvent::Packet("?".into())));
    }

    #[test]
    fn break_mid_checksum_is_out_of_band() {
        let mut p = PacketParser::new();
        p.push(b"$g#6");
        p.push(&[BREAK_BYTE]);
        assert_eq!(p.next_event(), Some(WireEvent::Corrupt));
        assert_eq!(p.next_event(), Some(WireEvent::BreakIn));
    }

    #[test]
    fn break_after_escape_is_out_of_band() {
        let mut p = PacketParser::new();
        p.push(b"$ab}");
        p.push(&[BREAK_BYTE]);
        assert_eq!(p.next_event(), Some(WireEvent::Corrupt));
        assert_eq!(p.next_event(), Some(WireEvent::BreakIn));
    }

    #[test]
    fn noise_between_packets_ignored() {
        let mut p = PacketParser::new();
        p.push(b"xyz");
        p.push(&encode_packet("?"));
        assert_eq!(p.next_event(), Some(WireEvent::Packet("?".into())));
    }

    #[test]
    fn split_delivery() {
        let pkt = encode_packet("m1000,40");
        let mut p = PacketParser::new();
        for b in pkt {
            p.push(&[b]);
        }
        assert_eq!(p.next_event(), Some(WireEvent::Packet("m1000,40".into())));
    }

    #[test]
    fn restart_on_stray_dollar() {
        let mut p = PacketParser::new();
        p.push(b"$abc$");
        p.push(&encode_packet("ok")[1..]); // continues the second packet
        assert_eq!(p.next_event(), Some(WireEvent::Packet("ok".into())));
    }

    #[test]
    fn event_queue_drains_fifo() {
        let mut p = PacketParser::new();
        for i in 0..100u8 {
            p.push(&encode_packet(&format!("n{i}")));
        }
        for i in 0..100u8 {
            assert_eq!(p.next_event(), Some(WireEvent::Packet(format!("n{i}"))));
        }
        assert_eq!(p.next_event(), None);
    }

    #[test]
    fn hex_helpers() {
        assert_eq!(to_hex(&[0xde, 0xad]), "dead");
        assert_eq!(from_hex("dead"), Some(vec![0xde, 0xad]));
        assert_eq!(from_hex("DEAD"), Some(vec![0xde, 0xad]));
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex(""), Some(vec![]));
    }

    proptest! {
        /// The parser never panics and the encoder round-trips through it,
        /// regardless of surrounding garbage — including payloads full of
        /// framing bytes, which the escape layer now handles.
        #[test]
        fn parser_total_and_roundtrips(
            payload in "[ -~]{0,64}",        // all printable ASCII, $ # } included
            garbage in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut p = PacketParser::new();
            p.push(&garbage);
            while p.next_event().is_some() {}
            p.push(&encode_packet(&payload));
            // Drain; the last packet-type event must be our payload.
            let mut found = None;
            while let Some(ev) = p.next_event() {
                if let WireEvent::Packet(s) = ev {
                    found = Some(s);
                }
            }
            prop_assert_eq!(found, Some(payload));
        }

        /// A break byte anywhere in the stream always surfaces as BreakIn.
        #[test]
        fn break_always_surfaces(
            prefix in proptest::collection::vec(any::<u8>(), 0..48),
            suffix in proptest::collection::vec(any::<u8>(), 0..16),
        ) {
            let prefix: Vec<u8> = prefix.into_iter().filter(|&b| b != BREAK_BYTE).collect();
            let mut p = PacketParser::new();
            p.push(&prefix);
            p.push(&[BREAK_BYTE]);
            p.push(&suffix);
            let mut saw_break = false;
            while let Some(ev) = p.next_event() {
                if ev == WireEvent::BreakIn {
                    saw_break = true;
                }
            }
            prop_assert!(saw_break, "break byte swallowed by parser state");
        }

        #[test]
        fn hex_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            prop_assert_eq!(from_hex(&to_hex(&bytes)), Some(bytes))
        }
    }
}
