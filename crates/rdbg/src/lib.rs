//! Remote-debugging wire protocol and host-side debugger client.
//!
//! This crate is the "software remote debugger" half of the paper's Fig. 2.1
//! plus the wire protocol it shares with the debug stub embedded in the
//! lightweight virtual machine monitor (`lvmm` crate). The split mirrors
//! classical remote debugging:
//!
//! ```text
//!  host machine                          target machine
//!  +---------------+   serial bytes    +--------------------------+
//!  | Debugger (us) | <---------------> | stub in the monitor      |
//!  +---------------+                   | (rdbg::msg is shared)    |
//!                                      +--------------------------+
//! ```
//!
//! The protocol is GDB-remote-serial-protocol-shaped: `$payload#ck` framing
//! with `+`/`-` acknowledgements, `}`-escaping for payload bytes that
//! collide with framing ([`wire`]), ASCII command payloads ([`msg`]), and an
//! out-of-band break-in byte (`0x03`) to halt a running guest.
//!
//! The host client ([`Debugger`]) is transport-agnostic: anything that can
//! move bytes to and from the target implements [`Link`]. In this
//! repository the link is the simulated machine's UART; [`LossyLink`] wraps
//! any link with deterministic byte-level faults for survivability testing.

pub mod debugger;
pub mod lossy;
pub mod msg;
pub mod wire;

pub use debugger::{err_name, DbgError, Debugger, Link, Registers};
pub use lossy::LossyLink;
pub use msg::{
    Command, FlowSample, MetricsSample, ProfSample, Reply, StatsSample, StopReason, WatchKind,
    FLOW_CLASSES, METRICS_PHASES,
};
pub use wire::{encode_packet, from_hex, to_hex, PacketParser, WireEvent, ACK, BREAK_BYTE, NAK};

/// Compile-time proof a whole debug session can migrate to another thread:
/// [`Link: Send`](Link) makes every `Debugger<L>` `Send` by construction.
#[allow(dead_code)]
fn assert_send_types<L: Link>() {
    fn is_send<T: Send>() {}
    is_send::<Debugger<L>>();
    is_send::<Box<dyn Link>>();
}
