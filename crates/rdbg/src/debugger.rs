//! The host-side remote debugger.

use crate::msg::{
    Command, FlowSample, MetricsSample, ProfSample, Reply, StatsSample, StopReason, WatchKind,
};
use crate::wire::{encode_packet, PacketParser, WireEvent, ACK, BREAK_BYTE, NAK};
use core::fmt;
use std::collections::VecDeque;

/// Transport between the host debugger and the target's debug stub.
///
/// In this repository the link is the simulated machine's UART: `send`
/// queues host→target bytes and `pump` runs the target platform for a slice
/// and drains whatever the stub transmitted. A trivial in-process stub works
/// too (see the tests).
///
/// `Send` is a supertrait so a whole debug session — `Debugger` plus the
/// platform (or socket) inside its link — can migrate to a farm worker
/// thread.
pub trait Link: Send {
    /// Queues bytes toward the target.
    fn send(&mut self, bytes: &[u8]);

    /// Lets the target run briefly; returns bytes it produced (possibly
    /// empty). The debugger calls this repeatedly while waiting.
    fn pump(&mut self) -> Vec<u8>;
}

/// Debugger-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbgError {
    /// The target produced no (valid) reply within the pump budget.
    Timeout,
    /// The target replied, but not with something this command permits.
    Protocol(String),
    /// The stub reported an error code (see `lvmm::stub` for meanings).
    Target(u8),
}

/// Human-readable name for a stub error code. The codes are defined by the
/// in-monitor stub (`lvmm::stub::err`); this table mirrors them so the host
/// can print `E04 (guest not stopped)` instead of a bare number. A test on
/// the stub side keeps the two in sync.
pub fn err_name(code: u8) -> Option<&'static str> {
    Some(match code {
        1 => "malformed packet",
        2 => "bad register index",
        3 => "unmapped guest memory",
        4 => "guest not stopped",
        5 => "bad breakpoint or watchpoint",
        6 => "flight recorder unavailable",
        7 => "profiler unavailable",
        8 => "bad query expression",
        10 => "metrics unavailable",
        11 => "no such core",
        12 => "causal tracing unavailable",
        _ => return None,
    })
}

impl fmt::Display for DbgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbgError::Timeout => write!(f, "target did not reply"),
            DbgError::Protocol(s) => write!(f, "protocol violation: {s}"),
            DbgError::Target(code) => match err_name(*code) {
                Some(name) => write!(f, "target error E{code:02x} ({name})"),
                None => write!(f, "target error E{code:02x}"),
            },
        }
    }
}

impl std::error::Error for DbgError {}

/// A full register snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registers {
    /// `r0`–`r31`.
    pub gprs: [u32; 32],
    /// Program counter.
    pub pc: u32,
}

impl Registers {
    /// The value of register `index` (`0..32` GPRs).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn gpr(&self, index: usize) -> u32 {
        self.gprs[index]
    }
}

/// Maximum memory bytes moved per packet (larger requests are chunked).
const MEM_CHUNK: u32 = 256;

/// How many empty pumps the debugger tolerates before declaring a timeout.
const PUMP_BUDGET: usize = 20_000;

/// Transactions are attempted this many times before giving up: the first
/// send plus bounded retransmissions, each with a doubled pump budget
/// (backoff), so a silently-dropped packet costs a retry, not a wedge.
const MAX_ATTEMPTS: u32 = 4;

/// NAKs tolerated within one transaction before declaring the line dead.
const MAX_NAKS: usize = 16;

/// Consecutive empty pumps that mark the line as drained of stale traffic
/// before a new transaction sends its command.
const DRAIN_QUIET: usize = 4;

/// The host-side debugger client (the paper's "software remote debugger").
///
/// # Example
///
/// See `examples/debug_session.rs` in the repository root, which connects a
/// `Debugger` over the simulated UART to the stub inside the lightweight
/// monitor and walks a breakpoint/step/inspect session.
#[derive(Debug)]
pub struct Debugger<L> {
    link: L,
    parser: PacketParser,
    stops: VecDeque<(StopReason, u8)>,
    last_core: u8,
    pump_budget: usize,
}

impl<L: Link> Debugger<L> {
    /// Wraps a link.
    pub fn new(link: L) -> Debugger<L> {
        Debugger {
            link,
            parser: PacketParser::new(),
            stops: VecDeque::new(),
            last_core: 0,
            pump_budget: PUMP_BUDGET,
        }
    }

    /// Overrides the base pump budget (empty pumps tolerated before a
    /// timeout/retry). Mostly for tests and fault campaigns, where a tight
    /// budget keeps a deliberately-dead line from dominating wall-clock.
    pub fn set_pump_budget(&mut self, budget: usize) {
        self.pump_budget = budget.max(1);
    }

    /// Consumes the debugger, returning the link.
    pub fn into_link(self) -> L {
        self.link
    }

    /// Borrows the underlying link (e.g. to inspect the platform behind a
    /// simulated transport).
    pub fn link_ref(&self) -> &L {
        &self.link
    }

    /// Mutably borrows the underlying link.
    pub fn link_mut(&mut self) -> &mut L {
        &mut self.link
    }

    /// Requests an immediate halt (break-in) and waits for the stop report.
    ///
    /// # Errors
    ///
    /// [`DbgError::Timeout`] if the target never stops — on the lightweight
    /// monitor this works even when the guest OS is wedged, which is the
    /// paper's stability claim.
    pub fn halt(&mut self) -> Result<StopReason, DbgError> {
        // The break byte is a single octet with no checksum: on a lossy line
        // it can vanish without trace, so retry the whole exchange a bounded
        // number of times rather than trusting one shot.
        let mut last = Err(DbgError::Timeout);
        for _ in 0..MAX_ATTEMPTS {
            self.link.send(&[BREAK_BYTE]);
            last = self.wait_stop();
            if !matches!(last, Err(DbgError::Timeout)) {
                return last;
            }
        }
        last
    }

    /// Reads all registers.
    ///
    /// # Errors
    ///
    /// Propagates target and protocol errors.
    pub fn read_registers(&mut self) -> Result<Registers, DbgError> {
        match self.transact(&Command::ReadRegisters)? {
            Reply::Hex(bytes) if bytes.len() == 33 * 4 => {
                let word =
                    |i: usize| u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
                let mut gprs = [0u32; 32];
                for (i, g) in gprs.iter_mut().enumerate() {
                    *g = word(i);
                }
                Ok(Registers { gprs, pc: word(32) })
            }
            Reply::Error(code) => Err(DbgError::Target(code)),
            other => Err(DbgError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Writes one register (`0..=31`, or [`crate::msg::REG_PC`]).
    ///
    /// # Errors
    ///
    /// Propagates target and protocol errors.
    pub fn write_register(&mut self, index: u8, value: u32) -> Result<(), DbgError> {
        self.expect_ok(&Command::WriteRegister { index, value })
    }

    /// Reads `len` bytes of guest memory at virtual address `addr`,
    /// chunking large requests.
    ///
    /// # Errors
    ///
    /// Propagates target errors (e.g. unmapped guest addresses).
    pub fn read_memory(&mut self, addr: u32, len: u32) -> Result<Vec<u8>, DbgError> {
        let mut out = Vec::with_capacity(len as usize);
        let mut cursor = addr;
        let end = addr + len;
        while cursor < end {
            let n = (end - cursor).min(MEM_CHUNK);
            match self.transact(&Command::ReadMemory {
                addr: cursor,
                len: n,
            })? {
                Reply::Hex(bytes) if bytes.len() as u32 == n => out.extend_from_slice(&bytes),
                Reply::Error(code) => return Err(DbgError::Target(code)),
                other => return Err(DbgError::Protocol(format!("unexpected reply {other:?}"))),
            }
            cursor += n;
        }
        Ok(out)
    }

    /// Writes guest memory at virtual address `addr`.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn write_memory(&mut self, addr: u32, data: &[u8]) -> Result<(), DbgError> {
        for (i, chunk) in data.chunks(MEM_CHUNK as usize).enumerate() {
            self.expect_ok(&Command::WriteMemory {
                addr: addr + (i as u32) * MEM_CHUNK,
                data: chunk.to_vec(),
            })?;
        }
        Ok(())
    }

    /// Plants a software breakpoint at a guest virtual address.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn set_breakpoint(&mut self, addr: u32) -> Result<(), DbgError> {
        self.expect_ok(&Command::SetBreakpoint { addr })
    }

    /// Removes a software breakpoint.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn clear_breakpoint(&mut self, addr: u32) -> Result<(), DbgError> {
        self.expect_ok(&Command::ClearBreakpoint { addr })
    }

    /// Arms a write watchpoint over `[addr, addr + len)`.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn set_watchpoint(&mut self, addr: u32, len: u32) -> Result<(), DbgError> {
        self.set_watchpoint_kind(addr, len, WatchKind::Write)
    }

    /// Arms a watchpoint of an explicit kind (write, read, or access) over
    /// `[addr, addr + len)`.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn set_watchpoint_kind(
        &mut self,
        addr: u32,
        len: u32,
        kind: WatchKind,
    ) -> Result<(), DbgError> {
        self.expect_ok(&Command::SetWatchpoint { addr, len, kind })
    }

    /// Disarms a watchpoint.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn clear_watchpoint(&mut self, addr: u32) -> Result<(), DbgError> {
        self.expect_ok(&Command::ClearWatchpoint { addr })
    }

    /// Attaches a condition expression to a planted breakpoint; the target
    /// silently resumes when the breakpoint fires with the condition zero.
    /// An empty expression makes the breakpoint unconditional again.
    ///
    /// # Errors
    ///
    /// Propagates target errors (no such breakpoint, bad expression).
    pub fn set_break_condition(&mut self, addr: u32, expr: &str) -> Result<(), DbgError> {
        self.expect_ok(&Command::SetBreakCondition {
            addr,
            expr: expr.to_string(),
        })
    }

    /// Attaches a condition expression to an armed watchpoint. An empty
    /// expression clears it.
    ///
    /// # Errors
    ///
    /// Propagates target errors (no such watchpoint, bad expression).
    pub fn set_watch_condition(&mut self, addr: u32, expr: &str) -> Result<(), DbgError> {
        self.expect_ok(&Command::SetWatchCondition {
            addr,
            expr: expr.to_string(),
        })
    }

    /// Arms a logpoint at `addr`: the target records a trace event (with
    /// the condition's value) every time the instruction retires with
    /// `expr` nonzero, without stopping the guest. An empty `expr` fires
    /// unconditionally.
    ///
    /// # Errors
    ///
    /// Propagates target errors (bad expression).
    pub fn set_logpoint(&mut self, addr: u32, label: &str, expr: &str) -> Result<(), DbgError> {
        self.expect_ok(&Command::SetLogpoint {
            addr,
            label: label.to_string(),
            expr: expr.to_string(),
        })
    }

    /// Disarms every logpoint at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn clear_logpoint(&mut self, addr: u32) -> Result<(), DbgError> {
        self.expect_ok(&Command::ClearLogpoint { addr })
    }

    /// Searches the recorded timeline for the first cycle at which `expr`
    /// evaluates nonzero and seeks there. On a hit, returns the satisfying
    /// cycle and the [`StopReason::TimeTravel`] stop at the landing point;
    /// on a miss, returns `None` with the target back in its pre-query
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates target errors (stopped guest and flight recorder
    /// required; bad expressions are rejected).
    pub fn query_first(&mut self, expr: &str) -> Result<Option<(u64, StopReason)>, DbgError> {
        match self.transact(&Command::QueryFirst {
            expr: expr.to_string(),
        })? {
            Reply::Query { found: false, .. } => Ok(None),
            Reply::Query { found: true, cycle } => {
                let stop = self.wait_stop()?;
                Ok(Some((cycle, stop)))
            }
            Reply::Error(code) => Err(DbgError::Target(code)),
            other => Err(DbgError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Executes one guest instruction and returns the resulting stop.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn step(&mut self) -> Result<StopReason, DbgError> {
        self.expect_ok(&Command::Step)?;
        self.wait_stop()
    }

    /// Resumes the guest without waiting for it to stop again.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn resume(&mut self) -> Result<(), DbgError> {
        self.expect_ok(&Command::Continue)
    }

    /// Rewinds to just before the last guest instruction executed
    /// (time-travel; requires the target's flight recorder).
    ///
    /// # Errors
    ///
    /// Propagates target errors (e.g. no flight recorder enabled).
    pub fn reverse_step(&mut self) -> Result<StopReason, DbgError> {
        self.expect_ok(&Command::ReverseStep)?;
        self.wait_stop()
    }

    /// Rewinds to the previous debugger stop on the recorded timeline.
    ///
    /// # Errors
    ///
    /// Propagates target errors (e.g. no earlier stop recorded).
    pub fn reverse_continue(&mut self) -> Result<StopReason, DbgError> {
        self.expect_ok(&Command::ReverseContinue)?;
        self.wait_stop()
    }

    /// Seeks to an absolute simulated cycle on the recorded timeline,
    /// in either direction.
    ///
    /// # Errors
    ///
    /// Propagates target errors (e.g. cycle precedes the first checkpoint).
    pub fn seek(&mut self, cycle: u64) -> Result<StopReason, DbgError> {
        self.expect_ok(&Command::Seek { cycle })?;
        self.wait_stop()
    }

    /// Resumes the guest and blocks until the next stop (breakpoint,
    /// watchpoint, fault or break-in).
    ///
    /// # Errors
    ///
    /// [`DbgError::Timeout`] if the guest never stops within the pump
    /// budget.
    pub fn continue_until_stop(&mut self) -> Result<StopReason, DbgError> {
        self.resume()?;
        self.wait_stop()
    }

    /// Resets the guest to its boot entry.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn reset(&mut self) -> Result<(), DbgError> {
        self.expect_ok(&Command::Reset)
    }

    /// Selects the core subsequent register/memory commands operate on
    /// (GDB's `Hg`). Core 0 is the boot core and the default selection.
    ///
    /// # Errors
    ///
    /// [`DbgError::Target`] with the `no such core` code when the index is
    /// out of range.
    pub fn set_thread(&mut self, core: u32) -> Result<(), DbgError> {
        self.expect_ok(&Command::SetThread { core })
    }

    /// Asks whether a core exists and has been started (GDB's `T`). A
    /// target error means "not alive", mirroring GDB remote semantics.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors and timeouts only.
    pub fn thread_alive(&mut self, core: u32) -> Result<bool, DbgError> {
        match self.transact(&Command::ThreadAlive { core })? {
            Reply::Ok => Ok(true),
            Reply::Error(_) => Ok(false),
            other => Err(DbgError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// The core the most recent stop happened on (0 until a stop carrying
    /// a core id has been seen; single-core targets never send one).
    pub fn last_stop_core(&self) -> u8 {
        self.last_core
    }

    /// Samples the monitor's live cycle accounting and exit counters.
    ///
    /// Unlike every other query this works while the guest is *running*:
    /// the stub answers from the monitor's own counters without stopping
    /// the guest, so sampling does not perturb what is being measured.
    ///
    /// # Errors
    ///
    /// Propagates target and protocol errors.
    pub fn query_stats(&mut self) -> Result<StatsSample, DbgError> {
        match self.transact(&Command::QueryStats)? {
            Reply::Stats(s) => Ok(s),
            Reply::Error(code) => Err(DbgError::Target(code)),
            other => Err(DbgError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Samples the target's live guest profiler: the `max` hottest symbols
    /// with their cycle and sample counts. Like [`Debugger::query_stats`]
    /// this works while the guest is running and does not perturb it.
    ///
    /// # Errors
    ///
    /// [`DbgError::Target`] if the target has no profiler enabled;
    /// propagates protocol errors.
    pub fn query_prof(&mut self, max: u8) -> Result<ProfSample, DbgError> {
        match self.transact(&Command::QueryProf { max })? {
            Reply::Prof(s) => Ok(s),
            Reply::Error(code) => Err(DbgError::Target(code)),
            other => Err(DbgError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Samples the target's host-time self-profiler: wall-clock
    /// nanoseconds attributed to each monitor phase. Like
    /// [`Debugger::query_stats`] this works while the guest is running; the
    /// reply is fixed-width so its simulated cost never depends on the
    /// host-clock values it carries.
    ///
    /// # Errors
    ///
    /// [`DbgError::Target`] with the stable `metrics unavailable` code if
    /// the target has no host profiler enabled (or is an in-kernel stub
    /// with no host clock at all); propagates protocol errors.
    pub fn query_metrics(&mut self) -> Result<MetricsSample, DbgError> {
        match self.transact(&Command::QueryMetrics)? {
            Reply::Metrics(s) => Ok(s),
            Reply::Error(code) => Err(DbgError::Target(code)),
            other => Err(DbgError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Samples the target's causal-flow tracker: per-class flow counts and
    /// end-to-end latency percentiles. Like [`Debugger::query_stats`] this
    /// works while the guest is running; every value in the reply is
    /// simulation-deterministic, so sampling cannot perturb the run.
    ///
    /// # Errors
    ///
    /// [`DbgError::Target`] with the stable `causal unavailable` code if
    /// the target has no causal tracker enabled; propagates protocol
    /// errors.
    pub fn query_flow(&mut self) -> Result<FlowSample, DbgError> {
        match self.transact(&Command::QueryFlow)? {
            Reply::Flow(s) => Ok(s),
            Reply::Error(code) => Err(DbgError::Target(code)),
            other => Err(DbgError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Asks the stopped target why it is stopped.
    ///
    /// # Errors
    ///
    /// Propagates target errors.
    pub fn query_stop(&mut self) -> Result<StopReason, DbgError> {
        // The reply to `?` is itself a stop packet, so it arrives through
        // the asynchronous stop path.
        self.link.send(&encode_packet(&Command::QueryStop.format()));
        self.wait_stop()
    }

    /// Waits for an asynchronous stop report.
    ///
    /// # Errors
    ///
    /// [`DbgError::Timeout`] when the pump budget runs out.
    pub fn wait_stop(&mut self) -> Result<StopReason, DbgError> {
        if let Some((r, core)) = self.stops.pop_front() {
            self.last_core = core;
            return Ok(r);
        }
        let mut idle = 0;
        while idle < self.pump_budget {
            let bytes = self.link.pump();
            if bytes.is_empty() {
                idle += 1;
            } else {
                idle = 0;
                self.parser.push(&bytes);
            }
            while let Some(ev) = self.parser.next_event() {
                match ev {
                    WireEvent::Packet(p) => {
                        self.link.send(&[ACK]);
                        if let Some((r, core)) = StopReason::parse_with_core(&p) {
                            self.last_core = core;
                            return Ok(r);
                        }
                    }
                    // A mangled stop packet: NAK so the stub retransmits it.
                    WireEvent::Corrupt => self.link.send(&[NAK]),
                    _ => {}
                }
            }
        }
        Err(DbgError::Timeout)
    }

    /// Polls for a stop without blocking: pumps once and returns any stop
    /// received so far.
    pub fn poll_stop(&mut self) -> Option<StopReason> {
        if let Some((r, core)) = self.stops.pop_front() {
            self.last_core = core;
            return Some(r);
        }
        let bytes = self.link.pump();
        self.parser.push(&bytes);
        while let Some(ev) = self.parser.next_event() {
            if let WireEvent::Packet(p) = ev {
                self.link.send(&[ACK]);
                if let Some((r, core)) = StopReason::parse_with_core(&p) {
                    self.last_core = core;
                    return Some(r);
                }
            }
        }
        None
    }

    fn expect_ok(&mut self, cmd: &Command) -> Result<(), DbgError> {
        match self.transact(cmd)? {
            Reply::Ok => Ok(()),
            Reply::Error(code) => Err(DbgError::Target(code)),
            other => Err(DbgError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Sends a command and waits for its (synchronous) reply. Asynchronous
    /// stop packets that arrive meanwhile are queued for
    /// [`Debugger::wait_stop`].
    ///
    /// Recovery policy, bounded in every direction so a lossy line degrades
    /// into an error instead of a wedge:
    ///
    /// - a **NAK** from the target means our command arrived mangled — the
    ///   command is resent at once (at most [`MAX_NAKS`] times);
    /// - a **corrupt** reply is NAKed so the target retransmits it;
    /// - **silence** (the command or its reply dropped outright) exhausts one
    ///   attempt's pump budget; the command is resent with a doubled budget,
    ///   up to [`MAX_ATTEMPTS`] attempts.
    ///
    /// A retry can re-execute a command whose reply was lost; every command
    /// in this protocol is either idempotent or (like `s`) reports its
    /// effect via a stop packet the session logic tolerates re-receiving.
    fn transact(&mut self, cmd: &Command) -> Result<Reply, DbgError> {
        self.drain_stale();
        let packet = encode_packet(&cmd.format());
        let mut naks = 0;
        for attempt in 0..MAX_ATTEMPTS {
            self.link.send(&packet);
            let budget = (self.pump_budget / 4).max(1) << attempt;
            let mut idle = 0;
            while idle < budget {
                let bytes = self.link.pump();
                if bytes.is_empty() {
                    idle += 1;
                } else {
                    idle = 0;
                    self.parser.push(&bytes);
                }
                while let Some(ev) = self.parser.next_event() {
                    match ev {
                        WireEvent::Packet(p) => {
                            self.link.send(&[ACK]);
                            match Reply::parse(&p) {
                                Some(Reply::Stopped(r)) => {
                                    let core =
                                        StopReason::parse_with_core(&p).map_or(0, |(_, c)| c);
                                    self.stops.push_back((r, core));
                                }
                                Some(reply) => return Ok(reply),
                                None => {
                                    return Err(DbgError::Protocol(format!(
                                        "unparseable reply {p:?}"
                                    )))
                                }
                            }
                        }
                        WireEvent::Nak => {
                            naks += 1;
                            if naks > MAX_NAKS {
                                return Err(DbgError::Protocol("too many NAKs".into()));
                            }
                            self.link.send(&packet);
                        }
                        WireEvent::Corrupt => self.link.send(&[NAK]),
                        WireEvent::Ack | WireEvent::BreakIn => {}
                    }
                }
            }
        }
        Err(DbgError::Timeout)
    }

    /// Flushes traffic left over from a previous transaction before a new
    /// command goes out. A resent command can make the target execute twice
    /// and reply twice; once the first reply is accepted the duplicate is
    /// still in flight, and without this it would be mistaken for the *next*
    /// command's reply. With no command outstanding, any complete packet
    /// here is by definition not a synchronous reply: asynchronous stop
    /// packets are queued for [`Debugger::wait_stop`], everything else is
    /// ACKed (so the target drops its retransmission cache) and discarded —
    /// the same "unexpected packet" policy GDB's remote protocol uses.
    fn drain_stale(&mut self) {
        let mut quiet = 0;
        while quiet < DRAIN_QUIET {
            let bytes = self.link.pump();
            if bytes.is_empty() {
                quiet += 1;
                continue;
            }
            quiet = 0;
            self.parser.push(&bytes);
            while let Some(ev) = self.parser.next_event() {
                match ev {
                    WireEvent::Packet(p) => {
                        self.link.send(&[ACK]);
                        if let Some((r, core)) = StopReason::parse_with_core(&p) {
                            self.stops.push_back((r, core));
                        }
                    }
                    // Stale *and* mangled: nothing worth recovering, and a
                    // NAK would only resurrect more stale traffic.
                    WireEvent::Corrupt => {}
                    WireEvent::Ack | WireEvent::Nak | WireEvent::BreakIn => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    /// A trivial in-process stub behind a `Link`, simulating a target with
    /// 64 KiB of memory and a register file.
    struct MockTarget {
        to_target: Vec<u8>,
        to_host: Vec<u8>,
        parser: PacketParser,
        mem: Vec<u8>,
        regs: [u32; 33],
        breakpoints: Vec<u32>,
        running: bool,
        drop_first_reply: bool,
        last_sent: Vec<u8>,
    }

    impl MockTarget {
        fn new() -> MockTarget {
            MockTarget {
                to_target: Vec::new(),
                to_host: Vec::new(),
                parser: PacketParser::new(),
                mem: vec![0; 65536],
                regs: [0; 33],
                breakpoints: Vec::new(),
                running: false,
                drop_first_reply: false,
                last_sent: Vec::new(),
            }
        }

        fn reply(&mut self, r: Reply) {
            let pkt = wire::encode_packet(&r.format());
            // Like the real stub, keep the clean packet for NAK-driven
            // retransmission.
            self.last_sent = pkt.clone();
            if self.drop_first_reply {
                // Corrupt the first reply once, to exercise NAK/resend.
                self.drop_first_reply = false;
                let mut bad = pkt;
                let n = bad.len();
                bad[n - 1] ^= 0xff;
                self.to_host.extend_from_slice(&bad);
                return;
            }
            self.to_host.extend_from_slice(&pkt);
        }

        fn service(&mut self) {
            let bytes = std::mem::take(&mut self.to_target);
            self.parser.push(&bytes);
            while let Some(ev) = self.parser.next_event() {
                match ev {
                    WireEvent::BreakIn => {
                        self.running = false;
                        let stop = StopReason::Halted { pc: self.regs[32] };
                        self.to_host
                            .extend_from_slice(&wire::encode_packet(&stop.format()));
                    }
                    WireEvent::Packet(p) => {
                        self.to_host.push(ACK);
                        let Some(cmd) = Command::parse(&p) else {
                            self.reply(Reply::Error(1));
                            continue;
                        };
                        match cmd {
                            Command::ReadRegisters => {
                                let mut bytes = Vec::new();
                                for r in self.regs {
                                    bytes.extend_from_slice(&r.to_le_bytes());
                                }
                                self.reply(Reply::Hex(bytes));
                            }
                            Command::WriteRegister { index, value } => {
                                if (index as usize) < 33 {
                                    self.regs[index as usize] = value;
                                    self.reply(Reply::Ok);
                                } else {
                                    self.reply(Reply::Error(2));
                                }
                            }
                            Command::ReadMemory { addr, len } => {
                                let (a, l) = (addr as usize, len as usize);
                                if a + l <= self.mem.len() {
                                    self.reply(Reply::Hex(self.mem[a..a + l].to_vec()));
                                } else {
                                    self.reply(Reply::Error(3));
                                }
                            }
                            Command::WriteMemory { addr, data } => {
                                let a = addr as usize;
                                if a + data.len() <= self.mem.len() {
                                    self.mem[a..a + data.len()].copy_from_slice(&data);
                                    self.reply(Reply::Ok);
                                } else {
                                    self.reply(Reply::Error(3));
                                }
                            }
                            Command::SetBreakpoint { addr } => {
                                self.breakpoints.push(addr);
                                self.reply(Reply::Ok);
                            }
                            Command::ClearBreakpoint { addr } => {
                                self.breakpoints.retain(|&a| a != addr);
                                self.reply(Reply::Ok);
                            }
                            Command::Continue => {
                                self.running = true;
                                self.reply(Reply::Ok);
                                // "Run" until the first breakpoint.
                                if let Some(&bp) = self.breakpoints.first() {
                                    self.regs[32] = bp;
                                    self.running = false;
                                    let stop = StopReason::Breakpoint { pc: bp };
                                    self.to_host
                                        .extend_from_slice(&wire::encode_packet(&stop.format()));
                                }
                            }
                            Command::Step => {
                                self.regs[32] += 4;
                                self.reply(Reply::Ok);
                                let stop = StopReason::Step { pc: self.regs[32] };
                                self.to_host
                                    .extend_from_slice(&wire::encode_packet(&stop.format()));
                            }
                            Command::QueryStop => {
                                self.reply(Reply::Stopped(StopReason::Halted {
                                    pc: self.regs[32],
                                }));
                            }
                            Command::Halt | Command::Reset => self.reply(Reply::Ok),
                            _ => self.reply(Reply::Error(9)),
                        }
                    }
                    WireEvent::Nak => {
                        let pkt = self.last_sent.clone();
                        self.to_host.extend_from_slice(&pkt);
                    }
                    _ => {}
                }
            }
        }
    }

    impl Link for MockTarget {
        fn send(&mut self, bytes: &[u8]) {
            self.to_target.extend_from_slice(bytes);
        }
        fn pump(&mut self) -> Vec<u8> {
            self.service();
            std::mem::take(&mut self.to_host)
        }
    }

    #[test]
    fn register_and_memory_session() {
        let mut dbg = Debugger::new(MockTarget::new());
        dbg.write_register(5, 0xdead_beef).unwrap();
        dbg.write_register(crate::msg::REG_PC, 0x100).unwrap();
        let regs = dbg.read_registers().unwrap();
        assert_eq!(regs.gpr(5), 0xdead_beef);
        assert_eq!(regs.pc, 0x100);

        dbg.write_memory(0x1000, b"hello stub").unwrap();
        assert_eq!(dbg.read_memory(0x1000, 10).unwrap(), b"hello stub");
        // Out-of-range memory reports a target error.
        assert_eq!(dbg.read_memory(0xffff_0000, 4), Err(DbgError::Target(3)));
    }

    #[test]
    fn large_transfers_chunk() {
        let mut dbg = Debugger::new(MockTarget::new());
        let data: Vec<u8> = (0..2000u32).map(|i| i as u8).collect();
        dbg.write_memory(0x2000, &data).unwrap();
        assert_eq!(dbg.read_memory(0x2000, 2000).unwrap(), data);
    }

    #[test]
    fn breakpoint_continue_and_step() {
        let mut dbg = Debugger::new(MockTarget::new());
        dbg.set_breakpoint(0x400).unwrap();
        let stop = dbg.continue_until_stop().unwrap();
        assert_eq!(stop, StopReason::Breakpoint { pc: 0x400 });
        let stop = dbg.step().unwrap();
        assert_eq!(stop, StopReason::Step { pc: 0x404 });
        dbg.clear_breakpoint(0x400).unwrap();
        assert_eq!(dbg.query_stop().unwrap().pc(), 0x404);
    }

    #[test]
    fn halt_break_in() {
        let mut dbg = Debugger::new(MockTarget::new());
        dbg.write_register(crate::msg::REG_PC, 0x42_0000 & !3)
            .unwrap();
        let stop = dbg.halt().unwrap();
        assert!(matches!(stop, StopReason::Halted { .. }));
    }

    #[test]
    fn corrupt_reply_triggers_nak_and_retransmit() {
        let mut target = MockTarget::new();
        target.drop_first_reply = true;
        let mut dbg = Debugger::new(target);
        // The first reply arrives corrupted; the debugger NAKs it and the
        // target retransmits the cached clean packet. The session recovers
        // completely — no timeout, no wedge.
        assert_eq!(dbg.read_memory(0, 4).unwrap(), vec![0; 4]);
    }

    /// A link that drops the first host→target send outright (a lost
    /// command): the debugger's attempt/backoff loop must resend it.
    struct DroppyLink {
        inner: MockTarget,
        drops_left: usize,
    }

    impl Link for DroppyLink {
        fn send(&mut self, bytes: &[u8]) {
            if self.drops_left > 0 && bytes.len() > 1 {
                self.drops_left -= 1;
                return;
            }
            self.inner.send(bytes);
        }
        fn pump(&mut self) -> Vec<u8> {
            self.inner.pump()
        }
    }

    #[test]
    fn dropped_command_is_retried_not_wedged() {
        let mut dbg = Debugger::new(DroppyLink {
            inner: MockTarget::new(),
            drops_left: 2,
        });
        dbg.set_pump_budget(64); // keep the silent waits cheap
        assert_eq!(dbg.read_memory(0, 8).unwrap(), vec![0; 8]);
    }

    #[test]
    fn dead_line_times_out_cleanly() {
        struct DeadLink;
        impl Link for DeadLink {
            fn send(&mut self, _bytes: &[u8]) {}
            fn pump(&mut self) -> Vec<u8> {
                Vec::new()
            }
        }
        let mut dbg = Debugger::new(DeadLink);
        dbg.set_pump_budget(32);
        assert_eq!(dbg.read_memory(0, 4), Err(DbgError::Timeout));
        assert!(matches!(dbg.halt(), Err(DbgError::Timeout)));
    }

    #[test]
    fn unknown_command_is_target_error() {
        let mut dbg = Debugger::new(MockTarget::new());
        assert_eq!(dbg.set_watchpoint(0x100, 4), Err(DbgError::Target(9)));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// The survivability contract for the link layer: a full debug
        /// session driven through a deterministic lossy channel either
        /// completes or fails with a clean, typed error — it never wedges
        /// (all retry loops are bounded) and never panics, for any fault
        /// seed. Drops, duplications and truncations cannot corrupt a
        /// result silently (they all break the additive checksum), so when
        /// a run had no bit flips, every `Ok` must also be *correct*. Flips
        /// are excluded from that claim: two flips in one packet can cancel
        /// in the 8-bit checksum — the protocol's real (GDB-inherited)
        /// integrity bound.
        #[test]
        fn lossy_session_completes_or_times_out(seed in proptest::prelude::any::<u64>()) {
            use hx_fault::LinkFaultConfig;
            let cfg = LinkFaultConfig { flip_bp: if seed.is_multiple_of(2) { 0 } else { 40 }, ..LinkFaultConfig::lossy(seed) };
            let link = crate::lossy::LossyLink::new(MockTarget::new(), cfg);
            let mut dbg = Debugger::new(link);
            dbg.set_pump_budget(64); // silence is cheap in-process; keep retries fast
            let payload: Vec<u8> = (0..64u32).map(|i| (i * 37) as u8).collect();

            let reg_read = match dbg.write_register(5, 0xdead_beef) {
                Ok(()) => dbg.read_registers().ok(),
                Err(_) => None,
            };
            let mem_read = match dbg.write_memory(0x1000, &payload) {
                Ok(()) => dbg.read_memory(0x1000, payload.len() as u32).ok(),
                Err(_) => None,
            };
            let _ = dbg.set_breakpoint(0x400);
            let _ = dbg.continue_until_stop();
            let _ = dbg.step();
            let _ = dbg.halt();
            // Reaching here at all is the main property: bounded loops, no
            // panic. With no flips in the run, results must be exact.
            let link = dbg.link_ref();
            if link.to_target_stats().flipped == 0 && link.to_host_stats().flipped == 0 {
                if let Some(regs) = reg_read {
                    proptest::prop_assert_eq!(regs.gpr(5), 0xdead_beef);
                }
                if let Some(back) = mem_read {
                    proptest::prop_assert_eq!(back, payload);
                }
            }
        }
    }
}
