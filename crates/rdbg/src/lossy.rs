//! [`LossyLink`]: deterministic byte-level link faults over any [`Link`].
//!
//! Wraps a transport and mangles traffic in both directions — bit flips,
//! drops, duplication, truncation — using two independent seeded PRNG
//! streams from `hx-fault`. Because the faults are a pure function of the
//! seed and the byte stream, a "flaky serial cable" session is exactly
//! reproducible: the same seed mangles the same bytes the same way, which is
//! what lets the survivability campaign replay link-fault runs and lets the
//! proptest in `debugger.rs` shrink on failure.

use crate::debugger::Link;
use hx_fault::{LinkFaultConfig, LinkFaults, LinkStats};

/// Salt for the host→target fault stream (distinct from target→host so the
/// two directions fail independently).
const TO_TARGET_SALT: u64 = 0x746f_5f74_6172_6765; // "to_targe"

/// Salt for the target→host fault stream.
const TO_HOST_SALT: u64 = 0x746f_5f68_6f73_7400; // "to_host"

/// A [`Link`] decorator that applies deterministic faults to every byte
/// crossing it, in both directions.
#[derive(Debug)]
pub struct LossyLink<L> {
    inner: L,
    to_target: LinkFaults,
    to_host: LinkFaults,
}

impl<L: Link> LossyLink<L> {
    /// Wraps `inner`; both directions draw from `cfg` with direction-salted
    /// seeds.
    pub fn new(inner: L, cfg: LinkFaultConfig) -> LossyLink<L> {
        let salted = |salt: u64| LinkFaultConfig {
            seed: cfg.seed ^ salt,
            ..cfg
        };
        LossyLink {
            inner,
            to_target: LinkFaults::new(salted(TO_TARGET_SALT)),
            to_host: LinkFaults::new(salted(TO_HOST_SALT)),
        }
    }

    /// The wrapped link.
    pub fn inner_ref(&self) -> &L {
        &self.inner
    }

    /// The wrapped link, mutably.
    pub fn inner_mut(&mut self) -> &mut L {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> L {
        self.inner
    }

    /// Fault counters for the host→target direction.
    pub fn to_target_stats(&self) -> LinkStats {
        self.to_target.stats
    }

    /// Fault counters for the target→host direction.
    pub fn to_host_stats(&self) -> LinkStats {
        self.to_host.stats
    }
}

impl<L: Link> Link for LossyLink<L> {
    fn send(&mut self, bytes: &[u8]) {
        let mangled = self.to_target.mangle(bytes);
        if !mangled.is_empty() {
            self.inner.send(&mangled);
        }
    }

    fn pump(&mut self) -> Vec<u8> {
        let bytes = self.inner.pump();
        self.to_host.mangle(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A loopback link: everything sent comes back on the next pump.
    struct Loopback {
        queue: VecDeque<Vec<u8>>,
    }

    impl Link for Loopback {
        fn send(&mut self, bytes: &[u8]) {
            self.queue.push_back(bytes.to_vec());
        }
        fn pump(&mut self) -> Vec<u8> {
            self.queue.pop_front().unwrap_or_default()
        }
    }

    fn loopback() -> Loopback {
        Loopback {
            queue: VecDeque::new(),
        }
    }

    #[test]
    fn clean_config_is_transparent() {
        let mut link = LossyLink::new(loopback(), LinkFaultConfig::clean(1));
        link.send(b"hello $#} world");
        assert_eq!(link.pump(), b"hello $#} world");
        assert_eq!(link.to_target_stats().bytes, 15);
        assert_eq!(link.to_target_stats().flipped, 0);
        assert_eq!(link.to_host_stats().dropped, 0);
    }

    #[test]
    fn lossy_mangling_is_deterministic() {
        let run = || {
            let mut link = LossyLink::new(loopback(), LinkFaultConfig::lossy(42));
            let mut out = Vec::new();
            for _ in 0..200 {
                link.send(b"the quick brown fox jumps over the lazy dog");
                out.push(link.pump());
            }
            (out, link.to_target_stats(), link.to_host_stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn directions_fail_independently() {
        let mut link = LossyLink::new(loopback(), LinkFaultConfig::lossy(7));
        let payload = vec![b'x'; 4096];
        link.send(&payload);
        let back = link.pump();
        let (tx, rx) = (link.to_target_stats(), link.to_host_stats());
        let tx_faults = tx.flipped + tx.dropped + tx.duplicated + tx.truncated;
        let rx_faults = rx.flipped + rx.dropped + rx.duplicated + rx.truncated;
        assert!(tx_faults > 0, "host→target stream must fault at this size");
        assert!(rx_faults > 0, "target→host stream must fault at this size");
        // Different salts → the two directions fault at different points.
        assert_ne!(tx, rx);
        assert_ne!(back, payload);
    }
}
