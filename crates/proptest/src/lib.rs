//! Deterministic, dependency-free stand-in for the subset of the
//! [`proptest`](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the real
//! `proptest` cannot be fetched. This crate re-implements, offline, exactly
//! the surface our property tests rely on:
//!
//! - the [`proptest!`] macro (including `#![proptest_config(...)]`),
//! - [`Strategy`] with `prop_map`, integer-range / tuple / `Just` /
//!   [`collection::vec`] / [`sample::select`] / string-pattern strategies,
//! - [`prop_oneof!`] with optional integer weights,
//! - `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike upstream proptest there is **no shrinking** and **no persisted
//! failure corpus**: every test derives a fixed seed from its module path
//! and name, so runs are fully deterministic and reproducible — which is a
//! feature here, since the whole repository treats determinism as a testable
//! property (see `hx-obs`).

/// Splitmix64-based generator: tiny, deterministic, decent distribution.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (we use the test's module path plus
    /// name) via FNV-1a, so every test gets a distinct but stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is irrelevant at test scale.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Run configuration: number of generated cases per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The real proptest `Strategy` also carries shrinking
/// machinery; here it is just "produce one value from the RNG".
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy, used by `prop_oneof!` to unify arm types.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union over boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("union weights exhausted")
    }
}

/// `any::<T>()` — full-range values for primitive types.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for core::primitive::bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128) as u64;
                // Inclusive of MAX: widen by one below u64::MAX.
                (self.start as i128 + rng.below(span.saturating_add(1)) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}

/// String strategies from a miniature regex dialect: one atom — either a
/// character class `[...]` (with `a-z` ranges) or `\PC` (printable) —
/// followed by a `{min,max}` repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, rest) = parse_atom(self);
        let (min, max) = parse_repeat(rest);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_atom(pat: &str) -> (Vec<char>, &str) {
    if let Some(rest) = pat.strip_prefix("\\PC") {
        // Printable, non-control: ASCII is representative for our wire tests.
        return ((0x20u8..=0x7e).map(|b| b as char).collect(), rest);
    }
    if let Some(body) = pat.strip_prefix('[') {
        let end = body.find(']').expect("unterminated character class");
        let class: Vec<char> = body[..end].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                alphabet.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        return (alphabet, &body[end + 1..]);
    }
    panic!("unsupported string strategy pattern: {pat:?}");
}

fn parse_repeat(rest: &str) -> (usize, usize) {
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("expected {{min,max}} repetition, got {rest:?}"));
    let (lo, hi) = body.split_once(',').expect("need {min,max}");
    (lo.trim().parse().unwrap(), hi.trim().parse().unwrap())
}

pub mod bool {
    use super::{Strategy, TestRng};

    pub struct AnyBool;

    /// Mirrors `proptest::bool::ANY`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Mirrors `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Mirrors `proptest::sample::select(&slice)`.
    pub fn select<T: Clone>(items: &[T]) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select {
            items: items.to_vec(),
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

/// Everything a test module needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Deterministic replacement for the `proptest!` macro. Each property
/// becomes a plain `#[test]` that loops `cases` times over a seeded RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg); $($rest)* }
    };
    (@cfg ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies whose
/// values share a type. Arms are boxed so heterogeneous strategy types
/// unify.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Assertion macros: without shrinking there is nothing to unwind, so these
/// are plain panics with the same spelling the real crate accepts.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (-2048i16..2048).generate(&mut rng);
            assert!((-2048..2048).contains(&v));
            let u = (2u32..16).generate(&mut rng);
            assert!((2..16).contains(&u));
            let w = (1u32..).generate(&mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn string_patterns_generate_expected_alphabets() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..200 {
            let s = "[ -\"%-~]{0,64}".generate(&mut rng);
            assert!(s.len() <= 64);
            assert!(s
                .chars()
                .all(|c| (' '..='"').contains(&c) || ('%'..='~').contains(&c)));
            let p = "\\PC{0,40}".generate(&mut rng);
            assert!(p.len() <= 40);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn oneof_honours_weights_roughly() {
        let s: Union<u32> = Union::new(vec![(9, Just(1u32).boxed()), (1, Just(2u32).boxed())]);
        let mut rng = TestRng::from_name("weights");
        let ones = (0..1000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!(ones > 800, "expected ~900 ones, got {ones}");
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in any::<u32>(), v in collection::vec(0u8..4, 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert_eq!(a, a);
            for b in v {
                prop_assert!(b < 4);
            }
        }
    }
}
