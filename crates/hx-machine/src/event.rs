//! Deterministic discrete-event scheduler.
//!
//! Devices schedule future work (DMA completions, wire serialization, timer
//! ticks) as [`Event`]s on the machine's [`EventQueue`]. Events due at the
//! same cycle fire in scheduling order, so two identical runs produce
//! identical machines — the property every CPU-load measurement in the
//! reproduction rests on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Machine-level event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Event {
    /// The programmable timer expired.
    PitTick,
    /// A disk command on the given unit completed (DMA + IRQ follow).
    HdcComplete {
        /// Disk unit index, `0..3`.
        unit: u8,
    },
    /// The NIC should (re)examine its TX ring for work.
    NicTxKick,
    /// The frame currently on the wire finished serializing.
    NicTxDone,
    /// A received frame is ready to be placed in the RX ring.
    NicRxDeliver,
    /// The fault-injection campaign's next fault is due (see
    /// [`crate::Machine::enable_fault_injection`]). Riding the event queue —
    /// rather than polling the clock — keeps batched and single-stepped runs
    /// bit-identical under injection.
    FaultInject,
    /// An inter-processor interrupt reaches its target core (see
    /// [`crate::smp`]). Scheduled [`crate::smp::LATENCY`] cycles after the
    /// `IPI_SEND` write; riding the queue keeps SMP interleavings a pure
    /// function of the program.
    Ipi {
        /// Destination core index.
        target: u8,
        /// IPI line (0 = startup, 1–7 = latched interrupt lines).
        line: u8,
    },
}

/// A min-heap of `(due_cycle, sequence) → Event`.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u64, Event)>>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event` to fire at absolute cycle `at`.
    pub fn schedule(&mut self, at: u64, event: Event) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, event)));
    }

    /// Cycle of the earliest pending event.
    pub fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Pops the earliest event if it is due at or before `now`, returning
    /// the cycle it was *scheduled for* together with the event. Handlers
    /// must compare against the scheduled cycle, not the current clock —
    /// the clock may have jumped past several deadlines at once.
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, Event)> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= now => {
                let Reverse((at, _, ev)) = self.heap.pop().unwrap();
                Some((at, ev))
            }
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every pending event (machine reset).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.schedule(20, Event::PitTick);
        q.schedule(10, Event::NicTxDone);
        q.schedule(10, Event::HdcComplete { unit: 1 });
        assert_eq!(q.next_due(), Some(10));
        assert_eq!(q.pop_due(100), Some((10, Event::NicTxDone)));
        assert_eq!(q.pop_due(100), Some((10, Event::HdcComplete { unit: 1 })));
        assert_eq!(q.pop_due(100), Some((20, Event::PitTick)));
        assert_eq!(q.pop_due(100), None);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(50, Event::PitTick);
        assert_eq!(q.pop_due(49), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(50), Some((50, Event::PitTick)));
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(1, Event::NicTxKick);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_due(), None);
    }
}
