//! `Hpit`: an 8254-style programmable interval timer.
//!
//! One channel, counting in CPU cycles. Software programs a reload value and
//! enables the channel; the timer raises IRQ 0 when the count expires and,
//! in periodic mode, rearms itself. Like the interrupt controller, this is
//! one of the two devices the paper's monitor emulates for the guest, so the
//! `lvmm` crate reuses this type as its virtual timer.

use crate::event::{Event, EventQueue};
use crate::pic::Hpic;
use hx_cpu::{BusFault, MemSize};

/// Register offsets within the PIT page.
pub mod reg {
    /// Control: bit 0 enable, bit 1 periodic.
    pub const CTRL: u32 = 0x00;
    /// Reload value in CPU cycles (write rearms when enabled).
    pub const RELOAD: u32 = 0x04;
    /// Remaining cycles until expiry (read-only).
    pub const COUNT: u32 = 0x08;
}

/// Control-register bits.
pub mod ctrl {
    /// Channel enabled.
    pub const ENABLE: u32 = 1 << 0;
    /// Auto-rearm after each expiry.
    pub const PERIODIC: u32 = 1 << 1;
}

/// The timer state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hpit {
    enabled: bool,
    periodic: bool,
    reload: u32,
    next_due: Option<u64>,
    ticks: u64,
}

impl Hpit {
    /// Creates a disabled timer.
    pub fn new() -> Hpit {
        Hpit::default()
    }

    /// Expirations fired since reset.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Reload value currently programmed.
    pub fn reload(&self) -> u32 {
        self.reload
    }

    /// Is the channel enabled?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The cycle at which the timer next expires.
    pub fn next_due(&self) -> Option<u64> {
        self.next_due
    }

    fn arm(&mut self, now: u64, events: &mut EventQueue) {
        let due = now + self.reload.max(1) as u64;
        self.next_due = Some(due);
        events.schedule(due, Event::PitTick);
    }

    /// Handles a [`Event::PitTick`] that fired at `now`. Stale events (from
    /// reprogramming) are ignored by matching against the armed deadline.
    pub fn on_tick(
        &mut self,
        now: u64,
        pic: &mut Hpic,
        events: &mut EventQueue,
        obs: &mut hx_obs::Recorder,
    ) {
        if !self.enabled || self.next_due != Some(now) {
            return;
        }
        self.ticks += 1;
        pic.assert_irq(crate::map::irq::PIT);
        obs.irq(now, hx_obs::Dev::Pit, crate::map::irq::PIT as u32);
        if self.periodic {
            self.arm(now, events);
        } else {
            self.enabled = false;
            self.next_due = None;
        }
    }

    /// MMIO register read.
    ///
    /// # Errors
    ///
    /// [`BusFault::Denied`] for non-word access or unknown offsets.
    pub fn read_reg(&mut self, offset: u32, size: MemSize, now: u64) -> Result<u32, BusFault> {
        if size != MemSize::Word {
            return Err(BusFault::Denied);
        }
        match offset {
            reg::CTRL => {
                let mut v = 0;
                if self.enabled {
                    v |= ctrl::ENABLE;
                }
                if self.periodic {
                    v |= ctrl::PERIODIC;
                }
                Ok(v)
            }
            reg::RELOAD => Ok(self.reload),
            reg::COUNT => Ok(self.next_due.map_or(0, |d| d.saturating_sub(now)) as u32),
            _ => Err(BusFault::Denied),
        }
    }

    /// MMIO register write.
    ///
    /// Writing `CTRL` with the enable bit set (re)arms the timer from `now`;
    /// clearing it cancels the pending expiry.
    ///
    /// # Errors
    ///
    /// [`BusFault::Denied`] for non-word access or unknown offsets.
    pub fn write_reg(
        &mut self,
        offset: u32,
        val: u32,
        size: MemSize,
        now: u64,
        events: &mut EventQueue,
    ) -> Result<(), BusFault> {
        if size != MemSize::Word {
            return Err(BusFault::Denied);
        }
        match offset {
            reg::CTRL => {
                self.periodic = val & ctrl::PERIODIC != 0;
                if val & ctrl::ENABLE != 0 {
                    self.enabled = true;
                    self.arm(now, events);
                } else {
                    self.enabled = false;
                    self.next_due = None;
                }
                Ok(())
            }
            reg::RELOAD => {
                self.reload = val;
                Ok(())
            }
            _ => Err(BusFault::Denied),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire_due(pit: &mut Hpit, pic: &mut Hpic, events: &mut EventQueue, now: u64) {
        while let Some((at, ev)) = events.pop_due(now) {
            assert_eq!(ev, Event::PitTick);
            pit.on_tick(at, pic, events, &mut hx_obs::Recorder::new());
        }
    }

    #[test]
    fn periodic_ticks() {
        let mut pit = Hpit::new();
        let mut pic = Hpic::new();
        let mut events = EventQueue::new();
        pit.write_reg(reg::RELOAD, 100, MemSize::Word, 0, &mut events)
            .unwrap();
        pit.write_reg(
            reg::CTRL,
            ctrl::ENABLE | ctrl::PERIODIC,
            MemSize::Word,
            0,
            &mut events,
        )
        .unwrap();
        assert_eq!(events.next_due(), Some(100));
        fire_due(&mut pit, &mut pic, &mut events, 100);
        assert_eq!(pit.ticks(), 1);
        assert_eq!(pic.pending(), Some(0));
        // Rearmed.
        assert_eq!(events.next_due(), Some(200));
        assert_eq!(pit.read_reg(reg::COUNT, MemSize::Word, 150).unwrap(), 50);
    }

    #[test]
    fn oneshot_disables_after_fire() {
        let mut pit = Hpit::new();
        let mut pic = Hpic::new();
        let mut events = EventQueue::new();
        pit.write_reg(reg::RELOAD, 10, MemSize::Word, 0, &mut events)
            .unwrap();
        pit.write_reg(reg::CTRL, ctrl::ENABLE, MemSize::Word, 0, &mut events)
            .unwrap();
        fire_due(&mut pit, &mut pic, &mut events, 10);
        assert_eq!(pit.ticks(), 1);
        assert!(!pit.enabled());
        assert!(events.is_empty());
    }

    #[test]
    fn reprogramming_cancels_stale_events() {
        let mut pit = Hpit::new();
        let mut pic = Hpic::new();
        let mut events = EventQueue::new();
        pit.write_reg(reg::RELOAD, 50, MemSize::Word, 0, &mut events)
            .unwrap();
        pit.write_reg(
            reg::CTRL,
            ctrl::ENABLE | ctrl::PERIODIC,
            MemSize::Word,
            0,
            &mut events,
        )
        .unwrap();
        // Reprogram before the first expiry: old event at 50 becomes stale.
        pit.write_reg(reg::RELOAD, 100, MemSize::Word, 20, &mut events)
            .unwrap();
        pit.write_reg(
            reg::CTRL,
            ctrl::ENABLE | ctrl::PERIODIC,
            MemSize::Word,
            20,
            &mut events,
        )
        .unwrap();
        fire_due(&mut pit, &mut pic, &mut events, 50);
        assert_eq!(pit.ticks(), 0, "stale event must not fire");
        fire_due(&mut pit, &mut pic, &mut events, 120);
        assert_eq!(pit.ticks(), 1);
    }

    #[test]
    fn disable_cancels() {
        let mut pit = Hpit::new();
        let mut pic = Hpic::new();
        let mut events = EventQueue::new();
        pit.write_reg(reg::RELOAD, 10, MemSize::Word, 0, &mut events)
            .unwrap();
        pit.write_reg(reg::CTRL, ctrl::ENABLE, MemSize::Word, 0, &mut events)
            .unwrap();
        pit.write_reg(reg::CTRL, 0, MemSize::Word, 5, &mut events)
            .unwrap();
        fire_due(&mut pit, &mut pic, &mut events, 10);
        assert_eq!(pit.ticks(), 0);
        assert_eq!(pic.pending(), None);
    }

    #[test]
    fn zero_reload_clamps_to_one() {
        let mut pit = Hpit::new();
        let mut events = EventQueue::new();
        pit.write_reg(reg::CTRL, ctrl::ENABLE, MemSize::Word, 7, &mut events)
            .unwrap();
        assert_eq!(events.next_due(), Some(8));
    }

    #[test]
    fn bad_access_denied() {
        let mut pit = Hpit::new();
        let mut events = EventQueue::new();
        assert_eq!(
            pit.read_reg(reg::CTRL, MemSize::Byte, 0),
            Err(BusFault::Denied)
        );
        assert_eq!(pit.read_reg(0x40, MemSize::Word, 0), Err(BusFault::Denied));
        assert_eq!(
            pit.write_reg(reg::COUNT, 1, MemSize::Word, 0, &mut events),
            Err(BusFault::Denied)
        );
    }
}
