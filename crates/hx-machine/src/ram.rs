//! Physical RAM with CPU-access and DMA interfaces.

use hx_cpu::{BusFault, MemSize};

/// Page granularity of write-generation tracking (matches the MMU page).
const PAGE: usize = 4096;

/// The machine's physical memory.
///
/// Devices DMA through [`Ram::dma_read`] / [`Ram::dma_write`]; the CPU path
/// goes through the width-aware accessors used by the system bus.
///
/// Every write path — CPU stores, DMA, and raw loader access through
/// [`Ram::as_bytes_mut`] — advances a per-page generation counter, which the
/// CPU's predecoded-instruction cache uses to detect stale code pages (see
/// [`hx_cpu::decode`]). Generations are cache metadata, not machine state:
/// equality compares bytes only.
#[derive(Debug, Clone)]
pub struct Ram {
    bytes: Vec<u8>,
    /// Per-4KiB-page write generation.
    gens: Vec<u64>,
    /// Bumped by [`Ram::as_bytes_mut`], which can touch any page.
    epoch: u64,
}

impl PartialEq for Ram {
    fn eq(&self, other: &Ram) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for Ram {}

impl Ram {
    /// Allocates `len` bytes of zeroed RAM.
    pub fn new(len: usize) -> Ram {
        Ram {
            bytes: vec![0; len],
            gens: vec![0; len.div_ceil(PAGE)],
            epoch: 0,
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` for zero-sized RAM.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn in_range(&self, addr: u32, n: u32) -> bool {
        (addr as usize)
            .checked_add(n as usize)
            .is_some_and(|end| end <= self.bytes.len())
    }

    /// CPU read of `size` bytes, little-endian, zero-extended.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] beyond the end of RAM.
    pub fn read(&self, addr: u32, size: MemSize) -> Result<u32, BusFault> {
        let n = size.bytes();
        if !self.in_range(addr, n) {
            return Err(BusFault::Unmapped);
        }
        let a = addr as usize;
        let mut v = 0u32;
        for i in 0..n as usize {
            v |= (self.bytes[a + i] as u32) << (8 * i);
        }
        Ok(v)
    }

    /// CPU write of the low `size` bytes of `val`.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] beyond the end of RAM.
    pub fn write(&mut self, addr: u32, val: u32, size: MemSize) -> Result<(), BusFault> {
        let n = size.bytes();
        if !self.in_range(addr, n) {
            return Err(BusFault::Unmapped);
        }
        let a = addr as usize;
        for i in 0..n as usize {
            self.bytes[a + i] = (val >> (8 * i)) as u8;
        }
        self.touch(a, n as usize);
        Ok(())
    }

    /// DMA read: copies RAM into `buf`.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] if the range leaves RAM (nothing is copied).
    pub fn dma_read(&self, addr: u32, buf: &mut [u8]) -> Result<(), BusFault> {
        if !self.in_range(addr, buf.len() as u32) {
            return Err(BusFault::Unmapped);
        }
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
        Ok(())
    }

    /// DMA write: copies `buf` into RAM.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] if the range leaves RAM (nothing is copied).
    pub fn dma_write(&mut self, addr: u32, buf: &[u8]) -> Result<(), BusFault> {
        if !self.in_range(addr, buf.len() as u32) {
            return Err(BusFault::Unmapped);
        }
        let a = addr as usize;
        self.bytes[a..a + buf.len()].copy_from_slice(buf);
        self.touch(a, buf.len());
        Ok(())
    }

    /// Advances the write generation of every page overlapping
    /// `[addr, addr + len)`.
    fn touch(&mut self, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        for page in addr / PAGE..=(addr + len - 1) / PAGE {
            self.gens[page] = self.gens[page].wrapping_add(1);
        }
    }

    /// Current write generation of the page containing `addr`, or `None`
    /// outside RAM. Changes whenever the page's contents may have changed.
    pub fn page_generation(&self, addr: u32) -> Option<u64> {
        self.gens
            .get(addr as usize / PAGE)
            .map(|g| g.wrapping_add(self.epoch))
    }

    /// Convenience word read for tests and loaders.
    ///
    /// # Panics
    ///
    /// Panics outside RAM.
    pub fn word(&self, addr: u32) -> u32 {
        self.read(addr, MemSize::Word).expect("address in RAM")
    }

    /// Raw view of the full RAM.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw view (loader use). Conservatively ages every page, since
    /// the caller may write anywhere.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        self.epoch = self.epoch.wrapping_add(1);
        &mut self.bytes
    }
}

impl hx_cpu::Bus for Ram {
    fn read(&mut self, paddr: u32, size: MemSize) -> Result<u32, BusFault> {
        Ram::read(self, paddr, size)
    }
    fn write(&mut self, paddr: u32, val: u32, size: MemSize) -> Result<(), BusFault> {
        Ram::write(self, paddr, val, size)
    }
    fn fetch_page_generation(&mut self, paddr: u32) -> Option<u64> {
        self.page_generation(paddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_accessors() {
        let mut r = Ram::new(64);
        r.write(4, 0x1122_3344, MemSize::Word).unwrap();
        assert_eq!(r.read(4, MemSize::Word).unwrap(), 0x1122_3344);
        assert_eq!(r.read(6, MemSize::Half).unwrap(), 0x1122);
        assert_eq!(r.read(7, MemSize::Byte).unwrap(), 0x11);
        assert_eq!(r.read(64, MemSize::Byte), Err(BusFault::Unmapped));
        assert_eq!(r.read(62, MemSize::Word), Err(BusFault::Unmapped));
    }

    #[test]
    fn dma_roundtrip() {
        let mut r = Ram::new(64);
        r.dma_write(8, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        r.dma_read(8, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(r.dma_write(62, &[0; 4]), Err(BusFault::Unmapped));
        let mut big = [0u8; 8];
        assert_eq!(r.dma_read(60, &mut big), Err(BusFault::Unmapped));
    }

    #[test]
    fn page_generations_track_every_write_path() {
        let mut r = Ram::new(3 * 4096);
        let g0 = r.page_generation(0).unwrap();
        let g1 = r.page_generation(4096).unwrap();

        r.write(8, 0xff, MemSize::Byte).unwrap();
        assert_ne!(r.page_generation(0).unwrap(), g0, "CPU store ages page");
        assert_eq!(r.page_generation(4096).unwrap(), g1, "other pages keep");

        // DMA spanning the page-0/page-1 boundary ages both pages.
        let g0 = r.page_generation(0).unwrap();
        let g2 = r.page_generation(8192).unwrap();
        r.dma_write(4090, &[0u8; 12]).unwrap();
        assert_ne!(r.page_generation(0).unwrap(), g0, "first page of span");
        assert_ne!(r.page_generation(4096).unwrap(), g1, "second page too");
        assert_eq!(r.page_generation(8192).unwrap(), g2, "untouched page keeps");

        // Raw loader access conservatively ages everything.
        let g0 = r.page_generation(0).unwrap();
        r.as_bytes_mut();
        assert_ne!(r.page_generation(0).unwrap(), g0);

        assert_eq!(r.page_generation(3 * 4096), None, "outside RAM");

        // Generations are metadata: equality still compares bytes only.
        let mut other = Ram::new(3 * 4096);
        other.write(8, 0xff, MemSize::Byte).unwrap();
        other.dma_write(4090, &[0u8; 12]).unwrap();
        assert_eq!(r, other);
    }

    #[test]
    fn overflow_addresses_fault() {
        let mut r = Ram::new(64);
        assert_eq!(r.read(u32::MAX, MemSize::Word), Err(BusFault::Unmapped));
        assert_eq!(
            r.write(u32::MAX - 1, 0, MemSize::Word),
            Err(BusFault::Unmapped)
        );
    }
}
