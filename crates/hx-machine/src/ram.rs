//! Physical RAM with CPU-access and DMA interfaces.

use hx_cpu::{BusFault, MemSize};

/// The machine's physical memory.
///
/// Devices DMA through [`Ram::dma_read`] / [`Ram::dma_write`]; the CPU path
/// goes through the width-aware accessors used by the system bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ram {
    bytes: Vec<u8>,
}

impl Ram {
    /// Allocates `len` bytes of zeroed RAM.
    pub fn new(len: usize) -> Ram {
        Ram {
            bytes: vec![0; len],
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` for zero-sized RAM.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn in_range(&self, addr: u32, n: u32) -> bool {
        (addr as usize)
            .checked_add(n as usize)
            .is_some_and(|end| end <= self.bytes.len())
    }

    /// CPU read of `size` bytes, little-endian, zero-extended.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] beyond the end of RAM.
    pub fn read(&self, addr: u32, size: MemSize) -> Result<u32, BusFault> {
        let n = size.bytes();
        if !self.in_range(addr, n) {
            return Err(BusFault::Unmapped);
        }
        let a = addr as usize;
        let mut v = 0u32;
        for i in 0..n as usize {
            v |= (self.bytes[a + i] as u32) << (8 * i);
        }
        Ok(v)
    }

    /// CPU write of the low `size` bytes of `val`.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] beyond the end of RAM.
    pub fn write(&mut self, addr: u32, val: u32, size: MemSize) -> Result<(), BusFault> {
        let n = size.bytes();
        if !self.in_range(addr, n) {
            return Err(BusFault::Unmapped);
        }
        let a = addr as usize;
        for i in 0..n as usize {
            self.bytes[a + i] = (val >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// DMA read: copies RAM into `buf`.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] if the range leaves RAM (nothing is copied).
    pub fn dma_read(&self, addr: u32, buf: &mut [u8]) -> Result<(), BusFault> {
        if !self.in_range(addr, buf.len() as u32) {
            return Err(BusFault::Unmapped);
        }
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
        Ok(())
    }

    /// DMA write: copies `buf` into RAM.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] if the range leaves RAM (nothing is copied).
    pub fn dma_write(&mut self, addr: u32, buf: &[u8]) -> Result<(), BusFault> {
        if !self.in_range(addr, buf.len() as u32) {
            return Err(BusFault::Unmapped);
        }
        let a = addr as usize;
        self.bytes[a..a + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Convenience word read for tests and loaders.
    ///
    /// # Panics
    ///
    /// Panics outside RAM.
    pub fn word(&self, addr: u32) -> u32 {
        self.read(addr, MemSize::Word).expect("address in RAM")
    }

    /// Raw view of the full RAM.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw view (loader use).
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }
}

impl hx_cpu::Bus for Ram {
    fn read(&mut self, paddr: u32, size: MemSize) -> Result<u32, BusFault> {
        Ram::read(self, paddr, size)
    }
    fn write(&mut self, paddr: u32, val: u32, size: MemSize) -> Result<(), BusFault> {
        Ram::write(self, paddr, val, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_accessors() {
        let mut r = Ram::new(64);
        r.write(4, 0x1122_3344, MemSize::Word).unwrap();
        assert_eq!(r.read(4, MemSize::Word).unwrap(), 0x1122_3344);
        assert_eq!(r.read(6, MemSize::Half).unwrap(), 0x1122);
        assert_eq!(r.read(7, MemSize::Byte).unwrap(), 0x11);
        assert_eq!(r.read(64, MemSize::Byte), Err(BusFault::Unmapped));
        assert_eq!(r.read(62, MemSize::Word), Err(BusFault::Unmapped));
    }

    #[test]
    fn dma_roundtrip() {
        let mut r = Ram::new(64);
        r.dma_write(8, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        r.dma_read(8, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(r.dma_write(62, &[0; 4]), Err(BusFault::Unmapped));
        let mut big = [0u8; 8];
        assert_eq!(r.dma_read(60, &mut big), Err(BusFault::Unmapped));
    }

    #[test]
    fn overflow_addresses_fault() {
        let mut r = Ram::new(64);
        assert_eq!(r.read(u32::MAX, MemSize::Word), Err(BusFault::Unmapped));
        assert_eq!(
            r.write(u32::MAX - 1, 0, MemSize::Word),
            Err(BusFault::Unmapped)
        );
    }
}
