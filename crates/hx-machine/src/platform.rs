//! The platform abstraction shared by the three evaluated systems, plus the
//! real-hardware baseline.
//!
//! A *platform* is a way of running the guest OS on the machine:
//!
//! * [`RawPlatform`] (this module) — the guest owns the hardware; every trap
//!   and interrupt is delivered architecturally. This is the paper's "real
//!   hardware" curve.
//! * `lvmm::LvmmPlatform` — the lightweight monitor intercepts traps,
//!   emulates the PIC/PIT/CPU resources, passes the disks and NIC through,
//!   and hosts the debug stub.
//! * `hosted_vmm::HostedPlatform` — the VMware-Workstation-style baseline
//!   that emulates *every* device through a modeled host OS.
//!
//! All platforms account time into a [`TimeStats`], whose
//! [`TimeStats::cpu_load`] is the y-axis of the paper's Fig. 3.1.

use crate::machine::Machine;
use core::fmt;
use hx_cpu::trap::Trap;
use hx_obs::{ExitCause, MetricsRegistry, Track};

/// The span-track lane a [`TimeBucket`] maps to in the trace exporter.
pub fn track_of(bucket: TimeBucket) -> Track {
    match bucket {
        TimeBucket::Guest => Track::Guest,
        TimeBucket::Monitor => Track::Monitor,
        TimeBucket::HostModel => Track::HostModel,
        TimeBucket::Idle => Track::Idle,
    }
}

/// Attribution bucket for consumed cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeBucket {
    /// The guest OS (and its applications) executing instructions.
    Guest,
    /// The virtual machine monitor itself.
    Monitor,
    /// The modeled host OS of the hosted-VMM baseline.
    HostModel,
    /// Nothing to do (`wfi`).
    Idle,
}

/// Cycle totals per [`TimeBucket`].
///
/// `guest + monitor + host_model + idle` equals the simulation time spanned
/// by the measurement; platforms keep this invariant (tests check it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeStats {
    /// Cycles spent executing guest instructions.
    pub guest: u64,
    /// Cycles spent in the monitor.
    pub monitor: u64,
    /// Cycles spent in the modeled host OS.
    pub host_model: u64,
    /// Cycles spent idle.
    pub idle: u64,
}

impl TimeStats {
    /// Creates zeroed stats.
    pub fn new() -> TimeStats {
        TimeStats::default()
    }

    /// Adds `cycles` to a bucket.
    pub fn charge(&mut self, bucket: TimeBucket, cycles: u64) {
        match bucket {
            TimeBucket::Guest => self.guest += cycles,
            TimeBucket::Monitor => self.monitor += cycles,
            TimeBucket::HostModel => self.host_model += cycles,
            TimeBucket::Idle => self.idle += cycles,
        }
    }

    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.guest + self.monitor + self.host_model + self.idle
    }

    /// Non-idle cycles.
    pub fn busy(&self) -> u64 {
        self.guest + self.monitor + self.host_model
    }

    /// CPU load in `[0, 1]` — the quantity on the paper's y-axis.
    pub fn cpu_load(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.busy() as f64 / total as f64
        }
    }

    /// Difference since an earlier snapshot (for windowed measurements).
    #[must_use]
    pub fn since(&self, earlier: &TimeStats) -> TimeStats {
        TimeStats {
            guest: self.guest - earlier.guest,
            monitor: self.monitor - earlier.monitor,
            host_model: self.host_model - earlier.host_model,
            idle: self.idle - earlier.idle,
        }
    }
}

impl fmt::Display for TimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "guest={} monitor={} host={} idle={} load={:.1}%",
            self.guest,
            self.monitor,
            self.host_model,
            self.idle,
            self.cpu_load() * 100.0
        )
    }
}

/// Outcome of one [`Platform::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformStep {
    /// Progress was made (instruction, idle skip, trap handling, …).
    Running,
    /// The machine can never make progress again (idle with no events, or a
    /// fatal guest/monitor condition). `run_for` stops on this.
    Stuck,
}

/// A way of running the guest OS on a [`Machine`].
///
/// This trait is object-safe so harnesses can sweep over
/// `Box<dyn Platform>` values of all three systems.
///
/// `Send` is a supertrait: a platform owns its whole machine (no shared
/// host state), so it can be handed to another thread — the debug farm
/// shards dozens of platforms across worker threads, and the supertrait
/// makes `Box<dyn Platform>` itself `Send` without per-call-site `+ Send`
/// bounds.
pub trait Platform: Send {
    /// Short platform name, used in reports ("real-hw", "lvmm", "hosted").
    fn name(&self) -> &'static str;

    /// Shared access to the machine.
    fn machine(&self) -> &Machine;

    /// Exclusive access to the machine.
    fn machine_mut(&mut self) -> &mut Machine;

    /// Executes one unit of progress.
    fn step(&mut self) -> PlatformStep;

    /// Like [`Platform::step`], but guaranteed to execute at most one guest
    /// instruction, so the caller can interleave external actions (journal
    /// input injection, exact-cycle probes) at every instruction boundary.
    /// Platforms that batch instructions in `step` override this with the
    /// unbatched path; the behaviours are simulation-identical.
    fn step_precise(&mut self) -> PlatformStep {
        self.step()
    }

    /// The platform's cycle attribution so far.
    fn time_stats(&self) -> &TimeStats;

    /// Runs until at least `cycles` of simulation time pass (or the machine
    /// gets stuck). Returns the cycles actually simulated.
    fn run_for(&mut self, cycles: u64) -> u64 {
        let start = self.machine().now();
        let target = start + cycles;
        while self.machine().now() < target {
            if self.step() == PlatformStep::Stuck {
                break;
            }
        }
        self.machine().now() - start
    }

    /// Delivers a received network frame to the guest by whatever path this
    /// platform uses (direct RX ring for passthrough, virtual NIC for the
    /// hosted monitor). Replay drivers use this to re-inject journaled
    /// frames without knowing the platform's device topology.
    fn inject_rx_frame(&mut self, frame: &[u8]) {
        self.machine_mut().nic_inject_rx(frame.to_vec());
    }

    /// Publishes the platform's cumulative totals into a metrics registry,
    /// labelled by platform name. Pure read of simulation state (plus the
    /// host-time self-profiler's accumulators when enabled) — publishing is
    /// idempotent (`counter_set` never goes backwards) and cannot perturb
    /// the run, so callers may publish as often as they like (the heartbeat
    /// does so every beat).
    fn publish_metrics(&self, reg: &MetricsRegistry) {
        let name = self.name();
        let m = self.machine();
        let t = self.time_stats();
        let set = |metric: &str, v: u64| {
            reg.counter_set(&format!("{metric}{{platform=\"{name}\"}}"), v);
        };
        set("lwvmm_instructions_total", m.cpu.instret());
        set("lwvmm_guest_cycles_total", t.guest);
        set("lwvmm_monitor_cycles_total", t.monitor);
        set("lwvmm_host_model_cycles_total", t.host_model);
        set("lwvmm_idle_cycles_total", t.idle);
        reg.gauge_set(
            &format!("lwvmm_cpu_load{{platform=\"{name}\"}}"),
            t.cpu_load(),
        );
        reg.gauge_set(
            &format!("lwvmm_sim_now_cycles{{platform=\"{name}\"}}"),
            m.now() as f64,
        );
        for (metric, v) in m.cpu.decode_stats().kv() {
            set(metric, v);
        }
        for cause in ExitCause::ALL {
            let h = m.obs.exits.get(cause);
            let labels = format!("platform=\"{name}\",cause=\"{}\"", cause.label());
            reg.counter_set(&format!("lwvmm_exits_total{{{labels}}}"), h.count());
            reg.hist_set(&format!("lwvmm_exit_cycles{{{labels}}}"), h);
        }
        // Per-core breakdown: instructions retired and exits serviced under a
        // `core` label, so SMP dashboards can spot load imbalance. Core 0
        // alone on single-core machines keeps the schema uniform.
        for n in 0..m.num_cores() {
            let labels = format!("platform=\"{name}\",core=\"{n}\"");
            reg.counter_set(
                &format!("lwvmm_core_instructions_total{{{labels}}}"),
                m.core(n).instret(),
            );
            let exits = m.obs.core_exit_counts().get(n).copied().unwrap_or(0);
            reg.counter_set(&format!("lwvmm_core_exits_total{{{labels}}}"), exits);
        }
        if let Some(c) = m.obs.causal() {
            for class in hx_obs::FlowClass::ALL {
                let h = c.hist(class);
                let labels = format!("platform=\"{name}\",class=\"{}\"", class.label());
                reg.counter_set(&format!("lwvmm_flows_total{{{labels}}}"), h.count());
                reg.hist_set(&format!("lwvmm_flow_latency_cycles{{{labels}}}"), h);
            }
        }
        if let Some(j) = m.obs.journal() {
            set("lwvmm_journal_inputs_total", j.inputs.len() as u64);
            set("lwvmm_journal_events_total", j.events.len() as u64);
            set("lwvmm_journal_payload_bytes_total", j.payload_bytes());
        }
        if let Some(att) = m.obs.host_attribution() {
            set("lwvmm_host_wall_ns_total", att.wall_ns);
            set("lwvmm_host_marks_total", att.marks);
            for (label, ns) in att.phases() {
                reg.counter_set(
                    &format!("lwvmm_host_phase_ns_total{{platform=\"{name}\",phase=\"{label}\"}}"),
                    ns,
                );
            }
        }
    }
}

/// The real-hardware baseline: no monitor, architectural trap delivery.
///
/// The guest kernel runs in supervisor mode with the chipset to itself —
/// the fastest and least debuggable of the paper's three configurations.
#[derive(Debug)]
pub struct RawPlatform {
    machine: Machine,
    stats: TimeStats,
}

impl RawPlatform {
    /// Wraps a machine (guest image already loaded).
    pub fn new(machine: Machine) -> RawPlatform {
        RawPlatform {
            machine,
            stats: TimeStats::new(),
        }
    }

    /// Consumes the platform and returns the machine.
    pub fn into_machine(self) -> Machine {
        self.machine
    }
}

impl crate::engine::ExitPolicy for RawPlatform {
    fn mach(&self) -> &Machine {
        &self.machine
    }

    fn mach_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn time_stats_mut(&mut self) -> &mut TimeStats {
        &mut self.stats
    }

    fn handle_trap(&mut self, trap: Trap) {
        // No monitor: every trap is delivered architecturally to the guest.
        let c = self.machine.deliver_trap(trap);
        self.charge(TimeBucket::Guest, c);
    }

    fn handle_interrupt(&mut self, irq: u8, vector: u8) {
        // Architectural INTA: acknowledging the line and entering the ISR
        // happen in the same step on raw hardware. IPI lines are excluded —
        // their delivery is tracked by the machine's own IPI hook.
        if irq < crate::smp::IRQ_BASE {
            let at = self.machine.now();
            self.machine.obs.inta(at, irq as u32);
        }
        let trap = self.machine.interrupt_trap(vector);
        let c = self.machine.deliver_trap(trap);
        self.charge(TimeBucket::Guest, c);
    }
}

impl Platform for RawPlatform {
    fn name(&self) -> &'static str {
        "real-hw"
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn time_stats(&self) -> &TimeStats {
        &self.stats
    }

    fn step(&mut self) -> PlatformStep {
        // The profiler and logpoints need per-instruction PC boundaries.
        let batch = !self.machine.obs.profiling() && !self.machine.has_logpoints();
        crate::engine::ExitPolicy::guest_step(self, batch)
    }

    fn step_precise(&mut self) -> PlatformStep {
        crate::engine::ExitPolicy::guest_step(self, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::map;

    #[test]
    fn time_stats_arithmetic() {
        let mut s = TimeStats::new();
        s.charge(TimeBucket::Guest, 60);
        s.charge(TimeBucket::Monitor, 20);
        s.charge(TimeBucket::HostModel, 10);
        s.charge(TimeBucket::Idle, 10);
        assert_eq!(s.total(), 100);
        assert_eq!(s.busy(), 90);
        assert!((s.cpu_load() - 0.9).abs() < 1e-12);
        let snap = s;
        s.charge(TimeBucket::Idle, 100);
        let d = s.since(&snap);
        assert_eq!(d.idle, 100);
        assert_eq!(d.guest, 0);
        assert!(!format!("{s}").is_empty());
        assert_eq!(TimeStats::new().cpu_load(), 0.0);
    }

    #[test]
    fn raw_platform_accounts_all_time() {
        let src = format!(
            "        .org 0x100
             handler:
                     addi s0, s0, 1
                     li   k0, {pic:#x}
                     sw   zero, 0xc(k0)     ; EOI irq 0
                     tret
             start:  la   t0, handler
                     csrw tvec, t0
                     li   t0, {pit:#x}
                     li   t1, 2000
                     sw   t1, 4(t0)
                     li   t1, 3
                     sw   t1, 0(t0)
                     csrw status, 1
             idle:   wfi
                     j    idle
            ",
            pic = map::PIC_BASE,
            pit = map::PIT_BASE,
        );
        let program = hx_asm::assemble(&src).unwrap();
        let mut machine = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..MachineConfig::default()
        });
        program.load_into(machine.mem.as_bytes_mut());
        machine.cpu.set_pc(program.symbols.get("start").unwrap());
        let mut hw = RawPlatform::new(machine);
        let start_now = hw.machine().now();
        let ran = hw.run_for(250_000);
        assert!(ran >= 250_000);
        let s = *hw.time_stats();
        // Every simulated cycle is attributed to a bucket.
        assert_eq!(s.total(), hw.machine().now() - start_now);
        // A timer-tick-only workload is mostly idle.
        assert!(s.cpu_load() < 0.2, "load={}", s.cpu_load());
        assert!(s.idle > s.guest);
        assert!(hw.machine().pit.ticks() >= 100);
        assert_eq!(s.monitor, 0);
        assert_eq!(s.host_model, 0);
        assert_eq!(hw.name(), "real-hw");
    }

    #[test]
    fn run_for_stops_when_stuck() {
        let program = hx_asm::assemble("wfi\n").unwrap();
        let mut machine = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..MachineConfig::default()
        });
        machine.load_program(&program);
        let mut hw = RawPlatform::new(machine);
        let ran = hw.run_for(1_000_000);
        assert!(
            ran < 1_000_000,
            "wfi with no timer must get stuck, ran {ran}"
        );
    }
}
