//! SMP support: the inter-processor-interrupt block and scheduler constants.
//!
//! A multi-core [`Machine`](crate::Machine) time-multiplexes its vCPUs on
//! one simulated clock with a fixed round-robin quantum (see
//! `DESIGN.md` §14). Cores talk to each other through the IPI block, a
//! small register file living on the PIC's MMIO page above the 8259-style
//! registers:
//!
//! | offset | register | access | meaning |
//! |--------|----------|--------|---------|
//! | [`reg::SEND`]      | IPI_SEND   | W | `target \| line << 8`: latch IPI `line` on core `target` after [`LATENCY`] cycles |
//! | [`reg::ENTRY`]     | IPI_ENTRY  | RW | entry PC a startup IPI (line 0) hands to the woken core |
//! | [`reg::CORE_ID`]   | CORE_ID    | R | index of the core performing the read |
//! | [`reg::NUM_CORES`] | NUM_CORES  | R | configured core count |
//!
//! Line 0 is the **startup IPI**: the first one a parked secondary core
//! receives marks it started at `IPI_ENTRY`. Lines 1–7 latch into the
//! target's per-core pending mask and are delivered as interrupt vectors
//! [`VECTOR_BASE`]` + line` when that core next runs with interrupts
//! enabled — entirely independent of the global PIC, which stays wired to
//! core 0 only (the board routes all device lines there, as single-core
//! systems always did; this is what keeps single-core behaviour
//! bit-identical).
//!
//! Delivery rides the machine's deterministic event queue
//! ([`Event::Ipi`](crate::Event)), so an SMP run is still a pure function
//! of (program, config) and replays byte-identically.

/// IPI register offsets within the PIC page (above [`crate::pic::reg`]).
pub mod reg {
    /// Write `target | line << 8` to send an IPI (write-only).
    pub const SEND: u32 = 0x14;
    /// Entry PC handed to a core woken by a startup IPI (read/write).
    pub const ENTRY: u32 = 0x18;
    /// Index of the reading core (read-only).
    pub const CORE_ID: u32 = 0x1c;
    /// Configured core count (read-only).
    pub const NUM_CORES: u32 = 0x20;
}

/// Cycles between an `IPI_SEND` write and the IPI latching at the target —
/// the modeled APIC-bus latency. Fixed, so delivery order is deterministic.
pub const LATENCY: u64 = 64;

/// Pseudo-IRQ number space for IPIs as surfaced by
/// [`MachineStep::Interrupt`](crate::MachineStep): `irq = IRQ_BASE + line`.
/// The global PIC owns 0–7; anything at or above this is an IPI.
pub const IRQ_BASE: u8 = 8;

/// Vector delivered for IPI `line`: `VECTOR_BASE + line` (the global PIC's
/// default vectors occupy 32–39).
pub const VECTOR_BASE: u8 = 48;

/// Hard cap on configurable cores (tooling validates against this).
pub const MAX_CORES: usize = 8;

/// Encodes an `IPI_SEND` register value.
pub fn send_word(target: u32, line: u32) -> u32 {
    (line << 8) | target
}

/// The machine's IPI block: per-core pending lines plus the startup entry
/// register. `Clone`/`PartialEq` so flight-recorder snapshots capture
/// in-flight IPI state exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IpiBlock {
    /// Latched-but-undelivered IPI lines, one mask per core (bit = line).
    pub pending: Vec<u8>,
    /// Startup entry PC (`IPI_ENTRY`).
    pub entry: u32,
    /// Total IPIs accepted for delivery (statistics).
    pub delivered: u64,
}

impl IpiBlock {
    /// Creates a block for `cores` cores with nothing pending.
    pub fn new(cores: usize) -> IpiBlock {
        IpiBlock {
            pending: vec![0; cores],
            entry: 0,
            delivered: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_word_packs_fields() {
        assert_eq!(send_word(3, 2), 0x203);
        assert_eq!(send_word(0, 0), 0);
    }

    #[test]
    fn block_starts_empty() {
        let b = IpiBlock::new(4);
        assert_eq!(b.pending, vec![0; 4]);
        assert_eq!(b.entry, 0);
    }
}
