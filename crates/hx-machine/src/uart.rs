//! `Huart`: a 16550-style byte channel — the paper's "communication device"
//! between the host-side remote debugger and the target.
//!
//! The host side of the link is the pair [`Huart::push_rx`] (host → target)
//! and [`Huart::drain_tx`] (target → host); the target side is the MMIO
//! register interface. On the lightweight-monitor platform the UART is owned
//! by the monitor, which is why debugging keeps working when the guest OS is
//! wedged.

use crate::pic::Hpic;
use hx_cpu::{BusFault, MemSize};
use std::collections::VecDeque;

/// Register offsets within the UART page.
pub mod reg {
    /// Read: pop one received byte (0 when empty). Write: transmit a byte.
    pub const DATA: u32 = 0x00;
    /// Bit 0: receive data available. Bit 1: transmit ready (always set).
    pub const STATUS: u32 = 0x04;
    /// Bit 0: raise IRQ 1 on received bytes.
    pub const CTRL: u32 = 0x08;
}

/// Status-register bits.
pub mod status {
    /// At least one byte waits in the receive FIFO.
    pub const RX_AVAIL: u32 = 1 << 0;
    /// The transmitter can accept a byte (always true in this model).
    pub const TX_READY: u32 = 1 << 1;
}

/// The UART state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Huart {
    rx: VecDeque<u8>,
    tx: VecDeque<u8>,
    rx_irq_enabled: bool,
    rx_bytes: u64,
    tx_bytes: u64,
}

impl Huart {
    /// Creates an idle UART with receive interrupts disabled.
    pub fn new() -> Huart {
        Huart::default()
    }

    /// Host → target: queues bytes for the guest/monitor to read, raising
    /// IRQ 1 if receive interrupts are enabled.
    pub fn push_rx(&mut self, bytes: &[u8], pic: &mut Hpic) {
        if bytes.is_empty() {
            return;
        }
        self.rx.extend(bytes.iter().copied());
        self.rx_bytes += bytes.len() as u64;
        if self.rx_irq_enabled {
            pic.assert_irq(crate::map::irq::UART);
        }
    }

    /// Target → host: takes everything the target has transmitted.
    pub fn drain_tx(&mut self) -> Vec<u8> {
        self.tx_bytes += self.tx.len() as u64;
        self.tx.drain(..).collect()
    }

    /// Target-side bulk transmit, used by a monitor-resident debug stub
    /// that owns the UART directly instead of going through MMIO.
    pub fn push_tx(&mut self, bytes: &[u8]) {
        self.tx.extend(bytes.iter().copied());
    }

    /// Target-side single-byte receive (monitor stub use).
    pub fn pop_rx(&mut self) -> Option<u8> {
        self.rx.pop_front()
    }

    /// Bytes waiting in the receive FIFO.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }

    /// Bytes waiting in the transmit FIFO.
    pub fn tx_pending(&self) -> usize {
        self.tx.len()
    }

    /// Is the receive interrupt enabled?
    pub fn rx_irq_enabled(&self) -> bool {
        self.rx_irq_enabled
    }

    /// MMIO register read.
    ///
    /// # Errors
    ///
    /// [`BusFault::Denied`] for non-word access or unknown offsets.
    pub fn read_reg(&mut self, offset: u32, size: MemSize) -> Result<u32, BusFault> {
        if size != MemSize::Word {
            return Err(BusFault::Denied);
        }
        match offset {
            reg::DATA => Ok(self.rx.pop_front().unwrap_or(0) as u32),
            reg::STATUS => {
                let mut v = status::TX_READY;
                if !self.rx.is_empty() {
                    v |= status::RX_AVAIL;
                }
                Ok(v)
            }
            reg::CTRL => Ok(self.rx_irq_enabled as u32),
            _ => Err(BusFault::Denied),
        }
    }

    /// MMIO register write.
    ///
    /// # Errors
    ///
    /// [`BusFault::Denied`] for non-word access, reads-only or unknown
    /// offsets.
    pub fn write_reg(&mut self, offset: u32, val: u32, size: MemSize) -> Result<(), BusFault> {
        if size != MemSize::Word {
            return Err(BusFault::Denied);
        }
        match offset {
            reg::DATA => {
                self.tx.push_back(val as u8);
                Ok(())
            }
            reg::CTRL => {
                self.rx_irq_enabled = val & 1 != 0;
                Ok(())
            }
            _ => Err(BusFault::Denied),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback() {
        let mut u = Huart::new();
        let mut pic = Hpic::new();
        u.push_rx(b"ok", &mut pic);
        assert_eq!(
            u.read_reg(reg::STATUS, MemSize::Word).unwrap() & status::RX_AVAIL,
            1
        );
        assert_eq!(u.read_reg(reg::DATA, MemSize::Word).unwrap(), b'o' as u32);
        assert_eq!(u.read_reg(reg::DATA, MemSize::Word).unwrap(), b'k' as u32);
        assert_eq!(u.read_reg(reg::DATA, MemSize::Word).unwrap(), 0);
        u.write_reg(reg::DATA, b'+' as u32, MemSize::Word).unwrap();
        assert_eq!(u.drain_tx(), b"+");
        assert_eq!(u.drain_tx(), b"");
    }

    #[test]
    fn rx_irq_gating() {
        let mut u = Huart::new();
        let mut pic = Hpic::new();
        u.push_rx(b"a", &mut pic);
        assert_eq!(pic.pending(), None, "irq disabled by default");
        u.write_reg(reg::CTRL, 1, MemSize::Word).unwrap();
        assert!(u.rx_irq_enabled());
        u.push_rx(b"b", &mut pic);
        assert_eq!(pic.pending(), Some(crate::map::irq::UART));
    }

    #[test]
    fn bad_access() {
        let mut u = Huart::new();
        assert_eq!(u.read_reg(reg::DATA, MemSize::Byte), Err(BusFault::Denied));
        assert_eq!(
            u.write_reg(reg::STATUS, 0, MemSize::Word),
            Err(BusFault::Denied)
        );
        assert_eq!(u.read_reg(0x40, MemSize::Word), Err(BusFault::Denied));
    }
}
