//! Device timing constants and conversions.
//!
//! The machine simulates a scaled-down PC of the paper's era (see
//! `DESIGN.md` §6): the CPU clock defaults to 150 MHz while the peripherals
//! keep their real-world data rates (1 Gb/s Ethernet, 40 MB/s disk media).
//! All three evaluated platforms share these constants, so the *ratios*
//! plotted in Fig. 3.1 are preserved even though the absolute clock differs
//! from the paper's 1.26 GHz Pentium III. (The scale is chosen so that the
//! real-hardware platform saturates its streaming workload in the paper's
//! 600–700 Mbit/s region.)

/// Default CPU clock in Hz.
pub const DEFAULT_CLOCK_HZ: u64 = 150_000_000;

/// Default Ethernet wire rate in bits per second (gigabit).
pub const DEFAULT_WIRE_BPS: u64 = 1_000_000_000;

/// Default per-disk sustained media rate in bytes per second (an
/// Ultra160-era drive streams ~40 MB/s).
pub const DEFAULT_DISK_BPS: u64 = 40_000_000;

/// Fixed per-command disk-controller overhead in CPU cycles (command decode,
/// bus arbitration; streaming reads do not seek).
pub const DEFAULT_HDC_CMD_OVERHEAD: u64 = 1_500;

/// Extra on-wire bytes per Ethernet frame: preamble (8) + FCS (4) +
/// inter-frame gap (12).
pub const FRAME_WIRE_OVERHEAD: u32 = 24;

/// Minimum on-wire frame size in bytes.
pub const MIN_FRAME: u32 = 64;

/// Cycles for the NIC to fetch and parse one TX descriptor.
pub const DEFAULT_NIC_TX_FETCH: u64 = 40;

/// Extra cycles charged for each uncached MMIO register access (a PCI-era
/// register read costs several hundred nanoseconds).
pub const MMIO_ACCESS_CYCLES: u64 = 60;

/// Sector size used by the disk controller.
pub const SECTOR_SIZE: u32 = 512;

/// Converts a byte count moved at `rate_bps` bits/second into CPU cycles at
/// `clock_hz`, rounding up (a transfer never finishes early).
pub fn cycles_for_bits(bits: u64, clock_hz: u64, rate_bps: u64) -> u64 {
    assert!(rate_bps > 0, "rate must be positive");
    let n = (bits as u128) * (clock_hz as u128);
    n.div_ceil(rate_bps as u128) as u64
}

/// Cycles to move `bytes` at `rate_bytes_per_s` on a byte-rated device.
pub fn cycles_for_bytes(bytes: u64, clock_hz: u64, rate_bytes_per_s: u64) -> u64 {
    cycles_for_bits(bytes * 8, clock_hz, rate_bytes_per_s * 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_math() {
        // 1250 bytes at 1 Gb/s = 10 µs = 250 cycles at 25 MHz.
        assert_eq!(cycles_for_bits(1250 * 8, 25_000_000, 1_000_000_000), 250);
        // Rounds up.
        assert_eq!(cycles_for_bits(1, 25_000_000, 1_000_000_000), 1);
    }

    #[test]
    fn disk_math() {
        // 512 bytes at 40 MB/s = 12.8 µs = 320 cycles at 25 MHz.
        assert_eq!(cycles_for_bytes(512, 25_000_000, 40_000_000), 320);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        cycles_for_bits(8, 25_000_000, 0);
    }
}
