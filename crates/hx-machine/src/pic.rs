//! `Hpic`: an 8259-style programmable interrupt controller.
//!
//! Eight request lines with fixed priority (line 0 highest). Requests latch
//! into IRR; an interrupt-acknowledge cycle ([`Hpic::inta`]) moves the
//! winning request to ISR and yields its vector; a specific end-of-interrupt
//! ([`Hpic::eoi`]) clears the ISR bit. Lower-priority requests are held off
//! while a higher-priority interrupt is in service.
//!
//! This is one of the two devices the paper's lightweight monitor *emulates*
//! for the guest (the "interruption-controller emulator" of Fig. 2.1) — so
//! the monitor in the `lvmm` crate instantiates a second `Hpic` as the
//! guest-visible virtual controller, reusing these exact semantics.

use hx_cpu::{BusFault, MemSize};

/// Register offsets within the PIC page.
pub mod reg {
    /// Interrupt request register (read-only).
    pub const IRR: u32 = 0x00;
    /// In-service register (read-only).
    pub const ISR: u32 = 0x04;
    /// Interrupt mask register (1 = masked).
    pub const IMR: u32 = 0x08;
    /// Specific EOI: write the IRQ number to retire it.
    pub const EOI: u32 = 0x0c;
    /// Vector base: delivered vector = base + IRQ.
    pub const VBASE: u32 = 0x10;
}

/// The interrupt controller state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hpic {
    irr: u8,
    isr: u8,
    imr: u8,
    vbase: u8,
    /// Total requests latched, per line (statistics).
    raised: [u64; 8],
    /// Total INTA cycles served.
    acked: u64,
}

impl Hpic {
    /// Creates a PIC with all lines unmasked and vector base 32.
    pub fn new() -> Hpic {
        Hpic {
            vbase: 32,
            ..Hpic::default()
        }
    }

    /// Latches a request on `irq` (0–7).
    ///
    /// # Panics
    ///
    /// Panics if `irq >= 8` — lines are fixed by the board wiring.
    pub fn assert_irq(&mut self, irq: u8) {
        assert!(irq < 8, "irq {irq} out of range");
        self.irr |= 1 << irq;
        self.raised[irq as usize] += 1;
    }

    /// The highest-priority serviceable request, if any: latched, unmasked,
    /// and of higher priority than anything currently in service.
    pub fn pending(&self) -> Option<u8> {
        let ready = self.irr & !self.imr;
        if ready == 0 {
            return None;
        }
        let winner = ready.trailing_zeros() as u8;
        if self.isr != 0 && self.isr.trailing_zeros() as u8 <= winner {
            return None;
        }
        Some(winner)
    }

    /// Returns `true` when the INTR line to the CPU is asserted.
    pub fn line_asserted(&self) -> bool {
        self.pending().is_some()
    }

    /// Interrupt-acknowledge cycle: commits the winning request to ISR and
    /// returns `(irq, vector)`.
    ///
    /// Returns `None` when nothing is pending (spurious INTA).
    pub fn inta(&mut self) -> Option<(u8, u8)> {
        let irq = self.pending()?;
        self.irr &= !(1 << irq);
        self.isr |= 1 << irq;
        self.acked += 1;
        Some((irq, self.vbase.wrapping_add(irq)))
    }

    /// Specific end-of-interrupt for `irq`.
    pub fn eoi(&mut self, irq: u8) {
        if irq < 8 {
            self.isr &= !(1 << irq);
        }
    }

    /// Current interrupt mask (1 = masked).
    pub fn imr(&self) -> u8 {
        self.imr
    }

    /// Replaces the interrupt mask.
    pub fn set_imr(&mut self, imr: u8) {
        self.imr = imr;
    }

    /// Latched-but-unserviced requests.
    pub fn irr(&self) -> u8 {
        self.irr
    }

    /// In-service requests.
    pub fn isr(&self) -> u8 {
        self.isr
    }

    /// Vector base.
    pub fn vbase(&self) -> u8 {
        self.vbase
    }

    /// `(per-line latch counts, total INTAs)` statistics.
    pub fn stats(&self) -> ([u64; 8], u64) {
        (self.raised, self.acked)
    }

    /// MMIO register read.
    ///
    /// # Errors
    ///
    /// [`BusFault::Denied`] for non-word access or unknown offsets.
    pub fn read_reg(&mut self, offset: u32, size: MemSize) -> Result<u32, BusFault> {
        if size != MemSize::Word {
            return Err(BusFault::Denied);
        }
        match offset {
            reg::IRR => Ok(self.irr as u32),
            reg::ISR => Ok(self.isr as u32),
            reg::IMR => Ok(self.imr as u32),
            reg::VBASE => Ok(self.vbase as u32),
            _ => Err(BusFault::Denied),
        }
    }

    /// MMIO register write.
    ///
    /// # Errors
    ///
    /// [`BusFault::Denied`] for non-word access, read-only or unknown
    /// offsets.
    pub fn write_reg(&mut self, offset: u32, val: u32, size: MemSize) -> Result<(), BusFault> {
        if size != MemSize::Word {
            return Err(BusFault::Denied);
        }
        match offset {
            reg::IMR => {
                self.imr = val as u8;
                Ok(())
            }
            reg::EOI => {
                self.eoi(val as u8);
                Ok(())
            }
            reg::VBASE => {
                self.vbase = val as u8;
                Ok(())
            }
            _ => Err(BusFault::Denied),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_and_inta() {
        let mut pic = Hpic::new();
        pic.assert_irq(5);
        pic.assert_irq(2);
        assert_eq!(pic.pending(), Some(2));
        let (irq, vec) = pic.inta().unwrap();
        assert_eq!((irq, vec), (2, 34));
        // IRQ5 held off while IRQ2 is in service.
        assert_eq!(pic.pending(), None);
        pic.eoi(2);
        assert_eq!(pic.pending(), Some(5));
        assert_eq!(pic.inta().unwrap().0, 5);
        pic.eoi(5);
        assert!(!pic.line_asserted());
    }

    #[test]
    fn higher_priority_preempts_in_service() {
        let mut pic = Hpic::new();
        pic.assert_irq(4);
        pic.inta().unwrap();
        pic.assert_irq(1);
        // IRQ1 outranks in-service IRQ4.
        assert_eq!(pic.pending(), Some(1));
    }

    #[test]
    fn masking() {
        let mut pic = Hpic::new();
        pic.set_imr(0b0000_0001);
        pic.assert_irq(0);
        assert_eq!(pic.pending(), None);
        // Latched request survives the mask.
        pic.set_imr(0);
        assert_eq!(pic.pending(), Some(0));
    }

    #[test]
    fn spurious_inta() {
        let mut pic = Hpic::new();
        assert_eq!(pic.inta(), None);
    }

    #[test]
    fn register_interface() {
        let mut pic = Hpic::new();
        pic.assert_irq(3);
        assert_eq!(pic.read_reg(reg::IRR, MemSize::Word).unwrap(), 0b1000);
        pic.write_reg(reg::IMR, 0xff, MemSize::Word).unwrap();
        assert_eq!(pic.imr(), 0xff);
        pic.write_reg(reg::VBASE, 64, MemSize::Word).unwrap();
        pic.write_reg(reg::IMR, 0, MemSize::Word).unwrap();
        assert_eq!(pic.inta().unwrap(), (3, 67));
        assert_eq!(pic.read_reg(reg::ISR, MemSize::Word).unwrap(), 0b1000);
        pic.write_reg(reg::EOI, 3, MemSize::Word).unwrap();
        assert_eq!(pic.isr(), 0);
        // Bad accesses.
        assert_eq!(pic.read_reg(reg::IRR, MemSize::Byte), Err(BusFault::Denied));
        assert_eq!(pic.read_reg(0x40, MemSize::Word), Err(BusFault::Denied));
        assert_eq!(
            pic.write_reg(reg::IRR, 0, MemSize::Word),
            Err(BusFault::Denied)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_line_panics() {
        Hpic::new().assert_irq(8);
    }
}
