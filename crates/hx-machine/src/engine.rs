//! The shared execution engine behind all platforms.
//!
//! Every platform — raw hardware, the lightweight monitor, the hosted full
//! monitor — drives the same [`Machine`] and does the same bookkeeping
//! around it: charge consumed cycles into a [`TimeStats`] bucket and the
//! trace span track, poll the event queue, detect a stuck machine, and hand
//! traps and interrupts to platform-specific policy. This module extracts
//! that engine so the platforms implement only the narrow [`ExitPolicy`]
//! trait: *what to do at each guest exit*.
//!
//! The engine also owns the host-performance fast path: when a platform
//! allows it, [`ExitPolicy::guest_step`] executes instructions through
//! [`Machine::run_batch`], amortising the per-instruction event-queue and
//! interrupt polls over up to [`Machine::BATCH_INSTRS`] instructions.
//! Batching is simulation-invisible (see [`crate::machine::Batch`]); it is
//! disabled by [`Platform::step_precise`](crate::Platform::step_precise)
//! callers (journal replay) and by platforms whose recorder hooks need
//! per-instruction boundaries (the flight recorder and the profiler).

use crate::machine::{Machine, MachineStep};
use crate::platform::{track_of, PlatformStep, TimeBucket, TimeStats};
use hx_cpu::trap::Trap;
use hx_obs::{CheckpointStore, ExitCause, HostPhase, StateDigest};

/// Livelock guard for shadow-fill paths: re-raising the identical fault
/// after a fill means the fill is not taking effect — a monitor bug or
/// unrecoverable guest state. Emulated-MMIO faults repeat at the same PC by
/// design (the mapping is never installed) and must not be fed to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressGuard {
    last: (u32, u32, u32),
    repeats: u32,
}

impl ProgressGuard {
    /// Consecutive identical faults tolerated before declaring livelock.
    const LIMIT: u32 = 8;

    /// Creates a guard with no fault history.
    pub fn new() -> ProgressGuard {
        ProgressGuard::default()
    }

    /// Feeds one fault; returns `true` when the same fault has repeated
    /// past the tolerance and the platform should stop retrying.
    pub fn no_progress(&mut self, trap: &Trap) -> bool {
        let sig = (trap.epc, trap.tval, trap.cause.code());
        if sig == self.last {
            self.repeats += 1;
            self.repeats > Self::LIMIT
        } else {
            self.last = sig;
            self.repeats = 0;
            false
        }
    }

    /// Forgets the repeat count (after the platform resolved the livelock
    /// some other way, e.g. by reflecting the fault to the guest).
    pub fn reset(&mut self) {
        self.repeats = 0;
    }
}

/// Time-travel state: periodic snapshots plus the bookkeeping needed to
/// resolve `reverse-step` / `reverse-continue` targets. Generic over the
/// platform's snapshot type `S` — the restorable part of its state.
#[derive(Debug)]
pub struct FlightRecorder<S> {
    /// Periodic full-state checkpoints, the restore points for seeks.
    pub checkpoints: CheckpointStore<S>,
    /// Cycle at which the most recent guest instruction *began* executing —
    /// the `reverse-step` landing target.
    pub last_instr_at: u64,
    /// Cycles of past debugger stops (breakpoints, watchpoints, faults,
    /// halts), oldest first — the `reverse-continue` targets.
    pub stop_history: Vec<u64>,
    /// True while a seek is re-executing history; time-travel commands
    /// arriving in that window are rejected instead of recursing.
    pub replaying: bool,
}

impl<S> FlightRecorder<S> {
    /// Creates a recorder checkpointing every `every` cycles, with the
    /// initial state recorded at `now`.
    pub fn new(every: u64, now: u64, digest: StateDigest, initial: S) -> FlightRecorder<S> {
        let mut checkpoints = CheckpointStore::new(every);
        checkpoints.record(now, digest, initial);
        FlightRecorder {
            checkpoints,
            last_instr_at: now,
            stop_history: Vec::new(),
            replaying: false,
        }
    }

    /// Appends a debugger stop at `now` as a `reverse-continue` target
    /// (deduplicating an immediate re-stop at the same cycle).
    pub fn note_stop(&mut self, now: u64) {
        if self.stop_history.last() != Some(&now) {
            self.stop_history.push(now);
        }
    }
}

/// What a platform does at each guest exit. Everything else — the run loop,
/// instruction batching, cycle charging, stuck detection — is provided.
///
/// This trait is deliberately *not* object-safe-oriented like
/// [`Platform`](crate::Platform); it is the implementation substrate behind
/// each platform's `Platform::step`.
pub trait ExitPolicy {
    /// Shared access to the machine.
    fn mach(&self) -> &Machine;

    /// Exclusive access to the machine.
    fn mach_mut(&mut self) -> &mut Machine;

    /// Exclusive access to the platform's time accounting.
    fn time_stats_mut(&mut self) -> &mut TimeStats;

    /// Handles a trap raised by a guest instruction. The instruction's own
    /// cycles are already charged to [`TimeBucket::Guest`].
    fn handle_trap(&mut self, trap: Trap);

    /// Handles a hardware interrupt that won arbitration.
    fn handle_interrupt(&mut self, irq: u8, vector: u8);

    /// Called with the cycle at which a guest instruction began, before it
    /// is charged — the flight recorder's `reverse-step` anchor. Only
    /// invoked on the precise (unbatched) path.
    fn on_instr_boundary(&mut self, at: u64) {
        let _ = at;
    }

    /// Attributes cycles to both the flat stats and the trace span track.
    fn charge(&mut self, bucket: TimeBucket, cycles: u64) {
        self.time_stats_mut().charge(bucket, cycles);
        let track = track_of(bucket);
        self.mach_mut().obs.charge(track, cycles);
    }

    /// Advances simulated time by `cycles` of platform work (monitor or
    /// modeled host) and charges them to `bucket`.
    fn consume(&mut self, bucket: TimeBucket, cycles: u64) {
        self.mach_mut().consume(cycles);
        self.charge(bucket, cycles);
    }

    /// Records one guest→monitor exit (histogram + event ring), and closes
    /// the exit's host-time window: every exit path calls this exactly once
    /// at the end of handling, so it is the natural place to charge the
    /// handler's wall-clock to `Exit(cause)`.
    fn record_exit(&mut self, cause: ExitCause, cycles: u64) {
        let now = self.mach().now();
        self.mach_mut().obs.exit(now, cause, cycles);
        self.mach().obs.host_mark(HostPhase::Exit(cause));
    }

    /// One unit of progress in the running state: execute guest
    /// instructions (batched when `batch` is true), charge their cycles,
    /// and dispatch whatever ended them to the policy.
    fn guest_step(&mut self, batch: bool) -> PlatformStep {
        if !batch {
            let at = self.mach().now();
            // The PC *before* the step is the executed instruction's
            // address — the profiler's attribution anchor.
            let pc = self.mach().cpu.pc();
            return match self.mach_mut().step() {
                MachineStep::Executed { cycles } => {
                    self.on_instr_boundary(at);
                    self.mach_mut().obs.instr_boundary(pc);
                    self.mach_mut().note_logpoints(pc);
                    self.charge(TimeBucket::Guest, cycles);
                    PlatformStep::Running
                }
                MachineStep::Idle { cycles } => {
                    // Guest-execution host time accrues until the guest
                    // leaves the running state; close the window here.
                    self.mach().obs.host_mark(HostPhase::GuestExec);
                    self.charge(TimeBucket::Idle, cycles);
                    PlatformStep::Running
                }
                MachineStep::Interrupt { irq, vector } => {
                    self.mach().obs.host_mark(HostPhase::GuestExec);
                    self.handle_interrupt(irq, vector);
                    PlatformStep::Running
                }
                MachineStep::Trapped { trap, cycles } => {
                    self.on_instr_boundary(at);
                    self.mach_mut().obs.instr_boundary(pc);
                    self.charge(TimeBucket::Guest, cycles);
                    self.mach().obs.host_mark(HostPhase::GuestExec);
                    self.handle_trap(trap);
                    PlatformStep::Running
                }
                MachineStep::Stuck => PlatformStep::Stuck,
            };
        }
        let b = self.mach_mut().run_batch();
        if b.executed > 0 {
            self.charge(TimeBucket::Guest, b.executed);
        }
        match b.end {
            // Exit-free batches take no mark at all: guest-execution host
            // time is charged retroactively at the next phase boundary, so
            // the hot loop costs zero `Instant` reads.
            None => PlatformStep::Running,
            Some(MachineStep::Idle { cycles }) => {
                self.mach().obs.host_mark(HostPhase::GuestExec);
                self.charge(TimeBucket::Idle, cycles);
                PlatformStep::Running
            }
            Some(MachineStep::Interrupt { irq, vector }) => {
                self.mach().obs.host_mark(HostPhase::GuestExec);
                self.handle_interrupt(irq, vector);
                PlatformStep::Running
            }
            Some(MachineStep::Trapped { trap, cycles }) => {
                self.charge(TimeBucket::Guest, cycles);
                self.mach().obs.host_mark(HostPhase::GuestExec);
                self.handle_trap(trap);
                PlatformStep::Running
            }
            Some(MachineStep::Stuck) => PlatformStep::Stuck,
            Some(MachineStep::Executed { .. }) => unreachable!("Batch::end is never Executed"),
        }
    }

    /// One unit of progress while the guest is *virtually* idle (its `wfi`
    /// was emulated): take interrupts when the line is up, otherwise skip
    /// straight to the next device event. [`PlatformStep::Stuck`] when no
    /// event can ever wake the guest — identical on every platform.
    fn guest_idle_step(&mut self) -> PlatformStep {
        if self.mach().pic.line_asserted() {
            // INTA without executing guest instructions.
            match self.mach_mut().step() {
                MachineStep::Interrupt { irq, vector } => self.handle_interrupt(irq, vector),
                MachineStep::Stuck => return PlatformStep::Stuck,
                // Events fired at this boundary may clear the line again.
                other => {
                    if let MachineStep::Executed { .. } | MachineStep::Trapped { .. } = other {
                        unreachable!("guest must not execute while virtually idle: {other:?}");
                    }
                }
            }
            return PlatformStep::Running;
        }
        match self.mach_mut().skip_to_next_event() {
            Some(cycles) => {
                self.charge(TimeBucket::Idle, cycles);
                self.mach().obs.host_mark(HostPhase::Idle);
                PlatformStep::Running
            }
            None => PlatformStep::Stuck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hx_cpu::trap::Cause;

    #[test]
    fn progress_guard_trips_only_on_repeats() {
        let mut g = ProgressGuard::new();
        let t1 = Trap::new(Cause::StorePageFault, 0x100, 0x2000);
        let t2 = Trap::new(Cause::StorePageFault, 0x104, 0x2000);
        for _ in 0..=ProgressGuard::LIMIT {
            assert!(!g.no_progress(&t1));
        }
        assert!(g.no_progress(&t1), "repeat past the limit trips");
        assert!(!g.no_progress(&t2), "different fault resets");
        g.reset();
        assert!(!g.no_progress(&t2), "reset forgets the count");
    }

    #[test]
    fn flight_recorder_notes_stops_once() {
        let mut fr = FlightRecorder::new(1000, 0, StateDigest::default(), ());
        fr.note_stop(10);
        fr.note_stop(10);
        fr.note_stop(20);
        assert_eq!(fr.stop_history, vec![10, 20]);
        assert_eq!(fr.checkpoints.len(), 1);
        assert_eq!(fr.last_instr_at, 0);
    }
}
