//! `Hdc`: a three-unit SCSI-like disk controller with DMA and completion
//! interrupts.
//!
//! Each unit has a small register block (`unit * 0x40` within the HDC page):
//! software programs an LBA, a sector count and a DMA address, then writes a
//! command to the doorbell. The controller models a fixed command overhead
//! plus media-rate-limited streaming, DMAs the data directly into guest
//! memory, and raises the unit's IRQ on completion — the access pattern of
//! the paper's streaming workload ("reads 2 MB data from three Ultra160
//! SCSI disks at constant rates").
//!
//! Disk *content* is synthetic and deterministic: byte `i` of sector `lba`
//! on unit `u` is [`disk_byte`]`(u, lba, i)`. Writes land in an overlay, so
//! read-back works. This replaces the paper's physical disks while keeping
//! the data-integrity checks end-to-end (the NIC sink can verify every
//! transmitted byte against [`disk_byte`]).

use crate::event::{Event, EventQueue};
use crate::pic::Hpic;
use crate::ram::Ram;
use crate::timing::{self, SECTOR_SIZE};
use hx_cpu::{BusFault, MemSize};
use std::collections::HashMap;

/// Number of disk units on the controller.
pub const UNITS: usize = 3;

/// Per-unit register offsets (relative to `unit * 0x40`).
pub mod reg {
    /// Logical block address of the first sector.
    pub const LBA: u32 = 0x00;
    /// Number of sectors to transfer.
    pub const COUNT: u32 = 0x04;
    /// Physical DMA address.
    pub const DMA: u32 = 0x08;
    /// Doorbell: write [`super::cmd::READ`] or [`super::cmd::WRITE`].
    pub const CMD: u32 = 0x0c;
    /// Status (read-only): see [`super::status`].
    pub const STATUS: u32 = 0x10;
}

/// Doorbell command codes.
pub mod cmd {
    /// Read sectors into memory.
    pub const READ: u32 = 1;
    /// Write sectors from memory.
    pub const WRITE: u32 = 2;
}

/// Status-register bits.
pub mod status {
    /// A command is in flight.
    pub const BUSY: u32 = 1 << 0;
    /// The last command completed (cleared by the next doorbell).
    pub const DONE: u32 = 1 << 1;
    /// The last command failed (bad DMA range or doorbell while busy).
    pub const ERROR: u32 = 1 << 2;
}

/// Deterministic content of byte `index` of sector `lba` on `unit`.
///
/// A cheap integer mix — stable across runs, different per position — so
/// integrity checks can recompute any byte the workload transmitted.
pub fn disk_byte(unit: u8, lba: u32, index: u32) -> u8 {
    let x = (unit as u64) << 56 | (lba as u64) << 24 | index as u64;
    let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 29;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 32;
    h as u8
}

/// Fills `buf` with the deterministic content starting at `(unit, lba)`.
pub fn fill_expected(unit: u8, lba: u32, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        let sector = lba + (i as u32 / SECTOR_SIZE);
        let off = i as u32 % SECTOR_SIZE;
        *b = disk_byte(unit, sector, off);
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct UnitRegs {
    lba: u32,
    count: u32,
    dma: u32,
    busy: bool,
    done: bool,
    error: bool,
    /// The doorbell command in flight (`cmd::READ`/`cmd::WRITE`).
    op: u32,
    due: u64,
}

/// Per-controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HdcStats {
    /// Commands accepted.
    pub commands: u64,
    /// Bytes transferred by completed commands.
    pub bytes: u64,
    /// Commands that ended in error.
    pub errors: u64,
}

/// The disk-controller state.
#[derive(Debug, Clone)]
pub struct Hdc {
    units: [UnitRegs; UNITS],
    overlay: HashMap<(u8, u32), Box<[u8]>>,
    clock_hz: u64,
    media_bps: u64,
    cmd_overhead: u64,
    stats: HdcStats,
}

impl Hdc {
    /// Creates a controller with the given clock and media timing.
    pub fn new(clock_hz: u64, media_bps: u64, cmd_overhead: u64) -> Hdc {
        Hdc {
            units: [UnitRegs::default(); UNITS],
            overlay: HashMap::new(),
            clock_hz,
            media_bps,
            cmd_overhead,
            stats: HdcStats::default(),
        }
    }

    /// Controller statistics.
    pub fn stats(&self) -> HdcStats {
        self.stats
    }

    /// Reads one sector's current content (overlay if written, synthetic
    /// otherwise) into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly one sector.
    pub fn read_sector(&self, unit: u8, lba: u32, buf: &mut [u8]) {
        assert_eq!(buf.len(), SECTOR_SIZE as usize, "buffer must be one sector");
        if let Some(data) = self.overlay.get(&(unit, lba)) {
            buf.copy_from_slice(data);
        } else {
            fill_expected(unit, lba, buf);
        }
    }

    fn decode(offset: u32) -> Option<(usize, u32)> {
        let unit = (offset / 0x40) as usize;
        let reg = offset % 0x40;
        (unit < UNITS).then_some((unit, reg))
    }

    /// MMIO register read.
    ///
    /// # Errors
    ///
    /// [`BusFault::Denied`] for non-word access or unknown offsets.
    pub fn read_reg(&mut self, offset: u32, size: MemSize) -> Result<u32, BusFault> {
        if size != MemSize::Word {
            return Err(BusFault::Denied);
        }
        let (unit, r) = Self::decode(offset).ok_or(BusFault::Denied)?;
        let u = &self.units[unit];
        match r {
            reg::LBA => Ok(u.lba),
            reg::COUNT => Ok(u.count),
            reg::DMA => Ok(u.dma),
            reg::STATUS => {
                let mut v = 0;
                if u.busy {
                    v |= status::BUSY;
                }
                if u.done {
                    v |= status::DONE;
                }
                if u.error {
                    v |= status::ERROR;
                }
                Ok(v)
            }
            _ => Err(BusFault::Denied),
        }
    }

    /// MMIO register write. A doorbell write starts a transfer and schedules
    /// its completion event.
    ///
    /// # Errors
    ///
    /// [`BusFault::Denied`] for non-word access or unknown offsets.
    pub fn write_reg(
        &mut self,
        offset: u32,
        val: u32,
        size: MemSize,
        now: u64,
        events: &mut EventQueue,
    ) -> Result<(), BusFault> {
        if size != MemSize::Word {
            return Err(BusFault::Denied);
        }
        let (unit, r) = Self::decode(offset).ok_or(BusFault::Denied)?;
        let u = &mut self.units[unit];
        match r {
            reg::LBA => u.lba = val,
            reg::COUNT => u.count = val,
            reg::DMA => u.dma = val,
            reg::CMD => {
                if u.busy || !matches!(val, cmd::READ | cmd::WRITE) || u.count == 0 {
                    u.error = true;
                    self.stats.errors += 1;
                } else {
                    u.busy = true;
                    u.done = false;
                    u.error = false;
                    u.op = val;
                    let bytes = u.count as u64 * SECTOR_SIZE as u64;
                    let cycles = self.cmd_overhead
                        + timing::cycles_for_bytes(bytes, self.clock_hz, self.media_bps);
                    u.due = now + cycles;
                    events.schedule(u.due, Event::HdcComplete { unit: unit as u8 });
                    self.stats.commands += 1;
                }
            }
            _ => return Err(BusFault::Denied),
        }
        Ok(())
    }

    /// Handles a [`Event::HdcComplete`]: performs the DMA, updates status
    /// and raises the unit's IRQ.
    pub fn on_complete(
        &mut self,
        unit: u8,
        now: u64,
        mem: &mut Ram,
        pic: &mut Hpic,
        obs: &mut hx_obs::Recorder,
    ) {
        let idx = unit as usize;
        if idx >= UNITS {
            return;
        }
        // Copy out what the DMA needs so `self` isn't double-borrowed.
        let (busy, due, op, lba, count, dma) = {
            let u = &self.units[idx];
            (u.busy, u.due, u.op, u.lba, u.count, u.dma)
        };
        if !busy || due != now {
            return; // stale event
        }
        let bytes = count as u64 * SECTOR_SIZE as u64;
        let mut failed = false;
        // Accumulate a payload digest across sectors only in record mode.
        let hashing = obs.journaling();
        let mut digest = hx_obs::journal::FNV_OFFSET;
        match op {
            cmd::READ => {
                let mut sector = vec![0u8; SECTOR_SIZE as usize];
                for s in 0..count {
                    self.read_sector(unit, lba + s, &mut sector);
                    if mem.dma_write(dma + s * SECTOR_SIZE, &sector).is_err() {
                        failed = true;
                        break;
                    }
                    if hashing {
                        digest = hx_obs::journal::fnv1a(digest, &sector);
                    }
                }
            }
            cmd::WRITE => {
                let mut sector = vec![0u8; SECTOR_SIZE as usize];
                for s in 0..count {
                    if mem.dma_read(dma + s * SECTOR_SIZE, &mut sector).is_err() {
                        failed = true;
                        break;
                    }
                    if hashing {
                        digest = hx_obs::journal::fnv1a(digest, &sector);
                    }
                    self.overlay
                        .insert((unit, lba + s), sector.clone().into_boxed_slice());
                }
            }
            _ => failed = true,
        }
        let u = &mut self.units[idx];
        u.busy = false;
        u.done = !failed;
        u.error = failed;
        if failed {
            self.stats.errors += 1;
        } else {
            self.stats.bytes += bytes;
            obs.dma_digest(
                now,
                hx_obs::Dev::Hdc,
                bytes.min(u32::MAX as u64) as u32,
                if hashing { digest } else { 0 },
            );
        }
        pic.assert_irq(crate::map::irq::HDC0 + unit);
        obs.irq(now, hx_obs::Dev::Hdc, (crate::map::irq::HDC0 + unit) as u32);
    }

    /// Forces an error completion on `unit`, as fault injection does: any
    /// in-flight command is aborted (its scheduled completion event goes
    /// stale), the error bit is set, and the unit's IRQ fires so the driver
    /// sees the failure.
    pub fn inject_error_completion(
        &mut self,
        unit: u8,
        now: u64,
        pic: &mut Hpic,
        obs: &mut hx_obs::Recorder,
    ) {
        let idx = unit as usize;
        if idx >= UNITS {
            return;
        }
        let u = &mut self.units[idx];
        u.busy = false;
        u.done = false;
        u.error = true;
        self.stats.errors += 1;
        pic.assert_irq(crate::map::irq::HDC0 + unit);
        obs.irq(now, hx_obs::Dev::Hdc, (crate::map::irq::HDC0 + unit) as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Hdc, Ram, Hpic, EventQueue) {
        (
            Hdc::new(25_000_000, 40_000_000, 1_500),
            Ram::new(64 * 1024),
            Hpic::new(),
            EventQueue::new(),
        )
    }

    fn unit_reg(unit: u32, r: u32) -> u32 {
        unit * 0x40 + r
    }

    fn start_read(
        hdc: &mut Hdc,
        events: &mut EventQueue,
        unit: u32,
        lba: u32,
        count: u32,
        dma: u32,
        now: u64,
    ) {
        hdc.write_reg(unit_reg(unit, reg::LBA), lba, MemSize::Word, now, events)
            .unwrap();
        hdc.write_reg(
            unit_reg(unit, reg::COUNT),
            count,
            MemSize::Word,
            now,
            events,
        )
        .unwrap();
        hdc.write_reg(unit_reg(unit, reg::DMA), dma, MemSize::Word, now, events)
            .unwrap();
        hdc.write_reg(
            unit_reg(unit, reg::CMD),
            cmd::READ,
            MemSize::Word,
            now,
            events,
        )
        .unwrap();
    }

    #[test]
    fn read_dma_and_irq() {
        let (mut hdc, mut mem, mut pic, mut events) = setup();
        start_read(&mut hdc, &mut events, 1, 7, 2, 0x1000, 0);
        assert_eq!(
            hdc.read_reg(unit_reg(1, reg::STATUS), MemSize::Word)
                .unwrap(),
            status::BUSY
        );
        let due = events.next_due().unwrap();
        // 1024 bytes at 40 MB/s at 25 MHz = 640 cycles + 1500 overhead.
        assert_eq!(due, 1500 + 640);
        assert_eq!(
            events.pop_due(due),
            Some((due, Event::HdcComplete { unit: 1 }))
        );
        hdc.on_complete(1, due, &mut mem, &mut pic, &mut hx_obs::Recorder::new());
        assert_eq!(
            hdc.read_reg(unit_reg(1, reg::STATUS), MemSize::Word)
                .unwrap(),
            status::DONE
        );
        assert_eq!(pic.pending(), Some(crate::map::irq::HDC1));
        // Data matches the deterministic pattern.
        let mut expect = vec![0u8; 1024];
        fill_expected(1, 7, &mut expect);
        assert_eq!(&mem.as_bytes()[0x1000..0x1400], &expect[..]);
        assert_eq!(hdc.stats().bytes, 1024);
    }

    #[test]
    fn write_then_read_back_overlay() {
        let (mut hdc, mut mem, mut pic, mut events) = setup();
        mem.dma_write(0x2000, &[0xabu8; 512]).unwrap();
        hdc.write_reg(unit_reg(0, reg::LBA), 3, MemSize::Word, 0, &mut events)
            .unwrap();
        hdc.write_reg(unit_reg(0, reg::COUNT), 1, MemSize::Word, 0, &mut events)
            .unwrap();
        hdc.write_reg(unit_reg(0, reg::DMA), 0x2000, MemSize::Word, 0, &mut events)
            .unwrap();
        hdc.write_reg(
            unit_reg(0, reg::CMD),
            cmd::WRITE,
            MemSize::Word,
            0,
            &mut events,
        )
        .unwrap();
        let due = events.next_due().unwrap();
        events.pop_due(due);
        hdc.on_complete(0, due, &mut mem, &mut pic, &mut hx_obs::Recorder::new());
        let mut buf = vec![0u8; 512];
        hdc.read_sector(0, 3, &mut buf);
        assert_eq!(buf, vec![0xab; 512]);
        // Unwritten sector still synthetic.
        hdc.read_sector(0, 4, &mut buf);
        assert_eq!(buf[0], disk_byte(0, 4, 0));
    }

    #[test]
    fn doorbell_while_busy_is_error() {
        let (mut hdc, _mem, _pic, mut events) = setup();
        start_read(&mut hdc, &mut events, 0, 0, 1, 0x1000, 0);
        hdc.write_reg(
            unit_reg(0, reg::CMD),
            cmd::READ,
            MemSize::Word,
            10,
            &mut events,
        )
        .unwrap();
        let s = hdc
            .read_reg(unit_reg(0, reg::STATUS), MemSize::Word)
            .unwrap();
        assert!(s & status::ERROR != 0);
        assert!(s & status::BUSY != 0, "original command still runs");
        assert_eq!(hdc.stats().errors, 1);
    }

    #[test]
    fn bad_dma_sets_error() {
        let (mut hdc, mut mem, mut pic, mut events) = setup();
        start_read(&mut hdc, &mut events, 2, 0, 1, 0xffff_0000, 0);
        let due = events.next_due().unwrap();
        events.pop_due(due);
        hdc.on_complete(2, due, &mut mem, &mut pic, &mut hx_obs::Recorder::new());
        let s = hdc
            .read_reg(unit_reg(2, reg::STATUS), MemSize::Word)
            .unwrap();
        assert!(s & status::ERROR != 0);
        assert!(s & status::DONE == 0);
        // IRQ still raised so the driver sees the failure.
        assert_eq!(pic.pending(), Some(crate::map::irq::HDC2));
    }

    #[test]
    fn zero_count_and_bad_command_rejected() {
        let (mut hdc, _mem, _pic, mut events) = setup();
        hdc.write_reg(unit_reg(0, reg::COUNT), 0, MemSize::Word, 0, &mut events)
            .unwrap();
        hdc.write_reg(
            unit_reg(0, reg::CMD),
            cmd::READ,
            MemSize::Word,
            0,
            &mut events,
        )
        .unwrap();
        assert!(
            hdc.read_reg(unit_reg(0, reg::STATUS), MemSize::Word)
                .unwrap()
                & status::ERROR
                != 0
        );
        hdc.write_reg(unit_reg(0, reg::COUNT), 1, MemSize::Word, 0, &mut events)
            .unwrap();
        hdc.write_reg(unit_reg(0, reg::CMD), 9, MemSize::Word, 0, &mut events)
            .unwrap();
        assert!(
            hdc.read_reg(unit_reg(0, reg::STATUS), MemSize::Word)
                .unwrap()
                & status::ERROR
                != 0
        );
        assert!(events.is_empty());
    }

    #[test]
    fn units_are_independent() {
        let (mut hdc, mut mem, mut pic, mut events) = setup();
        start_read(&mut hdc, &mut events, 0, 0, 1, 0x1000, 0);
        start_read(&mut hdc, &mut events, 1, 0, 1, 0x3000, 0);
        let due = events.next_due().unwrap();
        while let Some((at, ev)) = events.pop_due(due) {
            if let Event::HdcComplete { unit } = ev {
                hdc.on_complete(unit, at, &mut mem, &mut pic, &mut hx_obs::Recorder::new());
            }
        }
        assert!(
            hdc.read_reg(unit_reg(0, reg::STATUS), MemSize::Word)
                .unwrap()
                & status::DONE
                != 0
        );
        assert!(
            hdc.read_reg(unit_reg(1, reg::STATUS), MemSize::Word)
                .unwrap()
                & status::DONE
                != 0
        );
        // Same LBA on different units yields different content.
        assert_ne!(mem.word(0x1000), mem.word(0x3000));
    }

    #[test]
    fn out_of_range_unit_denied() {
        let (mut hdc, _mem, _pic, mut events) = setup();
        assert_eq!(hdc.read_reg(3 * 0x40, MemSize::Word), Err(BusFault::Denied));
        assert_eq!(
            hdc.write_reg(3 * 0x40 + reg::CMD, 1, MemSize::Word, 0, &mut events),
            Err(BusFault::Denied)
        );
        assert_eq!(hdc.read_reg(reg::LBA, MemSize::Half), Err(BusFault::Denied));
    }

    #[test]
    fn disk_byte_is_deterministic_and_varied() {
        assert_eq!(disk_byte(0, 0, 0), disk_byte(0, 0, 0));
        let a: Vec<u8> = (0..64).map(|i| disk_byte(0, 0, i)).collect();
        let b: Vec<u8> = (0..64).map(|i| disk_byte(1, 0, i)).collect();
        assert_ne!(a, b);
        let distinct: std::collections::HashSet<u8> = a.iter().copied().collect();
        assert!(distinct.len() > 16, "content should look random-ish");
    }
}
