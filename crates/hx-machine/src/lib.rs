//! A PC/AT-like machine model around the HX32 CPU: physical memory, a system
//! bus, an interrupt controller, a timer, a UART, a multi-unit SCSI-like disk
//! controller and a gigabit-class NIC — everything the DATE 2005 paper's
//! target machine exposes to the OS under debug.
//!
//! The crate provides:
//!
//! * [`Machine`] — CPU + devices + deterministic event scheduler, stepped
//!   one instruction at a time. [`Machine::step`] surfaces interrupts and
//!   traps to the caller *without* delivering them, which is exactly the
//!   hook a virtual machine monitor needs (see [`MachineStep`]).
//! * [`Platform`] — the common driver interface implemented by the three
//!   evaluated systems (real hardware here as [`RawPlatform`]; the
//!   lightweight monitor in the `lvmm` crate; the hosted full monitor in
//!   `hosted-vmm`).
//! * [`TimeStats`] — cycle attribution (guest / monitor / host-model /
//!   idle), the quantity plotted in the paper's Fig. 3.1.
//!
//! # Example: boot a bare program on "real hardware"
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use hx_machine::{Machine, MachineConfig, Platform, RawPlatform};
//!
//! let program = hx_asm::assemble(
//!     "        li   t0, 5\n\
//!      loop:   addi t0, t0, -1\n\
//!              bnez t0, loop\n\
//!      halt:   wfi\n\
//!              j halt\n",
//! )?;
//! let mut machine = Machine::new(MachineConfig::default());
//! machine.load_program(&program);
//! let mut hw = RawPlatform::new(machine);
//! // The loop runs, then `wfi` parks the CPU; with no timer programmed the
//! // machine reports itself stuck and `run_for` returns early.
//! let ran = hw.run_for(2_000);
//! assert!(ran < 2_000);
//! assert!(hw.time_stats().guest > 0, "the countdown loop executed");
//! # Ok(())
//! # }
//! ```

pub mod disk;
pub mod engine;
pub mod event;
pub mod machine;
pub mod nic;
pub mod pic;
pub mod pit;
pub mod platform;
pub mod ram;
pub mod smp;
pub mod timing;
pub mod uart;

pub use engine::{ExitPolicy, FlightRecorder, ProgressGuard};
pub use event::{Event, EventQueue};
pub use machine::{Batch, Logpoint, Machine, MachineConfig, MachineStep};
pub use nic::{Nic, NicCounters};
pub use pic::Hpic;
pub use pit::Hpit;
pub use platform::{Platform, RawPlatform, TimeBucket, TimeStats};
pub use ram::Ram;
pub use uart::Huart;

/// Physical memory map of the machine.
///
/// RAM occupies `[0, ram_size)`; devices live in a fixed MMIO window far
/// above it. The layout is part of the platform contract — guest kernels
/// and monitors both hard-code it, as PC/AT software hard-codes the chipset.
pub mod map {
    /// Base of the memory-mapped I/O window.
    pub const MMIO_BASE: u32 = 0xf000_0000;
    /// Interrupt controller registers.
    pub const PIC_BASE: u32 = 0xf000_0000;
    /// Timer registers.
    pub const PIT_BASE: u32 = 0xf000_1000;
    /// UART (debug channel) registers.
    pub const UART_BASE: u32 = 0xf000_2000;
    /// Disk-controller registers (three units, 0x40 bytes apart).
    pub const HDC_BASE: u32 = 0xf000_3000;
    /// Network-controller registers.
    pub const NIC_BASE: u32 = 0xf000_4000;
    /// Paravirtual tracepoint page: write-only registers the guest kernel
    /// stores tracepoint ids to. Reads return 0. Stores are journaled like
    /// doorbells, so recordings replay byte-identically.
    pub const TRACE_BASE: u32 = 0xf000_5000;
    /// Size of each device's register page.
    pub const DEV_PAGE: u32 = 0x1000;

    /// The device owning the MMIO page that contains `gpa`, if any — the
    /// host profiler's attribution key for device-emulation time.
    pub fn dev_of(gpa: u32) -> Option<hx_obs::Dev> {
        match gpa & !(DEV_PAGE - 1) {
            PIC_BASE => Some(hx_obs::Dev::Pic),
            PIT_BASE => Some(hx_obs::Dev::Pit),
            UART_BASE => Some(hx_obs::Dev::Uart),
            HDC_BASE => Some(hx_obs::Dev::Hdc),
            NIC_BASE => Some(hx_obs::Dev::Nic),
            _ => None,
        }
    }

    /// Tracepoint-page register offsets (relative to [`TRACE_BASE`]).
    /// The stored word is the tracepoint id; the register selects the
    /// operation. `BEGIN`/`END` ids pair LIFO per core to form spans.
    pub mod trace {
        /// Open a tracepoint span with the stored id.
        pub const BEGIN: u32 = 0x0;
        /// Close the innermost open span with the stored id.
        pub const END: u32 = 0x4;
        /// A point event with the stored id (no pairing).
        pub const INSTANT: u32 = 0x8;
    }

    /// Interrupt request lines.
    pub mod irq {
        /// Timer tick.
        pub const PIT: u8 = 0;
        /// UART receive.
        pub const UART: u8 = 1;
        /// Disk unit 0 completion.
        pub const HDC0: u8 = 2;
        /// Disk unit 1 completion.
        pub const HDC1: u8 = 3;
        /// Disk unit 2 completion.
        pub const HDC2: u8 = 4;
        /// NIC transmit completion.
        pub const NIC_TX: u8 = 5;
        /// NIC receive.
        pub const NIC_RX: u8 = 6;
    }
}

/// Compile-time proof that the machine and platform types stay [`Send`]:
/// the debug farm moves whole machines across worker threads, so a
/// non-`Send` field sneaking in (an `Rc`, a raw pointer) must fail the
/// build here rather than at a distant farm call site.
#[allow(dead_code)]
fn assert_send_types() {
    fn is_send<T: Send>() {}
    is_send::<Machine>();
    is_send::<RawPlatform>();
    is_send::<Box<dyn Platform>>();
}
