//! `Nic`: a gigabit-class Ethernet controller with descriptor rings, DMA,
//! wire-rate serialization and optional interrupt moderation.
//!
//! This is the high-throughput device the paper's lightweight monitor passes
//! straight through to the guest: the driver owns the descriptor rings in
//! its own memory and rings doorbells on real (simulated) registers; the
//! monitor never sees a packet. The hosted-VMM baseline, by contrast,
//! intercepts every one of these register accesses.
//!
//! ## Descriptor format (16 bytes, little-endian words)
//!
//! | word | TX meaning | RX meaning |
//! |------|------------|------------|
//! | 0 | buffer physical address | buffer physical address |
//! | 1 | fragment length in bytes | buffer capacity in bytes |
//! | 2 | flags: bit 0 = more fragments follow | written by hw: received length |
//! | 3 | status: hw writes 1 done / 2 error | same |
//!
//! A TX *frame* is one or more consecutive descriptors; every descriptor
//! with flag bit 0 set chains to the next, and the frame ends at the first
//! descriptor with the bit clear (max [`MAX_FRAGS`] fragments). This is the
//! scatter-gather facility real gigabit NICs provide, and it is what lets a
//! zero-copy driver prepend protocol headers without copying payload.
//!
//! Ring indices wrap at the ring length; `head` is hardware's consumer
//! index, `tail` is software's producer index; the ring is empty when
//! `head == tail`.

use crate::event::{Event, EventQueue};
use crate::pic::Hpic;
use crate::ram::Ram;
use crate::timing::{self, FRAME_WIRE_OVERHEAD, MIN_FRAME};
use hx_cpu::{BusFault, MemSize};
use hx_obs::{Dev, Recorder};
use std::collections::VecDeque;
use std::fmt;

/// Register offsets within the NIC page.
pub mod reg {
    /// TX ring physical base address.
    pub const TX_BASE: u32 = 0x00;
    /// TX ring length in descriptors.
    pub const TX_LEN: u32 = 0x04;
    /// TX hardware consumer index (read-only).
    pub const TX_HEAD: u32 = 0x08;
    /// TX software producer index; writing is the doorbell.
    pub const TX_TAIL: u32 = 0x0c;
    /// Interrupt status (read-only): see [`super::istatus`].
    pub const ISTATUS: u32 = 0x10;
    /// Interrupt acknowledge: write-1-to-clear status bits.
    pub const IACK: u32 = 0x14;
    /// TX interrupt moderation: frames per interrupt (0/1 = every frame).
    pub const MODERATION: u32 = 0x18;
    /// RX ring physical base address.
    pub const RX_BASE: u32 = 0x20;
    /// RX ring length in descriptors.
    pub const RX_LEN: u32 = 0x24;
    /// RX hardware producer index (read-only).
    pub const RX_HEAD: u32 = 0x28;
    /// RX software free-buffer index; writing is the doorbell.
    pub const RX_TAIL: u32 = 0x2c;
}

/// Interrupt-status bits.
pub mod istatus {
    /// One or more TX frames completed.
    pub const TX_DONE: u32 = 1 << 0;
    /// One or more RX frames delivered.
    pub const RX: u32 = 1 << 1;
    /// A descriptor error occurred.
    pub const ERROR: u32 = 1 << 2;
}

/// Maximum frame the controller will serialize (jumbo-free 1500-byte MTU
/// plus headers, rounded up).
pub const MAX_FRAME: u32 = 1600;

/// Maximum TX fragments per frame.
pub const MAX_FRAGS: u32 = 4;

/// TX descriptor flag: more fragments follow in this frame.
pub const FLAG_MORE: u32 = 1;

/// Traffic counters maintained by the controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicCounters {
    /// Frames fully serialized onto the wire.
    pub tx_frames: u64,
    /// Payload bytes of those frames (excluding wire overhead).
    pub tx_bytes: u64,
    /// On-wire bytes including preamble/FCS/IFG and minimum-frame padding.
    pub tx_wire_bytes: u64,
    /// TX descriptor errors.
    pub tx_errors: u64,
    /// Frames delivered into the RX ring.
    pub rx_frames: u64,
    /// Payload bytes delivered.
    pub rx_bytes: u64,
    /// Frames dropped because no RX buffer fit.
    pub rx_dropped: u64,
    /// TX completion interrupts raised (for moderation ablations).
    pub tx_irqs: u64,
    /// Rolling FNV-1a checksum over every transmitted payload byte, for
    /// end-to-end integrity checks against the disk pattern.
    pub tx_checksum: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds bytes into a running FNV-1a checksum (used by [`NicCounters`]).
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The network-controller state.
#[derive(Clone)]
pub struct Nic {
    tx_base: u32,
    tx_len: u32,
    tx_head: u32,
    tx_tail: u32,
    tx_active: bool,
    in_flight: Option<(u32, u32, Vec<u8>)>, // (first descriptor, count, payload)
    rx_base: u32,
    rx_len: u32,
    rx_head: u32,
    rx_tail: u32,
    rx_queue: VecDeque<Vec<u8>>,
    istatus: u32,
    moderation: u32,
    frames_since_irq: u32,
    counters: NicCounters,
    capture: Option<Vec<Vec<u8>>>,
    clock_hz: u64,
    wire_bps: u64,
    fetch_delay: u64,
}

impl fmt::Debug for Nic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Nic")
            .field("tx_head", &self.tx_head)
            .field("tx_tail", &self.tx_tail)
            .field("istatus", &self.istatus)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl Nic {
    /// Creates a controller with the given clock and wire rate.
    pub fn new(clock_hz: u64, wire_bps: u64, fetch_delay: u64) -> Nic {
        Nic {
            tx_base: 0,
            tx_len: 0,
            tx_head: 0,
            tx_tail: 0,
            tx_active: false,
            in_flight: None,
            rx_base: 0,
            rx_len: 0,
            rx_head: 0,
            rx_tail: 0,
            rx_queue: VecDeque::new(),
            istatus: 0,
            moderation: 1,
            frames_since_irq: 0,
            counters: NicCounters::default(),
            capture: None,
            clock_hz,
            wire_bps,
            fetch_delay,
        }
    }

    /// Traffic counters.
    pub fn counters(&self) -> NicCounters {
        self.counters
    }

    /// Enables or disables frame capture (for tests; off by default).
    pub fn set_capture(&mut self, on: bool) {
        self.capture = if on { Some(Vec::new()) } else { None };
    }

    /// Takes all frames captured so far.
    pub fn take_captured(&mut self) -> Vec<Vec<u8>> {
        self.capture
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Host-side injection of a received frame; delivery into the guest RX
    /// ring happens one cycle later via the event queue.
    pub fn inject_rx(&mut self, frame: Vec<u8>, now: u64, events: &mut EventQueue) {
        self.rx_queue.push_back(frame);
        events.schedule(now + 1, Event::NicRxDeliver);
    }

    /// Forces an error completion, as fault injection does: the error bit
    /// latches in ISTATUS and the TX interrupt fires so the driver sees it.
    pub fn inject_error_completion(&mut self, now: u64, pic: &mut Hpic, obs: &mut Recorder) {
        self.counters.tx_errors += 1;
        self.raise(istatus::ERROR, pic, now, obs);
    }

    fn desc_addr(base: u32, index: u32) -> u32 {
        base.wrapping_add(index.wrapping_mul(16))
    }

    fn read_desc(mem: &Ram, base: u32, index: u32) -> Result<[u32; 4], BusFault> {
        let mut raw = [0u8; 16];
        mem.dma_read(Self::desc_addr(base, index), &mut raw)?;
        let w = |i: usize| u32::from_le_bytes(raw[i * 4..i * 4 + 4].try_into().unwrap());
        Ok([w(0), w(1), w(2), w(3)])
    }

    fn write_desc_word(mem: &mut Ram, base: u32, index: u32, word: usize, val: u32) {
        let _ = mem.dma_write(
            Self::desc_addr(base, index) + word as u32 * 4,
            &val.to_le_bytes(),
        );
    }

    fn raise(&mut self, bit: u32, pic: &mut Hpic, now: u64, obs: &mut Recorder) {
        self.istatus |= bit;
        let irq = if bit == istatus::RX {
            crate::map::irq::NIC_RX
        } else {
            crate::map::irq::NIC_TX
        };
        pic.assert_irq(irq);
        obs.irq(now, Dev::Nic, irq as u32);
        if bit == istatus::TX_DONE {
            self.counters.tx_irqs += 1;
        }
    }

    /// Handles [`Event::NicTxKick`]: gathers the next TX frame's fragment
    /// chain and starts serializing it.
    pub fn on_tx_kick(
        &mut self,
        now: u64,
        mem: &mut Ram,
        pic: &mut Hpic,
        events: &mut EventQueue,
        obs: &mut Recorder,
    ) {
        if self.tx_active || self.tx_len == 0 || self.tx_head == self.tx_tail {
            return;
        }
        let first = self.tx_head;
        let mut payload = Vec::new();
        let mut count = 0u32;
        let mut idx = first;
        loop {
            if count == MAX_FRAGS || (count > 0 && idx == self.tx_tail) {
                // Over-long chain or chain runs off the posted descriptors.
                self.fail_tx_frame(first, count.max(1), mem, pic, events, now, obs);
                return;
            }
            let Ok([addr, len, flags, _status]) = Self::read_desc(mem, self.tx_base, idx) else {
                self.fail_tx_frame(first, count + 1, mem, pic, events, now, obs);
                return;
            };
            if len == 0 || payload.len() as u32 + len > MAX_FRAME {
                self.fail_tx_frame(first, count + 1, mem, pic, events, now, obs);
                return;
            }
            let start = payload.len();
            payload.resize(start + len as usize, 0);
            if mem.dma_read(addr, &mut payload[start..]).is_err() {
                self.fail_tx_frame(first, count + 1, mem, pic, events, now, obs);
                return;
            }
            count += 1;
            idx = (idx + 1) % self.tx_len;
            if flags & FLAG_MORE == 0 {
                break;
            }
        }
        let len = payload.len() as u32;
        // Hash the payload only in record mode; the digest is what the
        // divergence audit compares across platforms.
        let digest = if obs.journaling() {
            hx_obs::journal::digest(&payload)
        } else {
            0
        };
        obs.dma_digest(now, Dev::Nic, len, digest);
        let wire_bytes = len.max(MIN_FRAME - 4) + FRAME_WIRE_OVERHEAD;
        let cycles = timing::cycles_for_bits(wire_bytes as u64 * 8, self.clock_hz, self.wire_bps);
        self.tx_active = true;
        self.in_flight = Some((first, count, payload));
        self.counters.tx_wire_bytes += wire_bytes as u64;
        events.schedule(now + cycles.max(1), Event::NicTxDone);
    }

    #[allow(clippy::too_many_arguments)]
    fn fail_tx_frame(
        &mut self,
        first: u32,
        count: u32,
        mem: &mut Ram,
        pic: &mut Hpic,
        events: &mut EventQueue,
        now: u64,
        obs: &mut Recorder,
    ) {
        for k in 0..count {
            let idx = (first + k) % self.tx_len.max(1);
            Self::write_desc_word(mem, self.tx_base, idx, 3, 2);
        }
        self.tx_head = (first + count) % self.tx_len.max(1);
        self.counters.tx_errors += 1;
        self.raise(istatus::ERROR, pic, now, obs);
        if self.tx_head != self.tx_tail {
            events.schedule(now + self.fetch_delay, Event::NicTxKick);
        }
    }

    /// Handles [`Event::NicTxDone`]: completes the in-flight frame, raises
    /// the moderated completion interrupt, and chains to the next frame.
    pub fn on_tx_done(
        &mut self,
        now: u64,
        mem: &mut Ram,
        pic: &mut Hpic,
        events: &mut EventQueue,
        obs: &mut Recorder,
    ) {
        let Some((first, count, payload)) = self.in_flight.take() else {
            return;
        };
        self.tx_active = false;
        self.counters.tx_frames += 1;
        self.counters.tx_bytes += payload.len() as u64;
        self.counters.tx_checksum = fnv1a(
            if self.counters.tx_checksum == 0 {
                FNV_OFFSET
            } else {
                self.counters.tx_checksum
            },
            &payload,
        );
        if let Some(cap) = &mut self.capture {
            cap.push(payload);
        }
        for k in 0..count {
            let idx = (first + k) % self.tx_len.max(1);
            Self::write_desc_word(mem, self.tx_base, idx, 3, 1);
        }
        self.tx_head = (first + count) % self.tx_len.max(1);
        self.frames_since_irq += 1;
        // Count-based moderation (like a hardware interrupt-throttle
        // register): the interrupt fires every N completions, never merely
        // because the ring drained — drivers poll the head index for
        // reclaim and only need the interrupt as a wake-up.
        if self.frames_since_irq >= self.moderation.max(1) {
            self.frames_since_irq = 0;
            self.raise(istatus::TX_DONE, pic, now, obs);
        }
        if self.tx_head != self.tx_tail {
            events.schedule(now + self.fetch_delay, Event::NicTxKick);
        }
    }

    /// Handles [`Event::NicRxDeliver`]: moves queued frames into free RX
    /// descriptors.
    pub fn on_rx_deliver(&mut self, now: u64, mem: &mut Ram, pic: &mut Hpic, obs: &mut Recorder) {
        let mut delivered = false;
        while !self.rx_queue.is_empty() && self.rx_len != 0 && self.rx_head != self.rx_tail {
            let frame = self.rx_queue.front().unwrap();
            let idx = self.rx_head;
            match Self::read_desc(mem, self.rx_base, idx) {
                Ok([addr, cap, _, _]) => {
                    if frame.len() as u32 > cap {
                        self.counters.rx_dropped += 1;
                        self.rx_queue.pop_front();
                        continue;
                    }
                    let frame = self.rx_queue.pop_front().unwrap();
                    if mem.dma_write(addr, &frame).is_err() {
                        Self::write_desc_word(mem, self.rx_base, idx, 3, 2);
                    } else {
                        Self::write_desc_word(mem, self.rx_base, idx, 2, frame.len() as u32);
                        Self::write_desc_word(mem, self.rx_base, idx, 3, 1);
                        self.counters.rx_frames += 1;
                        self.counters.rx_bytes += frame.len() as u64;
                        let digest = if obs.journaling() {
                            hx_obs::journal::digest(&frame)
                        } else {
                            0
                        };
                        obs.dma_digest(now, Dev::Nic, frame.len() as u32, digest);
                    }
                    self.rx_head = (self.rx_head + 1) % self.rx_len.max(1);
                    delivered = true;
                }
                Err(_) => {
                    self.counters.rx_dropped += 1;
                    self.rx_queue.pop_front();
                }
            }
        }
        if delivered {
            self.raise(istatus::RX, pic, now, obs);
        }
    }

    /// MMIO register read.
    ///
    /// # Errors
    ///
    /// [`BusFault::Denied`] for non-word access or unknown offsets.
    pub fn read_reg(&mut self, offset: u32, size: MemSize) -> Result<u32, BusFault> {
        if size != MemSize::Word {
            return Err(BusFault::Denied);
        }
        match offset {
            reg::TX_BASE => Ok(self.tx_base),
            reg::TX_LEN => Ok(self.tx_len),
            reg::TX_HEAD => Ok(self.tx_head),
            reg::TX_TAIL => Ok(self.tx_tail),
            reg::ISTATUS => Ok(self.istatus),
            reg::MODERATION => Ok(self.moderation),
            reg::RX_BASE => Ok(self.rx_base),
            reg::RX_LEN => Ok(self.rx_len),
            reg::RX_HEAD => Ok(self.rx_head),
            reg::RX_TAIL => Ok(self.rx_tail),
            _ => Err(BusFault::Denied),
        }
    }

    /// MMIO register write. Tail writes are doorbells and schedule ring
    /// processing.
    ///
    /// # Errors
    ///
    /// [`BusFault::Denied`] for non-word access, read-only or unknown
    /// offsets.
    pub fn write_reg(
        &mut self,
        offset: u32,
        val: u32,
        size: MemSize,
        now: u64,
        events: &mut EventQueue,
    ) -> Result<(), BusFault> {
        if size != MemSize::Word {
            return Err(BusFault::Denied);
        }
        match offset {
            reg::TX_BASE => self.tx_base = val,
            reg::TX_LEN => self.tx_len = val,
            reg::TX_TAIL => {
                self.tx_tail = if self.tx_len == 0 {
                    val
                } else {
                    val % self.tx_len
                };
                if !self.tx_active && self.tx_head != self.tx_tail {
                    events.schedule(now + self.fetch_delay, Event::NicTxKick);
                }
            }
            reg::IACK => self.istatus &= !val,
            reg::MODERATION => self.moderation = val,
            reg::RX_BASE => self.rx_base = val,
            reg::RX_LEN => self.rx_len = val,
            reg::RX_TAIL => {
                self.rx_tail = if self.rx_len == 0 {
                    val
                } else {
                    val % self.rx_len
                };
                if !self.rx_queue.is_empty() {
                    events.schedule(now + 1, Event::NicRxDeliver);
                }
            }
            _ => return Err(BusFault::Denied),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLOCK: u64 = 25_000_000;
    const WIRE: u64 = 1_000_000_000;

    fn setup() -> (Nic, Ram, Hpic, EventQueue) {
        (
            Nic::new(CLOCK, WIRE, 40),
            Ram::new(256 * 1024),
            Hpic::new(),
            EventQueue::new(),
        )
    }

    /// Writes a TX descriptor and its payload into memory.
    fn stage_frame(mem: &mut Ram, ring: u32, idx: u32, buf: u32, payload: &[u8]) {
        mem.dma_write(buf, payload).unwrap();
        let d = ring + idx * 16;
        mem.dma_write(d, &buf.to_le_bytes()).unwrap();
        mem.dma_write(d + 4, &(payload.len() as u32).to_le_bytes())
            .unwrap();
        mem.dma_write(d + 8, &0u32.to_le_bytes()).unwrap();
        mem.dma_write(d + 12, &0u32.to_le_bytes()).unwrap();
    }

    fn run_events(nic: &mut Nic, mem: &mut Ram, pic: &mut Hpic, events: &mut EventQueue) -> u64 {
        let mut obs = Recorder::new();
        let mut now = 0;
        while let Some(due) = events.next_due() {
            now = due;
            match events.pop_due(now).unwrap().1 {
                Event::NicTxKick => nic.on_tx_kick(now, mem, pic, events, &mut obs),
                Event::NicTxDone => nic.on_tx_done(now, mem, pic, events, &mut obs),
                Event::NicRxDeliver => nic.on_rx_deliver(now, mem, pic, &mut obs),
                other => panic!("unexpected event {other:?}"),
            }
        }
        now
    }

    fn program_tx(nic: &mut Nic, events: &mut EventQueue, ring: u32, len: u32) {
        nic.write_reg(reg::TX_BASE, ring, MemSize::Word, 0, events)
            .unwrap();
        nic.write_reg(reg::TX_LEN, len, MemSize::Word, 0, events)
            .unwrap();
    }

    #[test]
    fn transmits_one_frame() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        nic.set_capture(true);
        stage_frame(&mut mem, 0x1000, 0, 0x4000, &[7u8; 1250]);
        program_tx(&mut nic, &mut events, 0x1000, 8);
        nic.write_reg(reg::TX_TAIL, 1, MemSize::Word, 0, &mut events)
            .unwrap();
        let end = run_events(&mut nic, &mut mem, &mut pic, &mut events);
        // Serialization time: (1250+24) bytes at 1 Gb/s at 25 MHz ≈ 255
        // cycles, plus the 40-cycle fetch delay.
        assert!((255..=320).contains(&end), "end={end}");
        let c = nic.counters();
        assert_eq!(c.tx_frames, 1);
        assert_eq!(c.tx_bytes, 1250);
        assert_eq!(c.tx_irqs, 1);
        assert_eq!(nic.take_captured(), vec![vec![7u8; 1250]]);
        // Descriptor completed, head advanced, IRQ latched.
        assert_eq!(mem.word(0x1000 + 12), 1);
        assert_eq!(nic.read_reg(reg::TX_HEAD, MemSize::Word).unwrap(), 1);
        assert_eq!(pic.pending(), Some(crate::map::irq::NIC_TX));
        assert_eq!(
            nic.read_reg(reg::ISTATUS, MemSize::Word).unwrap(),
            istatus::TX_DONE
        );
        nic.write_reg(reg::IACK, istatus::TX_DONE, MemSize::Word, 0, &mut events)
            .unwrap();
        assert_eq!(nic.read_reg(reg::ISTATUS, MemSize::Word).unwrap(), 0);
    }

    #[test]
    fn moderation_batches_interrupts() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        for i in 0..6 {
            stage_frame(&mut mem, 0x1000, i, 0x4000 + i * 0x1000, &[i as u8; 1000]);
        }
        program_tx(&mut nic, &mut events, 0x1000, 8);
        nic.write_reg(reg::MODERATION, 4, MemSize::Word, 0, &mut events)
            .unwrap();
        nic.write_reg(reg::TX_TAIL, 6, MemSize::Word, 0, &mut events)
            .unwrap();
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        let c = nic.counters();
        assert_eq!(c.tx_frames, 6);
        // Count-based moderation: one IRQ after 4 frames; the remaining two
        // completions stay below the threshold (reclaim is by head polling).
        assert_eq!(c.tx_irqs, 1);
    }

    #[test]
    fn ring_wraps() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        program_tx(&mut nic, &mut events, 0x1000, 2);
        for round in 0..3u32 {
            let idx = round % 2;
            stage_frame(&mut mem, 0x1000, idx, 0x4000, &[round as u8; 100]);
            let tail = (idx + 1) % 2;
            nic.write_reg(reg::TX_TAIL, tail, MemSize::Word, 0, &mut events)
                .unwrap();
            run_events(&mut nic, &mut mem, &mut pic, &mut events);
        }
        assert_eq!(nic.counters().tx_frames, 3);
        assert_eq!(nic.read_reg(reg::TX_HEAD, MemSize::Word).unwrap(), 1);
    }

    #[test]
    fn bad_descriptor_reports_error_and_continues() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        // Descriptor 0: payload DMA out of range. Descriptor 1: fine.
        let d0 = 0x1000;
        mem.dma_write(d0, &0xffff_0000u32.to_le_bytes()).unwrap();
        mem.dma_write(d0 + 4, &100u32.to_le_bytes()).unwrap();
        stage_frame(&mut mem, 0x1000, 1, 0x4000, &[9u8; 100]);
        program_tx(&mut nic, &mut events, 0x1000, 8);
        nic.write_reg(reg::TX_TAIL, 2, MemSize::Word, 0, &mut events)
            .unwrap();
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        let c = nic.counters();
        assert_eq!(c.tx_errors, 1);
        assert_eq!(c.tx_frames, 1);
        assert_eq!(mem.word(d0 + 12), 2, "error status written");
        assert_eq!(mem.word(d0 + 16 + 12), 1, "good frame completed");
        assert!(nic.read_reg(reg::ISTATUS, MemSize::Word).unwrap() & istatus::ERROR != 0);
    }

    #[test]
    fn zero_and_oversize_lengths_error() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        stage_frame(&mut mem, 0x1000, 0, 0x4000, &[]);
        program_tx(&mut nic, &mut events, 0x1000, 4);
        nic.write_reg(reg::TX_TAIL, 1, MemSize::Word, 0, &mut events)
            .unwrap();
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        assert_eq!(nic.counters().tx_errors, 1);
        // Oversize.
        let d = 0x1000u32 + 16;
        mem.dma_write(d, &0x4000u32.to_le_bytes()).unwrap();
        mem.dma_write(d + 4, &(MAX_FRAME + 1).to_le_bytes())
            .unwrap();
        nic.write_reg(reg::TX_TAIL, 2, MemSize::Word, 0, &mut events)
            .unwrap();
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        assert_eq!(nic.counters().tx_errors, 2);
    }

    #[test]
    fn min_frame_padding_counts_on_wire() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        stage_frame(&mut mem, 0x1000, 0, 0x4000, &[1u8; 10]);
        program_tx(&mut nic, &mut events, 0x1000, 4);
        nic.write_reg(reg::TX_TAIL, 1, MemSize::Word, 0, &mut events)
            .unwrap();
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        let c = nic.counters();
        assert_eq!(c.tx_bytes, 10);
        assert_eq!(
            c.tx_wire_bytes,
            (MIN_FRAME - 4 + FRAME_WIRE_OVERHEAD) as u64
        );
    }

    #[test]
    fn rx_delivery_into_ring() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        // Two free RX buffers of 2 KiB each.
        for i in 0..2u32 {
            let d = 0x2000 + i * 16;
            mem.dma_write(d, &(0x8000 + i * 0x1000).to_le_bytes())
                .unwrap();
            mem.dma_write(d + 4, &2048u32.to_le_bytes()).unwrap();
        }
        nic.write_reg(reg::RX_BASE, 0x2000, MemSize::Word, 0, &mut events)
            .unwrap();
        nic.write_reg(reg::RX_LEN, 4, MemSize::Word, 0, &mut events)
            .unwrap();
        nic.write_reg(reg::RX_TAIL, 2, MemSize::Word, 0, &mut events)
            .unwrap();
        nic.inject_rx(vec![0x55; 300], 0, &mut events);
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        let c = nic.counters();
        assert_eq!(c.rx_frames, 1);
        assert_eq!(c.rx_bytes, 300);
        assert_eq!(mem.word(0x2000 + 8), 300, "received length written");
        assert_eq!(mem.word(0x2000 + 12), 1);
        assert_eq!(mem.as_bytes()[0x8000], 0x55);
        assert_eq!(pic.pending(), Some(crate::map::irq::NIC_RX));
    }

    #[test]
    fn rx_waits_for_buffers() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        nic.write_reg(reg::RX_BASE, 0x2000, MemSize::Word, 0, &mut events)
            .unwrap();
        nic.write_reg(reg::RX_LEN, 4, MemSize::Word, 0, &mut events)
            .unwrap();
        nic.inject_rx(vec![1, 2, 3], 0, &mut events);
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        assert_eq!(nic.counters().rx_frames, 0, "no buffers posted yet");
        // Post a buffer; the queued frame is delivered.
        let d = 0x2000;
        mem.dma_write(d, &0x8000u32.to_le_bytes()).unwrap();
        mem.dma_write(d + 4, &2048u32.to_le_bytes()).unwrap();
        nic.write_reg(reg::RX_TAIL, 1, MemSize::Word, 100, &mut events)
            .unwrap();
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        assert_eq!(nic.counters().rx_frames, 1);
    }

    #[test]
    fn rx_oversize_dropped() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        let d = 0x2000;
        mem.dma_write(d, &0x8000u32.to_le_bytes()).unwrap();
        mem.dma_write(d + 4, &64u32.to_le_bytes()).unwrap();
        nic.write_reg(reg::RX_BASE, 0x2000, MemSize::Word, 0, &mut events)
            .unwrap();
        nic.write_reg(reg::RX_LEN, 4, MemSize::Word, 0, &mut events)
            .unwrap();
        nic.write_reg(reg::RX_TAIL, 1, MemSize::Word, 0, &mut events)
            .unwrap();
        nic.inject_rx(vec![0; 200], 0, &mut events);
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        assert_eq!(nic.counters().rx_dropped, 1);
        assert_eq!(nic.counters().rx_frames, 0);
    }

    #[test]
    fn scatter_gather_frame() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        nic.set_capture(true);
        // Fragment 0: 42-byte header with MORE flag; fragment 1: payload.
        mem.dma_write(0x4000, &[0xaa; 42]).unwrap();
        mem.dma_write(0x5000, &[0xbb; 1000]).unwrap();
        let d0 = 0x1000u32;
        mem.dma_write(d0, &0x4000u32.to_le_bytes()).unwrap();
        mem.dma_write(d0 + 4, &42u32.to_le_bytes()).unwrap();
        mem.dma_write(d0 + 8, &FLAG_MORE.to_le_bytes()).unwrap();
        let d1 = d0 + 16;
        mem.dma_write(d1, &0x5000u32.to_le_bytes()).unwrap();
        mem.dma_write(d1 + 4, &1000u32.to_le_bytes()).unwrap();
        mem.dma_write(d1 + 8, &0u32.to_le_bytes()).unwrap();
        program_tx(&mut nic, &mut events, 0x1000, 8);
        nic.write_reg(reg::TX_TAIL, 2, MemSize::Word, 0, &mut events)
            .unwrap();
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        let frames = nic.take_captured();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].len(), 1042);
        assert_eq!(frames[0][0], 0xaa);
        assert_eq!(frames[0][41], 0xaa);
        assert_eq!(frames[0][42], 0xbb);
        // Both descriptors completed; head advanced by two.
        assert_eq!(mem.word(d0 + 12), 1);
        assert_eq!(mem.word(d1 + 12), 1);
        assert_eq!(nic.read_reg(reg::TX_HEAD, MemSize::Word).unwrap(), 2);
        assert_eq!(nic.counters().tx_frames, 1);
        assert_eq!(nic.counters().tx_bytes, 1042);
    }

    #[test]
    fn dangling_fragment_chain_errors() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        // A single descriptor claiming MORE with no follower posted.
        mem.dma_write(0x4000, &[1u8; 64]).unwrap();
        let d0 = 0x1000u32;
        mem.dma_write(d0, &0x4000u32.to_le_bytes()).unwrap();
        mem.dma_write(d0 + 4, &64u32.to_le_bytes()).unwrap();
        mem.dma_write(d0 + 8, &FLAG_MORE.to_le_bytes()).unwrap();
        program_tx(&mut nic, &mut events, 0x1000, 8);
        nic.write_reg(reg::TX_TAIL, 1, MemSize::Word, 0, &mut events)
            .unwrap();
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        assert_eq!(nic.counters().tx_errors, 1);
        assert_eq!(nic.counters().tx_frames, 0);
    }

    #[test]
    fn checksum_tracks_payload() {
        let (mut nic, mut mem, mut pic, mut events) = setup();
        stage_frame(&mut mem, 0x1000, 0, 0x4000, b"hello");
        program_tx(&mut nic, &mut events, 0x1000, 4);
        nic.write_reg(reg::TX_TAIL, 1, MemSize::Word, 0, &mut events)
            .unwrap();
        run_events(&mut nic, &mut mem, &mut pic, &mut events);
        assert_eq!(nic.counters().tx_checksum, fnv1a(FNV_OFFSET, b"hello"));
    }
}
