//! The machine: CPU + RAM + devices + event scheduler, stepped one
//! instruction at a time with monitor-friendly trap surfacing.

use crate::disk::Hdc;
use crate::event::{Event, EventQueue};
use crate::nic::Nic;
use crate::pic::Hpic;
use crate::pit::Hpit;
use crate::ram::Ram;
use crate::smp::{self, IpiBlock};
use crate::timing;
use crate::uart::Huart;
use hx_asm::Program;
use hx_cpu::trap::{Cause, Trap};
use hx_cpu::{Bus, BusFault, Cpu, MemSize, StepOutcome};
use hx_fault::{FaultInjector, FaultOp, FaultPlan, FaultStats};
use hx_obs::{Dev, ExitCause, Recorder, TraceOp};

/// Construction parameters for a [`Machine`].
///
/// The defaults model the scaled-down PC documented in `DESIGN.md` §6; all
/// three evaluated platforms must share one config for their CPU loads to be
/// comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Physical RAM size in bytes.
    pub ram_size: usize,
    /// CPU clock in Hz (the unit of all cycle counts).
    pub clock_hz: u64,
    /// Ethernet wire rate in bits/second.
    pub wire_bps: u64,
    /// Per-disk media rate in bytes/second.
    pub disk_bps: u64,
    /// Fixed disk command overhead in cycles.
    pub hdc_cmd_overhead: u64,
    /// NIC TX descriptor fetch delay in cycles.
    pub nic_tx_fetch: u64,
    /// Extra cycles per MMIO register access.
    pub mmio_access_cycles: u64,
    /// Number of vCPUs the machine time-multiplexes (see [`crate::smp`]).
    /// `1` is the bit-identical classic configuration; secondaries start
    /// parked until a startup IPI.
    pub num_cores: usize,
    /// Round-robin scheduler quantum in simulated cycles (multi-core only;
    /// ignored when `num_cores == 1`).
    pub sched_quantum: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            ram_size: 24 * 1024 * 1024,
            clock_hz: timing::DEFAULT_CLOCK_HZ,
            wire_bps: timing::DEFAULT_WIRE_BPS,
            disk_bps: timing::DEFAULT_DISK_BPS,
            hdc_cmd_overhead: timing::DEFAULT_HDC_CMD_OVERHEAD,
            nic_tx_fetch: timing::DEFAULT_NIC_TX_FETCH,
            mmio_access_cycles: timing::MMIO_ACCESS_CYCLES,
            num_cores: 1,
            sched_quantum: Machine::DEFAULT_SCHED_QUANTUM,
        }
    }
}

/// One core's seat at the machine: its parked vCPU plus the per-core run
/// flags the scheduler consults. The *active* core's `Vcpu` lives in
/// [`Machine::cpu`] (swapped in), so `cpu` here is stale for that seat;
/// `waiting`/`started` are authoritative for every core at all times.
#[derive(Debug, Clone)]
struct CoreSeat {
    cpu: Cpu,
    /// The core executed `wfi` (or was parked by a monitor emulating one)
    /// and sleeps until an interrupt or IPI targets it.
    waiting: bool,
    /// Secondaries start unstarted and join at the first startup IPI.
    started: bool,
}

/// What one [`Machine::step`] did.
///
/// Interrupts and traps are surfaced **undelivered**: real hardware
/// ([`crate::RawPlatform`]) vectors them architecturally with
/// [`Machine::deliver_trap`]; a virtual machine monitor intercepts them
/// instead. This is the seam the paper's architecture lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineStep {
    /// One instruction retired (`cycles` includes MMIO penalties).
    Executed {
        /// Cycles the instruction consumed.
        cycles: u64,
    },
    /// The PIC won arbitration: the interrupt was acknowledged (IRR → ISR)
    /// and awaits delivery.
    Interrupt {
        /// The winning request line.
        irq: u8,
        /// The vector the PIC supplied.
        vector: u8,
    },
    /// The instruction raised a trap; not yet delivered.
    Trapped {
        /// The raised trap.
        trap: Trap,
        /// Cycles consumed before recognition.
        cycles: u64,
    },
    /// The CPU was idle (`wfi`) and the clock jumped to the next device
    /// event.
    Idle {
        /// Idle cycles skipped.
        cycles: u64,
    },
    /// The CPU is idle and **no event is pending**: nothing can ever wake
    /// it. Platforms treat this as a hang.
    Stuck,
}

/// Result of one [`Machine::run_batch`]: a run of normally-retired
/// instructions, optionally ended early by something that needs the
/// platform's attention.
///
/// The batch is simulation-equivalent to the same number of individual
/// [`Machine::step`] calls — cycle counts, event firing times, interrupt
/// recognition points and device behaviour are bit-identical — it only
/// amortises the per-step host overhead (event-queue polls, interrupt
/// arbitration, bus construction) over up to [`Machine::BATCH_INSTRS`]
/// instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    /// Cycles consumed by instructions that retired normally (including the
    /// trailing `wfi` of an idle transition, as in [`MachineStep::Executed`]).
    pub executed: u64,
    /// What ended the batch before the quantum, if anything. Never
    /// [`MachineStep::Executed`].
    pub end: Option<MachineStep>,
}

/// A logpoint: when the instruction at `addr` retires and `cond` (absent
/// means "always") evaluates nonzero, a [`hx_obs::EventKind::Logpoint`]
/// event carrying the condition's value is recorded — the guest is never
/// stopped. Logpoints live on the machine so every platform evaluates them
/// at the same place: the executed-instruction boundary.
#[derive(Debug, Clone)]
pub struct Logpoint {
    /// Guest address of the instruction the logpoint is attached to.
    pub addr: u32,
    /// Free-form label for reports (not journaled).
    pub label: String,
    /// Condition over machine state; `None` fires unconditionally.
    pub cond: Option<hx_query::Expr>,
}

/// The simulated machine.
///
/// Fields are public: monitors legitimately reach into the chipset (that is
/// their job), and tests assert on device state directly.
#[derive(Debug, Clone)]
pub struct Machine {
    /// The processor.
    pub cpu: Cpu,
    /// Physical memory.
    pub mem: Ram,
    /// Interrupt controller.
    pub pic: Hpic,
    /// Interval timer.
    pub pit: Hpit,
    /// Debug-channel UART.
    pub uart: Huart,
    /// Disk controller.
    pub hdc: Hdc,
    /// Network controller.
    pub nic: Nic,
    /// Observability recorder: devices and monitors log trace events and
    /// cycle attribution here. Purely an observer — never feeds back into
    /// simulation state.
    pub obs: Recorder,
    events: EventQueue,
    now: u64,
    /// One seat per core; `seats[active].cpu` is a stale placeholder while
    /// that core's state is swapped into `self.cpu`.
    seats: Vec<CoreSeat>,
    /// Index of the core currently executing (owning `self.cpu`).
    active: usize,
    /// Cycle at which the round-robin scheduler next rotates;
    /// `u64::MAX` for single-core machines (never).
    next_switch_at: u64,
    /// Inter-processor-interrupt block (see [`crate::smp`]).
    ipi: IpiBlock,
    cfg: MachineConfig,
    /// Deterministic fault-injection campaign; `None` unless enabled. Lives
    /// on the machine (and is `Clone`) so flight-recorder snapshots capture
    /// the PRNG mid-campaign and replay the remaining faults identically.
    fault: Option<FaultInjector>,
    /// Campaign gate: while true, due [`Event::FaultInject`] events defer
    /// instead of firing. Monitors raise it while the guest is parked for
    /// debugging — the campaign models faults of a *running* guest, and an
    /// injection landing in a halted one would mutate the exact state the
    /// debugger is inspecting.
    fault_paused: bool,
    /// Armed logpoints, evaluated at executed-instruction boundaries.
    /// Platforms disable instruction batching while any are armed so
    /// boundaries arrive per instruction (batching is simulation-invisible,
    /// so arming one never changes cycle counts).
    logpoints: Vec<Logpoint>,
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// The CPU's predecoded-instruction cache is enabled: the machine bus
    /// tracks per-page write generations (stores and DMA), so cached decodes
    /// can never go stale. Results are bit-identical with the cache off.
    pub fn new(cfg: MachineConfig) -> Machine {
        let cores = cfg.num_cores.clamp(1, smp::MAX_CORES);
        let mut cpu = Cpu::new();
        cpu.set_decode_cache(true);
        let seats = (0..cores)
            .map(|i| {
                let mut c = Cpu::new();
                c.set_decode_cache(true);
                CoreSeat {
                    cpu: c,
                    waiting: false,
                    started: i == 0,
                }
            })
            .collect();
        Machine {
            cpu,
            mem: Ram::new(cfg.ram_size),
            pic: Hpic::new(),
            pit: Hpit::new(),
            uart: Huart::new(),
            hdc: Hdc::new(cfg.clock_hz, cfg.disk_bps, cfg.hdc_cmd_overhead),
            nic: Nic::new(cfg.clock_hz, cfg.wire_bps, cfg.nic_tx_fetch),
            obs: Recorder::new(),
            events: EventQueue::new(),
            now: 0,
            seats,
            active: 0,
            next_switch_at: if cores > 1 {
                cfg.sched_quantum.max(1)
            } else {
                u64::MAX
            },
            ipi: IpiBlock::new(cores),
            cfg,
            fault: None,
            fault_paused: false,
            logpoints: Vec::new(),
        }
    }

    /// Default round-robin scheduler quantum: long enough that per-switch
    /// bookkeeping is negligible, short enough that cross-core interleaving
    /// is fine-grained relative to device timings (~0.3 ms at 150 MHz).
    pub const DEFAULT_SCHED_QUANTUM: u64 = 50_000;

    /// Number of configured cores.
    pub fn num_cores(&self) -> usize {
        self.seats.len()
    }

    /// Index of the core currently executing.
    pub fn active_core(&self) -> usize {
        self.active
    }

    /// Core `i`'s vCPU state (the active core reads through
    /// [`Machine::cpu`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_cores()`.
    pub fn core(&self, i: usize) -> &Cpu {
        if i == self.active {
            &self.cpu
        } else {
            &self.seats[i].cpu
        }
    }

    /// Mutable access to core `i`'s vCPU state.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_cores()`.
    pub fn core_mut(&mut self, i: usize) -> &mut Cpu {
        if i == self.active {
            &mut self.cpu
        } else {
            &mut self.seats[i].cpu
        }
    }

    /// Whether core `i` has been started (core 0 always; secondaries join
    /// at their first startup IPI).
    pub fn core_started(&self, i: usize) -> bool {
        self.seats[i].started
    }

    /// Whether core `i` is parked in `wfi` (or monitor-emulated idle).
    pub fn core_waiting(&self, i: usize) -> bool {
        self.seats[i].waiting
    }

    /// Instructions retired across every core.
    pub fn total_instret(&self) -> u64 {
        (0..self.seats.len()).map(|i| self.core(i).instret()).sum()
    }

    /// The IPI block (pending masks, entry register).
    pub fn ipi(&self) -> &IpiBlock {
        &self.ipi
    }

    /// Sends an IPI exactly as a guest `IPI_SEND` store would: delivery is
    /// scheduled [`smp::LATENCY`] cycles out on the event queue. Monitors
    /// emulating the IPI registers for a deprivileged guest route through
    /// here so virtual and raw timing agree. Returns `false` (and does
    /// nothing) for an invalid target or line.
    pub fn ipi_send(&mut self, target: u8, line: u8) -> bool {
        if (target as usize) >= self.seats.len() || line >= 8 {
            return false;
        }
        self.obs.ipi_send(self.now, target, line as u32);
        self.events
            .schedule(self.now + smp::LATENCY, Event::Ipi { target, line });
        true
    }

    /// The startup-entry register (`IPI_ENTRY`).
    pub fn ipi_entry(&self) -> u32 {
        self.ipi.entry
    }

    /// Sets the startup-entry register (monitor emulation of `IPI_ENTRY`).
    pub fn set_ipi_entry(&mut self, entry: u32) {
        self.ipi.entry = entry;
    }

    /// Parks the **active** core as if it executed `wfi` — monitors use
    /// this when emulating a guest `wfi` on a multi-core machine so the
    /// scheduler runs the remaining cores instead of idling the clock.
    pub fn park_active(&mut self) {
        self.seats[self.active].waiting = true;
    }

    /// Clears core `i`'s parked state (monitor-side virtual wake).
    pub fn wake_core(&mut self, i: usize) {
        self.seats[i].waiting = false;
    }

    /// Resets the SMP bookkeeping to its power-on state: core 0 active and
    /// started, secondaries stopped, no IPIs pending, the scheduler quantum
    /// restarted from now. Per-core register state is the caller's to
    /// rebuild (monitors recreate their vCPUs on a guest reset).
    pub fn smp_reset(&mut self) {
        // Swap core 0 back into the execution seat first: `seats[active]`
        // holds a stale placeholder while that core's state is in
        // `self.cpu`, so flag surgery below must happen with the seats
        // coherent.
        self.switch_to(0);
        for (i, seat) in self.seats.iter_mut().enumerate() {
            seat.started = i == 0;
            seat.waiting = false;
        }
        let n = self.seats.len();
        self.ipi = IpiBlock::new(n);
        self.next_switch_at = if n > 1 {
            self.now + self.cfg.sched_quantum.max(1)
        } else {
            u64::MAX
        };
    }

    /// True when the active core should not execute instructions.
    fn waiting(&self) -> bool {
        self.seats[self.active].waiting
    }

    /// Wake condition for a parked core: the global PIC only reaches core 0
    /// (board wiring); IPIs reach their target.
    fn wake_condition(&self, i: usize) -> bool {
        (i == 0 && self.pic.line_asserted()) || self.ipi.pending[i] != 0
    }

    /// Swaps core `to` into the execution seat.
    fn switch_to(&mut self, to: usize) {
        if to == self.active {
            return;
        }
        let from = self.active;
        std::mem::swap(&mut self.cpu, &mut self.seats[from].cpu);
        std::mem::swap(&mut self.cpu, &mut self.seats[to].cpu);
        self.active = to;
        self.obs.set_active_core(to as u8);
    }

    /// Rotates to the next runnable core once the quantum expires. The
    /// quantum restarts whether or not another core was runnable, so a lone
    /// runnable core re-checks its siblings every quantum.
    fn maybe_rotate(&mut self) {
        if self.now < self.next_switch_at {
            return;
        }
        self.next_switch_at = self.now + self.cfg.sched_quantum.max(1);
        let n = self.seats.len();
        for k in 1..n {
            let i = (self.active + k) % n;
            if self.seats[i].started && !self.seats[i].waiting {
                self.switch_to(i);
                return;
            }
        }
    }

    /// Interrupt arbitration for the active core: local IPIs first (higher
    /// priority, they model the APIC), then the global PIC on core 0 only.
    fn poll_interrupt(&mut self) -> Option<(u8, u8)> {
        let pend = self.ipi.pending[self.active];
        if pend != 0 {
            let line = pend.trailing_zeros() as u8;
            self.ipi.pending[self.active] &= !(1 << line);
            self.ipi.delivered += 1;
            return Some((smp::IRQ_BASE + line, smp::VECTOR_BASE + line));
        }
        if self.active == 0 {
            self.pic.inta()
        } else {
            None
        }
    }

    /// The common preamble of [`Machine::step`] and [`Machine::run_batch`]:
    /// fire due events, rotate cores at quantum boundaries, resolve the
    /// parked state, and arbitrate interrupts. Returns `Some` when the step
    /// is already decided without executing an instruction.
    fn schedule_point(&mut self) -> Option<MachineStep> {
        self.process_due_events();
        self.maybe_rotate();

        if self.waiting() {
            if self.wake_condition(self.active) {
                self.seats[self.active].waiting = false;
            } else if let Some(other) = self.next_runnable_other() {
                // The active core sleeps but a sibling can run: hand the
                // seat over immediately instead of idling the clock.
                self.switch_to(other);
                self.next_switch_at = self.now + self.cfg.sched_quantum.max(1);
            } else {
                let Some(due) = self.events.next_due() else {
                    return Some(MachineStep::Stuck);
                };
                let idle = due - self.now;
                self.now = due;
                self.cpu.add_cycles(idle);
                self.process_due_events();
                return Some(MachineStep::Idle { cycles: idle });
            }
        }

        if self.cpu.interrupts_enabled() {
            if let Some((irq, vector)) = self.poll_interrupt() {
                return Some(MachineStep::Interrupt { irq, vector });
            }
        }
        None
    }

    /// A started, non-waiting core other than the active one, in
    /// round-robin order.
    fn next_runnable_other(&self) -> Option<usize> {
        let n = self.seats.len();
        (1..n)
            .map(|k| (self.active + k) % n)
            .find(|&i| self.seats[i].started && !self.seats[i].waiting)
    }

    /// Delivers one due [`Event::Ipi`]: line 0 starts (or wakes) the
    /// target; other lines latch into its pending mask. Either way the
    /// target leaves `wfi`.
    fn ipi_deliver(&mut self, at: u64, target: u8, line: u8) {
        let t = target as usize;
        if t >= self.seats.len() {
            return;
        }
        if line == 0 {
            if !self.seats[t].started {
                self.seats[t].started = true;
                let entry = self.ipi.entry;
                self.core_mut(t).set_pc(entry);
            }
        } else {
            self.ipi.pending[t] |= 1 << line;
        }
        self.seats[t].waiting = false;
        self.obs.irq(
            at,
            Dev::Pic,
            ((t as u32) << 8) | (smp::IRQ_BASE + line) as u32,
        );
        self.obs.ipi_deliver(at, target, line as u32);
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Pending event count (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Loads an assembled image into RAM and points the CPU at its base.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in RAM.
    pub fn load_program(&mut self, program: &Program) {
        program.load_into(self.mem.as_bytes_mut());
        self.cpu.set_pc(program.base());
    }

    /// Host → target bytes on the debug UART.
    pub fn uart_input(&mut self, bytes: &[u8]) {
        if self.obs.journaling() {
            self.obs
                .journal_input(self.now, hx_obs::JournalInput::UartRx(bytes.to_vec()));
        }
        self.uart.push_rx(bytes, &mut self.pic);
        if self.uart.rx_irq_enabled() {
            self.obs
                .irq(self.now, Dev::Uart, crate::map::irq::UART as u32);
        }
        self.seats[0].waiting = false; // UART IRQ is wired to core 0: wake it
    }

    /// Target → host bytes on the debug UART.
    pub fn uart_output(&mut self) -> Vec<u8> {
        self.uart.drain_tx()
    }

    /// Injects a received network frame (delivered via the RX ring).
    pub fn nic_inject_rx(&mut self, frame: Vec<u8>) {
        if self.obs.journaling() {
            self.obs
                .journal_input(self.now, hx_obs::JournalInput::NicRx(frame.clone()));
        }
        self.nic.inject_rx(frame, self.now, &mut self.events);
    }

    /// Default IRQ-storm line set: every device line except the debug UART
    /// (storming the stub's own channel would conflate link faults with
    /// guest faults).
    pub const STORM_LINES_DEFAULT: u8 = 0b0111_1101;

    /// Monitor-side cycles charged per blocked wild attempt: the cost of the
    /// protection fault the attempt would raise under a monitor.
    const PROTECTION_EXIT_COST: u64 = 96;

    /// Re-poll cadence for a fault campaign held by [`Machine::pause_faults`].
    const FAULT_PAUSE_RETRY: u64 = 1_024;

    /// Arms a deterministic fault-injection campaign.
    ///
    /// Faults fire as [`Event::FaultInject`] on the machine's own event
    /// queue, so an injected run is still a pure function of (program, plan)
    /// and batched vs single-stepped execution stays bit-identical. A
    /// `storm_lines` of 0 in the plan is replaced with
    /// [`Machine::STORM_LINES_DEFAULT`].
    pub fn enable_fault_injection(&mut self, mut plan: FaultPlan) {
        if plan.storm_lines == 0 {
            plan.storm_lines = Self::STORM_LINES_DEFAULT;
        }
        let mut inj = FaultInjector::new(plan);
        self.events
            .schedule(self.now + inj.first_delay(), Event::FaultInject);
        self.fault = Some(inj);
    }

    /// Campaign counters, when fault injection is armed.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(|f| &f.stats)
    }

    /// Gates the fault campaign. While paused, due injection events defer
    /// (without consuming the plan's PRNG) until the campaign is resumed —
    /// monitors pause it whenever they park the guest so that inspecting a
    /// stopped machine never mutates it.
    pub fn pause_faults(&mut self, paused: bool) {
        self.fault_paused = paused;
    }

    /// Arms a logpoint at `addr`. Multiple logpoints may share an address;
    /// each fires independently.
    pub fn add_logpoint(&mut self, addr: u32, label: &str, cond: Option<hx_query::Expr>) {
        self.logpoints.push(Logpoint {
            addr,
            label: label.to_string(),
            cond,
        });
    }

    /// Removes every logpoint at `addr`; returns whether any existed.
    pub fn clear_logpoint(&mut self, addr: u32) -> bool {
        let before = self.logpoints.len();
        self.logpoints.retain(|lp| lp.addr != addr);
        self.logpoints.len() != before
    }

    /// Whether any logpoint is armed (platforms use this to force precise
    /// stepping).
    pub fn has_logpoints(&self) -> bool {
        !self.logpoints.is_empty()
    }

    /// The armed logpoints.
    pub fn logpoints(&self) -> &[Logpoint] {
        &self.logpoints
    }

    /// Evaluates armed logpoints against the instruction at `pc` that just
    /// retired. A hit (condition absent or nonzero) records a trace/journal
    /// event carrying the condition value; an unmapped memory operand is a
    /// silent miss. Pure observation — no machine state changes.
    pub fn note_logpoints(&mut self, pc: u32) {
        if self.logpoints.is_empty() {
            return;
        }
        let mut hits: Vec<(u32, u64)> = Vec::new();
        {
            let mut ctx =
                hx_query::SliceCtx::new(self.mem.as_bytes(), self.cpu.regs(), pc, self.now);
            for lp in &self.logpoints {
                if lp.addr != pc {
                    continue;
                }
                let value = match &lp.cond {
                    None => 1,
                    Some(e) => match e.eval(&mut ctx) {
                        Some(v) => v,
                        None => continue,
                    },
                };
                if value != 0 {
                    hits.push((lp.addr, value));
                }
            }
        }
        for (addr, value) in hits {
            self.obs.logpoint(self.now, addr, value);
        }
    }

    /// Handles one due [`Event::FaultInject`]: draws the next planned fault,
    /// applies it against the devices/RAM, and schedules the next one.
    fn apply_fault(&mut self, at: u64) {
        let Some(inj) = self.fault.as_mut() else {
            return;
        };
        if self.fault_paused {
            // Parked guest: hold the campaign without advancing its PRNG so
            // the post-resume schedule stays a pure function of the plan.
            self.events
                .schedule(at + Self::FAULT_PAUSE_RETRY, Event::FaultInject);
            return;
        }
        let planned = inj.next_fault();
        let delay = inj.next_delay();
        self.events.schedule(at + delay, Event::FaultInject);
        let Some(pf) = planned else {
            return;
        };
        match pf.op {
            FaultOp::WildWrite { addr, val } => {
                self.obs.fault(at, pf.kind.code(), addr);
                if self.fault.as_mut().unwrap().check_wild(addr) {
                    let _ = self.mem.dma_write(addr, &val.to_le_bytes());
                } else {
                    self.obs
                        .exit(at, ExitCause::Protection, Self::PROTECTION_EXIT_COST);
                }
            }
            FaultOp::IrqBurst { lines } => {
                self.obs.fault(at, pf.kind.code(), lines as u32);
                for irq in 0..8u8 {
                    if lines & (1 << irq) != 0 {
                        self.pic.assert_irq(irq);
                        self.obs.irq(at, Dev::Pic, irq as u32);
                    }
                }
            }
            FaultOp::DmaSplat { addr, seed } => {
                self.obs.fault(at, pf.kind.code(), addr);
                if self.fault.as_mut().unwrap().check_wild(addr) {
                    let _ = self.mem.dma_write(addr, &hx_fault::splat_pattern(seed));
                } else {
                    self.obs
                        .exit(at, ExitCause::Protection, Self::PROTECTION_EXIT_COST);
                }
            }
            FaultOp::DiskError { unit } => {
                self.obs.fault(at, pf.kind.code(), unit as u32);
                self.hdc
                    .inject_error_completion(unit, at, &mut self.pic, &mut self.obs);
            }
            FaultOp::NicError => {
                self.obs.fault(at, pf.kind.code(), 0);
                self.nic
                    .inject_error_completion(at, &mut self.pic, &mut self.obs);
            }
            FaultOp::RacyIncrement { addr } => {
                // A lost update: write back the counter's previous value, as
                // if another core's stale read-modify-write landed after the
                // owner's increment. Silent — no trap, no protection exit —
                // so only replay divergence can catch it.
                self.obs.fault(at, pf.kind.code(), addr);
                let a = addr as usize;
                let bytes = self.mem.as_bytes();
                if a + 4 <= bytes.len() {
                    let val = u32::from_le_bytes(bytes[a..a + 4].try_into().unwrap());
                    if val != 0 {
                        let _ = self.mem.dma_write(addr, &val.wrapping_sub(1).to_le_bytes());
                    }
                }
            }
        }
    }

    fn process_due_events(&mut self) {
        while let Some((at, ev)) = self.events.pop_due(self.now) {
            match ev {
                Event::PitTick => {
                    self.pit
                        .on_tick(at, &mut self.pic, &mut self.events, &mut self.obs)
                }
                Event::HdcComplete { unit } => {
                    self.hdc
                        .on_complete(unit, at, &mut self.mem, &mut self.pic, &mut self.obs)
                }
                Event::NicTxKick => self.nic.on_tx_kick(
                    self.now,
                    &mut self.mem,
                    &mut self.pic,
                    &mut self.events,
                    &mut self.obs,
                ),
                Event::NicTxDone => self.nic.on_tx_done(
                    self.now,
                    &mut self.mem,
                    &mut self.pic,
                    &mut self.events,
                    &mut self.obs,
                ),
                Event::NicRxDeliver => {
                    self.nic
                        .on_rx_deliver(self.now, &mut self.mem, &mut self.pic, &mut self.obs)
                }
                Event::FaultInject => self.apply_fault(at),
                Event::Ipi { target, line } => self.ipi_deliver(at, target, line),
            }
        }
    }

    /// Advances the clock by externally-accounted cycles (monitor or
    /// host-model execution time) and lets device events that became due
    /// fire. The guest-visible cycle counter advances too — the monitor runs
    /// on the same CPU.
    pub fn consume(&mut self, cycles: u64) {
        self.now += cycles;
        self.cpu.add_cycles(cycles);
        self.process_due_events();
    }

    /// Jumps the clock to the next pending device event and processes it,
    /// without executing guest instructions — used by monitors emulating a
    /// guest `wfi`. Returns the idle cycles skipped, or `None` when no event
    /// is pending (the machine can never wake on its own).
    pub fn skip_to_next_event(&mut self) -> Option<u64> {
        let due = self.events.next_due()?;
        let dt = due.saturating_sub(self.now);
        self.now = due;
        self.cpu.add_cycles(dt);
        self.process_due_events();
        Some(dt)
    }

    /// Delivers a trap architecturally through the CPU and advances time by
    /// the trap-entry cost. Returns the cycles charged.
    pub fn deliver_trap(&mut self, trap: Trap) -> u64 {
        self.seats[self.active].waiting = false;
        let c = self.cpu.take_trap(trap);
        self.now += c;
        self.process_due_events();
        c
    }

    /// Builds the interrupt trap for a vector produced by
    /// [`MachineStep::Interrupt`].
    pub fn interrupt_trap(&self, vector: u8) -> Trap {
        Trap::new(Cause::Interrupt, self.cpu.pc(), vector as u32)
    }

    /// Executes one machine step. See [`MachineStep`] for the contract.
    pub fn step(&mut self) -> MachineStep {
        if let Some(decided) = self.schedule_point() {
            return decided;
        }

        let mut bus = MachineBus {
            mem: &mut self.mem,
            pic: &mut self.pic,
            pit: &mut self.pit,
            uart: &mut self.uart,
            hdc: &mut self.hdc,
            nic: &mut self.nic,
            events: &mut self.events,
            obs: &mut self.obs,
            ipi: &mut self.ipi,
            active: self.active as u32,
            num_cores: self.seats.len() as u32,
            now: self.now,
            mmio_extra: 0,
            mmio_cost: self.cfg.mmio_access_cycles,
        };
        let outcome = self.cpu.step(&mut bus);
        let extra = bus.mmio_extra;
        if extra > 0 {
            self.cpu.add_cycles(extra);
        }
        match outcome {
            StepOutcome::Executed { cycles } => {
                self.now += cycles + extra;
                self.process_due_events();
                MachineStep::Executed {
                    cycles: cycles + extra,
                }
            }
            StepOutcome::Wfi { cycles } => {
                self.now += cycles + extra;
                self.seats[self.active].waiting = true;
                self.process_due_events();
                MachineStep::Executed {
                    cycles: cycles + extra,
                }
            }
            StepOutcome::Trapped { trap, cycles } => {
                self.now += cycles + extra;
                self.process_due_events();
                MachineStep::Trapped {
                    trap,
                    cycles: cycles + extra,
                }
            }
        }
    }

    /// Instructions per [`Machine::run_batch`] quantum.
    ///
    /// Bounds how far a batch can overrun a `run_for` target (a few hundred
    /// cycles — well under a microsecond of simulated time), while amortising
    /// per-step polling enough that larger quanta stop paying.
    pub const BATCH_INSTRS: u32 = 64;

    /// Executes up to [`Machine::BATCH_INSTRS`] instructions as one batch.
    /// See [`Batch`] for the contract.
    ///
    /// A batch ends early — with `end` set — for exactly the conditions a
    /// per-instruction loop would have had to notice between steps:
    /// an interrupt won arbitration, an instruction trapped, the CPU went
    /// idle, or the machine is stuck. It also ends (with `end == None`)
    /// whenever something could invalidate the once-per-batch polls: a
    /// pending device event coming due, or any MMIO access (which can change
    /// interrupt and event state). While the PIC's INTR line is latched,
    /// batching is disabled entirely — a single instruction can turn
    /// interrupts on and make the request deliverable.
    pub fn run_batch(&mut self) -> Batch {
        if let Some(decided) = self.schedule_point() {
            return Batch {
                executed: 0,
                end: Some(decided),
            };
        }

        // IRR/IMR/ISR only change through MMIO, device events or external
        // injection — never through plain instructions — so `line_asserted`
        // cannot *rise* inside a batch. It can already be up with interrupts
        // masked, though, and any instruction may unmask them: single-step
        // through that window. Same for a pending IPI on the active core.
        let quantum = if (self.active == 0 && self.pic.line_asserted())
            || self.ipi.pending[self.active] != 0
        {
            1
        } else {
            Self::BATCH_INSTRS
        };
        // The batch must also break at the scheduler's next rotation point so
        // batched and single-stepped runs switch cores at the same cycle.
        let mut horizon = self.events.next_due();
        if self.next_switch_at != u64::MAX {
            horizon = Some(horizon.map_or(self.next_switch_at, |h| h.min(self.next_switch_at)));
        }

        let mut bus = MachineBus {
            mem: &mut self.mem,
            pic: &mut self.pic,
            pit: &mut self.pit,
            uart: &mut self.uart,
            hdc: &mut self.hdc,
            nic: &mut self.nic,
            events: &mut self.events,
            obs: &mut self.obs,
            ipi: &mut self.ipi,
            active: self.active as u32,
            num_cores: self.seats.len() as u32,
            now: self.now,
            mmio_extra: 0,
            mmio_cost: self.cfg.mmio_access_cycles,
        };
        let mut executed = 0u64;
        let mut end = None;
        for _ in 0..quantum {
            bus.now = self.now;
            let outcome = self.cpu.step(&mut bus);
            let extra = bus.mmio_extra;
            bus.mmio_extra = 0;
            if extra > 0 {
                self.cpu.add_cycles(extra);
            }
            match outcome {
                StepOutcome::Executed { cycles } => {
                    self.now += cycles + extra;
                    executed += cycles + extra;
                    // MMIO may have scheduled events, raised interrupt
                    // lines or changed masks; a due event must fire before
                    // the next instruction. Either way the batch polls are
                    // stale: hand back to the platform.
                    if extra > 0 || horizon.is_some_and(|due| self.now >= due) {
                        break;
                    }
                }
                StepOutcome::Wfi { cycles } => {
                    self.now += cycles + extra;
                    executed += cycles + extra;
                    self.seats[self.active].waiting = true;
                    break;
                }
                StepOutcome::Trapped { trap, cycles } => {
                    self.now += cycles + extra;
                    end = Some(MachineStep::Trapped {
                        trap,
                        cycles: cycles + extra,
                    });
                    break;
                }
            }
        }
        self.process_due_events();
        Batch { executed, end }
    }

    /// Performs a bus read the way the CPU would (monitor emulation and
    /// debugger use). MMIO side effects apply; no cycles are charged.
    ///
    /// # Errors
    ///
    /// Propagates the device's [`BusFault`].
    pub fn bus_read(&mut self, paddr: u32, size: MemSize) -> Result<u32, BusFault> {
        let mut bus = MachineBus {
            mem: &mut self.mem,
            pic: &mut self.pic,
            pit: &mut self.pit,
            uart: &mut self.uart,
            hdc: &mut self.hdc,
            nic: &mut self.nic,
            events: &mut self.events,
            obs: &mut self.obs,
            ipi: &mut self.ipi,
            active: self.active as u32,
            num_cores: self.seats.len() as u32,
            now: self.now,
            mmio_extra: 0,
            mmio_cost: 0,
        };
        bus.read(paddr, size)
    }

    /// Performs a bus write the way the CPU would. See [`Machine::bus_read`].
    ///
    /// # Errors
    ///
    /// Propagates the device's [`BusFault`].
    pub fn bus_write(&mut self, paddr: u32, val: u32, size: MemSize) -> Result<(), BusFault> {
        let mut bus = MachineBus {
            mem: &mut self.mem,
            pic: &mut self.pic,
            pit: &mut self.pit,
            uart: &mut self.uart,
            hdc: &mut self.hdc,
            nic: &mut self.nic,
            events: &mut self.events,
            obs: &mut self.obs,
            ipi: &mut self.ipi,
            active: self.active as u32,
            num_cores: self.seats.len() as u32,
            now: self.now,
            mmio_extra: 0,
            mmio_cost: 0,
        };
        bus.write(paddr, val, size)
    }

    /// A [`Bus`] view over this machine, for code that needs to run CPU
    /// steps manually (the monitors' single-step paths).
    pub fn bus(&mut self) -> MachineBus<'_> {
        MachineBus {
            mem: &mut self.mem,
            pic: &mut self.pic,
            pit: &mut self.pit,
            uart: &mut self.uart,
            hdc: &mut self.hdc,
            nic: &mut self.nic,
            events: &mut self.events,
            obs: &mut self.obs,
            ipi: &mut self.ipi,
            active: self.active as u32,
            num_cores: self.seats.len() as u32,
            now: self.now,
            mmio_extra: 0,
            mmio_cost: self.cfg.mmio_access_cycles,
        }
    }

    /// Splits the machine into the CPU and a bus over everything else, so a
    /// monitor can call [`Cpu::step`] itself while keeping device routing.
    pub fn cpu_and_bus(&mut self) -> (&mut Cpu, MachineBus<'_>) {
        let bus = MachineBus {
            mem: &mut self.mem,
            pic: &mut self.pic,
            pit: &mut self.pit,
            uart: &mut self.uart,
            hdc: &mut self.hdc,
            nic: &mut self.nic,
            events: &mut self.events,
            obs: &mut self.obs,
            ipi: &mut self.ipi,
            active: self.active as u32,
            num_cores: self.seats.len() as u32,
            now: self.now,
            mmio_extra: 0,
            mmio_cost: self.cfg.mmio_access_cycles,
        };
        (&mut self.cpu, bus)
    }
}

/// The system bus: routes physical accesses to RAM or device registers.
#[derive(Debug)]
pub struct MachineBus<'a> {
    mem: &'a mut Ram,
    pic: &'a mut Hpic,
    pit: &'a mut Hpit,
    uart: &'a mut Huart,
    hdc: &'a mut Hdc,
    nic: &'a mut Nic,
    events: &'a mut EventQueue,
    obs: &'a mut Recorder,
    ipi: &'a mut IpiBlock,
    /// Index of the core issuing accesses (answers `CORE_ID` reads).
    active: u32,
    num_cores: u32,
    now: u64,
    mmio_extra: u64,
    mmio_cost: u64,
}

impl MachineBus<'_> {
    /// Extra cycles accumulated by MMIO accesses since construction.
    pub fn mmio_extra(&self) -> u64 {
        self.mmio_extra
    }

    fn device_page(paddr: u32) -> Option<(u32, u32)> {
        use crate::map::*;
        if paddr < MMIO_BASE {
            return None;
        }
        let page = paddr & !(DEV_PAGE - 1);
        let offset = paddr & (DEV_PAGE - 1);
        Some((page, offset))
    }
}

impl Bus for MachineBus<'_> {
    fn read(&mut self, paddr: u32, size: MemSize) -> Result<u32, BusFault> {
        if (paddr as usize) < self.mem.len() {
            return self.mem.read(paddr, size);
        }
        let (page, off) = Self::device_page(paddr).ok_or(BusFault::Unmapped)?;
        self.mmio_extra += self.mmio_cost;
        use crate::map::*;
        match page {
            // The IPI block shares the PIC's page, above the 8259 registers.
            PIC_BASE if off >= smp::reg::SEND => {
                if size != MemSize::Word {
                    return Err(BusFault::Denied);
                }
                match off {
                    smp::reg::ENTRY => Ok(self.ipi.entry),
                    smp::reg::CORE_ID => Ok(self.active),
                    smp::reg::NUM_CORES => Ok(self.num_cores),
                    _ => Err(BusFault::Denied),
                }
            }
            PIC_BASE => self.pic.read_reg(off, size),
            PIT_BASE => self.pit.read_reg(off, size, self.now),
            UART_BASE => self.uart.read_reg(off, size),
            HDC_BASE => self.hdc.read_reg(off, size),
            NIC_BASE => self.nic.read_reg(off, size),
            // Tracepoint registers are write-only; reads see zero so probing
            // code can run unchanged with or without a consumer attached.
            TRACE_BASE if off <= trace::INSTANT => {
                if size == MemSize::Word {
                    Ok(0)
                } else {
                    Err(BusFault::Denied)
                }
            }
            _ => Err(BusFault::Unmapped),
        }
    }

    fn write(&mut self, paddr: u32, val: u32, size: MemSize) -> Result<(), BusFault> {
        if (paddr as usize) < self.mem.len() {
            return self.mem.write(paddr, val, size);
        }
        let (page, off) = Self::device_page(paddr).ok_or(BusFault::Unmapped)?;
        self.mmio_extra += self.mmio_cost;
        use crate::map::*;
        let res = match page {
            PIC_BASE if off >= smp::reg::SEND => {
                if size != MemSize::Word {
                    Err(BusFault::Denied)
                } else {
                    match off {
                        smp::reg::SEND => {
                            let target = val & 0xff;
                            let line = (val >> 8) & 0xff;
                            if target >= self.num_cores || line >= 8 {
                                Err(BusFault::Denied)
                            } else {
                                self.obs.ipi_send(self.now, target as u8, line);
                                self.events.schedule(
                                    self.now + smp::LATENCY,
                                    Event::Ipi {
                                        target: target as u8,
                                        line: line as u8,
                                    },
                                );
                                Ok(())
                            }
                        }
                        smp::reg::ENTRY => {
                            self.ipi.entry = val;
                            Ok(())
                        }
                        _ => Err(BusFault::Denied),
                    }
                }
            }
            PIC_BASE => self.pic.write_reg(off, val, size),
            PIT_BASE => self.pit.write_reg(off, val, size, self.now, self.events),
            UART_BASE => self.uart.write_reg(off, val, size),
            HDC_BASE => self.hdc.write_reg(off, val, size, self.now, self.events),
            NIC_BASE => self.nic.write_reg(off, val, size, self.now, self.events),
            TRACE_BASE if off <= trace::INSTANT => {
                if size == MemSize::Word {
                    Ok(())
                } else {
                    Err(BusFault::Denied)
                }
            }
            _ => Err(BusFault::Unmapped),
        };
        if res.is_ok() {
            // Doorbell writes (registers that kick a device into action) are
            // trace-worthy: they delimit guest I/O submissions.
            match (page, off) {
                (NIC_BASE, crate::nic::reg::TX_TAIL | crate::nic::reg::RX_TAIL) => {
                    self.obs.doorbell(self.now, Dev::Nic, off);
                }
                (HDC_BASE, _) if off % 0x40 == crate::disk::reg::CMD => {
                    self.obs.doorbell(self.now, Dev::Hdc, off);
                }
                (PIC_BASE, smp::reg::SEND) => {
                    self.obs.doorbell(self.now, Dev::Pic, off);
                }
                // Retiring an ISR closes the INTA→EOI service flow.
                (PIC_BASE, crate::pic::reg::EOI) => {
                    self.obs.eoi(self.now);
                }
                (TRACE_BASE, _) => {
                    let op = match off {
                        trace::BEGIN => TraceOp::Begin,
                        trace::END => TraceOp::End,
                        _ => TraceOp::Instant,
                    };
                    self.obs.tracepoint(self.now, op, val);
                }
                _ => {}
            }
        }
        res
    }

    fn fetch_page_generation(&mut self, paddr: u32) -> Option<u64> {
        // Only RAM fetches are cacheable; device pages (which can have fetch
        // side effects and extra MMIO cycles) stay on the slow path.
        self.mem.page_generation(paddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map;

    fn machine_with(src: &str) -> Machine {
        let program = hx_asm::assemble(src).expect("test program assembles");
        let mut m = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..MachineConfig::default()
        });
        m.load_program(&program);
        m
    }

    /// Steps, delivering traps/interrupts architecturally (raw-hardware
    /// behaviour), until `pred` or a step budget runs out.
    fn run_until(m: &mut Machine, budget: usize, mut pred: impl FnMut(&Machine) -> bool) {
        for _ in 0..budget {
            if pred(m) {
                return;
            }
            match m.step() {
                MachineStep::Executed { .. } | MachineStep::Idle { .. } => {}
                MachineStep::Interrupt { vector, .. } => {
                    let t = m.interrupt_trap(vector);
                    m.deliver_trap(t);
                }
                MachineStep::Trapped { trap, .. } => {
                    m.deliver_trap(trap);
                }
                MachineStep::Stuck => panic!("machine stuck"),
            }
        }
        panic!("predicate not reached within budget");
    }

    #[test]
    fn mmio_access_costs_more() {
        let mut m = machine_with(
            "li t0, 0xf0000008\n lw t1, 0(t0)\n lw t2, 0x100(zero)\n", // PIC IMR read then RAM read
        );
        m.step(); // lui
        m.step(); // ori
        let c_mmio = match m.step() {
            MachineStep::Executed { cycles } => cycles,
            other => panic!("{other:?}"),
        };
        let c_ram = match m.step() {
            MachineStep::Executed { cycles } => cycles,
            other => panic!("{other:?}"),
        };
        assert!(c_mmio > c_ram, "MMIO {c_mmio} vs RAM {c_ram}");
    }

    #[test]
    fn timer_interrupt_reaches_handler() {
        // Handler increments s0 and retires; main programs the PIT and idles.
        let src = format!(
            "        .org 0x100
             handler:
                     addi s0, s0, 1
                     li   k0, {pic:#x}
                     li   k1, {pit_irq}
                     sw   k1, 0xc(k0)      ; EOI
                     tret
             start:  la   t0, handler
                     csrw tvec, t0
                     li   t0, {pit:#x}
                     li   t1, 500
                     sw   t1, 4(t0)        ; reload
                     li   t1, 3
                     sw   t1, 0(t0)        ; enable periodic
                     csrw status, 1        ; IE
             idle:   wfi
                     j    idle
            ",
            pic = map::PIC_BASE,
            pit = map::PIT_BASE,
            pit_irq = map::irq::PIT,
        );
        let program = hx_asm::assemble(&src).unwrap();
        let mut m = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..MachineConfig::default()
        });
        program.load_into(m.mem.as_bytes_mut());
        m.cpu.set_pc(program.symbols.get("start").unwrap());
        run_until(&mut m, 100_000, |m| m.cpu.reg(hx_cpu::Reg::R18) >= 3);
        assert!(m.pit.ticks() >= 3);
        assert!(m.now() >= 1500, "three 500-cycle periods must elapse");
    }

    #[test]
    fn run_batch_matches_single_stepping() {
        // A workload that exercises every batch-break condition: a long
        // computational stretch (full 64-instruction quanta), PIT MMIO
        // programming (mid-batch MMIO break), periodic interrupts (latched
        // INTR line), and a wfi idle loop.
        let src = format!(
            "        .org 0x100
             handler:
                     addi s0, s0, 1
                     li   k0, {pic:#x}
                     li   k1, {pit_irq}
                     sw   k1, 0xc(k0)      ; EOI
                     tret
             start:  la   t0, handler
                     csrw tvec, t0
                     li   t2, 1000
             spin:   addi t2, t2, -1
                     bne  t2, zero, spin
                     li   t0, {pit:#x}
                     li   t1, 700
                     sw   t1, 4(t0)
                     li   t1, 3
                     sw   t1, 0(t0)        ; enable periodic
                     csrw status, 1        ; IE
             idle:   wfi
                     j    idle
            ",
            pic = map::PIC_BASE,
            pit = map::PIT_BASE,
            pit_irq = map::irq::PIT,
        );
        let program = hx_asm::assemble(&src).unwrap();
        let build = || {
            let mut m = Machine::new(MachineConfig {
                ram_size: 1 << 20,
                ..MachineConfig::default()
            });
            m.load_program(&program);
            m.cpu.set_pc(program.symbols.get("start").unwrap());
            m
        };
        let mut stepped = build();
        let mut batched = build();

        // Drive one machine in batches past a target...
        let target = 200_000;
        while batched.now() < target {
            let batch = batched.run_batch();
            match batch.end {
                Some(MachineStep::Interrupt { vector, .. }) => {
                    let t = batched.interrupt_trap(vector);
                    batched.deliver_trap(t);
                }
                Some(MachineStep::Trapped { trap, .. }) => {
                    batched.deliver_trap(trap);
                }
                Some(MachineStep::Stuck) => panic!("machine stuck"),
                _ => {}
            }
        }

        // ...then single-step the other to the exact same simulated time.
        // Batches only stop on instruction boundaries, so the stepped
        // machine must land on `batched.now()` precisely, with identical
        // state throughout.
        while stepped.now() < batched.now() {
            match stepped.step() {
                MachineStep::Interrupt { vector, .. } => {
                    let t = stepped.interrupt_trap(vector);
                    stepped.deliver_trap(t);
                }
                MachineStep::Trapped { trap, .. } => {
                    stepped.deliver_trap(trap);
                }
                MachineStep::Stuck => panic!("machine stuck"),
                _ => {}
            }
        }
        assert_eq!(stepped.now(), batched.now(), "same instruction boundary");
        assert_eq!(stepped.cpu.pc(), batched.cpu.pc());
        assert_eq!(stepped.cpu.cycles(), batched.cpu.cycles());
        assert_eq!(stepped.cpu.instret(), batched.cpu.instret());
        assert_eq!(stepped.cpu.tlb_stats(), batched.cpu.tlb_stats());
        for i in 0..32 {
            let r = hx_cpu::Reg::new(i).unwrap();
            assert_eq!(stepped.cpu.reg(r), batched.cpu.reg(r), "{r:?}");
        }
        assert_eq!(stepped.pit.ticks(), batched.pit.ticks());
        assert_eq!(stepped.mem, batched.mem);
        assert!(
            stepped.cpu.reg(hx_cpu::Reg::R18) >= 3,
            "interrupts were taken"
        );
    }

    #[test]
    fn idle_skips_to_next_event() {
        let src = format!(
            "start:  li   t0, {pit:#x}
                     li   t1, 10000
                     sw   t1, 4(t0)
                     li   t1, 1
                     sw   t1, 0(t0)       ; one-shot
                     csrw status, 1
                     wfi
             after:  ebreak
            ",
            pit = map::PIT_BASE
        );
        let mut m = machine_with(&src);
        let mut idle_total = 0;
        loop {
            match m.step() {
                MachineStep::Idle { cycles } => idle_total += cycles,
                MachineStep::Interrupt { vector, .. } => {
                    let t = m.interrupt_trap(vector);
                    m.deliver_trap(t);
                    break;
                }
                MachineStep::Executed { .. } => {}
                other => panic!("{other:?}"),
            }
        }
        assert!(
            idle_total > 9_000,
            "most of the 10k-cycle wait must be idle, got {idle_total}"
        );
    }

    #[test]
    fn stuck_when_idle_with_no_events() {
        let mut m = machine_with("wfi\n");
        loop {
            match m.step() {
                MachineStep::Executed { .. } => {}
                MachineStep::Stuck => return,
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn uart_input_wakes_idle_cpu() {
        let src = format!(
            "start:  li   t0, {uart:#x}
                     li   t1, 1
                     sw   t1, 8(t0)     ; rx irq enable
                     csrw status, 1
                     wfi
                     j    start
            ",
            uart = map::UART_BASE
        );
        let mut m = machine_with(&src);
        // Run until the CPU idles (no events → Stuck).
        loop {
            match m.step() {
                MachineStep::Stuck => break,
                MachineStep::Executed { .. } => {}
                other => panic!("{other:?}"),
            }
        }
        m.uart_input(b"x");
        match m.step() {
            MachineStep::Interrupt { irq, .. } => assert_eq!(irq, map::irq::UART),
            other => panic!("expected interrupt, got {other:?}"),
        }
    }

    #[test]
    fn disk_to_memory_via_guest_driver() {
        let src = format!(
            "start:  li   t0, {hdc:#x}
                     li   t1, 5
                     sw   t1, 0(t0)       ; lba
                     li   t1, 1
                     sw   t1, 4(t0)       ; count
                     li   t1, 0x9000
                     sw   t1, 8(t0)       ; dma
                     li   t1, 1
                     sw   t1, 0xc(t0)     ; read doorbell
             poll:   lw   t2, 0x10(t0)
                     andi t2, t2, 2       ; done?
                     beqz t2, poll
                     ebreak
            ",
            hdc = map::HDC_BASE
        );
        let mut m = machine_with(&src);
        loop {
            match m.step() {
                MachineStep::Trapped { trap, .. } if trap.cause == Cause::Breakpoint => break,
                MachineStep::Executed { .. } => {}
                MachineStep::Trapped { trap, .. } => panic!("unexpected trap {trap}"),
                other => panic!("{other:?}"),
            }
        }
        let mut expect = vec![0u8; 512];
        crate::disk::fill_expected(0, 5, &mut expect);
        assert_eq!(&m.mem.as_bytes()[0x9000..0x9200], &expect[..]);
    }

    #[test]
    fn determinism_two_runs_identical() {
        let src = format!(
            "start:  li   t0, {pit:#x}
                     li   t1, 300
                     sw   t1, 4(t0)
                     li   t1, 3
                     sw   t1, 0(t0)
                     csrw status, 1
             spin:   addi s1, s1, 1
                     j    spin
            ",
            pit = map::PIT_BASE
        );
        let run = || {
            let mut m = machine_with(&src);
            // Trap handler not set; deliver interrupts to vector 0 and stop
            // after a fixed number of steps.
            let mut log = Vec::new();
            for _ in 0..5000 {
                let s = m.step();
                if let MachineStep::Interrupt { vector, .. } = s {
                    let t = m.interrupt_trap(vector);
                    m.deliver_trap(t);
                }
                log.push((m.now(), format!("{s:?}")));
            }
            (m.now(), m.cpu.cycles(), log)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unmapped_addresses_fault() {
        let mut m = machine_with("li t0, 0xe0000000\nlw t1, 0(t0)\n");
        m.step();
        m.step();
        match m.step() {
            MachineStep::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::LoadAccessFault);
            }
            other => panic!("{other:?}"),
        }
    }

    /// Steps `n` times delivering traps/interrupts architecturally, logging
    /// each step — tolerant of corrupted programs (fault-injection runs).
    fn run_logged(m: &mut Machine, n: usize) -> Vec<(u64, String)> {
        let mut log = Vec::new();
        for _ in 0..n {
            let s = m.step();
            match s {
                MachineStep::Interrupt { vector, .. } => {
                    let t = m.interrupt_trap(vector);
                    m.deliver_trap(t);
                }
                MachineStep::Trapped { trap, .. } => {
                    m.deliver_trap(trap);
                }
                MachineStep::Stuck => break,
                _ => {}
            }
            log.push((m.now(), format!("{s:?}")));
        }
        log
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = || {
            let mut m = machine_with("spin:  addi s1, s1, 1\n j spin\n");
            m.enable_fault_injection(hx_fault::FaultPlan::new(7).period(2_000));
            let log = run_logged(&mut m, 20_000);
            let stats = *m.fault_stats().unwrap();
            (m.now(), stats, log, m.mem.clone())
        };
        let (now_a, stats_a, log_a, mem_a) = run();
        let (now_b, stats_b, log_b, mem_b) = run();
        assert_eq!(now_a, now_b);
        assert_eq!(stats_a, stats_b);
        assert_eq!(log_a, log_b);
        assert_eq!(mem_a, mem_b);
        assert!(stats_a.total() > 0, "campaign must actually fire");
    }

    #[test]
    fn wild_limit_zero_blocks_everything() {
        let mut m = machine_with("spin:  j spin\n");
        let before = m.mem.clone();
        m.enable_fault_injection(
            hx_fault::FaultPlan::new(3)
                .only(hx_fault::FaultKind::WildWriteApp)
                .period(1_000)
                .wild(1 << 20, 0),
        );
        run_logged(&mut m, 50_000);
        let stats = *m.fault_stats().unwrap();
        assert!(stats.total() > 0);
        assert_eq!(stats.blocked, stats.total(), "limit 0 blocks every attempt");
        assert_eq!(m.mem, before, "blocked attempts must not touch RAM");
        assert_eq!(
            m.obs.exits.get(ExitCause::Protection).count(),
            stats.blocked,
            "each blocked attempt surfaces as one protection exit"
        );
    }

    #[test]
    fn disk_and_nic_error_injection_reach_devices() {
        let mut m = machine_with("spin:  j spin\n");
        m.enable_fault_injection(
            hx_fault::FaultPlan::new(11)
                .only(hx_fault::FaultKind::DiskError)
                .period(1_000),
        );
        run_logged(&mut m, 20_000);
        assert!(m.hdc.stats().errors > 0);
        let mut m = machine_with("spin:  j spin\n");
        m.enable_fault_injection(
            hx_fault::FaultPlan::new(11)
                .only(hx_fault::FaultKind::NicError)
                .period(1_000),
        );
        run_logged(&mut m, 20_000);
        assert!(m.nic.counters().tx_errors > 0);
    }

    #[test]
    fn irq_storm_avoids_uart_line_by_default() {
        let mut m = machine_with("spin:  j spin\n");
        m.enable_fault_injection(
            hx_fault::FaultPlan::new(5)
                .only(hx_fault::FaultKind::IrqStorm)
                .period(1_000),
        );
        run_logged(&mut m, 20_000);
        assert!(m.fault_stats().unwrap().total() > 0);
        let (raised, _) = m.pic.stats();
        assert_eq!(raised[map::irq::UART as usize], 0, "UART spared by default");
        assert!(raised[map::irq::PIT as usize] > 0);
        assert!(raised[map::irq::NIC_RX as usize] > 0);
    }

    /// A 2-core workload: core 0 programs the IPI entry, starts core 1,
    /// then counts in s0; core 1 counts in s1 and mirrors it to RAM.
    fn smp_src() -> String {
        format!(
            "start:  li   t0, {entry:#x}
                     la   t1, side
                     sw   t1, 0(t0)
                     li   t0, {send:#x}
                     li   t1, 1            ; line 0 -> core 1
                     sw   t1, 0(t0)
             main:   addi s0, s0, 1
                     j    main
             side:   addi s1, s1, 1
                     sw   s1, 0x900(zero)
                     j    side
            ",
            entry = map::PIC_BASE + crate::smp::reg::ENTRY,
            send = map::PIC_BASE + crate::smp::reg::SEND,
        )
    }

    fn smp_machine(cores: usize) -> Machine {
        let program = hx_asm::assemble(&smp_src()).expect("smp program assembles");
        let mut m = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            num_cores: cores,
            sched_quantum: 1_000,
            ..MachineConfig::default()
        });
        m.load_program(&program);
        m
    }

    #[test]
    fn startup_ipi_brings_second_core_online() {
        let mut m = smp_machine(2);
        run_until(&mut m, 100_000, |m| {
            m.core(0).reg(hx_cpu::Reg::R18) > 10 && m.core(1).reg(hx_cpu::Reg::R19) > 10
        });
        assert!(m.core_started(1));
        assert!(m.mem.as_bytes()[0x900] > 0, "core 1 stored to RAM");
        assert!(m.total_instret() > m.core(0).instret());
    }

    #[test]
    fn second_core_stays_parked_without_ipi() {
        // Same config but the program never sends the startup IPI.
        let program = hx_asm::assemble("main: addi s0, s0, 1\n j main\n").unwrap();
        let mut m = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            num_cores: 2,
            sched_quantum: 500,
            ..MachineConfig::default()
        });
        m.load_program(&program);
        for _ in 0..5_000 {
            m.step();
        }
        assert!(!m.core_started(1));
        assert_eq!(m.core(1).instret(), 0);
    }

    #[test]
    fn smp_determinism_two_runs_identical() {
        let run = || {
            let mut m = smp_machine(4);
            let log = run_logged(&mut m, 30_000);
            let regs: Vec<Vec<u32>> = (0..4).map(|i| m.core(i).regs().to_vec()).collect();
            (m.now(), regs, log, m.mem.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn smp_run_batch_matches_single_stepping() {
        let mut stepped = smp_machine(2);
        let mut batched = smp_machine(2);

        let target = 300_000;
        while batched.now() < target {
            let batch = batched.run_batch();
            match batch.end {
                Some(MachineStep::Interrupt { vector, .. }) => {
                    let t = batched.interrupt_trap(vector);
                    batched.deliver_trap(t);
                }
                Some(MachineStep::Trapped { trap, .. }) => {
                    batched.deliver_trap(trap);
                }
                Some(MachineStep::Stuck) => panic!("machine stuck"),
                _ => {}
            }
        }
        while stepped.now() < batched.now() {
            match stepped.step() {
                MachineStep::Interrupt { vector, .. } => {
                    let t = stepped.interrupt_trap(vector);
                    stepped.deliver_trap(t);
                }
                MachineStep::Trapped { trap, .. } => {
                    stepped.deliver_trap(trap);
                }
                MachineStep::Stuck => panic!("machine stuck"),
                _ => {}
            }
        }
        assert_eq!(stepped.now(), batched.now(), "same instruction boundary");
        assert_eq!(stepped.active_core(), batched.active_core());
        for c in 0..2 {
            assert_eq!(stepped.core(c).pc(), batched.core(c).pc(), "core {c} pc");
            assert_eq!(stepped.core(c).instret(), batched.core(c).instret());
            for i in 0..32 {
                let r = hx_cpu::Reg::new(i).unwrap();
                assert_eq!(stepped.core(c).reg(r), batched.core(c).reg(r));
            }
        }
        assert_eq!(stepped.mem, batched.mem);
        assert!(
            stepped.core(1).instret() > 0,
            "core 1 actually ran in the comparison window"
        );
    }

    #[test]
    fn non_startup_ipi_interrupts_target_core() {
        // Core 0 starts core 1 at `side`, which enables interrupts with a
        // handler that bumps s2, then spins; core 0 fires IPI line 2 at it.
        let src = format!(
            "        .org 0x100
             handler:
                     addi s2, s2, 1
                     tret
             start:  li   t0, {entry:#x}
                     la   t1, side
                     sw   t1, 0(t0)
                     li   t0, {send:#x}
                     li   t1, 1            ; startup -> core 1
                     sw   t1, 0(t0)
                     li   t2, 2000
             delay:  addi t2, t2, -1
                     bnez t2, delay
                     li   t1, 0x201        ; line 2 -> core 1
                     sw   t1, 0(t0)
             main:   j    main
             side:   la   t0, handler
                     csrw tvec, t0
                     csrw status, 1        ; IE
             spin:   addi s1, s1, 1
                     j    spin
            ",
            entry = map::PIC_BASE + crate::smp::reg::ENTRY,
            send = map::PIC_BASE + crate::smp::reg::SEND,
        );
        let program = hx_asm::assemble(&src).unwrap();
        let mut m = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            num_cores: 2,
            sched_quantum: 500,
            ..MachineConfig::default()
        });
        program.load_into(m.mem.as_bytes_mut());
        m.cpu.set_pc(program.symbols.get("start").unwrap());
        run_until(&mut m, 200_000, |m| m.core(1).reg(hx_cpu::Reg::R20) >= 1);
        assert_eq!(m.ipi().delivered, 1, "one non-startup IPI was delivered");
        assert_eq!(m.core(0).reg(hx_cpu::Reg::R20), 0, "core 0 untouched");
    }

    #[test]
    fn ipi_registers_validate_and_read_back() {
        let mut m = smp_machine(2);
        let send = map::PIC_BASE + crate::smp::reg::SEND;
        // Invalid target / line are denied.
        assert_eq!(
            m.bus_write(send, 7, MemSize::Word),
            Err(BusFault::Denied),
            "target beyond num_cores"
        );
        assert_eq!(
            m.bus_write(send, (9 << 8) | 1, MemSize::Word),
            Err(BusFault::Denied),
            "line beyond 7"
        );
        assert_eq!(
            m.bus_write(send, 1, MemSize::Byte),
            Err(BusFault::Denied),
            "sub-word access"
        );
        // CORE_ID / NUM_CORES / ENTRY read back.
        m.bus_write(
            map::PIC_BASE + crate::smp::reg::ENTRY,
            0x1234,
            MemSize::Word,
        )
        .unwrap();
        assert_eq!(
            m.bus_read(map::PIC_BASE + crate::smp::reg::ENTRY, MemSize::Word)
                .unwrap(),
            0x1234
        );
        assert_eq!(
            m.bus_read(map::PIC_BASE + crate::smp::reg::CORE_ID, MemSize::Word)
                .unwrap(),
            0
        );
        assert_eq!(
            m.bus_read(map::PIC_BASE + crate::smp::reg::NUM_CORES, MemSize::Word)
                .unwrap(),
            2
        );
    }

    #[test]
    fn single_core_config_ignores_smp_fields() {
        // A 1-core machine built with an SMP-era config behaves exactly like
        // the classic one: the scheduler never rotates.
        let src = format!(
            "start:  li   t0, {pit:#x}
                     li   t1, 300
                     sw   t1, 4(t0)
                     li   t1, 3
                     sw   t1, 0(t0)
                     csrw status, 1
             spin:   addi s1, s1, 1
                     j    spin
            ",
            pit = map::PIT_BASE
        );
        let run = |quantum| {
            let program = hx_asm::assemble(&src).unwrap();
            let mut m = Machine::new(MachineConfig {
                ram_size: 1 << 20,
                num_cores: 1,
                sched_quantum: quantum,
                ..MachineConfig::default()
            });
            m.load_program(&program);
            let log = run_logged(&mut m, 5_000);
            (m.now(), m.cpu.regs().to_vec(), log)
        };
        assert_eq!(run(64), run(1_000_000), "quantum is inert on one core");
    }

    #[test]
    fn bus_read_write_helpers() {
        let mut m = machine_with("nop\n");
        m.bus_write(map::PIC_BASE + crate::pic::reg::IMR, 0x55, MemSize::Word)
            .unwrap();
        assert_eq!(
            m.bus_read(map::PIC_BASE + crate::pic::reg::IMR, MemSize::Word)
                .unwrap(),
            0x55
        );
        assert_eq!(
            m.bus_read(0xe000_0000, MemSize::Word),
            Err(BusFault::Unmapped)
        );
    }
}
