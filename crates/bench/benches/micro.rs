//! Microbenchmarks of the substrate: interpreter throughput, assembler
//! speed, monitor exit round-trips and stub command latency (host-side
//! cost; the *simulated* latencies are printed by `debug_latency`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hitactix::Workload;
use hx_machine::{Machine, MachineConfig, Platform, RawPlatform};
use lvmm::LvmmPlatform;

/// Instructions the tight-loop program retires per bench iteration.
const LOOP_INSTRS: u64 = 100_000;

fn bench_interpreter(c: &mut Criterion) {
    let program = hx_asm::assemble(&format!(
        "start:  li   t0, {n}
         loop:   addi t0, t0, -1
                 bnez t0, loop
         halt:   wfi
                 j halt
        ",
        n = LOOP_INSTRS / 2
    ))
    .unwrap();
    let mut group = c.benchmark_group("interpreter");
    group.throughput(Throughput::Elements(LOOP_INSTRS));
    group.bench_function("tight_loop_instrs", |b| {
        b.iter(|| {
            let mut machine =
                Machine::new(MachineConfig { ram_size: 1 << 20, ..MachineConfig::default() });
            machine.load_program(&program);
            let mut hw = RawPlatform::new(machine);
            hw.run_for(LOOP_INSTRS * 3);
            assert!(hw.machine().cpu.instret() >= LOOP_INSTRS);
            hw.machine().cpu.instret()
        })
    });
    group.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let machine = Machine::new(MachineConfig::default());
    let workload = Workload::new(100);
    c.bench_function("assemble_streaming_kernel", |b| {
        b.iter(|| workload.build(&machine).unwrap())
    });
}

fn bench_monitor_exit(c: &mut Criterion) {
    // A guest that does nothing but privileged CSR reads: every iteration
    // is one full exit/emulate/resume round-trip.
    let program = hx_asm::assemble(
        "        .org 0x1000
         start:  csrr t0, scratch
                 j start
        ",
    )
    .unwrap();
    c.bench_function("lvmm_exit_roundtrip", |b| {
        b.iter(|| {
            let mut machine =
                Machine::new(MachineConfig { ram_size: 8 << 20, ..MachineConfig::default() });
            machine.load_program(&program);
            let mut vmm = LvmmPlatform::new(machine, 0x1000);
            vmm.run_for(200_000);
            let exits = vmm.monitor_stats().exits_privileged;
            assert!(exits > 50);
            exits
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_interpreter, bench_assembler, bench_monitor_exit
}
criterion_main!(benches);
