//! Criterion wrapper around the Fig. 3.1 measurement points.
//!
//! `cargo bench -p lwvmm-bench --bench fig3_1_points` measures the *host*
//! cost of simulating one steady-state point per platform (the simulated
//! results themselves are printed by the `fig3_1` binary; this bench keeps
//! the harness honest about its own speed and pins the measured CPU loads
//! as assertions).

use criterion::{criterion_group, criterion_main, Criterion};
use lwvmm_bench::{measure_point, PlatformKind};

fn bench_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_1_point");
    group.sample_size(10);
    for kind in PlatformKind::ALL {
        // The hosted monitor saturates near 27 Mbit/s; the other two
        // deliver the requested 100.
        let floor = if kind == PlatformKind::Hosted { 20.0 } else { 50.0 };
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let m = measure_point(kind, 100, 10, 40);
                assert!(m.achieved_mbps > floor, "{}: {m:?}", kind.label());
                m
            })
        });
    }
    group.finish();
}

fn bench_ordering_invariant(c: &mut Criterion) {
    // One cheap end-to-end check per bench run: the paper's ordering holds.
    c.bench_function("fig3_1_ordering", |b| {
        b.iter(|| {
            let raw = measure_point(PlatformKind::RawHw, 300, 10, 40);
            let lv = measure_point(PlatformKind::Lvmm, 300, 10, 40);
            let ho = measure_point(PlatformKind::Hosted, 300, 10, 40);
            assert!(raw.achieved_mbps >= lv.achieved_mbps);
            assert!(lv.achieved_mbps >= ho.achieved_mbps);
            (raw.achieved_mbps, lv.achieved_mbps, ho.achieved_mbps)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_points, bench_ordering_invariant
}
criterion_main!(benches);
