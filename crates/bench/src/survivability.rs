//! The survivability campaign: does the debug stub stay usable while the
//! guest is being actively wrecked?
//!
//! This is the paper's core debugging claim turned into a benchmark. For
//! every `(platform, fault class)` pair we boot the streaming guest, arm the
//! deterministic fault injector (`hx-fault` via the machine's event queue),
//! let the campaign run, and then ask two questions:
//!
//! 1. **Is the guest still alive?** (Did it keep making progress through the
//!    probe window without taking an unrecovered fault?) On real hardware a
//!    wild kernel write usually kills it — that is the point.
//! 2. **Is the stub still alive?** (LVMM only.) We attach the host debugger
//!    over the simulated UART and require well-formed answers to `?`
//!    (query stop), `g` (read registers) and `m` (read memory). A *target
//!    error* reply still counts as alive — a guest with shredded page tables
//!    may legitimately refuse a virtual-address read — but a timeout or
//!    protocol violation means the stub is gone.
//!
//! A separate pass records one all-classes campaign per platform through the
//! flight recorder and replays it on a fresh boot, asserting the faulty run
//! is byte-identical — fault injection rides the simulation clock, so it
//! must be.

use crate::{build_platform, PlatformKind};
use hitactix::{kernel::layout, GuestStats, Workload};
use hosted_vmm::HostedConfig;
use hx_fault::{FaultKind, FaultPlan};
use hx_machine::{Machine, MachineConfig, Platform};
use hx_obs::{Align, ExitCause, Report};
use lvmm::{LvmmConfig, LvmmPlatform, ReplayDriver, UartLink};
use rdbg::{DbgError, Debugger};

/// Campaign shape: how long to run, how often to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurvivalConfig {
    /// PRNG seed; each `(platform, fault)` cell derives its own stream.
    pub seed: u64,
    /// Streaming workload rate (Mbit/s).
    pub rate_mbps: u64,
    /// Simulated ms before the first fault (guest boots and reaches steady
    /// state).
    pub warmup_ms: u64,
    /// Simulated ms of active fault injection.
    pub campaign_ms: u64,
    /// Simulated ms after the campaign used to measure guest progress.
    pub probe_ms: u64,
    /// Mean cycles between injections.
    pub period: u64,
}

impl SurvivalConfig {
    /// The full matrix shape used for `BENCH_fig3_1.json`.
    pub fn new(seed: u64) -> SurvivalConfig {
        SurvivalConfig {
            seed,
            rate_mbps: 100,
            warmup_ms: 20,
            campaign_ms: 60,
            probe_ms: 20,
            period: 100_000,
        }
    }

    /// A CI-sized campaign (`--fast`): same matrix, shorter windows.
    pub fn fast(seed: u64) -> SurvivalConfig {
        SurvivalConfig {
            seed,
            rate_mbps: 100,
            warmup_ms: 5,
            campaign_ms: 15,
            probe_ms: 5,
            period: 50_000,
        }
    }
}

/// One `(platform, fault class)` campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalCell {
    /// Which platform ran the campaign.
    pub platform: PlatformKind,
    /// Which fault class was injected.
    pub fault: FaultKind,
    /// Faults applied.
    pub injected: u64,
    /// Wild attempts blocked by the protection model.
    pub blocked: u64,
    /// Protection exits the monitor recorded (0 on raw hardware).
    pub protection_exits: u64,
    /// Guest kept making progress through the probe window with no
    /// unrecovered fault.
    pub guest_alive: bool,
    /// Guest-reported fault cause (0 = none; `u32::MAX` = stats block
    /// unreadable, i.e. the guest corrupted itself beyond recognition).
    pub guest_fault_cause: u32,
    /// Stub answered `?`/`g`/`m` after the campaign (`None` off-LVMM: the
    /// raw and hosted platforms carry no stub — nothing to probe).
    pub stub_alive: Option<bool>,
    /// Fraction of total cycles spent outside the guest (monitor plus
    /// host-OS model) — the hosted platform's emulation-overhead contrast.
    pub overhead_frac: f64,
}

/// One record/replay identity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayCheck {
    /// Which platform was recorded and replayed.
    pub platform: PlatformKind,
    /// Final cycle of the recorded run.
    pub end_cycle: u64,
    /// Total faults the recorded campaign applied.
    pub injected: u64,
    /// Replay reached the same cycle with identical RAM, instret and fault
    /// counters.
    pub identical: bool,
}

/// The whole campaign: 3 platforms × 6 fault classes, plus one replay
/// identity check per platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalMatrix {
    /// Base seed the cells derive from.
    pub seed: u64,
    /// Row-major cells (platform outer, fault class inner).
    pub cells: Vec<SurvivalCell>,
    /// Per-platform replay identity checks.
    pub replays: Vec<ReplayCheck>,
}

impl SurvivalMatrix {
    /// The cell for a `(platform, fault)` pair.
    pub fn cell(&self, platform: PlatformKind, fault: FaultKind) -> Option<&SurvivalCell> {
        self.cells
            .iter()
            .find(|c| c.platform == platform && c.fault == fault)
    }

    /// The headline claim: the LVMM stub answered after every fault class.
    pub fn lvmm_stub_all_alive(&self) -> bool {
        let lvmm: Vec<_> = self
            .cells
            .iter()
            .filter(|c| c.platform == PlatformKind::Lvmm)
            .collect();
        !lvmm.is_empty() && lvmm.iter().all(|c| c.stub_alive == Some(true))
    }

    /// All replay checks came back byte-identical.
    pub fn replays_identical(&self) -> bool {
        !self.replays.is_empty() && self.replays.iter().all(|r| r.identical)
    }
}

/// Highest guest physical address wild writes / DMA misdirects can *reach*
/// on this platform: the monitor base under the monitors (guest-context
/// stores architecturally cannot touch monitor memory), all of RAM on raw
/// hardware.
pub fn wild_limit_for(kind: PlatformKind, ram_size: u32) -> u32 {
    match kind {
        PlatformKind::RawHw => ram_size,
        PlatformKind::Lvmm => ram_size - LvmmConfig::default().monitor_mem,
        PlatformKind::Hosted => ram_size - HostedConfig::default().host_mem,
    }
}

/// The fault plan for one campaign cell. Each `(platform, fault)` pair gets
/// its own seed stream so cells are independent experiments; attempts span
/// all of RAM so the monitors have something to block.
pub fn cell_plan(
    kind: PlatformKind,
    fault: FaultKind,
    cfg: &SurvivalConfig,
    ram_size: u32,
    warmup_cycles: u64,
) -> FaultPlan {
    let salt = (kind.label().len() as u64) << 32 | (fault.code() as u64 + 1);
    FaultPlan::new(cfg.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .only(fault)
        .period(cfg.period)
        .initial_delay(warmup_cycles)
        .wild(ram_size, wild_limit_for(kind, ram_size))
}

fn progress(machine: &Machine) -> Option<(u32, u32)> {
    GuestStats::read(machine).ok().map(|s| (s.ticks, s.frames))
}

/// Runs the campaign window on an already-armed platform and reads the cell
/// back (stub probe excluded; the caller owns that).
fn run_campaign(
    platform: &mut dyn Platform,
    kind: PlatformKind,
    fault: FaultKind,
    cfg: &SurvivalConfig,
) -> SurvivalCell {
    let per_ms = platform.machine().config().clock_hz / 1_000;
    platform.run_for((cfg.warmup_ms + cfg.campaign_ms) * per_ms);
    let before = progress(platform.machine());
    platform.run_for(cfg.probe_ms * per_ms);
    let after = progress(platform.machine());

    let stats = platform
        .machine()
        .fault_stats()
        .copied()
        .unwrap_or_default();
    let guest_fault_cause =
        GuestStats::read(platform.machine()).map_or(u32::MAX, |s| s.fault_cause);
    let moved = match (before, after) {
        (Some((t0, f0)), Some((t1, f1))) => t1 > t0 || f1 > f0,
        _ => false,
    };
    let t = platform.time_stats();
    SurvivalCell {
        platform: kind,
        fault,
        injected: stats.total(),
        blocked: stats.blocked,
        protection_exits: platform
            .machine()
            .obs
            .exits
            .get(ExitCause::Protection)
            .count(),
        guest_alive: moved && guest_fault_cause == 0,
        guest_fault_cause,
        stub_alive: None,
        overhead_frac: (t.monitor + t.host_model) as f64 / t.total().max(1) as f64,
    }
}

/// `true` when the stub produced a well-formed reply: `Ok` or a target
/// error code. Timeouts and protocol violations mean the stub (or the
/// monitor under it) is dead.
fn answered<T>(r: &Result<T, DbgError>) -> bool {
    !matches!(r, Err(DbgError::Timeout) | Err(DbgError::Protocol(_)))
}

/// Attaches the host debugger to a post-campaign LVMM platform and probes
/// `?`/`g`/`m`. Consumes the platform (the UART link owns it).
pub fn probe_stub(platform: LvmmPlatform) -> bool {
    let mut dbg = Debugger::new(UartLink {
        platform,
        slice: 2_000,
    });
    // Bounded: 4 attempts × ~2k pumps × 2k cycles each is still only a few
    // simulated ms if the stub really is dead.
    dbg.set_pump_budget(2_000);
    let halted = dbg.halt();
    let q = dbg.query_stop();
    let g = dbg.read_registers();
    let m = dbg.read_memory(0, 16);
    answered(&halted) && answered(&q) && answered(&g) && answered(&m)
}

/// Runs one `(platform, fault)` campaign cell.
pub fn run_cell(kind: PlatformKind, fault: FaultKind, cfg: &SurvivalConfig) -> SurvivalCell {
    let workload = Workload::new(cfg.rate_mbps);
    if kind == PlatformKind::Lvmm {
        // Concrete platform so the stub probe can wrap it in a UART link.
        let mut machine = Machine::new(MachineConfig::default());
        let program = workload.build(&machine).expect("kernel assembles");
        machine.load_program(&program);
        let ram_size = machine.config().ram_size as u32;
        let warmup = cfg.warmup_ms * machine.config().clock_hz / 1_000;
        machine.enable_fault_injection(cell_plan(kind, fault, cfg, ram_size, warmup));
        let mut platform = LvmmPlatform::new(machine, layout::ENTRY);
        let mut cell = run_campaign(&mut platform, kind, fault, cfg);
        cell.stub_alive = Some(probe_stub(platform));
        cell
    } else {
        let mut platform = build_platform(kind, &workload);
        let ram_size = platform.machine().config().ram_size as u32;
        let warmup = cfg.warmup_ms * platform.machine().config().clock_hz / 1_000;
        platform
            .machine_mut()
            .enable_fault_injection(cell_plan(kind, fault, cfg, ram_size, warmup));
        run_campaign(platform.as_mut(), kind, fault, cfg)
    }
}

/// Records one all-classes campaign through the flight recorder and replays
/// it on a fresh boot with the same plan; the two runs must agree on end
/// cycle, instret, RAM image and fault counters.
pub fn replay_check(kind: PlatformKind, cfg: &SurvivalConfig) -> ReplayCheck {
    let workload = Workload::new(cfg.rate_mbps);
    let plan = |ram_size: u32, warmup: u64| {
        FaultPlan::new(cfg.seed)
            .period(cfg.period)
            .initial_delay(warmup)
            .wild(ram_size, wild_limit_for(kind, ram_size))
    };

    let mut rec = build_platform(kind, &workload);
    let per_ms = rec.machine().config().clock_hz / 1_000;
    let ram_size = rec.machine().config().ram_size as u32;
    rec.machine_mut().obs.enable_journal(kind.label());
    rec.machine_mut()
        .enable_fault_injection(plan(ram_size, cfg.warmup_ms * per_ms));
    rec.run_for((cfg.warmup_ms + cfg.campaign_ms) * per_ms);
    let end = rec.machine().now();
    let mut journal = rec
        .machine()
        .obs
        .journal()
        .cloned()
        .expect("journal enabled");
    journal.seal(end);
    let digest = hx_obs::digest(rec.machine().mem.as_bytes());
    let instret = rec.machine().cpu.instret();
    let fstats = rec.machine().fault_stats().copied();

    let mut rep = build_platform(kind, &workload);
    rep.machine_mut()
        .enable_fault_injection(plan(ram_size, cfg.warmup_ms * per_ms));
    let reached = ReplayDriver::new(&journal).run(rep.as_mut());
    let identical = reached == end
        && hx_obs::digest(rep.machine().mem.as_bytes()) == digest
        && rep.machine().cpu.instret() == instret
        && rep.machine().fault_stats().copied() == fstats;
    ReplayCheck {
        platform: kind,
        end_cycle: end,
        injected: fstats.map_or(0, |s| s.total()),
        identical,
    }
}

/// Runs the full matrix: every fault class on every platform, then one
/// replay identity check per platform.
pub fn run_matrix(cfg: &SurvivalConfig) -> SurvivalMatrix {
    let mut cells = Vec::with_capacity(PlatformKind::ALL.len() * FaultKind::COUNT);
    for kind in PlatformKind::ALL {
        for fault in FaultKind::ALL {
            cells.push(run_cell(kind, fault, cfg));
        }
    }
    let replays = PlatformKind::ALL
        .iter()
        .map(|&k| replay_check(k, cfg))
        .collect();
    SurvivalMatrix {
        seed: cfg.seed,
        cells,
        replays,
    }
}

/// Renders the matrix as a terminal table.
pub fn survival_report(matrix: &SurvivalMatrix) -> Report {
    let mut r = Report::new(format!(
        "Survivability matrix — seed {} (stub column: did `?`/`g`/`m` answer?)",
        matrix.seed
    ))
    .column("platform", Align::Left)
    .column("fault", Align::Left)
    .column("injected", Align::Right)
    .column("blocked", Align::Right)
    .column("prot exits", Align::Right)
    .column("guest", Align::Left)
    .column("stub", Align::Left)
    .column("ovh%", Align::Right);
    let mut last = None;
    for c in &matrix.cells {
        if last.is_some() && last != Some(c.platform) {
            r.gap();
        }
        last = Some(c.platform);
        r.row([
            c.platform.label().to_string(),
            c.fault.label().to_string(),
            c.injected.to_string(),
            c.blocked.to_string(),
            c.protection_exits.to_string(),
            if c.guest_alive { "alive" } else { "dead" }.to_string(),
            match c.stub_alive {
                Some(true) => "alive",
                Some(false) => "DEAD",
                None => "-",
            }
            .to_string(),
            format!("{:.1}", c.overhead_frac * 100.0),
        ]);
    }
    for rep in &matrix.replays {
        r.note(format!(
            "replay {}: {} faults over {} cycles — {}",
            rep.platform.label(),
            rep.injected,
            rep.end_cycle,
            if rep.identical {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        ));
    }
    r
}

/// The `"survivability"` JSON object (no surrounding document).
pub fn survivability_section(cfg: &SurvivalConfig, matrix: &SurvivalMatrix) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "    \"seed\": {}, \"warmup_ms\": {}, \"campaign_ms\": {}, \"probe_ms\": {}, \
         \"period_cycles\": {},\n",
        cfg.seed, cfg.warmup_ms, cfg.campaign_ms, cfg.probe_ms, cfg.period
    ));
    out.push_str("    \"matrix\": [\n");
    for (pi, kind) in PlatformKind::ALL.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"platform\": \"{}\", \"cells\": [\n",
            kind.label()
        ));
        let cells: Vec<_> = matrix
            .cells
            .iter()
            .filter(|c| c.platform == *kind)
            .collect();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"fault\": \"{}\", \"injected\": {}, \"blocked\": {}, \
                 \"protection_exits\": {}, \"guest_alive\": {}, \"guest_fault_cause\": {}, \
                 \"stub_alive\": {}, \"overhead_frac\": {:.4}}}{}\n",
                c.fault.label(),
                c.injected,
                c.blocked,
                c.protection_exits,
                c.guest_alive,
                c.guest_fault_cause,
                match c.stub_alive {
                    Some(b) => b.to_string(),
                    None => "null".to_string(),
                },
                c.overhead_frac,
                if i + 1 < cells.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]}");
        out.push_str(if pi + 1 < PlatformKind::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("    ],\n");
    out.push_str("    \"replay\": [\n");
    for (i, rep) in matrix.replays.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"platform\": \"{}\", \"end_cycle\": {}, \"injected\": {}, \
             \"identical\": {}}}{}\n",
            rep.platform.label(),
            rep.end_cycle,
            rep.injected,
            rep.identical,
            if i + 1 < matrix.replays.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"lvmm_stub_all_alive\": {},\n    \"replays_identical\": {}\n  }}",
        matrix.lvmm_stub_all_alive(),
        matrix.replays_identical()
    ));
    out
}

/// A standalone survivability document (used when there is no
/// `BENCH_fig3_1.json` to merge into).
pub fn survivability_json(cfg: &SurvivalConfig, matrix: &SurvivalMatrix) -> String {
    format!(
        "{{\n  \"bench\": \"survivability\",\n  \"survivability\": {}\n}}\n",
        survivability_section(cfg, matrix)
    )
}

/// Splices a `"survivability"` section into an existing `BENCH_fig3_1.json`
/// document (before its final `}`), replacing any previous section. Returns
/// a standalone document when `fig3_1` isn't a JSON object.
pub fn merge_survivability(fig3_1: &str, cfg: &SurvivalConfig, matrix: &SurvivalMatrix) -> String {
    let section = survivability_section(cfg, matrix);
    let trimmed = fig3_1.trim_end();
    // Drop a previous survivability section so re-running the bench
    // replaces rather than duplicates.
    let body = match trimmed.find(",\n  \"survivability\":") {
        Some(at) => &trimmed[..at],
        None => match trimmed.strip_suffix('}') {
            Some(b) => b.trim_end().trim_end_matches(','),
            None => return survivability_json(cfg, matrix),
        },
    };
    format!("{body},\n  \"survivability\": {section}\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SurvivalConfig {
        SurvivalConfig {
            seed: 7,
            rate_mbps: 100,
            warmup_ms: 2,
            campaign_ms: 5,
            probe_ms: 2,
            period: 30_000,
        }
    }

    fn fake_matrix() -> (SurvivalConfig, SurvivalMatrix) {
        let cfg = tiny();
        let cells = PlatformKind::ALL
            .iter()
            .flat_map(|&p| {
                FaultKind::ALL.map(|f| SurvivalCell {
                    platform: p,
                    fault: f,
                    injected: 3,
                    blocked: 1,
                    protection_exits: 1,
                    guest_alive: p != PlatformKind::RawHw,
                    guest_fault_cause: 0,
                    stub_alive: (p == PlatformKind::Lvmm).then_some(true),
                    overhead_frac: 0.25,
                })
            })
            .collect();
        let replays = PlatformKind::ALL
            .iter()
            .map(|&p| ReplayCheck {
                platform: p,
                end_cycle: 1_000_000,
                injected: 40,
                identical: true,
            })
            .collect();
        let matrix = SurvivalMatrix {
            seed: cfg.seed,
            cells,
            replays,
        };
        (cfg, matrix)
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let (cfg, matrix) = fake_matrix();
        assert!(matrix.lvmm_stub_all_alive());
        assert!(matrix.replays_identical());
        let json = survivability_json(&cfg, &matrix);
        for key in [
            "\"survivability\"",
            "\"matrix\"",
            "\"wild-write-kernel\"",
            "\"stub_alive\": null",
            "\"stub_alive\": true",
            "\"replay\"",
            "\"lvmm_stub_all_alive\": true",
            "\"replays_identical\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON: {json}");
    }

    #[test]
    fn merge_inserts_and_replaces_section() {
        let (cfg, matrix) = fake_matrix();
        let fig = "{\n  \"bench\": \"fig3_1\",\n  \"headlines\": {\"x\": 1.0}\n}\n";
        let merged = merge_survivability(fig, &cfg, &matrix);
        assert!(merged.contains("\"headlines\""));
        assert!(merged.contains("\"survivability\""));
        let opens = merged.matches(['{', '[']).count();
        let closes = merged.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON: {merged}");
        // Merging again replaces, not duplicates.
        let again = merge_survivability(&merged, &cfg, &matrix);
        assert_eq!(again.matches("\"survivability\"").count(), 1);
        assert_eq!(again, merged);
        // Non-object input falls back to a standalone document.
        let standalone = merge_survivability("not json", &cfg, &matrix);
        assert!(standalone.starts_with("{\n  \"bench\": \"survivability\""));
    }

    #[test]
    fn report_renders_matrix() {
        let (_, matrix) = fake_matrix();
        let text = survival_report(&matrix).to_text();
        assert!(text.contains("irq-storm"));
        assert!(text.contains("byte-identical"));
    }

    #[test]
    fn lvmm_disk_error_cell_keeps_stub_and_guest_alive() {
        // Cheapest end-to-end cell: spurious disk error completions do not
        // corrupt memory, so both the guest and the stub must survive.
        let cell = run_cell(PlatformKind::Lvmm, FaultKind::DiskError, &tiny());
        assert!(cell.injected > 0, "campaign must inject: {cell:?}");
        assert_eq!(cell.stub_alive, Some(true), "stub died: {cell:?}");
        assert!(cell.guest_alive, "guest died: {cell:?}");
    }
}
