//! Measurement harness shared by the benchmark binaries.
//!
//! This is the code that regenerates the paper's evaluation: it boots the
//! HiTactix-like streaming guest on each of the three platforms, sweeps the
//! requested transfer rate, and measures achieved rate and CPU load over a
//! steady-state window — exactly the procedure behind Fig. 3.1.

use hitactix::{GuestStats, Workload};
use hosted_vmm::HostedPlatform;
use hx_machine::{Machine, MachineConfig, Platform, RawPlatform, TimeStats};
use hx_obs::{
    report, Align, ChromeTrace, ExitCause, ExitHists, HostPhase, Profiler, Report, SymbolMap,
};
use lvmm::LvmmPlatform;

pub mod farm;
pub mod survivability;

pub use farm::{farm_json, farm_report, merge_farm, run_farm_bench, FarmBenchConfig, FleetPoint};
pub use survivability::{
    merge_survivability, run_matrix, survivability_json, survival_report, SurvivalConfig,
    SurvivalMatrix,
};

/// The three systems of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// Guest owns the hardware (paper: "Real hardware").
    RawHw,
    /// The lightweight monitor (paper: "LW virtual machine monitor").
    Lvmm,
    /// The hosted full monitor (paper: "VMware Workstation 4").
    Hosted,
}

impl PlatformKind {
    /// All three, in the paper's legend order.
    pub const ALL: [PlatformKind; 3] = [
        PlatformKind::RawHw,
        PlatformKind::Lvmm,
        PlatformKind::Hosted,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PlatformKind::RawHw => "real-hw",
            PlatformKind::Lvmm => "lvmm",
            PlatformKind::Hosted => "hosted",
        }
    }
}

/// Boots the streaming workload on the requested platform.
///
/// # Panics
///
/// Panics if the kernel fails to assemble (a bug, covered by tests).
pub fn build_platform(kind: PlatformKind, workload: &Workload) -> Box<dyn Platform> {
    build_platform_with(kind, workload, MachineConfig::default())
}

/// [`build_platform`] with an explicit machine configuration (ablations).
///
/// # Panics
///
/// Panics if the kernel fails to assemble.
pub fn build_platform_with(
    kind: PlatformKind,
    workload: &Workload,
    cfg: MachineConfig,
) -> Box<dyn Platform> {
    let mut machine = Machine::new(cfg);
    let program = workload.build(&machine).expect("kernel assembles");
    machine.load_program(&program);
    let entry = hitactix::kernel::layout::ENTRY;
    match kind {
        PlatformKind::RawHw => Box::new(RawPlatform::new(machine)),
        PlatformKind::Lvmm => Box::new(LvmmPlatform::new(machine, entry)),
        PlatformKind::Hosted => Box::new(HostedPlatform::new(machine, entry)),
    }
}

/// [`build_platform_with`] plus a guest profiler: the machine gets a
/// [`Profiler`] over the streaming kernel's curated function symbols before
/// the platform wraps it, so every guest cycle of the run is attributed.
///
/// # Panics
///
/// Panics if the kernel fails to assemble.
pub fn build_profiled_platform(kind: PlatformKind, workload: &Workload) -> Box<dyn Platform> {
    let mut machine = Machine::new(MachineConfig::default());
    let program = workload.build(&machine).expect("kernel assembles");
    machine.load_program(&program);
    machine.obs.enable_profiler(Profiler::new(
        SymbolMap::from_ranges(hitactix::kernel::profile_symbols(&program)),
        Profiler::DEFAULT_INTERVAL,
    ));
    let entry = hitactix::kernel::layout::ENTRY;
    match kind {
        PlatformKind::RawHw => Box::new(RawPlatform::new(machine)),
        PlatformKind::Lvmm => Box::new(LvmmPlatform::new(machine, entry)),
        PlatformKind::Hosted => Box::new(HostedPlatform::new(machine, entry)),
    }
}

/// One measured point of the rate sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Requested payload rate (Mbit/s).
    pub requested_mbps: f64,
    /// Achieved payload rate at the NIC (Mbit/s) over the window.
    pub achieved_mbps: f64,
    /// CPU load in `[0, 1]` over the window.
    pub cpu_load: f64,
    /// Cycle-attribution deltas over the window.
    pub window: TimeStats,
    /// Guest statistics at the end of the run.
    pub guest: GuestStats,
    /// Wire frames over the window.
    pub frames: u64,
    /// Per-cause exit histograms, cumulative over the whole run.
    pub exits: ExitHists,
}

/// Runs the platform for `warmup_ms` of simulated time, then measures a
/// `window_ms` steady-state window.
///
/// # Panics
///
/// Panics if the guest never boots, its stats block is unreadable, or it
/// faults during the run (integrity violation).
pub fn measure(platform: &mut dyn Platform, warmup_ms: u64, window_ms: u64) -> Measurement {
    let clock = platform.machine().config().clock_hz;
    let per_ms = clock / 1_000;
    platform.run_for(warmup_ms * per_ms);

    let t0 = platform.machine().now();
    let stats0 = *platform.time_stats();
    let bytes0 = platform.machine().nic.counters().tx_bytes;
    let frames0 = platform.machine().nic.counters().tx_frames;

    platform.run_for(window_ms * per_ms);

    let elapsed = platform.machine().now() - t0;
    let window = platform.time_stats().since(&stats0);
    let bytes = platform.machine().nic.counters().tx_bytes - bytes0;
    let frames = platform.machine().nic.counters().tx_frames - frames0;
    let guest = GuestStats::read(platform.machine())
        .unwrap_or_else(|e| panic!("guest stats on {}: {e}", platform.name()));
    assert_eq!(
        guest.fault_cause,
        0,
        "guest took an unexpected fault at {:#x} on {}",
        guest.fault_pc,
        platform.name()
    );

    let seconds = elapsed as f64 / clock as f64;
    Measurement {
        requested_mbps: 0.0, // caller fills in
        achieved_mbps: bytes as f64 * 8.0 / 1e6 / seconds,
        cpu_load: window.cpu_load(),
        window,
        guest,
        frames,
        exits: platform.machine().obs.exits.clone(),
    }
}

/// Convenience: build, warm up and measure one `(platform, rate)` point.
pub fn measure_point(
    kind: PlatformKind,
    rate_mbps: u64,
    warmup_ms: u64,
    window_ms: u64,
) -> Measurement {
    let workload = Workload::new(rate_mbps);
    let mut platform = build_platform(kind, &workload);
    let mut m = measure(platform.as_mut(), warmup_ms, window_ms);
    m.requested_mbps = rate_mbps as f64;
    m
}

/// Finds the saturation (maximum achieved) rate for a platform by asking
/// for far more than it can deliver.
pub fn saturation_mbps(kind: PlatformKind, warmup_ms: u64, window_ms: u64) -> f64 {
    measure_point(kind, 950, warmup_ms, window_ms).achieved_mbps
}

/// Host-side simulation speed: how fast the *simulator* runs on the host,
/// as guest instructions retired per host wall-clock second. This is the
/// engine's own performance figure (batching + predecoded-instruction
/// cache); unlike everything else in this crate it reads the host clock,
/// so it is NOT deterministic and must never feed a determinism gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSpeed {
    /// Guest instructions retired during the timed run.
    pub instructions: u64,
    /// Host wall-clock seconds the run took.
    pub host_seconds: f64,
    /// Instructions per host second (`instructions / host_seconds`).
    pub instr_per_host_sec: f64,
}

/// Times `ms` simulated milliseconds of the streaming workload at
/// `rate_mbps` on a fresh platform under the host wall clock.
pub fn measure_sim_speed(kind: PlatformKind, rate_mbps: u64, ms: u64) -> SimSpeed {
    measure_host_attribution(kind, rate_mbps, ms, false).speed
}

/// Like [`measure_sim_speed`] but with event tracing *and* causal-flow
/// tracking enabled — the overhead side of the tracing-off regression
/// gate (`sim_speed_causal` vs `sim_speed` in `BENCH_fig3_1.json`). The
/// simulated run is bit-identical either way; only the host-side cost of
/// recording flows differs.
pub fn measure_causal_sim_speed(kind: PlatformKind, rate_mbps: u64, ms: u64) -> SimSpeed {
    let workload = Workload::new(rate_mbps);
    let mut platform = build_platform(kind, &workload);
    platform.machine_mut().obs.enable_tracing();
    platform.machine_mut().obs.enable_causal();
    let per_ms = platform.machine().config().clock_hz / 1_000;
    let i0 = platform.machine().cpu.instret();
    let t = std::time::Instant::now();
    platform.run_for(ms * per_ms);
    let host_seconds = t.elapsed().as_secs_f64();
    let instructions = platform.machine().cpu.instret() - i0;
    SimSpeed {
        instructions,
        host_seconds,
        instr_per_host_sec: instructions as f64 / host_seconds.max(1e-9),
    }
}

/// Times `ms` simulated milliseconds of the all-cores spin guest
/// ([`hitactix::apps::smp_spin_guest`]) on a `cores`-core machine under the
/// host wall clock — the multi-core scaling companion of
/// [`measure_sim_speed`]. Instructions are totalled across every core, so
/// the figure shows what the deterministic round-robin scheduler costs (or
/// buys) as the core count grows. Wall-clock based, so NOT deterministic.
pub fn measure_smp_sim_speed(kind: PlatformKind, cores: usize, ms: u64) -> SimSpeed {
    let program = hitactix::apps::smp_spin_guest();
    let mut machine = Machine::new(MachineConfig {
        num_cores: cores,
        ..MachineConfig::default()
    });
    machine.load_program(&program);
    let entry = program.symbols.get("start").expect("start symbol");
    let mut platform: Box<dyn Platform> = match kind {
        PlatformKind::RawHw => Box::new(RawPlatform::new(machine)),
        PlatformKind::Lvmm => Box::new(LvmmPlatform::new(machine, entry)),
        PlatformKind::Hosted => Box::new(HostedPlatform::new(machine, entry)),
    };
    let per_ms = platform.machine().config().clock_hz / 1_000;
    let i0 = platform.machine().total_instret();
    let t = std::time::Instant::now();
    platform.run_for(ms * per_ms);
    let host_seconds = t.elapsed().as_secs_f64();
    let instructions = platform.machine().total_instret() - i0;
    SimSpeed {
        instructions,
        host_seconds,
        instr_per_host_sec: instructions as f64 / host_seconds.max(1e-9),
    }
}

/// Host-time attribution of one metrics-enabled run: where the monitor's
/// own wall-clock went, per phase, plus the run's simulation speed — the
/// data behind the `host_attribution` section of `BENCH_fig3_1.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct HostAttributionSummary {
    /// Which platform ran.
    pub kind: PlatformKind,
    /// The run's simulation speed (with the host profiler enabled).
    pub speed: SimSpeed,
    /// Host wall-clock nanoseconds from profiler enable to the last mark.
    pub wall_ns: u64,
    /// Phase-boundary marks taken.
    pub marks: u64,
    /// Host nanoseconds attributed to any phase.
    pub attributed_ns: u64,
    /// Per-phase host nanoseconds, in canonical `HostPhase::ALL` order.
    pub phases: Vec<(String, u64)>,
}

impl HostAttributionSummary {
    /// Fraction of wall-clock the marks explain, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        self.attributed_ns as f64 / (self.wall_ns as f64).max(1.0)
    }
}

/// Times `ms` simulated milliseconds at `rate_mbps` like
/// [`measure_sim_speed`], optionally with the host-time profiler enabled
/// (`metrics`), and reports both the speed and the attribution. With
/// `metrics` off the attribution fields are zero and `phases` is empty.
pub fn measure_host_attribution(
    kind: PlatformKind,
    rate_mbps: u64,
    ms: u64,
    metrics: bool,
) -> HostAttributionSummary {
    let workload = Workload::new(rate_mbps);
    let mut platform = build_platform(kind, &workload);
    if metrics {
        platform.machine_mut().obs.enable_hostprof();
    }
    let per_ms = platform.machine().config().clock_hz / 1_000;
    let i0 = platform.machine().cpu.instret();
    let t = std::time::Instant::now();
    platform.run_for(ms * per_ms);
    let host_seconds = t.elapsed().as_secs_f64();
    let instructions = platform.machine().cpu.instret() - i0;
    let speed = SimSpeed {
        instructions,
        host_seconds,
        instr_per_host_sec: instructions as f64 / host_seconds.max(1e-9),
    };
    // Deferred guest-execution time is charged at the next phase boundary;
    // force one so the run's trailing guest stretch is attributed too.
    platform.machine().obs.host_mark(HostPhase::GuestExec);
    let att = platform.machine().obs.host_attribution();
    let (wall_ns, marks, attributed_ns, phases) = match att {
        Some(a) => (a.wall_ns, a.marks, a.attributed_ns(), a.phases().collect()),
        None => (0, 0, 0, Vec::new()),
    };
    HostAttributionSummary {
        kind,
        speed,
        wall_ns,
        marks,
        attributed_ns,
        phases,
    }
}

/// Extracts the `(name, instr_per_host_sec)` pairs from the `sim_speed`
/// section of a committed `BENCH_fig3_1.json` — the hand-rolled companion
/// of [`fig3_1_json`], kept parser-free like the writer. Returns an empty
/// vector if the section is missing or malformed.
pub fn baseline_sim_speed(json: &str) -> Vec<(String, f64)> {
    let Some(start) = json.find("\"sim_speed\"") else {
        return Vec::new();
    };
    let Some(end) = json[start..].find(']') else {
        return Vec::new();
    };
    let section = &json[start..start + end];
    let mut out = Vec::new();
    for entry in section.split('{').skip(1) {
        let name = entry
            .split("\"name\": \"")
            .nth(1)
            .and_then(|s| s.split('"').next());
        let speed = entry
            .split("\"instr_per_host_sec\": ")
            .nth(1)
            .and_then(|s| {
                s.split(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                    .next()
            })
            .and_then(|s| s.parse::<f64>().ok());
        if let (Some(name), Some(speed)) = (name, speed) {
            out.push((name.to_string(), speed));
        }
    }
    out
}

/// Compares fresh sim-speed measurements against a committed baseline.
/// Returns one human-readable message per platform whose fresh speed fell
/// below `(1 - tolerance) *` baseline; empty means no regression.
/// `tolerance` is fractional (`0.5` tolerates a 2× slowdown) — wall-clock
/// speed varies across host machines, so gates should be generous.
pub fn check_sim_speed(
    baseline: &[(String, f64)],
    fresh: &[(PlatformKind, SimSpeed)],
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (kind, s) in fresh {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == kind.label()) else {
            continue;
        };
        let floor = base * (1.0 - tolerance);
        if s.instr_per_host_sec < floor {
            failures.push(format!(
                "{}: {:.0} instr/s is below {:.0} ({}% of baseline {:.0})",
                kind.label(),
                s.instr_per_host_sec,
                floor,
                ((1.0 - tolerance) * 100.0).round(),
                base
            ));
        }
    }
    failures
}

/// Renders a simple ASCII scatter of (rate, load) series, mirroring the
/// layout of the paper's Fig. 3.1.
pub fn ascii_plot(series: &[(PlatformKind, Vec<(f64, f64)>)]) -> String {
    const W: usize = 72;
    const H: usize = 20;
    let mut grid = vec![vec![' '; W + 1]; H + 1];
    let max_x = 750.0f64;
    for (kind, pts) in series {
        let ch = match kind {
            PlatformKind::RawHw => 'R',
            PlatformKind::Lvmm => 'L',
            PlatformKind::Hosted => 'V',
        };
        for &(x, y) in pts {
            let cx = ((x / max_x) * W as f64).round() as usize;
            let cy = H - ((y.clamp(0.0, 1.0)) * H as f64).round() as usize;
            if cx <= W {
                grid[cy][cx] = ch;
            }
        }
    }
    let mut out = String::new();
    out.push_str("CPU load (%) vs transfer rate (Mbps)   R=real-hw  L=lvmm  V=hosted\n");
    for (i, row) in grid.iter().enumerate() {
        let label = 100 - i * 100 / H;
        out.push_str(&format!("{label:3} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("    +");
    out.push_str(&"-".repeat(W));
    out.push('\n');
    out.push_str("     0        100       200       300       400       500       600       700\n");
    out
}

/// Returns the value following `--flag` on the command line, if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Writes an output artifact (trace JSON, CSV); a bad path is a clean
/// user-facing error, not a panic, so a long run's tables aren't drowned
/// in a backtrace.
pub fn write_output(path: &str, contents: String) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// True if `--flag` appears on the command line.
pub fn arg_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Builds the Fig. 3.1 sweep table (one row per measured point, one block
/// per platform) from the measurement series — the single source for both
/// the terminal rendering and `fig3_1.csv`.
pub fn sweep_report(window_ms: u64, series: &[(PlatformKind, Vec<Measurement>)]) -> Report {
    let mut report = Report::new(format!(
        "Fig 3.1 reproduction — CPU load vs transfer rate ({window_ms} ms simulated per point)"
    ))
    .column("platform", Align::Left)
    .column("req Mbps", Align::Right)
    .column("achieved Mbps", Align::Right)
    .column("CPU load", Align::Right)
    .column("guest%", Align::Right)
    .column("mon%", Align::Right)
    .column("host%", Align::Right)
    .column("idle%", Align::Right);
    for (kind, ms) in series {
        for m in ms {
            let total = m.window.total().max(1) as f64;
            let pct = |c: u64| format!("{:.1}", c as f64 / total * 100.0);
            report.row([
                kind.label().to_string(),
                format!("{:.0}", m.requested_mbps),
                format!("{:.1}", m.achieved_mbps),
                format!("{:.1}%", m.cpu_load * 100.0),
                pct(m.window.guest),
                pct(m.window.monitor),
                pct(m.window.host_model),
                pct(m.window.idle),
            ]);
        }
        report.gap();
    }
    report
}

/// Per-exit-cause histogram table (count, min, p50, p99, p99.9, max, mean)
/// from a platform's recorder.
pub fn exit_report(title: impl Into<String>, platform: &dyn Platform) -> Report {
    let mut r = Report::new(title)
        .column("exit cause", Align::Left)
        .column("count", Align::Right)
        .column("min cyc", Align::Right)
        .column("p50 cyc", Align::Right)
        .column("p99 cyc", Align::Right)
        .column("p99.9 cyc", Align::Right)
        .column("max cyc", Align::Right)
        .column("mean cyc", Align::Right);
    let exits = &platform.machine().obs.exits;
    for cause in ExitCause::ALL {
        let h = exits.get(cause);
        if h.count() == 0 {
            continue;
        }
        let [count, min, p50, p99, p999, max, mean] = report::hist_row(h);
        r.row([
            cause.label().to_string(),
            count,
            min,
            p50,
            p99,
            p999,
            max,
            mean,
        ]);
    }
    let obs = &platform.machine().obs;
    if obs.ring.total_offered() > 0 {
        r.note(format!(
            "trace ring: {} events offered, {} overwritten (capacity {})",
            obs.ring.total_offered(),
            obs.ring.dropped(),
            obs.ring.capacity()
        ));
    }
    if obs.spans.dropped() > 0 {
        r.note(format!(
            "span track: {} spans dropped after capacity",
            obs.spans.dropped()
        ));
    }
    r
}

/// Per-platform profile summary destined for `BENCH_fig3_1.json`: the
/// hottest guest symbols of one profiled run, plus the totals that let a
/// reader check the attribution sums up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSummary {
    /// Which platform the profiled run used.
    pub kind: PlatformKind,
    /// Guest cycles attributed across all symbols (incl. `[unknown]`).
    pub total_cycles: u64,
    /// Deterministic PC samples taken.
    pub total_samples: u64,
    /// Hottest symbols: `(name, cycles, samples)`, descending cycles.
    pub top: Vec<(String, u64, u64)>,
}

impl ProfileSummary {
    /// Extracts the summary from a profiled platform's recorder.
    ///
    /// # Panics
    ///
    /// Panics if the platform has no profiler enabled.
    pub fn read(kind: PlatformKind, platform: &dyn Platform, top_n: usize) -> ProfileSummary {
        let prof = platform
            .machine()
            .obs
            .prof()
            .expect("platform was built without a profiler");
        ProfileSummary {
            kind,
            total_cycles: prof.total_cycles(),
            total_samples: prof.total_samples(),
            top: prof
                .top(top_n)
                .into_iter()
                .map(|(name, cycles, samples)| (name.to_string(), cycles, samples))
                .collect(),
        }
    }
}

/// Builds the machine-readable companion of `fig3_1.csv`: per-platform
/// sweep points (CPU load, attribution, achieved rate) plus the cumulative
/// exit histograms of each platform's highest-rate run, and the two
/// headline ratios. Hand-rolled JSON — the workspace has no serializer
/// dependency and the schema is small.
#[allow(clippy::too_many_arguments)] // one slot per top-level JSON section
pub fn fig3_1_json(
    warmup_ms: u64,
    window_ms: u64,
    series: &[(PlatformKind, Vec<Measurement>)],
    sim_speed: &[(PlatformKind, SimSpeed)],
    smp_speed: &[(PlatformKind, usize, SimSpeed)],
    causal_speed: &[(PlatformKind, SimSpeed)],
    attributions: &[HostAttributionSummary],
    profiles: &[ProfileSummary],
) -> String {
    let sat = |kind: PlatformKind| {
        series
            .iter()
            .find(|&&(k, _)| k == kind)
            .map_or(0.0, |(_, ms)| {
                ms.iter().map(|m| m.achieved_mbps).fold(0.0, f64::max)
            })
    };
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fig3_1\",\n");
    out.push_str(&format!("  \"warmup_ms\": {warmup_ms},\n"));
    out.push_str(&format!("  \"window_ms\": {window_ms},\n"));
    out.push_str("  \"platforms\": [\n");
    for (pi, (kind, ms)) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"saturation_mbps\": {:.3}, \"points\": [\n",
            kind.label(),
            sat(*kind)
        ));
        for (i, m) in ms.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"requested_mbps\": {:.3}, \"achieved_mbps\": {:.3}, \
                 \"cpu_load\": {:.4}, \"guest_cycles\": {}, \"monitor_cycles\": {}, \
                 \"host_cycles\": {}, \"idle_cycles\": {}}}{}\n",
                m.requested_mbps,
                m.achieved_mbps,
                m.cpu_load,
                m.window.guest,
                m.window.monitor,
                m.window.host_model,
                m.window.idle,
                if i + 1 < ms.len() { "," } else { "" }
            ));
        }
        out.push_str("    ], \"exits\": {");
        let exits = ms.last().map(|m| &m.exits);
        let mut first = true;
        if let Some(exits) = exits {
            for cause in ExitCause::ALL {
                let h = exits.get(cause);
                if h.count() == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("\"{}\": {}", cause.label(), report::hist_json(h)));
            }
        }
        out.push_str("}}");
        out.push_str(if pi + 1 < series.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"sim_speed\": [\n");
    for (i, (kind, s)) in sim_speed.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"instructions\": {}, \"host_seconds\": {:.4}, \
             \"instr_per_host_sec\": {:.0}}}{}\n",
            kind.label(),
            s.instructions,
            s.host_seconds,
            s.instr_per_host_sec,
            if i + 1 < sim_speed.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    if !causal_speed.is_empty() {
        // The same workload with tracing + causal-flow tracking on: the CI
        // overhead gate divides these by the plain `sim_speed` figures.
        out.push_str("  \"sim_speed_causal\": [\n");
        for (i, (kind, s)) in causal_speed.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"instructions\": {}, \"host_seconds\": {:.4}, \
                 \"instr_per_host_sec\": {:.0}}}{}\n",
                kind.label(),
                s.instructions,
                s.host_seconds,
                s.instr_per_host_sec,
                if i + 1 < causal_speed.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
    }
    if !smp_speed.is_empty() {
        // Multi-core scaling of the engine itself: the all-cores spin guest
        // at each swept core count. Kept in a section of its own so the
        // CI speed gate (which reads `sim_speed`) is unaffected.
        out.push_str("  \"smp_sim_speed\": [\n");
        for (i, (kind, cores, s)) in smp_speed.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cores\": {}, \"instructions\": {}, \
                 \"host_seconds\": {:.4}, \"instr_per_host_sec\": {:.0}}}{}\n",
                kind.label(),
                cores,
                s.instructions,
                s.host_seconds,
                s.instr_per_host_sec,
                if i + 1 < smp_speed.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
    }
    if !attributions.is_empty() {
        // The same runs measured twice over: their speed (to gate metrics
        // overhead against the plain sim_speed above) and where the
        // monitor's host time went, phase by phase.
        out.push_str("  \"sim_speed_metrics\": [\n");
        for (i, a) in attributions.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"instructions\": {}, \"host_seconds\": {:.4}, \
                 \"instr_per_host_sec\": {:.0}}}{}\n",
                a.kind.label(),
                a.speed.instructions,
                a.speed.host_seconds,
                a.speed.instr_per_host_sec,
                if i + 1 < attributions.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"host_attribution\": [\n");
        for (i, a) in attributions.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ns\": {}, \"marks\": {}, \
                 \"attributed_ns\": {}, \"coverage\": {:.4}, \"phases\": {{",
                a.kind.label(),
                a.wall_ns,
                a.marks,
                a.attributed_ns,
                a.coverage()
            ));
            for (j, (phase, ns)) in a.phases.iter().enumerate() {
                out.push_str(&format!(
                    "{}\"{phase}\": {ns}",
                    if j > 0 { ", " } else { "" }
                ));
            }
            out.push_str("}}");
            out.push_str(if i + 1 < attributions.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
    }
    if !profiles.is_empty() {
        out.push_str("  \"profile\": [\n");
        for (i, p) in profiles.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"total_cycles\": {}, \"total_samples\": {}, \
                 \"symbols\": [",
                p.kind.label(),
                p.total_cycles,
                p.total_samples
            ));
            for (j, (name, cycles, samples)) in p.top.iter().enumerate() {
                out.push_str(&format!(
                    "{}{{\"symbol\": \"{}\", \"cycles\": {cycles}, \"samples\": {samples}}}",
                    if j > 0 { ", " } else { "" },
                    name.replace('\\', "\\\\").replace('"', "\\\"")
                ));
            }
            out.push_str("]}");
            out.push_str(if i + 1 < profiles.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
    }
    let raw = sat(PlatformKind::RawHw).max(f64::MIN_POSITIVE);
    let ho = sat(PlatformKind::Hosted).max(f64::MIN_POSITIVE);
    let lv = sat(PlatformKind::Lvmm);
    out.push_str(&format!(
        "  \"headlines\": {{\"lvmm_vs_hosted\": {:.3}, \"lvmm_vs_real_pct\": {:.3}}}\n",
        lv / ho,
        lv / raw * 100.0
    ));
    out.push_str("}\n");
    out
}

/// Builds the Chrome trace-event JSON document for one or more traced
/// platform runs (one process per platform, in the order given).
pub fn chrome_trace(platforms: &[(&str, &dyn Platform)]) -> String {
    let mut trace = ChromeTrace::new();
    for (pid0, (name, platform)) in platforms.iter().enumerate() {
        trace.add_platform(pid0 as u32 + 1, name, &platform.machine().obs);
    }
    trace.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_kinds() {
        assert_eq!(PlatformKind::ALL.len(), 3);
        assert_eq!(PlatformKind::Lvmm.label(), "lvmm");
    }

    #[test]
    fn fig3_1_json_is_balanced_and_complete() {
        let m = Measurement {
            requested_mbps: 100.0,
            achieved_mbps: 99.5,
            cpu_load: 0.25,
            window: TimeStats {
                guest: 10,
                monitor: 5,
                host_model: 0,
                idle: 85,
            },
            guest: GuestStats::default(),
            frames: 7,
            exits: {
                let mut e = ExitHists::default();
                e.record(ExitCause::Mmio, 400);
                e
            },
        };
        let series = vec![
            (PlatformKind::RawHw, vec![m.clone()]),
            (PlatformKind::Lvmm, vec![m.clone()]),
            (PlatformKind::Hosted, vec![m]),
        ];
        let speed = SimSpeed {
            instructions: 1_000_000,
            host_seconds: 0.05,
            instr_per_host_sec: 20_000_000.0,
        };
        let profiles = vec![ProfileSummary {
            kind: PlatformKind::Lvmm,
            total_cycles: 900,
            total_samples: 9,
            top: vec![("build_frame".into(), 800, 8), ("[unknown]".into(), 100, 1)],
        }];
        let att = HostAttributionSummary {
            kind: PlatformKind::Lvmm,
            speed: SimSpeed {
                instructions: 990_000,
                host_seconds: 0.051,
                instr_per_host_sec: 19_411_764.0,
            },
            wall_ns: 51_000_000,
            marks: 1_234,
            attributed_ns: 50_700_000,
            phases: HostPhase::ALL
                .iter()
                .map(|p| (p.label(), 2_816_666))
                .collect(),
        };
        let json = fig3_1_json(
            40,
            120,
            &series,
            &[(PlatformKind::Lvmm, speed)],
            &[(PlatformKind::Lvmm, 2, speed)],
            &[(PlatformKind::Lvmm, speed)],
            std::slice::from_ref(&att),
            &profiles,
        );
        for key in [
            "\"bench\"",
            "\"platforms\"",
            "\"lvmm\"",
            "\"cpu_load\"",
            "\"mmio\"",
            "\"p999\"",
            "\"sim_speed\"",
            "\"instr_per_host_sec\"",
            "\"smp_sim_speed\"",
            "\"cores\"",
            "\"sim_speed_causal\"",
            "\"sim_speed_metrics\"",
            "\"host_attribution\"",
            "\"wall_ns\"",
            "\"coverage\"",
            "\"guest-exec\"",
            "\"exit-mmio\"",
            "\"journal\"",
            "\"profile\"",
            "\"build_frame\"",
            "\"total_cycles\"",
            "\"headlines\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON: {json}");
        // Without profiled or metrics-enabled runs those sections are
        // absent and the schema the CI checker reads is unchanged.
        let bare = fig3_1_json(
            40,
            120,
            &series,
            &[(PlatformKind::Lvmm, speed)],
            &[],
            &[],
            &[],
            &[],
        );
        assert!(!bare.contains("\"profile\""));
        assert!(!bare.contains("\"host_attribution\""));
        assert!(!bare.contains("\"sim_speed_metrics\""));
        assert!(!bare.contains("\"sim_speed_causal\""));
        assert!(!bare.contains("\"smp_sim_speed\""));
        // The baseline extractor reads back what the writer emitted — and
        // only from the plain sim_speed section, not the metrics-on one.
        let base = baseline_sim_speed(&json);
        assert_eq!(base, vec![("lvmm".to_string(), 20_000_000.0)]);
        assert!(baseline_sim_speed("{}").is_empty());
    }

    #[test]
    fn sim_speed_gate_flags_only_regressions() {
        let baseline = vec![("lvmm".to_string(), 20_000_000.0)];
        let ok = SimSpeed {
            instructions: 1,
            host_seconds: 1.0,
            instr_per_host_sec: 11_000_000.0,
        };
        let slow = SimSpeed {
            instructions: 1,
            host_seconds: 1.0,
            instr_per_host_sec: 9_000_000.0,
        };
        // 50% tolerance: the floor is 10M instr/s.
        assert!(check_sim_speed(&baseline, &[(PlatformKind::Lvmm, ok)], 0.5).is_empty());
        let fails = check_sim_speed(&baseline, &[(PlatformKind::Lvmm, slow)], 0.5);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("lvmm"), "{fails:?}");
        // Platforms absent from the baseline are not gated.
        assert!(check_sim_speed(&baseline, &[(PlatformKind::RawHw, slow)], 0.5).is_empty());
    }

    #[test]
    fn sweep_report_renders_series() {
        let m = Measurement {
            requested_mbps: 100.0,
            achieved_mbps: 99.5,
            cpu_load: 0.25,
            window: TimeStats {
                guest: 10,
                monitor: 5,
                host_model: 0,
                idle: 85,
            },
            guest: GuestStats::default(),
            frames: 7,
            exits: ExitHists::default(),
        };
        let r = sweep_report(120, &[(PlatformKind::Lvmm, vec![m])]);
        let text = r.to_text();
        assert!(text.contains("lvmm"));
        assert!(text.contains("99.5"));
        assert!(text.contains("25.0%"));
        assert!(r.to_csv().starts_with("platform,req Mbps"));
    }

    #[test]
    fn ascii_plot_renders() {
        let s = ascii_plot(&[(PlatformKind::RawHw, vec![(100.0, 0.2), (700.0, 0.9)])]);
        assert!(s.contains('R'));
        assert!(s.lines().count() > 20);
    }
}
