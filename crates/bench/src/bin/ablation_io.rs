//! **Table B** (ablation): interrupt moderation and the passthrough design.
//!
//! Sweeps the NIC's TX interrupt moderation (frames per completion
//! interrupt) on all three platforms and reports the saturation rate. Since
//! per-frame interrupts are the lightweight monitor's main residual cost
//! (each one is reflect + inject + emulated EOI), moderation recovers a
//! large fraction of the gap to real hardware — an extension the paper's
//! design permits without giving up passthrough.
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin ablation_io`

use hitactix::Workload;
use hx_obs::{Align, Report};
use lwvmm_bench::{build_platform, measure, PlatformKind};

fn main() {
    let moderations = [1u32, 4, 16];
    let mut table = Report::new("Table B — saturation rate (Mbps) vs NIC TX interrupt moderation")
        .column("platform", Align::Left)
        .column("mod=1", Align::Right)
        .column("mod=4", Align::Right)
        .column("mod=16", Align::Right);
    for kind in PlatformKind::ALL {
        let mut row = vec![kind.label().to_string()];
        for &m in &moderations {
            let workload = Workload::new(950).moderation(m);
            let mut platform = build_platform(kind, &workload);
            let meas = measure(platform.as_mut(), 60, 250);
            row.push(format!("{:.1}", meas.achieved_mbps));
        }
        table.row(row);
    }
    table.note("\nReading: moderation shrinks the interrupt-virtualization tax, so the");
    table.note("lightweight monitor gains the most; the hosted monitor stays dominated");
    table.note("by its per-packet host-OS relay, and real hardware barely moves.");
    println!("{}", table.to_text());
}
