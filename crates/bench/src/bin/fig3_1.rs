//! Regenerates **Fig. 3.1** of the paper: CPU load vs transfer rate for the
//! HiTactix streaming workload on real hardware, the lightweight monitor,
//! and the hosted full monitor — plus the two headline numbers (the
//! lightweight monitor transfers ≈5.4× as fast as the conventional monitor,
//! and reaches ≈26 % of real hardware).
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin fig3_1 [--fast]
//!         [--trace out.json] [--metrics out.prom] [--profile out.folded]
//!         [--check-speed baseline.json]`
//!
//! * `--trace out.json` additionally runs one traced point per platform at
//!   100 Mbit/s and writes a Chrome trace-event JSON (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>). The file is
//!   byte-identical across runs.
//! * `--metrics out.prom` prints the per-cause exit histograms of those
//!   runs and writes the full metrics registry (counters, exit histograms,
//!   host-time attribution) in Prometheus text exposition format.
//! * `--profile out.folded` profiles those runs with the deterministic PC
//!   sampler, writes collapsed flamegraph stacks (one `platform;guest;symbol`
//!   block per platform — feed to `flamegraph.pl` or speedscope), and adds
//!   per-symbol hot-path data to `BENCH_fig3_1.json`. Also byte-identical
//!   across runs.
//! * `--check-speed baseline.json` compares the fresh sim-speed numbers
//!   against the `sim_speed` section of a committed `BENCH_fig3_1.json`
//!   and exits nonzero on a regression beyond `LWVMM_SPEED_TOLERANCE`
//!   (fractional, default 0.75 — wall clocks differ across machines).
//!
//! Prints the measured series as a table and an ASCII plot, and writes
//! `fig3_1.csv` plus the machine-readable `BENCH_fig3_1.json` (per-platform
//! sweep points, exit histograms, sim speed with and without metrics, and
//! per-phase host-time attribution) into the current directory.

use hitactix::Workload;
use hx_obs::{HostPhase, MetricsRegistry};
use lwvmm_bench::{
    arg_flag, arg_value, ascii_plot, baseline_sim_speed, build_platform, build_profiled_platform,
    check_sim_speed, chrome_trace, exit_report, measure, measure_point, measure_smp_sim_speed,
    sweep_report, PlatformKind, ProfileSummary, SimSpeed,
};

fn main() {
    let fast = arg_flag("--fast");
    let trace_path = arg_value("--trace");
    let profile_path = arg_value("--profile");
    let metrics_path = arg_value("--metrics");
    let check_speed = arg_value("--check-speed");
    let (warmup_ms, window_ms) = if fast { (40, 120) } else { (80, 400) };
    let rates: &[u64] = if fast {
        &[50, 150, 300, 500, 700, 950]
    } else {
        &[25, 50, 100, 150, 200, 300, 400, 500, 600, 700, 950]
    };

    let mut series = Vec::new();
    let mut measurements = Vec::new();
    let mut saturation = Vec::new();

    for kind in PlatformKind::ALL {
        let mut pts = Vec::new();
        let mut ms = Vec::new();
        let mut max_achieved = 0.0f64;
        for &rate in rates {
            let m = measure_point(kind, rate, warmup_ms, window_ms);
            max_achieved = max_achieved.max(m.achieved_mbps);
            pts.push((m.achieved_mbps, m.cpu_load));
            ms.push(m);
        }
        saturation.push((kind, max_achieved));
        series.push((kind, pts));
        measurements.push((kind, ms));
    }

    let report = sweep_report(window_ms, &measurements);
    println!("{}", report.to_text());
    println!("{}", ascii_plot(&series));

    // Host-side simulation speed (wall clock — the only nondeterministic
    // number in this benchmark; recorded in the JSON, never in the traces).
    let speed_ms = if fast { 100 } else { 400 };
    let mut sim_speed = Vec::new();
    let mut causal_speed = Vec::new();
    let mut attributions = Vec::new();
    for kind in PlatformKind::ALL {
        // Median of seven, metrics-off and metrics-on interleaved:
        // wall-clock speed is the one nondeterministic number in this
        // bench, and the metrics-overhead gate compares the two. The
        // interleaving means host load hits both series alike, and the
        // median (unlike a best-of maximum) stays put when a few samples
        // are throttled — so scheduler noise cancels out of the ratio
        // instead of masquerading as instrumentation cost. The hosted
        // baseline retires far fewer instructions per simulated ms (it
        // idles while the relay thrashes), so give it a 4x longer window
        // to keep the timed region long enough to measure.
        let ms = if kind == PlatformKind::Hosted {
            speed_ms * 4
        } else {
            speed_ms
        };
        let mut offs = Vec::new();
        let mut ons = Vec::new();
        let mut causals = Vec::new();
        for _ in 0..7 {
            offs.push(lwvmm_bench::measure_sim_speed(kind, 300, ms));
            ons.push(lwvmm_bench::measure_host_attribution(kind, 300, ms, true));
            causals.push(lwvmm_bench::measure_causal_sim_speed(kind, 300, ms));
        }
        offs.sort_by(|x, y| x.instr_per_host_sec.total_cmp(&y.instr_per_host_sec));
        ons.sort_by(|x, y| {
            x.speed
                .instr_per_host_sec
                .total_cmp(&y.speed.instr_per_host_sec)
        });
        causals.sort_by(|x, y| x.instr_per_host_sec.total_cmp(&y.instr_per_host_sec));
        let s = offs[offs.len() / 2];
        let a = ons.swap_remove(ons.len() / 2);
        let c = causals[causals.len() / 2];
        println!(
            "Sim speed on {:8}: {:5.1} M guest instr / host sec ({} instr in {:.3} s)",
            kind.label(),
            s.instr_per_host_sec / 1e6,
            s.instructions,
            s.host_seconds
        );
        println!(
            "  with metrics on : {:5.1} M guest instr / host sec ({:+5.1}% overhead, \
             {:.1}% of host time attributed across {} marks)",
            a.speed.instr_per_host_sec / 1e6,
            (s.instr_per_host_sec / a.speed.instr_per_host_sec.max(1.0) - 1.0) * 100.0,
            a.coverage() * 100.0,
            a.marks
        );
        println!(
            "  with causal on  : {:5.1} M guest instr / host sec ({:+5.1}% overhead)",
            c.instr_per_host_sec / 1e6,
            (s.instr_per_host_sec / c.instr_per_host_sec.max(1.0) - 1.0) * 100.0,
        );
        sim_speed.push((kind, s));
        causal_speed.push((kind, c));
        attributions.push(a);
    }

    // Multi-core scaling: the all-cores spin guest at 1, 2 and 4 cores on
    // each platform, instructions totalled across cores (median of three —
    // wall clock again). Shows what the deterministic round-robin vCPU
    // scheduler costs as the core count grows.
    let smp_ms = if fast { 60 } else { 200 };
    let mut smp_speed = Vec::new();
    for kind in PlatformKind::ALL {
        for cores in [1usize, 2, 4] {
            let mut runs: Vec<SimSpeed> = (0..3)
                .map(|_| measure_smp_sim_speed(kind, cores, smp_ms))
                .collect();
            runs.sort_by(|x, y| x.instr_per_host_sec.total_cmp(&y.instr_per_host_sec));
            let s = runs[1];
            println!(
                "SMP sim speed on {:8} x{cores}: {:5.1} M guest instr / host sec \
                 ({} instr in {:.3} s)",
                kind.label(),
                s.instr_per_host_sec / 1e6,
                s.instructions,
                s.host_seconds
            );
            smp_speed.push((kind, cores, s));
        }
    }

    let sat = |k: PlatformKind| saturation.iter().find(|&&(kk, _)| kk == k).unwrap().1;
    let raw = sat(PlatformKind::RawHw);
    let lv = sat(PlatformKind::Lvmm);
    let ho = sat(PlatformKind::Hosted);
    println!("Saturation rates:  real-hw {raw:.0} Mbps   lvmm {lv:.0} Mbps   hosted {ho:.0} Mbps");
    println!(
        "Headline A — lvmm vs hosted monitor:   {:.1}x   (paper: 5.4x)",
        lv / ho
    );
    println!(
        "Headline B — lvmm vs real hardware:    {:.0}%   (paper: ~26%)",
        lv / raw * 100.0
    );

    // One traced (and optionally profiled) run per platform at a fixed
    // representative rate. Tracing and profiling are observational only, so
    // these runs behave identically to the untraced sweep above.
    let mut profiles: Vec<ProfileSummary> = Vec::new();
    if trace_path.is_some() || profile_path.is_some() || metrics_path.is_some() {
        let workload = Workload::new(100);
        let mut traced = Vec::new();
        for kind in PlatformKind::ALL {
            let mut platform = if profile_path.is_some() {
                build_profiled_platform(kind, &workload)
            } else {
                build_platform(kind, &workload)
            };
            platform.machine_mut().obs.enable_tracing();
            if metrics_path.is_some() {
                platform.machine_mut().obs.enable_hostprof();
            }
            measure(platform.as_mut(), warmup_ms, window_ms);
            traced.push((kind, platform));
        }

        if let Some(path) = &metrics_path {
            let reg = MetricsRegistry::global();
            for (kind, platform) in &traced {
                let r = exit_report(
                    format!("Exit histograms — {} at 100 Mbps", kind.label()),
                    platform.as_ref(),
                );
                if !r.is_empty() {
                    println!("{}", r.to_text());
                }
                // Close the deferred guest-execution window so the
                // exposition attributes the trailing guest stretch too.
                platform.machine().obs.host_mark(HostPhase::GuestExec);
                platform.publish_metrics(reg);
            }
            lwvmm_bench::write_output(path, reg.snapshot().prometheus());
            println!("wrote {path} (Prometheus text exposition)");
        }

        if let Some(path) = &profile_path {
            let mut folded = String::new();
            for (kind, platform) in &traced {
                let prof = platform.machine().obs.prof().expect("profiler enabled");
                folded.push_str(&prof.fold_prefixed(&format!("{};", kind.label())));
                profiles.push(ProfileSummary::read(*kind, platform.as_ref(), 10));
            }
            lwvmm_bench::write_output(path, folded);
            println!("wrote {path} (collapsed stacks; feed to flamegraph.pl or speedscope)");
        }

        if let Some(path) = trace_path {
            let named: Vec<(&str, &dyn hx_machine::Platform)> = traced
                .iter()
                .map(|(k, p)| (k.label(), p.as_ref()))
                .collect();
            lwvmm_bench::write_output(&path, chrome_trace(&named));
            println!("wrote {path} (open in chrome://tracing or ui.perfetto.dev)");
        }
    }

    lwvmm_bench::write_output("fig3_1.csv", report.to_csv());
    lwvmm_bench::write_output(
        "BENCH_fig3_1.json",
        lwvmm_bench::fig3_1_json(
            warmup_ms,
            window_ms,
            &measurements,
            &sim_speed,
            &smp_speed,
            &causal_speed,
            &attributions,
            &profiles,
        ),
    );
    println!("\nwrote fig3_1.csv and BENCH_fig3_1.json");

    if let Some(path) = check_speed {
        let tolerance = std::env::var("LWVMM_SPEED_TOLERANCE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.75);
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check-speed: cannot read {path}: {e}"));
        let baseline = baseline_sim_speed(&baseline);
        assert!(
            !baseline.is_empty(),
            "--check-speed: no sim_speed section in {path}"
        );
        let failures = check_sim_speed(&baseline, &sim_speed, tolerance);
        if failures.is_empty() {
            println!("sim-speed check vs {path}: OK (tolerance {tolerance})");
        } else {
            for f in &failures {
                eprintln!("sim-speed regression: {f}");
            }
            std::process::exit(1);
        }
    }
}
