//! Regenerates **Fig. 3.1** of the paper: CPU load vs transfer rate for the
//! HiTactix streaming workload on real hardware, the lightweight monitor,
//! and the hosted full monitor — plus the two headline numbers (the
//! lightweight monitor transfers ≈5.4× as fast as the conventional monitor,
//! and reaches ≈26 % of real hardware).
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin fig3_1 [--fast]
//!         [--trace out.json] [--metrics]`
//!
//! * `--trace out.json` additionally runs one traced point per platform at
//!   100 Mbit/s and writes a Chrome trace-event JSON (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>). The file is
//!   byte-identical across runs.
//! * `--metrics` prints the per-cause exit histograms of those runs.
//!
//! Prints the measured series as a table and an ASCII plot, and writes
//! `fig3_1.csv` plus the machine-readable `BENCH_fig3_1.json` (per-platform
//! sweep points and exit histograms) into the current directory.

use hitactix::Workload;
use hx_obs::{Align, Report};
use lwvmm_bench::{
    arg_flag, arg_value, ascii_plot, build_platform, chrome_trace, exit_report, measure,
    measure_point, PlatformKind,
};

fn main() {
    let fast = arg_flag("--fast");
    let trace_path = arg_value("--trace");
    let metrics = arg_flag("--metrics");
    let (warmup_ms, window_ms) = if fast { (40, 120) } else { (80, 400) };
    let rates: &[u64] = if fast {
        &[50, 150, 300, 500, 700, 950]
    } else {
        &[25, 50, 100, 150, 200, 300, 400, 500, 600, 700, 950]
    };

    let mut report = Report::new(format!(
        "Fig 3.1 reproduction — CPU load vs transfer rate ({window_ms} ms simulated per point)"
    ))
    .column("platform", Align::Left)
    .column("req Mbps", Align::Right)
    .column("achieved Mbps", Align::Right)
    .column("CPU load", Align::Right)
    .column("guest%", Align::Right)
    .column("mon%", Align::Right)
    .column("host%", Align::Right)
    .column("idle%", Align::Right);

    let mut series = Vec::new();
    let mut measurements = Vec::new();
    let mut saturation = Vec::new();

    for kind in PlatformKind::ALL {
        let mut pts = Vec::new();
        let mut ms = Vec::new();
        let mut max_achieved = 0.0f64;
        for &rate in rates {
            let m = measure_point(kind, rate, warmup_ms, window_ms);
            let total = m.window.total().max(1) as f64;
            let pct = |c: u64| format!("{:.1}", c as f64 / total * 100.0);
            report.row([
                kind.label().to_string(),
                rate.to_string(),
                format!("{:.1}", m.achieved_mbps),
                format!("{:.1}%", m.cpu_load * 100.0),
                pct(m.window.guest),
                pct(m.window.monitor),
                pct(m.window.host_model),
                pct(m.window.idle),
            ]);
            max_achieved = max_achieved.max(m.achieved_mbps);
            pts.push((m.achieved_mbps, m.cpu_load));
            ms.push(m);
        }
        saturation.push((kind, max_achieved));
        series.push((kind, pts));
        measurements.push((kind, ms));
        report.gap();
    }

    println!("{}", report.to_text());
    println!("{}", ascii_plot(&series));

    // Host-side simulation speed (wall clock — the only nondeterministic
    // number in this benchmark; recorded in the JSON, never in the traces).
    let speed_ms = if fast { 100 } else { 400 };
    let mut sim_speed = Vec::new();
    for kind in PlatformKind::ALL {
        let s = lwvmm_bench::measure_sim_speed(kind, 300, speed_ms);
        println!(
            "Sim speed on {:8}: {:5.1} M guest instr / host sec ({} instr in {:.3} s)",
            kind.label(),
            s.instr_per_host_sec / 1e6,
            s.instructions,
            s.host_seconds
        );
        sim_speed.push((kind, s));
    }

    let sat = |k: PlatformKind| saturation.iter().find(|&&(kk, _)| kk == k).unwrap().1;
    let raw = sat(PlatformKind::RawHw);
    let lv = sat(PlatformKind::Lvmm);
    let ho = sat(PlatformKind::Hosted);
    println!("Saturation rates:  real-hw {raw:.0} Mbps   lvmm {lv:.0} Mbps   hosted {ho:.0} Mbps");
    println!(
        "Headline A — lvmm vs hosted monitor:   {:.1}x   (paper: 5.4x)",
        lv / ho
    );
    println!(
        "Headline B — lvmm vs real hardware:    {:.0}%   (paper: ~26%)",
        lv / raw * 100.0
    );

    lwvmm_bench::write_output("fig3_1.csv", report.to_csv());
    lwvmm_bench::write_output(
        "BENCH_fig3_1.json",
        lwvmm_bench::fig3_1_json(warmup_ms, window_ms, &measurements, &sim_speed),
    );
    println!("\nwrote fig3_1.csv and BENCH_fig3_1.json");

    if trace_path.is_none() && !metrics {
        return;
    }

    // One traced run per platform at a fixed representative rate. Tracing
    // is observational only, so these runs behave identically to the
    // untraced sweep above.
    let workload = Workload::new(100);
    let mut traced = Vec::new();
    for kind in PlatformKind::ALL {
        let mut platform = build_platform(kind, &workload);
        platform.machine_mut().obs.enable_tracing();
        measure(platform.as_mut(), warmup_ms, window_ms);
        traced.push((kind, platform));
    }

    if metrics {
        for (kind, platform) in &traced {
            let r = exit_report(
                format!("Exit histograms — {} at 100 Mbps", kind.label()),
                platform.as_ref(),
            );
            if !r.is_empty() {
                println!("{}", r.to_text());
            }
        }
    }

    if let Some(path) = trace_path {
        let named: Vec<(&str, &dyn hx_machine::Platform)> = traced
            .iter()
            .map(|(k, p)| (k.label(), p.as_ref()))
            .collect();
        lwvmm_bench::write_output(&path, chrome_trace(&named));
        println!("wrote {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
}
