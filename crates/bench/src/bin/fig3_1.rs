//! Regenerates **Fig. 3.1** of the paper: CPU load vs transfer rate for the
//! HiTactix streaming workload on real hardware, the lightweight monitor,
//! and the hosted full monitor — plus the two headline numbers (the
//! lightweight monitor transfers ≈5.4× as fast as the conventional monitor,
//! and reaches ≈26 % of real hardware).
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin fig3_1 [--fast]`
//!
//! Prints the measured series as a table and an ASCII plot, and writes
//! `fig3_1.csv` into the current directory.

use lwvmm_bench::{ascii_plot, measure_point, PlatformKind};
use std::fmt::Write as _;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (warmup_ms, window_ms) = if fast { (40, 120) } else { (80, 400) };
    let rates: &[u64] =
        if fast { &[50, 150, 300, 500, 700, 950] } else { &[25, 50, 100, 150, 200, 300, 400, 500, 600, 700, 950] };

    println!("Fig 3.1 reproduction — CPU load vs transfer rate");
    println!("(window {window_ms} ms simulated per point)\n");
    println!("{:>8} {:>10} {:>14} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "platform", "req Mbps", "achieved Mbps", "CPU load", "guest%", "mon%", "host%", "idle%");

    let mut csv = String::from("platform,requested_mbps,achieved_mbps,cpu_load,guest,monitor,host,idle\n");
    let mut series = Vec::new();
    let mut saturation = Vec::new();

    for kind in PlatformKind::ALL {
        let mut pts = Vec::new();
        let mut max_achieved = 0.0f64;
        for &rate in rates {
            let m = measure_point(kind, rate, warmup_ms, window_ms);
            let total = m.window.total().max(1) as f64;
            println!(
                "{:>8} {:>10} {:>14.1} {:>9.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                kind.label(),
                rate,
                m.achieved_mbps,
                m.cpu_load * 100.0,
                m.window.guest as f64 / total * 100.0,
                m.window.monitor as f64 / total * 100.0,
                m.window.host_model as f64 / total * 100.0,
                m.window.idle as f64 / total * 100.0,
            );
            let _ = writeln!(
                csv,
                "{},{},{:.2},{:.4},{},{},{},{}",
                kind.label(),
                rate,
                m.achieved_mbps,
                m.cpu_load,
                m.window.guest,
                m.window.monitor,
                m.window.host_model,
                m.window.idle
            );
            max_achieved = max_achieved.max(m.achieved_mbps);
            pts.push((m.achieved_mbps, m.cpu_load));
        }
        saturation.push((kind, max_achieved));
        series.push((kind, pts));
        println!();
    }

    println!("{}", ascii_plot(&series));

    let sat = |k: PlatformKind| saturation.iter().find(|&&(kk, _)| kk == k).unwrap().1;
    let raw = sat(PlatformKind::RawHw);
    let lv = sat(PlatformKind::Lvmm);
    let ho = sat(PlatformKind::Hosted);
    println!("Saturation rates:  real-hw {raw:.0} Mbps   lvmm {lv:.0} Mbps   hosted {ho:.0} Mbps");
    println!("Headline A — lvmm vs hosted monitor:   {:.1}x   (paper: 5.4x)", lv / ho);
    println!("Headline B — lvmm vs real hardware:    {:.0}%   (paper: ~26%)", lv / raw * 100.0);

    std::fs::write("fig3_1.csv", csv).expect("write fig3_1.csv");
    println!("\nwrote fig3_1.csv");
}
