//! Cross-platform divergence auditor: records the streaming workload under
//! the lightweight monitor, replays the same journaled inputs on the hosted
//! full monitor for the same simulated duration, and reports — per device —
//! where the two platforms' event streams (IRQ order, DMA payload digests,
//! doorbells) first part ways.
//!
//! Absolute cycle counts differ across platforms by design (that difference
//! *is* the paper's result), so streams are compared per device in sequence
//! order, not by global timestamp interleaving.
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin divergence [--ms N]`

use hitactix::Workload;
use hx_obs::{audit, Journal};
use hx_obs::{Align, Report};
use lvmm::ReplayDriver;
use lwvmm_bench::{arg_value, build_platform, PlatformKind};

fn main() {
    let ms: u64 = arg_value("--ms").map_or(60, |v| v.parse().expect("--ms takes a number"));
    let workload = Workload::new(100);

    let record = |kind: PlatformKind, driver: Option<&Journal>| -> Journal {
        let mut p = build_platform(kind, &workload);
        p.machine_mut().obs.enable_journal(kind.label());
        let per_ms = p.machine().config().clock_hz / 1_000;
        match driver {
            None => {
                p.run_for(ms * per_ms);
            }
            Some(j) => {
                ReplayDriver::new(j).run(p.as_mut());
            }
        }
        let end = p.machine().now();
        let mut j = p.machine().obs.journal().cloned().expect("journaling");
        j.seal(end);
        j
    };

    let a = record(PlatformKind::Lvmm, None);
    let b = record(PlatformKind::Hosted, Some(&a));
    println!(
        "lvmm:   {} events over {} cycles\nhosted: {} events over {} cycles\n",
        a.events.len(),
        a.end,
        b.events.len(),
        b.end
    );

    let mut r = Report::new("Per-device event-stream audit — lvmm vs hosted")
        .column("stream", Align::Left)
        .column("lvmm", Align::Right)
        .column("hosted", Align::Right)
        .column("verdict", Align::Left);
    for s in audit(&a, &b) {
        let verdict = match &s.divergence {
            None => "identical".to_string(),
            Some(d) if d.is_length_only() => {
                format!("prefix match; lengths differ at index {}", d.index)
            }
            Some(d) => format!("diverges at index {}: {:?} vs {:?}", d.index, d.a, d.b),
        };
        r.row([
            s.name.to_string(),
            s.len_a.to_string(),
            s.len_b.to_string(),
            verdict,
        ]);
    }
    println!("{}", r.to_text());
}
