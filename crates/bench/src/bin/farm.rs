//! Farm scaling bench: sessions/sec, per-guest sim-speed degradation vs
//! fleet size, and memory per guest.
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin farm
//!         [--fast] [--json out.json] [--merge BENCH_fig3_1.json]`
//!
//! `--merge` splices the `"farm"` section into an existing Fig. 3.1
//! document (replacing a previous section); `--json` writes a standalone
//! document. Exits non-zero when any fleet failed to settle or the session
//! storm completed no sessions, so CI can gate on it directly.

use lwvmm_bench::{
    arg_flag, arg_value, farm_json, farm_report, merge_farm, run_farm_bench, FarmBenchConfig,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let cfg = if arg_flag("--fast") {
        FarmBenchConfig::fast()
    } else {
        FarmBenchConfig::new()
    };
    println!(
        "farm scaling bench: fleets {:?}, {} simulated ms each, {:.0} s session window",
        cfg.fleet_sizes,
        cfg.horizon_ms,
        cfg.session_window.as_secs_f64()
    );

    let points = run_farm_bench(&cfg);
    println!("\n{}", farm_report(&cfg, &points).to_text());

    if let Some(path) = arg_value("--json") {
        lwvmm_bench::write_output(&path, farm_json(&cfg, &points));
        println!("wrote {path}");
    }
    if let Some(path) = arg_value("--merge") {
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        lwvmm_bench::write_output(&path, merge_farm(&existing, &cfg, &points));
        println!("merged farm section into {path}");
    }

    let all_settled = points.iter().all(|p| p.settled);
    let sessions_served = points.iter().all(|p| p.sessions > 0);
    println!(
        "\nall fleets settled: {all_settled}   sessions served at every size: {sessions_served}"
    );
    if all_settled && sessions_served {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
