//! Record/replay self-check: runs the streaming workload under the
//! lightweight monitor with the flight recorder on, then replays the sealed
//! journal on a freshly booted platform and verifies the replay is
//! *byte-identical* — same Chrome trace, same final guest statistics, same
//! guest memory image.
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin record_replay
//!         [--ms N] [--trace out.json] [--journal out.journal]`
//!
//! Exits non-zero on any mismatch, so CI can use it as a determinism gate.

use hitactix::{GuestStats, Workload};
use hx_machine::Platform;
use hx_obs::Journal;
use lvmm::ReplayDriver;
use lwvmm_bench::{arg_value, build_platform, chrome_trace, write_output, PlatformKind};

struct RunResult {
    trace: String,
    stats: GuestStats,
    ram_digest: u64,
    end: u64,
}

fn finish(platform: &mut dyn Platform) -> RunResult {
    let trace = chrome_trace(&[("lvmm", &*platform)]);
    let stats = GuestStats::read(platform.machine()).expect("guest stats readable");
    RunResult {
        trace,
        stats,
        ram_digest: hx_obs::digest(platform.machine().mem.as_bytes()),
        end: platform.machine().now(),
    }
}

fn main() {
    let ms: u64 = arg_value("--ms").map_or(60, |v| v.parse().expect("--ms takes a number"));
    let workload = Workload::new(100);

    // Record.
    let mut rec = build_platform(PlatformKind::Lvmm, &workload);
    rec.machine_mut().obs.enable_tracing();
    rec.machine_mut().obs.enable_journal("lvmm");
    let per_ms = rec.machine().config().clock_hz / 1_000;
    let t_rec = std::time::Instant::now();
    rec.run_for(ms * per_ms);
    let rec_secs = t_rec.elapsed().as_secs_f64();
    let rec_instr = rec.machine().cpu.instret();
    let end = rec.machine().now();
    let mut journal: Journal = rec
        .machine()
        .obs
        .journal()
        .cloned()
        .expect("journal enabled");
    journal.seal(end);
    let original = finish(rec.as_mut());

    // Replay on a fresh boot.
    let mut rep = build_platform(PlatformKind::Lvmm, &workload);
    rep.machine_mut().obs.enable_tracing();
    let t_rep = std::time::Instant::now();
    let reached = ReplayDriver::new(&journal).run(rep.as_mut());
    let rep_secs = t_rep.elapsed().as_secs_f64();
    let rep_instr = rep.machine().cpu.instret();
    let replayed = finish(rep.as_mut());

    if let Some(path) = arg_value("--trace") {
        write_output(&path, original.trace.clone());
        println!("wrote {path}");
    }
    if let Some(path) = arg_value("--journal") {
        write_output(&path, journal.save());
        println!("wrote {path}");
    }

    println!(
        "recorded {} cycles, {} journal inputs, {} journal events",
        end,
        journal.inputs.len(),
        journal.events.len()
    );
    // Host-side speed of both directions: record may batch instructions,
    // replay runs the precise per-instruction path.
    println!(
        "sim speed: record {:.1} M instr/host-sec, replay {:.1} M instr/host-sec",
        rec_instr as f64 / rec_secs.max(1e-9) / 1e6,
        rep_instr as f64 / rep_secs.max(1e-9) / 1e6
    );
    let mut ok = true;
    let mut check = |what: &str, same: bool| {
        println!("  {what:20} {}", if same { "match" } else { "MISMATCH" });
        ok &= same;
    };
    check("end cycle", reached == original.end);
    check("chrome trace", replayed.trace == original.trace);
    check("guest stats", replayed.stats == original.stats);
    check("guest RAM", replayed.ram_digest == original.ram_digest);
    if ok {
        println!("replay is byte-identical");
    } else {
        println!("replay DIVERGED from the recording");
        std::process::exit(1);
    }
}
