//! Survivability campaign: fault matrix across all three platforms.
//!
//! Boots the streaming guest on each platform, injects every fault class
//! (deterministically, riding the simulation clock), then proves the
//! lightweight monitor's debug stub still answers `?`/`g`/`m` while the raw
//! platform's guest dies and the hosted monitor pays its emulation
//! overhead. Also records one all-classes campaign per platform and replays
//! it byte-identically through the flight recorder.
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin survivability
//!         [--fast] [--seed N] [--json out.json] [--merge BENCH_fig3_1.json]`
//!
//! `--merge` splices the `"survivability"` section into an existing
//! Fig. 3.1 document (replacing a previous section); `--json` writes a
//! standalone document. Exits non-zero when the LVMM stub row is not
//! all-alive or any replay diverged, so CI can gate on it directly.

use lwvmm_bench::{
    arg_flag, arg_value, merge_survivability, run_matrix, survivability_json, survival_report,
    SurvivalConfig,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let seed: u64 = arg_value("--seed").map_or(42, |v| v.parse().expect("--seed takes a number"));
    let cfg = if arg_flag("--fast") {
        SurvivalConfig::fast(seed)
    } else {
        SurvivalConfig::new(seed)
    };

    println!(
        "survivability campaign: seed {seed}, {} ms warmup + {} ms campaign + {} ms probe per \
         cell, one fault every ~{} cycles",
        cfg.warmup_ms, cfg.campaign_ms, cfg.probe_ms, cfg.period
    );
    let matrix = run_matrix(&cfg);
    println!("\n{}", survival_report(&matrix).to_text());

    if let Some(path) = arg_value("--json") {
        lwvmm_bench::write_output(&path, survivability_json(&cfg, &matrix));
        println!("wrote {path}");
    }
    if let Some(path) = arg_value("--merge") {
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        lwvmm_bench::write_output(&path, merge_survivability(&existing, &cfg, &matrix));
        println!("merged survivability section into {path}");
    }

    let stub_ok = matrix.lvmm_stub_all_alive();
    let replay_ok = matrix.replays_identical();
    println!("\nlvmm stub all-alive: {stub_ok}   replays byte-identical: {replay_ok}");
    if stub_ok && replay_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
