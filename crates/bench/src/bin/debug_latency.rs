//! **Table C**: debug-command latency while the guest streams at full
//! tilt — the paper's motivating scenario ("monitoring the OS status …
//! even while the OS is executing high-throughput I/O operations").
//!
//! Connects the host debugger to the monitor's stub over the simulated
//! UART while the HiTactix guest streams at 100 Mbit/s, and measures the
//! simulated round-trip time of representative commands. The guest keeps
//! streaming throughout — only the `step` command stops it.
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin debug_latency`

use hitactix::{GuestStats, Workload};
use hx_machine::{Machine, MachineConfig, Platform};
use lvmm::{LvmmPlatform, UartLink};
use rdbg::Debugger;

fn main() {
    let mut machine = Machine::new(MachineConfig::default());
    let clock = machine.config().clock_hz;
    let workload = Workload::new(100);
    let program = workload.build(&machine).expect("kernel assembles");
    machine.load_program(&program);
    let mut vmm = LvmmPlatform::new(machine, hitactix::kernel::layout::ENTRY);
    vmm.run_for(clock / 10); // let the stream reach steady state

    let frames_before = vmm.machine().nic.counters().tx_frames;
    let mut dbg = Debugger::new(UartLink { platform: vmm, slice: 2_000 });

    let us = |cycles: u64| cycles as f64 * 1e6 / clock as f64;
    println!("Table C — stub command latency under a 100 Mbit/s stream (lvmm)\n");
    println!("{:<34} {:>14} {:>12}", "command", "cycles", "simulated µs");

    let timed = |label: &str, dbg: &mut Debugger<UartLink<LvmmPlatform>>, f: &mut dyn FnMut(&mut Debugger<UartLink<LvmmPlatform>>)| {
        let t0 = dbg_now(dbg);
        f(dbg);
        let dt = dbg_now(dbg) - t0;
        println!("{:<34} {:>14} {:>12.1}", label, dt, us(dt));
    };

    timed("read all registers", &mut dbg, &mut |d| {
        d.read_registers().expect("regs");
    });
    timed("read 64 B guest memory", &mut dbg, &mut |d| {
        d.read_memory(hitactix::kernel::layout::STATS, 64).expect("mem");
    });
    timed("read 1 KiB guest memory", &mut dbg, &mut |d| {
        d.read_memory(hitactix::kernel::layout::BUF_BASE, 1024).expect("mem");
    });
    timed("write 64 B guest memory", &mut dbg, &mut |d| {
        d.write_memory(0x0000_0700, &[0xa5; 64]).expect("mem");
    });
    let bf = hitactix::kernel::layout::ENTRY; // harmless code address
    timed("set + clear breakpoint", &mut dbg, &mut |d| {
        d.set_breakpoint(bf).expect("set");
        d.clear_breakpoint(bf).expect("clear");
    });

    // The stream must have kept flowing during all of the above — run a
    // little longer and confirm the transmit counter is still climbing.
    let link = dbg.into_link();
    let mut platform = link.platform;
    platform.run_for(clock / 20);
    let frames_after = platform.machine().nic.counters().tx_frames;
    let stats = GuestStats::read(platform.machine());
    assert_eq!(stats.fault_cause, 0);
    assert!(!platform.guest_stopped(), "no command above stops the guest");
    println!(
        "\nframes transmitted during + just after the session: {} (stream alive)",
        frames_after - frames_before
    );
    let ss = platform.stub_stats();
    println!("stub: {} commands, {} bytes in, {} bytes out", ss.commands, ss.bytes_in, ss.bytes_out);
}

fn dbg_now(dbg: &Debugger<UartLink<LvmmPlatform>>) -> u64 {
    // Safe read-only peek through the link.
    dbg_platform(dbg).machine().now()
}

fn dbg_platform(dbg: &Debugger<UartLink<LvmmPlatform>>) -> &LvmmPlatform {
    &dbg.link_ref().platform
}
