//! **Table C**: debug-command latency while the guest streams at full
//! tilt — the paper's motivating scenario ("monitoring the OS status …
//! even while the OS is executing high-throughput I/O operations").
//!
//! Connects the host debugger to the monitor's stub over the simulated
//! UART while the HiTactix guest streams at 100 Mbit/s, and measures the
//! simulated round-trip time of representative commands — including the
//! `qStats` live metrics sample, which reads the monitor's cycle
//! accounting without stopping the guest. The guest keeps streaming
//! throughout.
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin debug_latency
//!         [--trace out.json] [--metrics]`

use hitactix::{GuestStats, Workload};
use hx_fault::{FaultKind, FaultPlan};
use hx_machine::{Machine, MachineConfig, Platform};
use hx_obs::{Align, ExitCause, Report};
use lvmm::{LvmmPlatform, UartLink};
use lwvmm_bench::{arg_flag, arg_value, chrome_trace, exit_report};
use rdbg::{Debugger, StatsSample};

fn main() {
    let trace_path = arg_value("--trace");
    let metrics = arg_flag("--metrics");
    let csv = arg_flag("--csv");
    let mut machine = Machine::new(MachineConfig::default());
    let clock = machine.config().clock_hz;
    let workload = Workload::new(100);
    let program = workload.build(&machine).expect("kernel assembles");
    machine.load_program(&program);
    // Arm a deterministic wild-write campaign whose attempts are all
    // blocked by the protection model (applied limit 0): the guest is
    // untouched and keeps streaming, but the remote `qStats` sample below
    // must surface the attempt counters.
    machine.enable_fault_injection(
        FaultPlan::new(11)
            .only(FaultKind::WildWriteApp)
            .period(clock / 100)
            .wild(1 << 20, 0),
    );
    if trace_path.is_some() {
        machine.obs.enable_tracing();
    }
    let mut vmm = LvmmPlatform::new(machine, hitactix::kernel::layout::ENTRY);
    vmm.run_for(clock / 10); // let the stream reach steady state

    let frames_before = vmm.machine().nic.counters().tx_frames;
    let mut dbg = Debugger::new(UartLink {
        platform: vmm,
        slice: 2_000,
    });

    let us = |cycles: u64| format!("{:.1}", cycles as f64 * 1e6 / clock as f64);
    let mut table = Report::new("Table C — stub command latency under a 100 Mbit/s stream (lvmm)")
        .column("command", Align::Left)
        .column("cycles", Align::Right)
        .column("simulated µs", Align::Right);

    let mut live_sample: Option<StatsSample> = None;
    {
        let mut timed = |label: &str, f: &mut dyn FnMut(&mut Dbg)| {
            let t0 = dbg_now(&dbg);
            f(&mut dbg);
            let dt = dbg_now(&dbg) - t0;
            table.row([label.to_string(), dt.to_string(), us(dt)]);
        };

        timed("read all registers", &mut |d| {
            d.read_registers().expect("regs");
        });
        timed("read 64 B guest memory", &mut |d| {
            d.read_memory(hitactix::kernel::layout::STATS, 64)
                .expect("mem");
        });
        timed("read 1 KiB guest memory", &mut |d| {
            d.read_memory(hitactix::kernel::layout::BUF_BASE, 1024)
                .expect("mem");
        });
        timed("write 64 B guest memory", &mut |d| {
            d.write_memory(0x0000_0700, &[0xa5; 64]).expect("mem");
        });
        let bf = hitactix::kernel::layout::ENTRY; // harmless code address
        timed("set + clear breakpoint", &mut |d| {
            d.set_breakpoint(bf).expect("set");
            d.clear_breakpoint(bf).expect("clear");
        });
        timed("qStats live metrics sample", &mut |d| {
            live_sample = Some(d.query_stats().expect("stats"));
        });
    }
    println!("{}", table.to_text());

    // The live sample arrived while the guest kept running.
    let s = live_sample.expect("qStats replied");
    let total = (s.guest + s.monitor + s.host + s.idle).max(1);
    println!(
        "qStats @ cycle {}: guest {:.1}%  monitor {:.1}%  host {:.1}%  idle {:.1}%",
        s.now,
        s.guest as f64 / total as f64 * 100.0,
        s.monitor as f64 / total as f64 * 100.0,
        s.host as f64 / total as f64 * 100.0,
        s.idle as f64 / total as f64 * 100.0,
    );
    let mut exits = Report::new("qStats exit counts (sampled without halting)")
        .column("exit cause", Align::Left)
        .column("count", Align::Right);
    for (cause, count) in ExitCause::ALL.into_iter().zip(&s.exits) {
        if *count > 0 {
            exits.row([cause.label().to_string(), count.to_string()]);
        }
    }
    println!("\n{}", exits.to_text());

    // Fault-injection counters travel in the same live sample.
    assert!(
        s.fault_blocked > 0,
        "the blocked wild-write campaign must be visible in qStats"
    );
    let mut faults = Report::new("qStats fault-injection counters (sampled without halting)")
        .column("fault class", Align::Left)
        .column("attempted", Align::Right);
    for (kind, count) in FaultKind::ALL.into_iter().zip(&s.faults) {
        faults.row([kind.label().to_string(), count.to_string()]);
    }
    faults.row([
        "blocked (protection)".to_string(),
        s.fault_blocked.to_string(),
    ]);
    println!("\n{}", faults.to_text());
    if csv {
        println!("{}", faults.to_csv());
    }

    // The stream must have kept flowing during all of the above — run a
    // little longer and confirm the transmit counter is still climbing.
    let link = dbg.into_link();
    let mut platform = link.platform;
    platform.run_for(clock / 20);
    let frames_after = platform.machine().nic.counters().tx_frames;
    let stats = GuestStats::read(platform.machine()).expect("guest stats");
    assert_eq!(stats.fault_cause, 0);
    assert!(
        !platform.guest_stopped(),
        "no command above stops the guest"
    );
    println!(
        "frames transmitted during + just after the session: {} (stream alive)",
        frames_after - frames_before
    );
    let ss = platform.stub_stats();
    println!(
        "stub: {} commands, {} bytes in, {} bytes out",
        ss.commands, ss.bytes_in, ss.bytes_out
    );

    if metrics {
        println!(
            "\n{}",
            exit_report("Exit histograms (host-side view)", &platform).to_text()
        );
    }
    if let Some(path) = trace_path {
        lwvmm_bench::write_output(&path, chrome_trace(&[("lvmm", &platform)]));
        println!("\nwrote {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
}

type Dbg = Debugger<UartLink<LvmmPlatform>>;

fn dbg_now(dbg: &Dbg) -> u64 {
    // Safe read-only peek through the link.
    dbg.link_ref().platform.machine().now()
}
