//! **Table A** (ablation): where the lightweight monitor's overhead goes.
//!
//! Runs the streaming workload under the lightweight monitor at a fixed
//! rate and breaks the monitor's exits down by cause, with estimated cycle
//! shares from the cost model. This quantifies the paper's implicit claim:
//! the residual overhead of the lightweight approach is the
//! privileged-instruction and interrupt-virtualization tax, *not* device
//! emulation.
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin ablation_exits [rate_mbps]`

use hitactix::Workload;
use hx_machine::{Machine, MachineConfig, Platform};
use lvmm::{costs, LvmmPlatform};

fn main() {
    let rate: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let mut machine = Machine::new(MachineConfig::default());
    let workload = Workload::new(rate);
    let program = workload.build(&machine).expect("kernel assembles");
    machine.load_program(&program);
    let clock = machine.config().clock_hz;
    let mut vmm = LvmmPlatform::new(machine, hitactix::kernel::layout::ENTRY);

    // Warm up, then measure a 400 ms window.
    vmm.run_for(clock / 10);
    let m0 = vmm.monitor_stats();
    let s0 = vmm.shadow_stats();
    let t0 = *vmm.time_stats();
    let f0 = vmm.machine().nic.counters().tx_frames;
    vmm.run_for(clock * 2 / 5);
    let m = vmm.monitor_stats();
    let s = vmm.shadow_stats();
    let t = vmm.time_stats().since(&t0);
    let frames = vmm.machine().nic.counters().tx_frames - f0;

    let stats = hitactix::GuestStats::read(vmm.machine());
    assert_eq!(stats.fault_cause, 0, "guest fault at {:#x}", stats.fault_pc);

    println!("Table A — lightweight-monitor exit breakdown at {rate} Mbps");
    println!("window: 400 ms simulated, {frames} frames, CPU load {:.1}%\n", t.cpu_load() * 100.0);
    println!("{:<28} {:>10} {:>12} {:>16} {:>10}", "exit class", "count", "per frame", "est. cycles", "share");

    let rows: &[(&str, u64, u64)] = &[
        (
            "privileged instruction",
            m.exits_privileged - m0.exits_privileged,
            costs::EXIT_BASE + costs::EMUL_CSR,
        ),
        ("emulated MMIO (vPIC/vPIT)", m.exits_mmio - m0.exits_mmio, costs::EXIT_BASE + costs::EMUL_MMIO),
        ("IRQ reflection", m.exits_irq_reflect - m0.exits_irq_reflect, costs::EXIT_BASE + costs::REFLECT_IRQ),
        ("virtual IRQ injection", m.irqs_injected - m0.irqs_injected, costs::INJECT_TRAP),
        ("shadow page fill", m.exits_shadow - m0.exits_shadow, costs::EXIT_BASE + costs::SHADOW_FILL),
        ("guest fault re-injection", m.faults_injected - m0.faults_injected, costs::INJECT_TRAP),
    ];
    let monitor_total = t.monitor.max(1);
    for (label, count, unit) in rows {
        let cyc = count * unit;
        println!(
            "{:<28} {:>10} {:>12.2} {:>16} {:>9.1}%",
            label,
            count,
            *count as f64 / frames.max(1) as f64,
            cyc,
            cyc as f64 / monitor_total as f64 * 100.0
        );
    }
    println!("\nmonitor cycles total: {} ({:.1}% of window)", t.monitor, t.monitor as f64 / t.total() as f64 * 100.0);
    println!("guest cycles total:   {} ({:.1}% of window)", t.guest, t.guest as f64 / t.total() as f64 * 100.0);
    println!("shadow stats: {} fills, {} flushes, {} contexts, {} violations",
        s.fills - s0.fills, s.flushes - s0.flushes, s.contexts - s0.contexts,
        s.protection_violations - s0.protection_violations);
    println!("\nReading: device passthrough leaves *zero* per-byte monitor work;");
    println!("the residual tax is interrupt virtualization + privileged emulation.");
}
