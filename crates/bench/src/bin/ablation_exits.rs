//! **Table A** (ablation): where the lightweight monitor's overhead goes.
//!
//! Runs the streaming workload under the lightweight monitor at a fixed
//! rate and breaks the monitor's exits down by cause — counts plus
//! *measured* per-exit cycle distributions (p50/p99/mean) from the
//! monitor's always-on histograms, not the static cost model. This
//! quantifies the paper's implicit claim: the residual overhead of the
//! lightweight approach is the privileged-instruction and
//! interrupt-virtualization tax, *not* device emulation.
//!
//! Usage: `cargo run --release -p lwvmm-bench --bin ablation_exits
//!         [rate_mbps] [--trace out.json] [--metrics]`
//!
//! (`--metrics` is implied — this binary *is* the metrics view; the flag is
//! accepted for symmetry with `fig3_1`.)

use hitactix::Workload;
use hx_machine::{Machine, MachineConfig, Platform};
use hx_obs::{Align, Report};
use lvmm::LvmmPlatform;
use lwvmm_bench::{arg_value, chrome_trace, exit_report};

fn main() {
    let rate: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let trace_path = arg_value("--trace");
    let mut machine = Machine::new(MachineConfig::default());
    let workload = Workload::new(rate);
    let program = workload.build(&machine).expect("kernel assembles");
    machine.load_program(&program);
    let clock = machine.config().clock_hz;
    if trace_path.is_some() {
        machine.obs.enable_tracing();
    }
    let mut vmm = LvmmPlatform::new(machine, hitactix::kernel::layout::ENTRY);

    // Warm up, then measure a 400 ms window.
    vmm.run_for(clock / 10);
    let m0 = vmm.monitor_stats();
    let s0 = vmm.shadow_stats();
    let t0 = *vmm.time_stats();
    let f0 = vmm.machine().nic.counters().tx_frames;
    vmm.run_for(clock * 2 / 5);
    let m = vmm.monitor_stats();
    let s = vmm.shadow_stats();
    let t = vmm.time_stats().since(&t0);
    let frames = vmm.machine().nic.counters().tx_frames - f0;

    let stats = hitactix::GuestStats::read(vmm.machine()).expect("guest stats");
    assert_eq!(stats.fault_cause, 0, "guest fault at {:#x}", stats.fault_pc);

    let mut counts = Report::new(format!(
        "Table A — lightweight-monitor exit breakdown at {rate} Mbps\n\
         window: 400 ms simulated, {frames} frames, CPU load {:.1}%",
        t.cpu_load() * 100.0
    ))
    .column("exit class", Align::Left)
    .column("count", Align::Right)
    .column("per frame", Align::Right);
    let rows: &[(&str, u64)] = &[
        (
            "privileged instruction",
            m.exits_privileged - m0.exits_privileged,
        ),
        ("emulated MMIO (vPIC/vPIT)", m.exits_mmio - m0.exits_mmio),
        ("IRQ reflection", m.exits_irq_reflect - m0.exits_irq_reflect),
        ("virtual IRQ injection", m.irqs_injected - m0.irqs_injected),
        ("shadow page fill", m.exits_shadow - m0.exits_shadow),
        (
            "guest fault re-injection",
            m.faults_injected - m0.faults_injected,
        ),
    ];
    for (label, count) in rows {
        counts.row([
            label.to_string(),
            count.to_string(),
            format!("{:.2}", *count as f64 / frames.max(1) as f64),
        ]);
    }
    println!("{}", counts.to_text());

    // Measured cycle distributions per cause, from boot (same workload
    // throughout, so warmup does not skew the shape).
    println!(
        "{}",
        exit_report("Measured per-exit cycle cost (since boot)", &vmm).to_text()
    );

    println!(
        "monitor cycles total: {} ({:.1}% of window)",
        t.monitor,
        t.monitor as f64 / t.total() as f64 * 100.0
    );
    println!(
        "guest cycles total:   {} ({:.1}% of window)",
        t.guest,
        t.guest as f64 / t.total() as f64 * 100.0
    );
    println!(
        "shadow stats: {} fills, {} flushes, {} contexts, {} violations",
        s.fills - s0.fills,
        s.flushes - s0.flushes,
        s.contexts - s0.contexts,
        s.protection_violations - s0.protection_violations
    );
    println!("\nReading: device passthrough leaves *zero* per-byte monitor work;");
    println!("the residual tax is interrupt virtualization + privileged emulation.");

    if let Some(path) = trace_path {
        lwvmm_bench::write_output(&path, chrome_trace(&[("lvmm", &vmm)]));
        println!("\nwrote {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
}
