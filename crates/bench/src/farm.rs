//! Farm bench: how the one-process debug farm scales with fleet size.
//!
//! For each fleet size N the bench launches N lightweight-monitor guests
//! (flight recorders on), lets the whole fleet simulate to a fixed horizon,
//! and records:
//!
//! - **sim speed vs N** — aggregate and per-guest instructions per host
//!   second, plus per-guest degradation relative to the single-guest fleet
//!   (the cost of sharing worker threads);
//! - **memory per guest** — resident-set growth across the launch, divided
//!   by N (Linux `/proc/self/statm`; reported as 0 elsewhere);
//! - **sessions per second** — after the horizon, client threads hammer
//!   distinct guests with short scripted debug sessions
//!   (connect → halt → regs → resume → disconnect) for a fixed wall
//!   window.

use crate::{Align, Report};
use hx_farm::{control_request, Farm, FarmConfig, GuestSpec};
use rdbg::Debugger;
use std::time::{Duration, Instant};

pub struct FarmBenchConfig {
    /// Fleet sizes to sweep, ascending (the first is the degradation
    /// baseline).
    pub fleet_sizes: Vec<usize>,
    /// Simulated horizon per fleet, milliseconds.
    pub horizon_ms: u64,
    /// Wall-clock window for the session-throughput phase, per fleet.
    pub session_window: Duration,
    /// Concurrent session clients (capped at the fleet size — one client
    /// per guest, the stub serves one session at a time).
    pub session_clients: usize,
}

impl FarmBenchConfig {
    pub fn new() -> FarmBenchConfig {
        FarmBenchConfig {
            fleet_sizes: vec![1, 4, 8, 16, 32],
            horizon_ms: 40,
            session_window: Duration::from_secs(2),
            session_clients: 4,
        }
    }

    /// CI-scale: small fleets, short horizon, one-second session window.
    pub fn fast() -> FarmBenchConfig {
        FarmBenchConfig {
            fleet_sizes: vec![1, 4, 8],
            horizon_ms: 20,
            session_window: Duration::from_secs(1),
            session_clients: 4,
        }
    }
}

impl Default for FarmBenchConfig {
    fn default() -> Self {
        FarmBenchConfig::new()
    }
}

/// One fleet-size measurement.
pub struct FleetPoint {
    pub guests: usize,
    /// Whether the whole fleet reached the horizon.
    pub settled: bool,
    /// Launch-to-settled wall seconds.
    pub wall_seconds: f64,
    /// Fleet-total instructions at the horizon (from the control `stats`
    /// aggregation).
    pub total_instret: u64,
    pub instr_per_host_sec: f64,
    pub per_guest_instr_per_sec: f64,
    /// `per_guest_instr_per_sec / (same for the baseline fleet)`.
    pub degradation_vs_base: f64,
    pub mem_per_guest_kb: u64,
    pub sessions: u64,
    pub sessions_per_sec: f64,
}

/// Resident set size in kilobytes (0 on non-Linux hosts).
fn rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
            return 0;
        };
        let pages: u64 = statm
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        pages * 4 // 4 KiB pages
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// First value of `"key":` in a flat JSON line (the control replies put the
/// fleet totals first).
fn first_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    json.find(&pat)
        .map(|i| {
            let tail = &json[i + pat.len()..];
            let end = tail
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(tail.len());
            tail[..end].parse().unwrap_or(0)
        })
        .unwrap_or(0)
}

/// One scripted debug session against a farm guest: connect, halt, read
/// registers, resume, disconnect. Returns whether every step succeeded.
fn one_session(addr: &str) -> bool {
    let Ok(link) = hx_farm::TcpLink::connect(addr) else {
        return false;
    };
    let mut dbg = Debugger::new(link);
    dbg.halt().is_ok() && dbg.read_registers().is_ok() && dbg.resume().is_ok()
}

/// Hammers distinct guests with scripted sessions for `window`, one client
/// thread per guest; returns total completed sessions.
fn session_storm(ports: &[u16], clients: usize, window: Duration) -> u64 {
    let deadline = Instant::now() + window;
    std::thread::scope(|s| {
        let handles: Vec<_> = ports
            .iter()
            .take(clients.max(1))
            .map(|&port| {
                s.spawn(move || {
                    let addr = format!("127.0.0.1:{port}");
                    let mut n = 0u64;
                    while Instant::now() < deadline {
                        if one_session(&addr) {
                            n += 1;
                        }
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    })
}

/// Runs the sweep. Fleet sizes run in ascending order so each fleet's RSS
/// growth is measured above the previous high-water mark.
pub fn run_farm_bench(cfg: &FarmBenchConfig) -> Vec<FleetPoint> {
    let horizon = hx_machine::timing::DEFAULT_CLOCK_HZ / 1_000 * cfg.horizon_ms;
    let mut points: Vec<FleetPoint> = Vec::new();
    for &n in &cfg.fleet_sizes {
        let rss_before = rss_kb();
        let farm = Farm::launch(FarmConfig {
            guests: vec![GuestSpec::default(); n],
            horizon: Some(horizon),
            ..FarmConfig::default()
        })
        .expect("farm launches");
        let t0 = Instant::now();
        // Generous ceiling: a fleet that cannot settle in this long is a
        // finding, not a hang.
        let settled = farm.wait_settled(Duration::from_secs(120 + 2 * n as u64));
        let wall_seconds = t0.elapsed().as_secs_f64();
        let rss_after = rss_kb();

        let total_instret = control_request(farm.control_port(), "stats")
            .map(|s| first_u64(&s, "instret"))
            .unwrap_or(0);

        let sessions = session_storm(farm.ports(), cfg.session_clients.min(n), cfg.session_window);
        farm.shutdown();

        let per_guest = total_instret as f64 / wall_seconds / n as f64;
        let base = points
            .first()
            .map(|p| p.per_guest_instr_per_sec)
            .unwrap_or(per_guest);
        points.push(FleetPoint {
            guests: n,
            settled,
            wall_seconds,
            total_instret,
            instr_per_host_sec: total_instret as f64 / wall_seconds,
            per_guest_instr_per_sec: per_guest,
            degradation_vs_base: per_guest / base.max(1.0),
            mem_per_guest_kb: rss_after.saturating_sub(rss_before) / n as u64,
            sessions,
            sessions_per_sec: sessions as f64 / cfg.session_window.as_secs_f64().max(1e-9),
        });
    }
    points
}

pub fn farm_report(cfg: &FarmBenchConfig, points: &[FleetPoint]) -> Report {
    let mut r = Report::new(format!(
        "Debug farm scaling — {} simulated ms per fleet, {:.0} s session window",
        cfg.horizon_ms,
        cfg.session_window.as_secs_f64()
    ))
    .column("guests", Align::Right)
    .column("settled", Align::Left)
    .column("wall s", Align::Right)
    .column("instr/s total", Align::Right)
    .column("instr/s per guest", Align::Right)
    .column("vs N=1", Align::Right)
    .column("mem/guest KiB", Align::Right)
    .column("sessions/s", Align::Right);
    for p in points {
        r.row([
            p.guests.to_string(),
            if p.settled { "yes" } else { "NO" }.to_string(),
            format!("{:.2}", p.wall_seconds),
            format!("{:.0}", p.instr_per_host_sec),
            format!("{:.0}", p.per_guest_instr_per_sec),
            format!("{:.2}", p.degradation_vs_base),
            p.mem_per_guest_kb.to_string(),
            format!("{:.1}", p.sessions_per_sec),
        ]);
    }
    r
}

fn farm_section(cfg: &FarmBenchConfig, points: &[FleetPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"guests\": {}, \"settled\": {}, \"wall_seconds\": {:.4}, \
                 \"total_instret\": {}, \"instr_per_host_sec\": {:.0}, \
                 \"per_guest_instr_per_sec\": {:.0}, \"degradation_vs_base\": {:.4}, \
                 \"mem_per_guest_kb\": {}, \"sessions\": {}, \"sessions_per_sec\": {:.2}}}",
                p.guests,
                p.settled,
                p.wall_seconds,
                p.total_instret,
                p.instr_per_host_sec,
                p.per_guest_instr_per_sec,
                p.degradation_vs_base,
                p.mem_per_guest_kb,
                p.sessions,
                p.sessions_per_sec,
            )
        })
        .collect();
    format!(
        "{{\n    \"horizon_ms\": {}, \"session_window_s\": {:.1},\n    \"points\": [\n      {}\n    ]\n  }}",
        cfg.horizon_ms,
        cfg.session_window.as_secs_f64(),
        rows.join(",\n      ")
    )
}

/// Standalone JSON document.
pub fn farm_json(cfg: &FarmBenchConfig, points: &[FleetPoint]) -> String {
    format!(
        "{{\n  \"bench\": \"farm\",\n  \"farm\": {}\n}}\n",
        farm_section(cfg, points)
    )
}

/// Splices the `"farm"` section into an existing Fig. 3.1 document,
/// replacing a previous one (the same idiom as the survivability merge).
pub fn merge_farm(fig3_1: &str, cfg: &FarmBenchConfig, points: &[FleetPoint]) -> String {
    let section = farm_section(cfg, points);
    let trimmed = fig3_1.trim_end();
    let body = match trimmed.find(",\n  \"farm\":") {
        Some(at) => &trimmed[..at],
        None => match trimmed.strip_suffix('}') {
            Some(b) => b.trim_end().trim_end_matches(','),
            None => return farm_json(cfg, points),
        },
    };
    format!("{body},\n  \"farm\": {section}\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_u64_reads_the_totals_object() {
        let json = r#"{"qstats":{"instret":42},"guests":[{"instret":21},{"instret":21}]}"#;
        assert_eq!(first_u64(json, "instret"), 42);
        assert_eq!(first_u64(json, "missing"), 0);
    }

    #[test]
    fn merge_replaces_a_previous_farm_section() {
        let cfg = FarmBenchConfig::fast();
        let points = vec![FleetPoint {
            guests: 1,
            settled: true,
            wall_seconds: 1.0,
            total_instret: 10,
            instr_per_host_sec: 10.0,
            per_guest_instr_per_sec: 10.0,
            degradation_vs_base: 1.0,
            mem_per_guest_kb: 7,
            sessions: 3,
            sessions_per_sec: 3.0,
        }];
        let doc = "{\n  \"bench\": \"fig3_1\"\n}\n";
        let once = merge_farm(doc, &cfg, &points);
        let twice = merge_farm(&once, &cfg, &points);
        assert_eq!(once, twice, "re-merge replaces, never duplicates");
        assert!(once.contains("\"bench\": \"fig3_1\""));
        assert!(once.contains("\"mem_per_guest_kb\": 7"));
        assert_eq!(once.matches("\"farm\":").count(), 1);
    }
}
