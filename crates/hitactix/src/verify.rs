//! End-to-end data-integrity verification.
//!
//! The disks hold deterministic content ([`hx_machine::disk::disk_byte`])
//! and the kernel's refill schedule is deterministic, so the exact byte
//! stream that should cross the wire can be recomputed in Rust and compared
//! against captured frames — proving that zero-copy DMA, scatter-gather,
//! checksumming and the monitors' passthrough/relay paths never corrupted a
//! byte.

use crate::kernel::layout;
use hx_machine::disk;

/// The kernel's custom UDP checksum: ones'-complement fold of the 32-bit
/// little-endian word sum of the payload (length must be a multiple of 4).
pub fn udp_checksum(payload: &[u8]) -> u16 {
    assert_eq!(payload.len() % 4, 0, "payload length must be word-aligned");
    let mut acc: u32 = 0;
    for w in payload.chunks(4) {
        let v = u32::from_le_bytes(w.try_into().unwrap());
        let (sum, carry) = acc.overflowing_add(v);
        acc = sum + carry as u32;
    }
    let mut s = (acc >> 16) + (acc & 0xffff);
    s = (s >> 16) + (s & 0xffff);
    !(s as u16)
}

/// Which disk chunk fills the `k`-th *consumed* buffer.
///
/// Buffers are consumed round-robin (0..6); buffer `b` serves unit `b % 3`,
/// and each unit's two buffers alternate chunks (`b` gets even chunks,
/// `b + 3` odd ones).
pub fn consumed_buffer_source(k: u64) -> (u8, u32) {
    let b = (k % 6) as u32;
    let unit = (b % 3) as u8;
    let chunk = 2 * (k / 6) as u32 + if b >= 3 { 1 } else { 0 };
    (unit, chunk * layout::CHUNK_SECTORS)
}

/// Iterator over the expected per-frame UDP payloads, in emission order.
#[derive(Debug, Clone)]
pub struct ExpectedPayloads {
    buffer: Vec<u8>,
    buffer_index: u64,
    offset: usize,
}

impl Default for ExpectedPayloads {
    fn default() -> Self {
        Self::new()
    }
}

impl ExpectedPayloads {
    /// Starts at the first frame of the stream.
    pub fn new() -> ExpectedPayloads {
        ExpectedPayloads {
            buffer: Vec::new(),
            buffer_index: 0,
            offset: 0,
        }
    }

    fn refill(&mut self) {
        let (unit, lba) = consumed_buffer_source(self.buffer_index);
        self.buffer = vec![0u8; layout::BUF_SIZE as usize];
        disk::fill_expected(unit, lba, &mut self.buffer);
        self.buffer_index += 1;
        self.offset = 0;
    }
}

impl Iterator for ExpectedPayloads {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        if self.offset >= self.buffer.len() {
            self.refill();
        }
        let len = (layout::FRAME_PAYLOAD as usize).min(self.buffer.len() - self.offset);
        let out = self.buffer[self.offset..self.offset + len].to_vec();
        self.offset += len;
        Some(out)
    }
}

/// Verifies a sequence of captured wire frames against the expected stream.
///
/// Checks framing (Ethernet/IP/UDP header fields), the software UDP
/// checksum, and every payload byte.
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn verify_frames(frames: &[Vec<u8>]) -> Result<(), String> {
    let mut expected = ExpectedPayloads::new();
    for (i, frame) in frames.iter().enumerate() {
        let fail = |msg: String| Err(format!("frame {i}: {msg}"));
        if frame.len() < layout::HDR_LEN as usize {
            return fail(format!("too short ({})", frame.len()));
        }
        let (hdr, payload) = frame.split_at(layout::HDR_LEN as usize);
        // Ethernet.
        if hdr[12] != 0x08 || hdr[13] != 0x00 {
            return fail("bad ethertype".into());
        }
        // IP.
        if hdr[14] != 0x45 || hdr[22] != 64 || hdr[23] != 17 {
            return fail("bad IP fixed fields".into());
        }
        let ip_len = u16::from_be_bytes([hdr[16], hdr[17]]) as usize;
        if ip_len != 28 + payload.len() {
            return fail(format!("ip len {ip_len} != {}", 28 + payload.len()));
        }
        let id = u16::from_be_bytes([hdr[18], hdr[19]]);
        if id as usize != i & 0xffff {
            return fail(format!("ip id {id} != sequence {i}"));
        }
        // IP header checksum validates to zero-sum.
        let mut sum = 0u32;
        for pair in hdr[14..34].chunks(2) {
            sum += u32::from(pair[0]) << 8 | u32::from(pair[1]);
        }
        while sum >> 16 != 0 {
            sum = (sum >> 16) + (sum & 0xffff);
        }
        if sum != 0xffff {
            return fail(format!("ip checksum folds to {sum:#x}"));
        }
        // UDP.
        let udp_len = u16::from_be_bytes([hdr[38], hdr[39]]) as usize;
        if udp_len != 8 + payload.len() {
            return fail(format!("udp len {udp_len} != {}", 8 + payload.len()));
        }
        let ck = u16::from_le_bytes([hdr[40], hdr[41]]);
        if ck != udp_checksum(payload) {
            return fail("udp payload checksum mismatch".into());
        }
        // Payload content.
        let want = expected.next().unwrap();
        if payload != want {
            let first_bad = payload.iter().zip(&want).position(|(a, b)| a != b);
            return fail(format!(
                "payload mismatch (len {} vs {}, first differing byte {:?})",
                payload.len(),
                want.len(),
                first_bad
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_reference_values() {
        assert_eq!(udp_checksum(&[0, 0, 0, 0]), 0xffff);
        assert_eq!(udp_checksum(&[1, 0, 0, 0]), 0xfffe);
        // Carry folding: 0xffffffff word sums to 0x1fffe -> fold 0xffff -> !0 = 0
        assert_eq!(udp_checksum(&[0xff, 0xff, 0xff, 0xff]), 0);
    }

    #[test]
    fn schedule_alternates_chunks() {
        assert_eq!(consumed_buffer_source(0), (0, 0));
        assert_eq!(consumed_buffer_source(1), (1, 0));
        assert_eq!(consumed_buffer_source(2), (2, 0));
        assert_eq!(consumed_buffer_source(3), (0, layout::CHUNK_SECTORS));
        assert_eq!(consumed_buffer_source(4), (1, layout::CHUNK_SECTORS));
        assert_eq!(consumed_buffer_source(6), (0, 2 * layout::CHUNK_SECTORS));
        assert_eq!(consumed_buffer_source(9), (0, 3 * layout::CHUNK_SECTORS));
    }

    #[test]
    fn expected_payloads_tile_buffers() {
        let sizes: Vec<usize> = ExpectedPayloads::new().take(92).map(|p| p.len()).collect();
        // 90 full frames, one 32-byte tail, then the next buffer begins.
        assert_eq!(sizes[..90], vec![1456; 90][..]);
        assert_eq!(sizes[90], 32);
        assert_eq!(sizes[91], 1456);
        let total: usize = sizes[..91].iter().sum();
        assert_eq!(total, layout::BUF_SIZE as usize);
    }

    #[test]
    fn verify_catches_corruption() {
        // Build one correct frame by hand and check verify passes/fails.
        let payload: Vec<u8> = ExpectedPayloads::new().next().unwrap();
        let mut frame = build_frame(0, &payload);
        assert_eq!(verify_frames(&[frame.clone()]), Ok(()));
        frame[60] ^= 1; // corrupt a payload byte
        let err = verify_frames(&[frame]).unwrap_err();
        assert!(
            err.contains("checksum") || err.contains("mismatch"),
            "{err}"
        );
    }

    /// Builds a frame exactly as the kernel does (test reference).
    fn build_frame(seq: u16, payload: &[u8]) -> Vec<u8> {
        let mut h = vec![
            0x02, 0, 0, 0, 0, 0x02, 0x02, 0, 0, 0, 0, 0x01, 0x08, 0x00, // eth
            0x45, 0, 0, 0, 0, 0, 0x40, 0x00, 64, 17, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2, // ip
            0x12, 0x34, 0x12, 0x35, 0, 0, 0, 0, // udp
        ];
        let ip_len = (28 + payload.len()) as u16;
        h[16..18].copy_from_slice(&ip_len.to_be_bytes());
        h[18..20].copy_from_slice(&seq.to_be_bytes());
        let mut sum = 0u32;
        for pair in h[14..34].chunks(2) {
            sum += u32::from(pair[0]) << 8 | u32::from(pair[1]);
        }
        while sum >> 16 != 0 {
            sum = (sum >> 16) + (sum & 0xffff);
        }
        let ck = !(sum as u16);
        h[24..26].copy_from_slice(&ck.to_be_bytes());
        let udp_len = (8 + payload.len()) as u16;
        h[38..40].copy_from_slice(&udp_len.to_be_bytes());
        h[40..42].copy_from_slice(&udp_checksum(payload).to_le_bytes());
        h.extend_from_slice(payload);
        h
    }
}
