//! Small auxiliary guest programs for the debugging examples and tests.

use hx_asm::{assemble, Program};

/// A well-behaved counting kernel with a subroutine — the standard target
/// for breakpoint/step/inspect sessions.
///
/// Symbols: `start`, `main_loop`, `bump` (the subroutine), `counter` (a
/// word in memory incremented once per loop), `message` (a string).
pub fn counter_guest() -> Program {
    assemble(
        "        .org 0x1000
         start:  li   sp, 0x8000
                 la   s0, counter
         main_loop:
                 jal  bump
                 j    main_loop
         bump:   lw   t0, 0(s0)
                 addi t0, t0, 1
                 sw   t0, 0(s0)
                 ret
                 .align 4
         counter:
                 .word 0
         message:
                 .asciz \"hitactix counter guest\"
        ",
    )
    .expect("counter guest assembles")
}

/// A kernel with a latent bug: after `trigger` iterations it scribbles over
/// its **own** memory — data, then its trap vector, then its code — and
/// finally jumps into the wreckage.
///
/// On the lightweight monitor the debug stub keeps answering afterwards
/// (its state lives in monitor memory); with an OS-embedded stub the
/// debugger goes silent. This is the paper's stability claim in executable
/// form.
///
/// Symbols: `start`, `main_loop`, `rampage`, `counter`.
pub fn buggy_guest(trigger: u32) -> Program {
    assemble(&format!(
        "        .org 0x1000
         start:  li   sp, 0x8000
                 la   t0, handler
                 csrw tvec, t0
                 la   s0, counter
                 li   s1, {trigger}
         main_loop:
                 lw   t0, 0(s0)
                 addi t0, t0, 1
                 sw   t0, 0(s0)
                 blt  t0, s1, main_loop
         rampage:
                 ; wipe the first 64 KiB top-down: stack, any embedded
                 ; debugger state, the vectors, and finally this very code
                 li   t0, 0x10000
                 li   t2, 0xdeadbeef
         wipe:   addi t0, t0, -4
                 sw   t2, 0(t0)
                 bnez t0, wipe
                 jr   t2                 ; wild jump (if the loop survives)
         handler:
                 j    handler
                 .align 4
         counter:
                 .word 0
        ",
    ))
    .expect("buggy guest assembles")
}

/// A kernel that builds page tables, drops to user mode, and lets the user
/// task attempt an illegal write — the three-level-protection demo.
///
/// The kernel records the fault cause it observes at `observed` (offset
/// `0x900`), mirroring the protection test in the `lvmm` crate.
///
/// Symbols: `start`, `ktrap`, `user_code`.
pub fn protection_guest() -> Program {
    assemble(
        "        .equ PT_ROOT, 0x100000
                 .equ PT_L2,   0x101000
                 .equ USERPG,  0x102000
                 .equ OBSERVED, 0x900
                 .org 0x1000
         start:  li   sp, 0x8000
                 la   t0, ktrap
                 csrw tvec, t0
                 li   t0, PT_ROOT
                 li   t1, PT_L2 + 1
                 sw   t1, 0(t0)
                 li   t0, PT_L2
                 li   t1, 0x0000000f
                 li   t2, 16
         lp:     sw   t1, 0(t0)
                 addi t0, t0, 4
                 li   t3, 0x1000
                 add  t1, t1, t3
                 addi t2, t2, -1
                 bnez t2, lp
                 li   t0, PT_L2 + 0x400
                 li   t1, PT_ROOT + 0xf
                 sw   t1, 0(t0)
                 li   t1, PT_L2 + 0xf
                 sw   t1, 4(t0)
                 li   t1, USERPG + 0x1f
                 sw   t1, 8(t0)
                 li   t0, PT_ROOT + 1
                 csrw ptbr, t0
                 tlbflush
                 ; user code: sw zero, 0(zero); spin
                 li   t0, USERPG
                 lui  t1, 0x6800          ; sw r0, 0(r0)
                 sw   t1, 0(t0)
                 csrw epc, t0
                 csrw status, 0           ; previous mode = user
                 tret
         ktrap:  csrr t0, cause
                 sw   t0, OBSERVED(zero)
         done:   j    done
         user_code:
        ",
    )
    .expect("protection guest assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guests_assemble_with_symbols() {
        let c = counter_guest();
        assert!(c.symbols.get("bump").is_some());
        assert!(c.symbols.get("counter").is_some());
        let b = buggy_guest(100);
        assert!(b.symbols.get("rampage").is_some());
        let p = protection_guest();
        assert!(p.symbols.get("ktrap").is_some());
    }

    #[test]
    fn counter_guest_counts_on_raw_hardware() {
        use hx_machine::{Machine, MachineConfig, Platform, RawPlatform};
        let program = counter_guest();
        let mut machine = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..MachineConfig::default()
        });
        machine.load_program(&program);
        let mut hw = RawPlatform::new(machine);
        hw.run_for(20_000);
        let counter = program.symbols.get("counter").unwrap();
        assert!(hw.machine().mem.word(counter) > 10);
    }

    #[test]
    fn buggy_guest_destroys_itself() {
        use hx_machine::{Machine, MachineConfig, Platform};
        let program = buggy_guest(10);
        let mut machine = Machine::new(MachineConfig {
            ram_size: 8 << 20,
            ..MachineConfig::default()
        });
        machine.load_program(&program);
        // Run under the lightweight monitor: the rampage must not escape
        // the guest, and the monitor must survive.
        let mut vmm = lvmm::LvmmPlatform::new(machine, 0x1000);
        vmm.run_for(5_000_000);
        // Guest memory is trashed (including where an embedded debugger
        // would keep its state)...
        assert_eq!(
            vmm.machine().mem.word(crate::embedded::STATE_BASE),
            0xdead_beef
        );
        // ...but the monitor noticed and parked the guest for debugging.
        assert!(vmm.guest_stopped(), "monitor catches the runaway guest");
    }
}
