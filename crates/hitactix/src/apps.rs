//! Small auxiliary guest programs for the debugging examples and tests.

use hx_asm::{assemble, Program};

/// A well-behaved counting kernel with a subroutine — the standard target
/// for breakpoint/step/inspect sessions.
///
/// Symbols: `start`, `main_loop`, `bump` (the subroutine), `counter` (a
/// word in memory incremented once per loop), `message` (a string).
pub fn counter_guest() -> Program {
    assemble(
        "        .org 0x1000
         start:  li   sp, 0x8000
                 la   s0, counter
         main_loop:
                 jal  bump
                 j    main_loop
         bump:   lw   t0, 0(s0)
                 addi t0, t0, 1
                 sw   t0, 0(s0)
                 ret
                 .align 4
         counter:
                 .word 0
         message:
                 .asciz \"hitactix counter guest\"
        ",
    )
    .expect("counter guest assembles")
}

/// A kernel with a latent bug: after `trigger` iterations it scribbles over
/// its **own** memory — data, then its trap vector, then its code — and
/// finally jumps into the wreckage.
///
/// On the lightweight monitor the debug stub keeps answering afterwards
/// (its state lives in monitor memory); with an OS-embedded stub the
/// debugger goes silent. This is the paper's stability claim in executable
/// form.
///
/// Symbols: `start`, `main_loop`, `rampage`, `counter`.
pub fn buggy_guest(trigger: u32) -> Program {
    assemble(&format!(
        "        .org 0x1000
         start:  li   sp, 0x8000
                 la   t0, handler
                 csrw tvec, t0
                 la   s0, counter
                 li   s1, {trigger}
         main_loop:
                 lw   t0, 0(s0)
                 addi t0, t0, 1
                 sw   t0, 0(s0)
                 blt  t0, s1, main_loop
         rampage:
                 ; wipe the first 64 KiB top-down: stack, any embedded
                 ; debugger state, the vectors, and finally this very code
                 li   t0, 0x10000
                 li   t2, 0xdeadbeef
         wipe:   addi t0, t0, -4
                 sw   t2, 0(t0)
                 bnez t0, wipe
                 jr   t2                 ; wild jump (if the loop survives)
         handler:
                 j    handler
                 .align 4
         counter:
                 .word 0
        ",
    ))
    .expect("buggy guest assembles")
}

/// A kernel that builds page tables, drops to user mode, and lets the user
/// task attempt an illegal write — the three-level-protection demo.
///
/// The kernel records the fault cause it observes at `observed` (offset
/// `0x900`), mirroring the protection test in the `lvmm` crate.
///
/// Symbols: `start`, `ktrap`, `user_code`.
pub fn protection_guest() -> Program {
    assemble(
        "        .equ PT_ROOT, 0x100000
                 .equ PT_L2,   0x101000
                 .equ USERPG,  0x102000
                 .equ OBSERVED, 0x900
                 .org 0x1000
         start:  li   sp, 0x8000
                 la   t0, ktrap
                 csrw tvec, t0
                 li   t0, PT_ROOT
                 li   t1, PT_L2 + 1
                 sw   t1, 0(t0)
                 li   t0, PT_L2
                 li   t1, 0x0000000f
                 li   t2, 16
         lp:     sw   t1, 0(t0)
                 addi t0, t0, 4
                 li   t3, 0x1000
                 add  t1, t1, t3
                 addi t2, t2, -1
                 bnez t2, lp
                 li   t0, PT_L2 + 0x400
                 li   t1, PT_ROOT + 0xf
                 sw   t1, 0(t0)
                 li   t1, PT_L2 + 0xf
                 sw   t1, 4(t0)
                 li   t1, USERPG + 0x1f
                 sw   t1, 8(t0)
                 li   t0, PT_ROOT + 1
                 csrw ptbr, t0
                 tlbflush
                 ; user code: sw zero, 0(zero); spin
                 li   t0, USERPG
                 lui  t1, 0x6800          ; sw r0, 0(r0)
                 sw   t1, 0(t0)
                 csrw epc, t0
                 csrw status, 0           ; previous mode = user
                 tret
         ktrap:  csrr t0, cause
                 sw   t0, OBSERVED(zero)
         done:   j    done
         user_code:
        ",
    )
    .expect("protection guest assembles")
}

/// Fixed data addresses of the SMP demo guests, shared with the tooling
/// (`dbgctl diverge --race`) and the SMP tests.
pub mod smp_layout {
    /// The racy shared counter — deliberately equal to the default
    /// [`FaultPlan::race_addr`](hx_machine::Machine::enable_fault_injection)
    /// so `--fault racy-increment` clobbers the word the demo watches.
    pub const COUNTER: u32 = 0x900;
    /// Per-core private tallies: core `i` owns `TALLY + 4 * i` and nobody
    /// else writes it, so `sum(tallies)` is the increment count actually
    /// performed. The racy `COUNTER` can only fall *behind* that sum.
    pub const TALLY: u32 = 0x910;
    /// IPI ping log (`smp_ping_guest` only): delivered vectors, in order.
    pub const PING_COUNT: u32 = 0x920;
    /// Base of the delivered-vector log, one word per delivery.
    pub const PING_LOG: u32 = 0x930;
    /// `smp_trace_guest` only: IPIs acknowledged by core 1, bumped by its
    /// handler after it closes the cross-core tracepoint span.
    pub const TRACE_ACK: u32 = 0x940;
    /// Tracepoint id of the cross-core span `smp_trace_guest` measures
    /// (begun on core 0 at IPI send, ended on core 1 in the handler).
    pub const TRACE_SPAN_ID: u32 = 7;
    /// Tracepoint id of the instant mark core 1's handler emits.
    pub const TRACE_MARK_ID: u32 = 9;
}

/// A two-core IPI bring-up guest: core 0 publishes the secondary entry
/// point, fires IPI lines 3, 1, 2 at the still-parked core 1 (they latch
/// in its pending mask), then wakes it with a startup IPI. Core 1 logs
/// each delivered vector (in delivery order) at [`smp_layout::PING_LOG`]
/// and counts them at [`smp_layout::PING_COUNT`] — so a test can assert
/// that simultaneously pending lines drain lowest-first (vectors 49, 50,
/// 51) on every platform.
///
/// Symbols: `start`, `main`, `side`, `handler`.
pub fn smp_ping_guest() -> Program {
    use hx_machine::{map, smp};
    assemble(&format!(
        "        .org 0x1000
         start:  li   t0, {entry:#x}
                 la   t1, side
                 sw   t1, 0(t0)
                 li   t0, {send:#x}
                 li   t1, 0x301         ; line 3 -> core 1 (latches: parked)
                 sw   t1, 0(t0)
                 li   t1, 0x101         ; line 1 -> core 1
                 sw   t1, 0(t0)
                 li   t1, 0x201         ; line 2 -> core 1
                 sw   t1, 0(t0)
                 li   t1, 1             ; line 0: start core 1
                 sw   t1, 0(t0)
         main:   addi s0, s0, 1
                 j    main
         side:   la   t0, handler
                 csrw tvec, t0
                 csrw status, 1         ; IE
         spin:   addi s1, s1, 1
                 j    spin
         handler:
                 csrr t0, tval          ; delivered vector
                 lw   t1, {count:#x}(zero)
                 add  t2, t1, t1
                 add  t2, t2, t2        ; count * 4
                 li   t3, {log:#x}
                 add  t3, t3, t2
                 sw   t0, 0(t3)
                 addi t1, t1, 1
                 sw   t1, {count:#x}(zero)
                 tret
        ",
        entry = map::PIC_BASE + smp::reg::ENTRY,
        send = map::PIC_BASE + smp::reg::SEND,
        count = smp_layout::PING_COUNT,
        log = smp_layout::PING_LOG,
    ))
    .expect("smp ping guest assembles")
}

/// The guest-tracepoint SMP demo: core 0 opens tracepoint span
/// [`smp_layout::TRACE_SPAN_ID`] on the paravirtual `TRACE` page, fires an
/// IPI at core 1, and waits for the acknowledge count at
/// [`smp_layout::TRACE_ACK`] to advance before opening the next span. Core
/// 1's IPI handler emits instant mark [`smp_layout::TRACE_MARK_ID`],
/// *closes* the span — so every span begins on core 0 and ends on core 1,
/// and its duration is the guest-observed IPI round latency — and then
/// bumps the acknowledge count.
///
/// With causal tracing on, each iteration contributes one `ipi` flow
/// (monitor-observed send→delivery) and one cross-core `span` flow
/// (guest-observed send→handler); the gap between the two latencies is the
/// interrupt-entry cost the kernel actually paid. Without a tracker the
/// `TRACE` stores are plain journaled MMIO writes — the run is identical.
///
/// Needs at least 2 cores. Symbols: `start`, `main`, `wait`, `side`,
/// `handler`.
pub fn smp_trace_guest() -> Program {
    use hx_machine::{map, smp};
    assemble(&format!(
        "        .org 0x1000
         start:  li   t0, {entry:#x}
                 la   t1, side
                 sw   t1, 0(t0)
                 li   t3, {send:#x}
                 li   t1, 1             ; line 0: start core 1
                 sw   t1, 0(t3)
                 li   s0, {tbegin:#x}
                 li   s1, {span}
                 li   s3, 0             ; last-seen ack count
         main:   sw   s1, 0(s0)         ; begin span (core 0)
                 li   t1, 0x101         ; line 1 -> core 1
                 sw   t1, 0(t3)
         wait:   lw   t2, {ack:#x}(zero)
                 beq  t2, s3, wait      ; spin until core 1 acknowledges
                 add  s3, t2, zero
                 j    main
         side:   la   t0, handler
                 csrw tvec, t0
                 csrw status, 1         ; IE
         spin:   addi s2, s2, 1
                 j    spin
         handler:
                 li   t3, {tmark:#x}
                 li   t0, {mark}
                 sw   t0, 0(t3)         ; instant mark (core 1)
                 li   t3, {tend:#x}
                 li   t0, {span}
                 sw   t0, 0(t3)         ; end span (core 1)
                 lw   t1, {ack:#x}(zero)
                 addi t1, t1, 1
                 sw   t1, {ack:#x}(zero)
                 tret
        ",
        entry = map::PIC_BASE + smp::reg::ENTRY,
        send = map::PIC_BASE + smp::reg::SEND,
        tbegin = map::TRACE_BASE + map::trace::BEGIN,
        tend = map::TRACE_BASE + map::trace::END,
        tmark = map::TRACE_BASE + map::trace::INSTANT,
        span = smp_layout::TRACE_SPAN_ID,
        mark = smp_layout::TRACE_MARK_ID,
        ack = smp_layout::TRACE_ACK,
    ))
    .expect("smp trace guest assembles")
}

/// An all-cores bring-up guest for throughput ablations: core 0 publishes
/// the shared secondary entry point, sends a startup IPI to every other
/// core, and then every core — core 0 included — spins incrementing its
/// private tally at [`smp_layout::TALLY`]` + 4 * core_id`. Total retired
/// instructions across cores measure how simulation speed scales with the
/// core count (the benchmark's `smp_sim_speed` sweep).
///
/// Runs unchanged at any core count, including one (no secondaries to
/// wake, the bring-up loop falls straight through).
///
/// Symbols: `start`, `bring`, `work`, `tick`.
pub fn smp_spin_guest() -> Program {
    use hx_machine::{map, smp};
    assemble(&format!(
        "        .org 0x1000
         start:  li   t0, {entry:#x}
                 la   t1, work
                 sw   t1, 0(t0)
                 li   t0, {ncores:#x}
                 lw   t1, 0(t0)         ; t1 = core count
                 li   t2, 1
                 li   t3, {send:#x}
         bring:  blt  t2, t1, wake
                 j    work
         wake:   sw   t2, 0(t3)         ; line 0 -> core t2
                 addi t2, t2, 1
                 j    bring
         work:   li   t0, {coreid:#x}
                 lw   t1, 0(t0)
                 add  t1, t1, t1
                 add  t1, t1, t1        ; core_id * 4
                 li   t2, {tally:#x}
                 add  t2, t2, t1        ; this core's tally
         tick:   lw   t0, 0(t2)
                 addi t0, t0, 1
                 sw   t0, 0(t2)
                 j    tick
        ",
        entry = map::PIC_BASE + smp::reg::ENTRY,
        ncores = map::PIC_BASE + smp::reg::NUM_CORES,
        send = map::PIC_BASE + smp::reg::SEND,
        coreid = map::PIC_BASE + smp::reg::CORE_ID,
        tally = smp_layout::TALLY,
    ))
    .expect("smp spin guest assembles")
}

/// The cross-core race demo: every core increments the shared word at
/// [`smp_layout::COUNTER`] with an unsynchronized load/add/store, *and*
/// its own private tally at [`smp_layout::TALLY`]` + 4 * core_id`. Because
/// each core bumps the shared counter before its tally, the invariant
/// `counter >= sum(tallies)` holds on every correct interleaving — a lost
/// update (a quantum switch splitting the read-modify-write, or the
/// `racy-increment` fault class replaying a stale value) is the only thing
/// that can break it. `dbgctl diverge --race` seeks to the first cycle it
/// breaks.
///
/// On a single-core machine the guest skips the IPI bring-up (it reads
/// `NUM_CORES` first) and just counts — no race is possible, which is what
/// makes the 1-core run the control.
///
/// Symbols: `start`, `loop0`, `side`.
pub fn racy_counter_guest() -> Program {
    use hx_machine::{map, smp};
    assemble(&format!(
        "        .org 0x1000
         start:  li   t0, {ncores:#x}
                 lw   t1, 0(t0)
                 li   t2, 2
                 blt  t1, t2, loop0     ; single-core control run
                 li   t0, {entry:#x}
                 la   t1, side
                 sw   t1, 0(t0)
                 li   t0, {send:#x}
                 li   t1, 1             ; line 0: start core 1
                 sw   t1, 0(t0)
         loop0:  lw   t0, {counter:#x}(zero)
                 addi t0, t0, 1
                 sw   t0, {counter:#x}(zero)
                 lw   t1, {tally:#x}(zero)
                 addi t1, t1, 1
                 sw   t1, {tally:#x}(zero)
                 j    loop0
         side:   lw   t0, {counter:#x}(zero)
                 addi t0, t0, 1
                 sw   t0, {counter:#x}(zero)
                 lw   t1, {tally1:#x}(zero)
                 addi t1, t1, 1
                 sw   t1, {tally1:#x}(zero)
                 j    side
        ",
        ncores = map::PIC_BASE + smp::reg::NUM_CORES,
        entry = map::PIC_BASE + smp::reg::ENTRY,
        send = map::PIC_BASE + smp::reg::SEND,
        counter = smp_layout::COUNTER,
        tally = smp_layout::TALLY,
        tally1 = smp_layout::TALLY + 4,
    ))
    .expect("racy counter guest assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guests_assemble_with_symbols() {
        let c = counter_guest();
        assert!(c.symbols.get("bump").is_some());
        assert!(c.symbols.get("counter").is_some());
        let b = buggy_guest(100);
        assert!(b.symbols.get("rampage").is_some());
        let p = protection_guest();
        assert!(p.symbols.get("ktrap").is_some());
        let s = smp_ping_guest();
        assert!(s.symbols.get("side").is_some());
        assert!(s.symbols.get("handler").is_some());
        let r = racy_counter_guest();
        assert!(r.symbols.get("loop0").is_some());
        assert!(r.symbols.get("side").is_some());
        let w = smp_spin_guest();
        assert!(w.symbols.get("work").is_some());
        assert!(w.symbols.get("tick").is_some());
        let t = smp_trace_guest();
        assert!(t.symbols.get("main").is_some());
        assert!(t.symbols.get("handler").is_some());
    }

    #[test]
    fn trace_guest_emits_cross_core_spans() {
        use hx_machine::{Machine, MachineConfig, Platform, RawPlatform};
        let program = smp_trace_guest();
        let mut machine = Machine::new(MachineConfig {
            num_cores: 2,
            ..MachineConfig::default()
        });
        machine.load_program(&program);
        machine.obs.enable_tracing();
        machine.obs.enable_causal();
        let mut hw = RawPlatform::new(machine);
        hw.run_for(2_000_000);
        let m = hw.machine();
        let acks = m.mem.word(smp_layout::TRACE_ACK);
        assert!(acks > 2, "core 1 acknowledged IPIs (got {acks})");
        let c = m.obs.causal().unwrap();
        let spans: Vec<_> = c
            .flows()
            .iter()
            .filter(|f| f.class == hx_obs::FlowClass::Span)
            .collect();
        assert!(!spans.is_empty(), "guest spans completed");
        // Every span opens on core 0 (the sender) and closes on core 1
        // (the handler) — the whole point of the demo.
        assert!(spans
            .iter()
            .all(|f| f.key == smp_layout::TRACE_SPAN_ID && f.begin_core == 0 && f.end_core == 1));
        assert!(c.instants() >= acks as u64, "handler marks recorded");
        // The guest-observed round trip can never beat the monitor-observed
        // IPI delivery it contains.
        let ipi = c.hist(hx_obs::FlowClass::Ipi);
        let span = c.hist(hx_obs::FlowClass::Span);
        assert!(ipi.count() > 0, "ipi flows tracked");
        assert!(span.p50() >= ipi.p50());
    }

    #[test]
    fn counter_guest_counts_on_raw_hardware() {
        use hx_machine::{Machine, MachineConfig, Platform, RawPlatform};
        let program = counter_guest();
        let mut machine = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..MachineConfig::default()
        });
        machine.load_program(&program);
        let mut hw = RawPlatform::new(machine);
        hw.run_for(20_000);
        let counter = program.symbols.get("counter").unwrap();
        assert!(hw.machine().mem.word(counter) > 10);
    }

    #[test]
    fn buggy_guest_destroys_itself() {
        use hx_machine::{Machine, MachineConfig, Platform};
        let program = buggy_guest(10);
        let mut machine = Machine::new(MachineConfig {
            ram_size: 8 << 20,
            ..MachineConfig::default()
        });
        machine.load_program(&program);
        // Run under the lightweight monitor: the rampage must not escape
        // the guest, and the monitor must survive.
        let mut vmm = lvmm::LvmmPlatform::new(machine, 0x1000);
        vmm.run_for(5_000_000);
        // Guest memory is trashed (including where an embedded debugger
        // would keep its state)...
        assert_eq!(
            vmm.machine().mem.word(crate::embedded::STATE_BASE),
            0xdead_beef
        );
        // ...but the monitor noticed and parked the guest for debugging.
        assert!(vmm.guest_stopped(), "monitor catches the runaway guest");
    }
}
