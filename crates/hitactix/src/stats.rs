//! Reading the kernel's in-memory statistics block from the host side.

use crate::kernel::layout;
use hx_machine::Machine;

/// Snapshot of the guest kernel's statistics block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuestStats {
    /// UDP payload bytes handed to the NIC.
    pub bytes: u64,
    /// Frames emitted.
    pub frames: u32,
    /// Pacing ticks handled.
    pub ticks: u32,
    /// Times the sender waited on the disks.
    pub underruns: u32,
    /// Non-zero if the kernel took an unexpected synchronous trap
    /// (the architectural cause code).
    pub fault_cause: u32,
    /// PC of that fault.
    pub fault_pc: u32,
    /// `true` once the kernel finished booting.
    pub booted: bool,
}

impl GuestStats {
    /// Reads the statistics block out of guest memory.
    pub fn read(machine: &Machine) -> GuestStats {
        let w = |off: u32| machine.mem.word(layout::STATS + off);
        GuestStats {
            bytes: w(0) as u64 | (w(4) as u64) << 32,
            frames: w(8),
            ticks: w(12),
            underruns: w(16),
            fault_cause: w(20),
            fault_pc: w(24),
            booted: w(28) == layout::READY_MAGIC,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hx_machine::MachineConfig;

    #[test]
    fn reads_zeroed_block() {
        let machine = Machine::new(MachineConfig { ram_size: 1 << 20, ..Default::default() });
        let s = GuestStats::read(&machine);
        assert_eq!(s, GuestStats::default());
        assert!(!s.booted);
    }
}
