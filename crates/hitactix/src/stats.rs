//! Reading the kernel's in-memory statistics block from the host side.

use crate::kernel::layout;
use core::fmt;
use hx_cpu::MemSize;
use hx_machine::Machine;

/// Snapshot of the guest kernel's statistics block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuestStats {
    /// UDP payload bytes handed to the NIC.
    pub bytes: u64,
    /// Frames emitted.
    pub frames: u32,
    /// Pacing ticks handled.
    pub ticks: u32,
    /// Times the sender waited on the disks.
    pub underruns: u32,
    /// Non-zero if the kernel took an unexpected synchronous trap
    /// (the architectural cause code).
    pub fault_cause: u32,
    /// PC of that fault.
    pub fault_pc: u32,
    /// `true` once the kernel finished booting.
    pub booted: bool,
}

/// Why the statistics block could not be read.
///
/// Historically a failed read came back as an all-zero [`GuestStats`],
/// indistinguishable from a freshly booted idle kernel; callers now get an
/// explicit signal instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// The stats block lies outside the machine's RAM (image mismatch or a
    /// machine configured with too little memory).
    Unreadable,
    /// The block is readable but the kernel has not written its ready
    /// marker yet — the counters are not meaningful.
    NotBooted,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Unreadable => write!(f, "guest stats block is outside machine RAM"),
            StatsError::NotBooted => write!(f, "guest kernel has not finished booting"),
        }
    }
}

impl std::error::Error for StatsError {}

impl GuestStats {
    /// Reads the statistics block out of guest memory.
    ///
    /// # Errors
    ///
    /// [`StatsError::Unreadable`] if the block is not backed by RAM, and
    /// [`StatsError::NotBooted`] if the kernel's ready marker is absent
    /// (in which case the counters would be garbage or all zero).
    pub fn read(machine: &Machine) -> Result<GuestStats, StatsError> {
        let w = |off: u32| {
            machine
                .mem
                .read(layout::STATS + off, MemSize::Word)
                .map_err(|_| StatsError::Unreadable)
        };
        let booted = w(28)? == layout::READY_MAGIC;
        if !booted {
            return Err(StatsError::NotBooted);
        }
        Ok(GuestStats {
            bytes: w(0)? as u64 | (w(4)? as u64) << 32,
            frames: w(8)?,
            ticks: w(12)?,
            underruns: w(16)?,
            fault_cause: w(20)?,
            fault_pc: w(24)?,
            booted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hx_machine::MachineConfig;

    #[test]
    fn unbooted_block_is_an_error_not_zeros() {
        let machine = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..Default::default()
        });
        assert_eq!(GuestStats::read(&machine), Err(StatsError::NotBooted));
    }

    #[test]
    fn unmapped_block_is_an_error() {
        // Too little RAM to contain the stats block at all.
        let machine = Machine::new(MachineConfig {
            ram_size: 0x400,
            ..Default::default()
        });
        assert_eq!(GuestStats::read(&machine), Err(StatsError::Unreadable));
        assert!(!StatsError::Unreadable.to_string().is_empty());
    }
}
