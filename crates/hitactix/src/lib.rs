//! HiTactix-like guest RTOS and the paper's streaming workload.
//!
//! The paper evaluates its monitor by running the HiTactix real-time OS
//! with a data-transfer application that *"reads 2 MB data from three
//! Ultra160 SCSI disks at constant rates, splits them into 1024 KB
//! segments, and sends all segments via gigabit Ethernet using the UDP
//! protocol"*. This crate provides that guest, written in HX32 assembly and
//! assembled at runtime, so that the very same kernel image boots on all
//! three platforms (real hardware, lightweight monitor, hosted monitor):
//!
//! * [`kernel`] — the streaming kernel: interrupt-driven SCSI and NIC
//!   drivers, zero-copy UDP/IP output path (scatter-gather: header fragment
//!   plus payload fragment straight out of the disk buffer), software UDP
//!   checksum, token-bucket rate pacing off the timer, `wfi` idling.
//! * [`stats`] — the statistics block the kernel maintains in guest memory,
//!   readable from the host for measurements.
//! * [`verify`] — end-to-end data-integrity checks: the expected byte
//!   stream is recomputed from the deterministic disk content and compared
//!   against what actually crossed the wire.
//! * [`apps`] — small auxiliary guests used by the debugging examples and
//!   tests (a counter loop, a self-corrupting "buggy" kernel, a user-mode
//!   protection demo).
//! * [`embedded`] — the conventional *debugger-embedded-in-the-OS* baseline
//!   from the paper's introduction: a stub whose state lives in guest
//!   memory and dies with the guest.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use hitactix::kernel::Workload;
//! use hx_machine::{Machine, MachineConfig, Platform, RawPlatform};
//!
//! let workload = Workload::new(100); // target 100 Mbit/s
//! let mut machine = Machine::new(MachineConfig::default());
//! let program = workload.build(&machine)?;
//! machine.load_program(&program);
//! let mut hw = RawPlatform::new(machine);
//! hw.run_for(2_000_000);
//! let stats = hitactix::stats::GuestStats::read(hw.machine())?;
//! assert!(stats.frames > 0, "the stream must be flowing: {stats:?}");
//! assert_eq!(stats.fault_cause, 0, "no unexpected guest faults");
//! # Ok(())
//! # }
//! ```

pub mod apps;
pub mod embedded;
pub mod kernel;
pub mod stats;
pub mod verify;

pub use kernel::Workload;
pub use stats::{GuestStats, StatsError};
