//! The streaming kernel: the paper's data-transfer application as an
//! HX32 assembly program.
//!
//! One image runs on all three platforms. The kernel:
//!
//! * double-buffers each of the three disks (six 128 KiB buffers) and keeps
//!   a read outstanding per disk, issued from the completion interrupt;
//! * paces itself with a token bucket refilled by the timer interrupt
//!   (`credit_per_tick` bytes per tick);
//! * emits the stream as UDP/IPv4/Ethernet frames using **zero-copy
//!   scatter-gather**: a 42-byte header fragment from a reusable pool plus
//!   a payload fragment pointing straight into the disk buffer;
//! * computes the UDP checksum over the payload in software (the dominant
//!   per-byte CPU cost, as on period hardware without checksum offload);
//! * idles with `wfi` whenever it is out of credit, buffers or ring slots,
//!   so CPU load is measurable;
//! * masks interrupts (`csrc status`) around its critical sections — the
//!   classic privileged-instruction traffic that a deprivileging monitor
//!   must emulate.
//!
//! The UDP checksum convention is simplified versus RFC 768: it is the
//! ones'-complement fold of the 32-bit little-endian word sum of the
//! payload only (no pseudo-header). [`crate::verify`] checks it end to end.

use hx_asm::{assemble, AsmError, Program};
use hx_machine::{map, Machine};

/// Fixed guest-physical layout of the kernel (addresses the host side also
/// needs, e.g. for reading statistics).
pub mod layout {
    /// Globals block (driver state).
    pub const GLOB: u32 = 0x0000_0800;
    /// Statistics block (see [`crate::stats::GuestStats`]).
    pub const STATS: u32 = 0x0000_0900;
    /// Kernel entry point.
    pub const ENTRY: u32 = 0x0000_1000;
    /// Top of the kernel stack.
    pub const STACK_TOP: u32 = 0x0001_0000;
    /// Header-slot pool (128 slots × 64 B).
    pub const HDR_POOL: u32 = 0x0001_2000;
    /// TX descriptor ring (256 descriptors × 16 B).
    pub const TX_RING: u32 = 0x0001_8000;
    /// First disk buffer; six buffers of [`BUF_SIZE`] follow contiguously.
    pub const BUF_BASE: u32 = 0x0010_0000;
    /// Size of one disk buffer.
    pub const BUF_SIZE: u32 = 0x0002_0000;
    /// TX ring length in descriptors.
    pub const RING_LEN: u32 = 256;
    /// Header pool slots.
    pub const HDR_SLOTS: u32 = 128;
    /// Sectors per disk read command (= one buffer).
    pub const CHUNK_SECTORS: u32 = 256;
    /// UDP payload bytes per full frame (divisible by 16 for the unrolled
    /// checksum loop; the buffer tail yields one short 32-byte frame).
    pub const FRAME_PAYLOAD: u32 = 1456;
    /// Ethernet + IPv4 + UDP header bytes.
    pub const HDR_LEN: u32 = 42;
    /// Number of disk buffers.
    pub const NUM_BUFS: u32 = 6;
    /// Value of the boot-complete marker in the stats block.
    pub const READY_MAGIC: u32 = 0x001a_c71f;
}

/// The kernel's function-entry labels, in source order. Every other label
/// in the image is internal (a loop target or tail) and belongs to the PC
/// range of the function preceding it — the granularity the profiler
/// reports at.
pub const FUNCTIONS: &[&str] = &[
    "start",
    "main",
    "build_frame",
    "refill_request",
    "trap_entry",
    "isr_timer",
    "isr_disk",
    "isr_nic",
    "isr_eoi",
    "not_irq",
    "dead",
];

/// Function-level `(name, start, end)` half-open PC ranges of an assembled
/// kernel image — the symbol export feeding `hx_obs::SymbolMap`.
pub fn profile_symbols(program: &Program) -> Vec<(String, u32, u32)> {
    program.code_symbols_filtered(|n| FUNCTIONS.contains(&n))
}

/// The constant part of the IPv4 header checksum (all fixed fields summed
/// as big-endian halfwords, with total-length, id and checksum zero).
fn ip_checksum_base() -> u32 {
    // ver/ihl|tos, [len], [id], flags|frag, ttl|proto, [ck], src, dst
    let halves: [u32; 7] = [0x4500, 0x4000, 0x4011, 0x0a00, 0x0001, 0x0a00, 0x0002];
    halves.iter().sum()
}

/// Builder for the streaming-workload guest.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use hitactix::Workload;
/// let w = Workload::new(300).tick_hz(2_000).moderation(8);
/// assert_eq!(w.rate_mbps(), 300);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    rate_mbps: u64,
    tick_hz: u64,
    moderation: u32,
}

impl Workload {
    /// A workload targeting `rate_mbps` megabits per second of UDP payload.
    pub fn new(rate_mbps: u64) -> Workload {
        Workload {
            rate_mbps,
            tick_hz: 1_000,
            moderation: 1,
        }
    }

    /// The target payload rate in Mbit/s.
    pub fn rate_mbps(&self) -> u64 {
        self.rate_mbps
    }

    /// Sets the pacing-tick frequency (default 1 kHz).
    #[must_use]
    pub fn tick_hz(mut self, hz: u64) -> Workload {
        self.tick_hz = hz.max(1);
        self
    }

    /// Sets the NIC interrupt moderation (frames per TX interrupt,
    /// default 1 — an interrupt per frame, like period hardware).
    #[must_use]
    pub fn moderation(mut self, frames: u32) -> Workload {
        self.moderation = frames.max(1);
        self
    }

    /// Assembles the kernel for `machine`'s clock.
    ///
    /// # Errors
    ///
    /// Returns the assembler error if the generated source is invalid
    /// (which would be a bug in this builder).
    pub fn build(&self, machine: &Machine) -> Result<Program, AsmError> {
        let clock = machine.config().clock_hz;
        let tick_reload = (clock / self.tick_hz).max(1);
        let rate_bytes = self.rate_mbps * 1_000_000 / 8;
        let credit_per_tick = (rate_bytes / self.tick_hz).max(layout::FRAME_PAYLOAD as u64);
        let credit_max = credit_per_tick * 4;
        assemble(&self.source(tick_reload, credit_per_tick, credit_max))
    }

    /// The generated assembly source (exposed for listings and debugging).
    pub fn source(&self, tick_reload: u64, credit_per_tick: u64, credit_max: u64) -> String {
        let l = KERNEL_ASM;
        format!(
            "\
        .equ PIC_BASE,   {pic:#x}
        .equ PIT_BASE,   {pit:#x}
        .equ HDC_BASE,   {hdc:#x}
        .equ NIC_BASE,   {nic:#x}
        .equ GLOB,       {glob:#x}
        .equ STATS,      {stats:#x}
        .equ ENTRY,      {entry:#x}
        .equ STACK_TOP,  {stack:#x}
        .equ HDR_POOL,   {hdr:#x}
        .equ TX_RING,    {ring:#x}
        .equ BUF_BASE,   {buf:#x}
        .equ BUF_SIZE,   {bufsz:#x}
        .equ RING_LEN,   {ringlen}
        .equ HDR_SLOTS,  {hdrslots}
        .equ CHUNK_SECTORS, {chunk}
        .equ FRAME_PAYLOAD, {payload}
        .equ TICK_RELOAD, {tick_reload}
        .equ CREDIT_PER_TICK, {cpt}
        .equ CREDIT_MAX, {cmax}
        .equ MODERATION, {moderation}
        .equ IPSUM_BASE, {ipsum:#x}
        .equ READY_MAGIC, {ready:#x}
{l}",
            pic = map::PIC_BASE,
            pit = map::PIT_BASE,
            hdc = map::HDC_BASE,
            nic = map::NIC_BASE,
            glob = layout::GLOB,
            stats = layout::STATS,
            entry = layout::ENTRY,
            stack = layout::STACK_TOP,
            hdr = layout::HDR_POOL,
            ring = layout::TX_RING,
            buf = layout::BUF_BASE,
            bufsz = layout::BUF_SIZE,
            ringlen = layout::RING_LEN,
            hdrslots = layout::HDR_SLOTS,
            chunk = layout::CHUNK_SECTORS,
            payload = layout::FRAME_PAYLOAD,
            tick_reload = tick_reload,
            cpt = credit_per_tick,
            cmax = credit_max,
            moderation = self.moderation,
            ipsum = ip_checksum_base(),
            ready = layout::READY_MAGIC,
        )
    }
}

/// The kernel body. Layout constants are provided by `.equ` lines prepended
/// by [`Workload::source`].
const KERNEL_ASM: &str = r#"
; ---------------------------------------------------------------- globals
        .equ G_CREDIT, 0        ; send credit in bytes (ISR refills)
        .equ G_READY,  4        ; bitmask: buffer filled and ready
        .equ G_UBUSY,  8        ; bitmask: disk unit has a command in flight
        .equ G_PEND0,  12       ; per-unit pending refill (buf+1, 0 = none)
        .equ G_INFL0,  24       ; per-unit buffer currently being filled
        .equ G_CHUNK0, 36       ; per-unit next chunk number
        .equ G_SPILL,  48       ; ISR register spill area
        .equ S_BYTES_LO, 0
        .equ S_BYTES_HI, 4
        .equ S_FRAMES, 8
        .equ S_TICKS,  12
        .equ S_UNDERRUN, 16
        .equ S_FAULT,  20
        .equ S_READY,  28

        .org ENTRY
; ---------------------------------------------------------------- boot
start:
        li   sp, STACK_TOP
        li   gp, GLOB
        li   s8, STATS
        ; zero globals (128 bytes) and stats (32 bytes)
        li   t0, GLOB
        li   t1, 128
clr1:   sw   zero, 0(t0)
        addi t0, t0, 4
        addi t1, t1, -4
        bnez t1, clr1
        li   t0, STATS
        li   t1, 32
clr2:   sw   zero, 0(t0)
        addi t0, t0, 4
        addi t1, t1, -4
        bnez t1, clr2

        la   t0, trap_entry
        csrw tvec, t0

        li   s0, NIC_BASE
        li   s9, HDC_BASE
        li   s5, HDR_POOL
        li   s6, TX_RING
        li   s1, 0              ; current buffer
        li   s2, 0              ; offset within buffer
        li   s3, 0              ; TX tail
        li   s4, RING_LEN - 2   ; free descriptor estimate
        li   s7, 0              ; frame sequence number

        ; write the constant header template into every slot
        li   t0, HDR_SLOTS
        mv   t1, s5
tmpl:   li   t2, 0x00000002     ; dst mac 02:00:00:00:00:02
        sw   t2, 0(t1)
        li   t2, 0x00020200
        sw   t2, 4(t1)
        li   t2, 0x01000000     ; src mac ...:01
        sw   t2, 8(t1)
        li   t2, 0x00450008     ; ethertype 0800, ver/ihl 45, tos 00
        sw   t2, 12(t1)
        sw   zero, 16(t1)       ; ip len / id (patched per frame)
        li   t2, 0x11400040     ; DF, ttl 64, proto UDP
        sw   t2, 20(t1)
        li   t2, 0x000a0000     ; ip ck (patched), src ip 10...
        sw   t2, 24(t1)
        li   t2, 0x000a0100     ; ...0.0.1, dst ip 10...
        sw   t2, 28(t1)
        li   t2, 0x34120200     ; ...0.0.2, src port 0x1234
        sw   t2, 32(t1)
        li   t2, 0x00003512     ; dst port 0x1235, udp len (patched)
        sw   t2, 36(t1)
        sw   zero, 40(t1)       ; udp ck (patched)
        addi t1, t1, 64
        addi t0, t0, -1
        bnez t0, tmpl

        ; interrupt controller: unmask everything
        li   t0, PIC_BASE
        sw   zero, 8(t0)
        ; NIC rings
        sw   s6, 0(s0)          ; TX_BASE
        li   t0, RING_LEN
        sw   t0, 4(s0)          ; TX_LEN
        li   t0, MODERATION
        sw   t0, 0x18(s0)
        ; timer: periodic pacing tick
        li   t0, PIT_BASE
        li   t1, TICK_RELOAD
        sw   t1, 4(t0)
        li   t1, 3
        sw   t1, 0(t0)
        ; start filling: one read per unit now, second buffer pending
        li   a4, 0
        jal  refill_request
        li   a4, 1
        jal  refill_request
        li   a4, 2
        jal  refill_request
        li   a4, 3
        jal  refill_request
        li   a4, 4
        jal  refill_request
        li   a4, 5
        jal  refill_request
        ; boot complete
        li   t0, READY_MAGIC
        sw   t0, S_READY(s8)
        csrs status, 1          ; interrupts on

; ---------------------------------------------------------------- main loop
main:
        lw   t0, G_CREDIT(gp)
        blez t0, go_idle
        ; current buffer ready?
        lw   t0, G_READY(gp)
        srl  t0, t0, s1
        andi t0, t0, 1
        beqz t0, underrun
        ; two descriptors free?
        slti t0, s4, 2
        beqz t0, have_space
        lw   t0, 8(s0)          ; TX_HEAD
        sub  t1, s3, t0
        andi t1, t1, RING_LEN - 1
        li   t2, RING_LEN - 2
        sub  s4, t2, t1
        slti t0, s4, 2
        bnez t0, go_idle        ; ring full: sleep until TX irq
have_space:
        jal  build_frame
        j    main
underrun:
        lw   t0, S_UNDERRUN(s8)
        addi t0, t0, 1
        sw   t0, S_UNDERRUN(s8)
go_idle:
        wfi
        j    main

; ---------------------------------------------------------------- build_frame
; Emits one frame from the current buffer. Clobbers t*, a0-a5.
build_frame:
        mv   a5, ra
        ; a0 = payload address
        li   a0, BUF_SIZE
        mul  a0, a0, s1
        li   t0, BUF_BASE
        add  a0, a0, t0
        add  a0, a0, s2
        ; a1 = payload length
        li   a1, BUF_SIZE
        sub  a1, a1, s2
        li   t0, FRAME_PAYLOAD
        blt  a1, t0, len_ok
        mv   a1, t0
len_ok:
        ; a2 = software UDP checksum over the payload (unrolled by 4)
        li   a2, 0
        mv   t0, a0
        add  t1, a0, a1
ckl:    lw   t2, 0(t0)
        add  a2, a2, t2
        sltu t3, a2, t2
        add  a2, a2, t3
        lw   t2, 4(t0)
        add  a2, a2, t2
        sltu t3, a2, t2
        add  a2, a2, t3
        lw   t2, 8(t0)
        add  a2, a2, t2
        sltu t3, a2, t2
        add  a2, a2, t3
        lw   t2, 12(t0)
        add  a2, a2, t2
        sltu t3, a2, t2
        add  a2, a2, t3
        addi t0, t0, 16
        bltu t0, t1, ckl
        srli t2, a2, 16
        andi a2, a2, 0xffff
        add  a2, a2, t2
        srli t2, a2, 16
        add  a2, a2, t2
        andi a2, a2, 0xffff
        xori a2, a2, 0xffff
        ; a3 = header slot
        andi a3, s7, HDR_SLOTS - 1
        slli a3, a3, 6
        add  a3, a3, s5
        ; patch ip total length (big-endian)
        addi t0, a1, 28
        andi t1, t0, 0xff
        slli t1, t1, 8
        srli t2, t0, 8
        or   t1, t1, t2
        sh   t1, 16(a3)
        ; patch ip id = sequence (big-endian)
        andi t2, s7, 0xffff
        andi t3, t2, 0xff
        slli t3, t3, 8
        srli t4, t2, 8
        or   t3, t3, t4
        sh   t3, 18(a3)
        ; ip header checksum
        li   t4, IPSUM_BASE
        add  t4, t4, t0
        add  t4, t4, t2
        srli t5, t4, 16
        andi t4, t4, 0xffff
        add  t4, t4, t5
        srli t5, t4, 16
        add  t4, t4, t5
        andi t4, t4, 0xffff
        xori t4, t4, 0xffff
        andi t5, t4, 0xff
        slli t5, t5, 8
        srli t6, t4, 8
        or   t5, t5, t6
        sh   t5, 24(a3)
        ; udp length (big-endian)
        addi t0, a1, 8
        andi t1, t0, 0xff
        slli t1, t1, 8
        srli t2, t0, 8
        or   t1, t1, t2
        sh   t1, 38(a3)
        ; udp checksum (custom convention, little-endian)
        sh   a2, 40(a3)
        ; descriptor 0: header fragment, MORE flag
        slli t0, s3, 4
        add  t0, t0, s6
        sw   a3, 0(t0)
        li   t1, 42
        sw   t1, 4(t0)
        li   t1, 1
        sw   t1, 8(t0)
        sw   zero, 12(t0)
        ; descriptor 1: payload fragment straight from the disk buffer
        addi t2, s3, 1
        andi t2, t2, RING_LEN - 1
        slli t0, t2, 4
        add  t0, t0, s6
        sw   a0, 0(t0)
        sw   a1, 4(t0)
        sw   zero, 8(t0)
        sw   zero, 12(t0)
        addi s3, t2, 1
        andi s3, s3, RING_LEN - 1
        addi s4, s4, -2
        sw   s3, 0xc(s0)        ; doorbell
        ; consume credit (critical section vs the timer ISR)
        csrc status, 1
        lw   t0, G_CREDIT(gp)
        sub  t0, t0, a1
        sw   t0, G_CREDIT(gp)
        csrs status, 1
        ; account
        lw   t0, S_BYTES_LO(s8)
        add  t0, t0, a1
        sltu t1, t0, a1
        sw   t0, S_BYTES_LO(s8)
        lw   t2, S_BYTES_HI(s8)
        add  t2, t2, t1
        sw   t2, S_BYTES_HI(s8)
        lw   t0, S_FRAMES(s8)
        addi t0, t0, 1
        sw   t0, S_FRAMES(s8)
        addi s7, s7, 1
        ; advance within / across buffers
        add  s2, s2, a1
        li   t0, BUF_SIZE
        bne  s2, t0, bf_done
        csrc status, 1
        lw   t0, G_READY(gp)
        li   t1, 1
        sll  t1, t1, s1
        sub  t0, t0, t1
        sw   t0, G_READY(gp)
        mv   a4, s1
        jal  refill_request
        csrs status, 1
        addi s1, s1, 1
        li   t0, 6
        bne  s1, t0, wrap_ok
        li   s1, 0
wrap_ok:
        li   s2, 0
bf_done:
        mv   ra, a5
        ret

; ---------------------------------------------------------------- refill
; a4 = buffer index to refill. Must be called with interrupts masked (or
; before they are enabled). Clobbers t0-t6.
refill_request:
        mv   t0, a4
        slti t1, t0, 3
        bnez t1, unit_ok
        addi t0, t0, -3
unit_ok:
        lw   t1, G_UBUSY(gp)
        srl  t2, t1, t0
        andi t2, t2, 1
        beqz t2, rr_issue
        ; unit busy: remember the request
        slli t2, t0, 2
        add  t2, t2, gp
        addi t3, a4, 1
        sw   t3, G_PEND0(t2)
        ret
rr_issue:
        li   t2, 1
        sll  t2, t2, t0
        or   t1, t1, t2
        sw   t1, G_UBUSY(gp)
        slli t2, t0, 2
        add  t2, t2, gp
        sw   a4, G_INFL0(t2)
        lw   t3, G_CHUNK0(t2)
        addi t4, t3, 1
        sw   t4, G_CHUNK0(t2)
        slli t4, t0, 6
        add  t4, t4, s9
        li   t5, CHUNK_SECTORS
        mul  t5, t5, t3
        sw   t5, 0(t4)          ; LBA
        li   t5, CHUNK_SECTORS
        sw   t5, 4(t4)          ; COUNT
        li   t5, BUF_SIZE
        mul  t5, t5, a4
        li   t6, BUF_BASE
        add  t5, t5, t6
        sw   t5, 8(t4)          ; DMA
        li   t5, 1
        sw   t5, 0xc(t4)        ; doorbell: READ
        ret

; ---------------------------------------------------------------- trap/ISR
trap_entry:
        csrw scratch, k0
        li   k0, GLOB
        sw   t0, G_SPILL + 0(k0)
        sw   t1, G_SPILL + 4(k0)
        sw   t2, G_SPILL + 8(k0)
        sw   t3, G_SPILL + 12(k0)
        sw   t4, G_SPILL + 16(k0)
        sw   t5, G_SPILL + 20(k0)
        sw   t6, G_SPILL + 24(k0)
        sw   a4, G_SPILL + 28(k0)
        sw   ra, G_SPILL + 32(k0)
        csrr k1, cause
        bnez k1, not_irq
        csrr t0, tval
        addi t0, t0, -32        ; vector base
        beqz t0, isr_timer
        addi t1, t0, -2
        sltiu t2, t1, 3
        bnez t2, isr_disk
        li   t1, 5
        beq  t0, t1, isr_nic
        j    isr_eoi

isr_timer:
        lw   t1, G_CREDIT(k0)
        li   t2, CREDIT_PER_TICK
        add  t1, t1, t2
        li   t2, CREDIT_MAX
        blt  t1, t2, tick_ok
        mv   t1, t2
tick_ok:
        sw   t1, G_CREDIT(k0)
        li   t1, STATS
        lw   t2, S_TICKS(t1)
        addi t2, t2, 1
        sw   t2, S_TICKS(t1)
        j    isr_eoi

isr_disk:
        ; t1 = unit; mark its in-flight buffer ready
        slli t2, t1, 2
        add  t2, t2, k0
        lw   t3, G_INFL0(t2)
        lw   t4, G_READY(k0)
        li   t5, 1
        sll  t5, t5, t3
        or   t4, t4, t5
        sw   t4, G_READY(k0)
        ; pending refill for this unit?
        lw   t3, G_PEND0(t2)
        beqz t3, disk_quiet
        sw   zero, G_PEND0(t2)
        addi a4, t3, -1
        sw   a4, G_INFL0(t2)
        lw   t3, G_CHUNK0(t2)
        addi t4, t3, 1
        sw   t4, G_CHUNK0(t2)
        li   t4, HDC_BASE
        slli t5, t1, 6
        add  t4, t4, t5
        li   t5, CHUNK_SECTORS
        mul  t5, t5, t3
        sw   t5, 0(t4)
        li   t5, CHUNK_SECTORS
        sw   t5, 4(t4)
        li   t5, BUF_SIZE
        mul  t5, t5, a4
        li   t6, BUF_BASE
        add  t5, t5, t6
        sw   t5, 8(t4)
        li   t5, 1
        sw   t5, 0xc(t4)
        j    isr_eoi
disk_quiet:
        lw   t3, G_UBUSY(k0)
        li   t4, 1
        sll  t4, t4, t1
        sub  t3, t3, t4
        sw   t3, G_UBUSY(k0)
        j    isr_eoi

isr_nic:
        li   t1, NIC_BASE
        lw   t2, 0x10(t1)       ; ISTATUS
        sw   t2, 0x14(t1)       ; IACK
        j    isr_eoi

isr_eoi:
        li   t1, PIC_BASE
        sw   t0, 0xc(t1)        ; specific EOI
        lw   t0, G_SPILL + 0(k0)
        lw   t1, G_SPILL + 4(k0)
        lw   t2, G_SPILL + 8(k0)
        lw   t3, G_SPILL + 12(k0)
        lw   t4, G_SPILL + 16(k0)
        lw   t5, G_SPILL + 20(k0)
        lw   t6, G_SPILL + 24(k0)
        lw   a4, G_SPILL + 28(k0)
        lw   ra, G_SPILL + 32(k0)
        csrr k0, scratch
        tret

not_irq:
        ; unexpected synchronous trap: record it and halt the kernel
        li   t0, STATS
        sw   k1, S_FAULT(t0)
        csrr t1, epc
        sw   t1, S_FAULT + 4(t0)
dead:   j    dead
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use hx_machine::MachineConfig;

    #[test]
    fn kernel_assembles() {
        let machine = Machine::new(MachineConfig::default());
        let program = Workload::new(100)
            .build(&machine)
            .expect("kernel must assemble");
        assert_eq!(program.base(), layout::ENTRY);
        assert!(program.symbols.get("start").is_some());
        assert!(program.symbols.get("trap_entry").is_some());
        assert!(program.symbols.get("build_frame").is_some());
        assert!(program.bytes().len() > 800, "non-trivial kernel");
    }

    #[test]
    fn profile_symbols_cover_the_whole_image() {
        let machine = Machine::new(MachineConfig::default());
        let program = Workload::new(100).build(&machine).unwrap();
        let syms = profile_symbols(&program);
        assert_eq!(syms.len(), FUNCTIONS.len(), "every function resolves");
        // Contiguous half-open cover of [ENTRY, end): internal labels are
        // absorbed, nothing overlaps, nothing is left out.
        assert_eq!(syms.first().unwrap().1, layout::ENTRY);
        assert_eq!(syms.last().unwrap().2, program.end());
        for w in syms.windows(2) {
            assert_eq!(w[0].2, w[1].1, "ranges abut: {w:?}");
            assert!(w[0].1 < w[0].2, "non-empty: {w:?}");
        }
        // Source order == address order for function entries.
        let names: Vec<&str> = syms.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, FUNCTIONS);
    }

    #[test]
    fn ip_checksum_base_matches_reference() {
        // Reference: full RFC 1071 sum over the fixed header fields.
        let hdr: [u8; 20] = [
            0x45, 0x00, 0, 0, 0, 0, 0x40, 0x00, 0x40, 0x11, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
        ];
        let mut sum = 0u32;
        for pair in hdr.chunks(2) {
            sum += u32::from(pair[0]) << 8 | u32::from(pair[1]);
        }
        assert_eq!(sum, ip_checksum_base());
    }

    #[test]
    fn builder_accessors() {
        let w = Workload::new(250).tick_hz(500).moderation(4);
        assert_eq!(w.rate_mbps(), 250);
        let src = w.source(1000, 62_500, 250_000);
        assert!(src.contains("CREDIT_PER_TICK, 62500"));
        assert!(src.contains("MODERATION, 4"));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the point IS checking the constants
    fn layout_is_consistent() {
        use layout::*;
        assert_eq!(FRAME_PAYLOAD % 16, 0);
        assert_eq!(BUF_SIZE % FRAME_PAYLOAD % 16, 0);
        assert_eq!(CHUNK_SECTORS * 512, BUF_SIZE);
        assert!(HDR_POOL + HDR_SLOTS * 64 <= TX_RING);
        assert!(TX_RING + RING_LEN * 16 <= BUF_BASE);
        assert!(RING_LEN.is_power_of_two());
        assert!(HDR_SLOTS.is_power_of_two());
        // Every in-flight frame (2 descriptors) has a private header slot.
        assert!(HDR_SLOTS >= RING_LEN / 2);
    }
}
