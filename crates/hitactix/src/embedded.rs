//! The conventional baseline from the paper's introduction: a **debugger
//! embedded in the operating system under development**.
//!
//! The stub's working state — a magic word and the breakpoint table — lives
//! at a fixed address *inside guest memory* ([`STATE_BASE`]), and every stub
//! operation goes through it, because the stub is just another part of the
//! kernel. The consequence the paper builds on: when the OS under
//! development scribbles over memory, it scribbles over its own debugger,
//! and the host-side session goes dead. Contrast with the monitor-resident
//! stub in the `lvmm` crate, which keeps answering.

use hx_cpu::csr::{Csr, Status};
use hx_cpu::isa::EBREAK_WORD;
use hx_cpu::trap::Cause;
use hx_cpu::MemSize;
use hx_machine::platform::PlatformStep;
use hx_machine::{map, Machine, MachineStep, Platform, TimeBucket, TimeStats};
use rdbg::msg::{Command, Reply, StopReason};
use rdbg::wire::{self, PacketParser, WireEvent};

/// Guest-physical base of the embedded stub's state block.
pub const STATE_BASE: u32 = 0xe000;
/// Magic word marking the state block as intact.
pub const STATE_MAGIC: u32 = 0x5afe_57ab;
/// Maximum breakpoints in the guest-resident table.
pub const MAX_BREAKPOINTS: u32 = 16;

const OFF_MAGIC: u32 = 0;
const OFF_COUNT: u32 = 4;
const OFF_TABLE: u32 = 8; // MAX_BREAKPOINTS × (addr, orig)

/// The real-hardware platform with an OS-embedded debug stub.
#[derive(Debug)]
pub struct EmbeddedStubPlatform {
    machine: Machine,
    stats: TimeStats,
    parser: PacketParser,
    stopped: bool,
    last_stop: Option<StopReason>,
    lifted: Option<u32>,
    step_then_stop: bool,
    stepping: bool,
}

impl EmbeddedStubPlatform {
    /// Wraps a machine whose guest image is already loaded, and initializes
    /// the stub state block in guest memory (as the kernel's boot code
    /// would).
    pub fn new(mut machine: Machine) -> EmbeddedStubPlatform {
        machine
            .mem
            .write(STATE_BASE + OFF_MAGIC, STATE_MAGIC, MemSize::Word)
            .unwrap();
        machine
            .mem
            .write(STATE_BASE + OFF_COUNT, 0, MemSize::Word)
            .unwrap();
        // The kernel's boot code would install the stub ISR: receive
        // interrupts on, CPU interrupts enabled.
        machine
            .bus_write(
                map::UART_BASE + hx_machine::uart::reg::CTRL,
                1,
                MemSize::Word,
            )
            .expect("UART present");
        let s = Status(machine.cpu.read_csr(Csr::Status));
        machine
            .cpu
            .write_csr(Csr::Status, s.with(Status::IE, true).0);
        EmbeddedStubPlatform {
            machine,
            stats: TimeStats::new(),
            parser: PacketParser::new(),
            stopped: false,
            last_stop: None,
            lifted: None,
            step_then_stop: false,
            stepping: false,
        }
    }

    /// Is the guest stopped under the stub?
    pub fn guest_stopped(&self) -> bool {
        self.stopped
    }

    /// Is the stub's guest-resident state still intact?
    pub fn stub_alive(&self) -> bool {
        self.machine.mem.read(STATE_BASE + OFF_MAGIC, MemSize::Word) == Ok(STATE_MAGIC)
    }

    fn bp_lookup(&self, addr: u32) -> Option<(u32, u32)> {
        let count = self
            .machine
            .mem
            .read(STATE_BASE + OFF_COUNT, MemSize::Word)
            .ok()?
            .min(MAX_BREAKPOINTS);
        for i in 0..count {
            let a = self
                .machine
                .mem
                .read(STATE_BASE + OFF_TABLE + i * 8, MemSize::Word)
                .ok()?;
            if a == addr {
                let orig = self
                    .machine
                    .mem
                    .read(STATE_BASE + OFF_TABLE + i * 8 + 4, MemSize::Word)
                    .ok()?;
                return Some((i, orig));
            }
        }
        None
    }

    fn send_packet(&mut self, payload: &str) {
        self.machine.uart.push_tx(&wire::encode_packet(payload));
    }

    fn stop(&mut self, reason: StopReason) {
        self.stopped = true;
        self.last_stop = Some(reason);
        let s = Status(self.machine.cpu.read_csr(Csr::Status));
        self.machine
            .cpu
            .write_csr(Csr::Status, s.with(Status::TF, false).0);
        self.send_packet(&reason.format());
    }

    /// Services host bytes. If the stub state in guest memory is corrupt,
    /// the stub is dead: bytes are consumed by the broken kernel and no
    /// reply ever comes.
    fn service_uart(&mut self) {
        let mut bytes = Vec::new();
        while let Some(b) = self.machine.uart.pop_rx() {
            bytes.push(b);
        }
        if bytes.is_empty() {
            return;
        }
        if !self.stub_alive() {
            return; // the embedded stub died with its OS
        }
        self.parser.push(&bytes);
        while let Some(ev) = self.parser.next_event() {
            match ev {
                WireEvent::BreakIn => {
                    let pc = self.machine.cpu.pc();
                    self.stop(StopReason::Halted { pc });
                }
                WireEvent::Packet(p) => {
                    self.machine.uart.push_tx(&[wire::ACK]);
                    let reply = match Command::parse(&p) {
                        Some(cmd) => self.exec(cmd),
                        None => Reply::Error(1),
                    };
                    self.send_packet(&reply.format());
                }
                WireEvent::Corrupt => self.machine.uart.push_tx(&[wire::NAK]),
                WireEvent::Ack | WireEvent::Nak => {}
            }
        }
    }

    fn exec(&mut self, cmd: Command) -> Reply {
        match cmd {
            Command::Halt => {
                let pc = self.machine.cpu.pc();
                self.stop(StopReason::Halted { pc });
                Reply::Ok
            }
            Command::QueryStop => match self.last_stop {
                Some(r) if self.stopped => Reply::Stopped(r),
                _ => Reply::Error(4),
            },
            Command::ReadRegisters => {
                let mut bytes = Vec::with_capacity(33 * 4);
                for r in self.machine.cpu.regs() {
                    bytes.extend_from_slice(&r.to_le_bytes());
                }
                bytes.extend_from_slice(&self.machine.cpu.pc().to_le_bytes());
                Reply::Hex(bytes)
            }
            Command::WriteRegister { index, value } => {
                if index < 32 {
                    self.machine
                        .cpu
                        .set_reg(hx_cpu::Reg::new(index).unwrap(), value);
                    Reply::Ok
                } else if index == rdbg::msg::REG_PC {
                    self.machine.cpu.set_pc(value);
                    Reply::Ok
                } else {
                    Reply::Error(2)
                }
            }
            Command::ReadMemory { addr, len } => {
                let mut out = Vec::with_capacity(len as usize);
                for i in 0..len {
                    match self.machine.mem.read(addr.wrapping_add(i), MemSize::Byte) {
                        Ok(b) => out.push(b as u8),
                        Err(_) => return Reply::Error(3),
                    }
                }
                Reply::Hex(out)
            }
            Command::WriteMemory { addr, data } => {
                for (i, &b) in data.iter().enumerate() {
                    if self
                        .machine
                        .mem
                        .write(addr.wrapping_add(i as u32), b as u32, MemSize::Byte)
                        .is_err()
                    {
                        return Reply::Error(3);
                    }
                }
                Reply::Ok
            }
            Command::SetBreakpoint { addr } => {
                if self.bp_lookup(addr).is_some() {
                    return Reply::Error(5);
                }
                let Ok(count) = self.machine.mem.read(STATE_BASE + OFF_COUNT, MemSize::Word) else {
                    return Reply::Error(3);
                };
                if count >= MAX_BREAKPOINTS {
                    return Reply::Error(5);
                }
                let Ok(orig) = self.machine.mem.read(addr, MemSize::Word) else {
                    return Reply::Error(3);
                };
                let e = STATE_BASE + OFF_TABLE + count * 8;
                let ok = self.machine.mem.write(e, addr, MemSize::Word).is_ok()
                    && self.machine.mem.write(e + 4, orig, MemSize::Word).is_ok()
                    && self
                        .machine
                        .mem
                        .write(addr, EBREAK_WORD, MemSize::Word)
                        .is_ok()
                    && self
                        .machine
                        .mem
                        .write(STATE_BASE + OFF_COUNT, count + 1, MemSize::Word)
                        .is_ok();
                if ok {
                    Reply::Ok
                } else {
                    Reply::Error(3)
                }
            }
            Command::ClearBreakpoint { addr } => {
                let Some((slot, orig)) = self.bp_lookup(addr) else {
                    return Reply::Error(5);
                };
                let count = self
                    .machine
                    .mem
                    .read(STATE_BASE + OFF_COUNT, MemSize::Word)
                    .unwrap_or(0);
                // Move the last entry into the vacated slot.
                let last = STATE_BASE + OFF_TABLE + (count - 1) * 8;
                let slot_addr = STATE_BASE + OFF_TABLE + slot * 8;
                let la = self.machine.mem.read(last, MemSize::Word).unwrap_or(0);
                let lo = self.machine.mem.read(last + 4, MemSize::Word).unwrap_or(0);
                let _ = self.machine.mem.write(slot_addr, la, MemSize::Word);
                let _ = self.machine.mem.write(slot_addr + 4, lo, MemSize::Word);
                let _ = self
                    .machine
                    .mem
                    .write(STATE_BASE + OFF_COUNT, count - 1, MemSize::Word);
                let _ = self.machine.mem.write(addr, orig, MemSize::Word);
                Reply::Ok
            }
            Command::Step => {
                if !self.stopped {
                    return Reply::Error(4);
                }
                self.arm_step(true);
                Reply::Ok
            }
            Command::Continue => {
                if !self.stopped {
                    return Reply::Error(4);
                }
                let pc = self.machine.cpu.pc();
                if self.bp_lookup(pc).is_some() {
                    self.arm_step(false);
                } else {
                    self.stopped = false;
                }
                Reply::Ok
            }
            Command::SetWatchpoint { .. }
            | Command::ClearWatchpoint { .. }
            | Command::SetBreakCondition { .. }
            | Command::SetWatchCondition { .. }
            | Command::SetLogpoint { .. }
            | Command::ClearLogpoint { .. } => {
                // No MMU tricks or condition evaluator available to an
                // in-kernel stub on this hardware; watchpoints, conditions
                // and logpoints are monitor-only features.
                Reply::Error(9)
            }
            Command::Reset => Reply::Error(9),
            Command::SetThread { core } | Command::ThreadAlive { core } => {
                // The in-kernel stub debugs the one CPU it runs on: thread
                // 0 exists, everything else is "no such core" (11).
                if core == 0 {
                    Reply::Ok
                } else {
                    Reply::Error(11)
                }
            }
            Command::QueryStats | Command::QueryProf { .. } => {
                // An in-kernel stub has no monitor accounting or profiler
                // to report.
                Reply::Error(9)
            }
            Command::QueryFlow => {
                // No causal tracker lives inside the kernel; answer with
                // the *named* code (`lvmm::stub::err::CAUSAL` = 12) so the
                // host prints what is missing instead of a bare number.
                Reply::Error(12)
            }
            Command::QueryMetrics => {
                // An in-kernel stub has no host clock, so host-time
                // metrics can never exist here. Answer with the *named*
                // code (`lvmm::stub::err::METRICS` = 10, "metrics
                // unavailable") rather than the generic 9, so the host
                // prints what is missing instead of a bare number.
                Reply::Error(10)
            }
            Command::ReverseStep
            | Command::ReverseContinue
            | Command::Seek { .. }
            | Command::QueryFirst { .. } => {
                // Time travel needs the monitor's flight recorder; an
                // in-kernel stub cannot rewind the machine it runs on.
                Reply::Error(9)
            }
        }
    }

    fn arm_step(&mut self, then_stop: bool) {
        let pc = self.machine.cpu.pc();
        if let Some((_, orig)) = self.bp_lookup(pc) {
            let _ = self.machine.mem.write(pc, orig, MemSize::Word);
            self.lifted = Some(pc);
        }
        let s = Status(self.machine.cpu.read_csr(Csr::Status));
        self.machine
            .cpu
            .write_csr(Csr::Status, s.with(Status::TF, true).0);
        self.stepping = true;
        self.step_then_stop = then_stop;
        self.stopped = false;
    }
}

impl Platform for EmbeddedStubPlatform {
    fn name(&self) -> &'static str {
        "embedded-stub"
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn time_stats(&self) -> &TimeStats {
        &self.stats
    }

    fn step(&mut self) -> PlatformStep {
        if self.stopped {
            // Guest frozen; the stub (kernel code) polls the UART.
            self.machine.consume(200);
            self.stats.charge(TimeBucket::Guest, 200);
            self.service_uart();
            return PlatformStep::Running;
        }
        match self.machine.step() {
            MachineStep::Executed { cycles } => {
                self.stats.charge(TimeBucket::Guest, cycles);
                PlatformStep::Running
            }
            MachineStep::Idle { cycles } => {
                self.stats.charge(TimeBucket::Idle, cycles);
                PlatformStep::Running
            }
            MachineStep::Interrupt { irq, vector } => {
                if irq == map::irq::UART {
                    // The kernel's UART ISR is the stub.
                    self.machine.pic.eoi(irq);
                    self.machine.consume(300);
                    self.stats.charge(TimeBucket::Guest, 300);
                    self.service_uart();
                } else {
                    let trap = self.machine.interrupt_trap(vector);
                    let c = self.machine.deliver_trap(trap);
                    self.stats.charge(TimeBucket::Guest, c);
                }
                PlatformStep::Running
            }
            MachineStep::Trapped { trap, cycles } => {
                self.stats.charge(TimeBucket::Guest, cycles);
                match trap.cause {
                    Cause::Breakpoint
                        if self.stub_alive() && self.bp_lookup(trap.epc).is_some() =>
                    {
                        self.stop(StopReason::Breakpoint { pc: trap.epc });
                    }
                    Cause::DebugStep if self.stepping => {
                        self.stepping = false;
                        let s = Status(self.machine.cpu.read_csr(Csr::Status));
                        self.machine
                            .cpu
                            .write_csr(Csr::Status, s.with(Status::TF, false).0);
                        if let Some(addr) = self.lifted.take() {
                            if self.stub_alive() {
                                let _ = self.machine.mem.write(addr, EBREAK_WORD, MemSize::Word);
                            }
                        }
                        if self.step_then_stop {
                            self.stop(StopReason::Step { pc: trap.epc });
                        }
                    }
                    _ => {
                        let c = self.machine.deliver_trap(trap);
                        self.stats.charge(TimeBucket::Guest, c);
                    }
                }
                PlatformStep::Running
            }
            MachineStep::Stuck => PlatformStep::Stuck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use hx_machine::MachineConfig;
    use lvmm::UartLink;
    use rdbg::Debugger;

    fn boot(program: &hx_asm::Program) -> EmbeddedStubPlatform {
        let mut machine = Machine::new(MachineConfig {
            ram_size: 1 << 20,
            ..MachineConfig::default()
        });
        machine.load_program(program);
        EmbeddedStubPlatform::new(machine)
    }

    #[test]
    fn debug_session_works_while_guest_is_healthy() {
        let program = apps::counter_guest();
        let bump = program.symbols.get("bump").unwrap();
        let counter = program.symbols.get("counter").unwrap();
        let platform = boot(&program);
        let mut dbg = Debugger::new(UartLink::new(platform));

        let stop = dbg.halt().unwrap();
        assert!(matches!(stop, StopReason::Halted { .. }));
        dbg.set_breakpoint(bump).unwrap();
        let stop = dbg.continue_until_stop().unwrap();
        assert_eq!(stop, StopReason::Breakpoint { pc: bump });
        let regs = dbg.read_registers().unwrap();
        assert_eq!(regs.pc, bump);
        let stop = dbg.step().unwrap();
        assert_eq!(stop.pc(), bump + 4);
        let mem = dbg.read_memory(counter, 4).unwrap();
        let count0 = u32::from_le_bytes(mem.try_into().unwrap());
        dbg.clear_breakpoint(bump).unwrap();
        dbg.resume().unwrap();
        let mut link = dbg.into_link();
        link.platform.run_for(50_000);
        let count1 = link.platform.machine().mem.word(counter);
        assert!(count1 > count0);
        assert!(link.platform.stub_alive());
    }

    #[test]
    fn embedded_stub_rejects_metrics_with_the_named_code() {
        let program = apps::counter_guest();
        let platform = boot(&program);
        let mut dbg = Debugger::new(UartLink::new(platform));
        dbg.halt().unwrap();
        // No host clock in an in-kernel stub: `qMetrics` must fail with
        // the *stable, named* code the host can explain — not a generic
        // unsupported-command error.
        let err = dbg.query_metrics().unwrap_err();
        assert_eq!(err, rdbg::DbgError::Target(lvmm::stub::err::METRICS));
        assert_eq!(
            rdbg::err_name(lvmm::stub::err::METRICS),
            Some("metrics unavailable")
        );
    }

    #[test]
    fn embedded_stub_dies_with_the_guest() {
        let program = apps::buggy_guest(50);
        let mut platform = boot(&program);
        // Let the guest rampage (it wipes the first 64 KiB, including
        // the stub state at STATE_BASE).
        platform.run_for(3_000_000);
        assert!(!platform.stub_alive(), "state block must be destroyed");
        // The host now tries to debug: no reply ever comes.
        let mut dbg = Debugger::new(UartLink::new(platform));
        assert_eq!(dbg.halt(), Err(rdbg::DbgError::Timeout));
    }
}
