//! Two-level paged MMU with a direct-mapped TLB.
//!
//! Virtual addresses split `10 | 10 | 12`: bits `[31:22]` index the level-1
//! table, `[21:12]` the level-2 table, `[11:0]` are the page offset. Both
//! tables are 1024 × 4-byte entries (one 4 KiB page each). Level-1 entries
//! are pointers (leaf permission bits must be clear); level-2 entries are
//! leaves.
//!
//! The hardware walker sets the accessed bit on every successful walk and
//! the dirty bit on stores. The TLB caches leaf entries and must be flushed
//! with `tlbflush` after software edits a page table — the lightweight
//! monitor's shadow-paging code depends on this contract.
//!
//! [`walk`] is exported for software that needs to translate through a page
//! table it does *not* currently run on: the monitor walks **guest** page
//! tables to build shadow tables, and the debug stub walks them to read guest
//! memory by virtual address.

use crate::{Bus, BusFault, MemSize, Mode};
use core::fmt;

/// Page-table entry flag bits and masks.
pub mod pte {
    /// Entry is valid.
    pub const V: u32 = 1 << 0;
    /// Page is readable.
    pub const R: u32 = 1 << 1;
    /// Page is writable.
    pub const W: u32 = 1 << 2;
    /// Page is executable.
    pub const X: u32 = 1 << 3;
    /// Page is accessible in user mode.
    pub const U: u32 = 1 << 4;
    /// Accessed (set by the hardware walker).
    pub const A: u32 = 1 << 5;
    /// Dirty (set by the hardware walker on stores).
    pub const D: u32 = 1 << 6;
    /// Mask of the physical page number.
    pub const PPN_MASK: u32 = 0xffff_f000;
    /// Mask of all permission/flag bits.
    pub const FLAGS_MASK: u32 = 0x7f;

    /// Builds a leaf entry from a physical page address and flags.
    pub fn leaf(pa: u32, flags: u32) -> u32 {
        (pa & PPN_MASK) | (flags & FLAGS_MASK)
    }

    /// Builds a pointer (level-1) entry referring to a level-2 table page.
    pub fn table(pa: u32) -> u32 {
        (pa & PPN_MASK) | V
    }
}

/// Page size in bytes.
pub const PAGE_SIZE: u32 = 4096;
/// Mask of the in-page offset.
pub const PAGE_MASK: u32 = PAGE_SIZE - 1;

/// Level-1 index of a virtual address.
pub fn l1_index(va: u32) -> u32 {
    va >> 22
}

/// Level-2 index of a virtual address.
pub fn l2_index(va: u32) -> u32 {
    (va >> 12) & 0x3ff
}

/// Virtual page number (both indices combined).
pub fn vpn(va: u32) -> u32 {
    va >> 12
}

/// The kind of access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Instruction fetch (needs `X`).
    Fetch,
    /// Data load (needs `R`).
    Load,
    /// Data store (needs `W`).
    Store,
}

impl Access {
    /// The access kind behind a page-fault cause (monitors classify guest
    /// faults this way before walking the guest's page tables).
    pub fn from_fault(cause: crate::trap::Cause) -> Access {
        match cause {
            crate::trap::Cause::InstrPageFault => Access::Fetch,
            crate::trap::Cause::LoadPageFault => Access::Load,
            _ => Access::Store,
        }
    }

    /// The access-fault cause this access kind raises when it reaches
    /// unmapped or forbidden physical space.
    pub fn fault_cause(self) -> crate::trap::Cause {
        match self {
            Access::Fetch => crate::trap::Cause::InstrAccessFault,
            Access::Load => crate::trap::Cause::LoadAccessFault,
            Access::Store => crate::trap::Cause::StoreAccessFault,
        }
    }
}

/// Why a translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateErr {
    /// The page tables deny the access (invalid entry, missing permission,
    /// or user access to a supervisor page).
    PageFault,
    /// A page-table entry could not be read or written on the bus.
    Bus(BusFault),
}

impl fmt::Display for TranslateErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateErr::PageFault => write!(f, "page fault"),
            TranslateErr::Bus(b) => write!(f, "page-table access failed: {b}"),
        }
    }
}

impl std::error::Error for TranslateErr {}

/// Result of a successful page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Walk {
    /// Translated physical address.
    pub paddr: u32,
    /// The leaf (level-2) entry, after any A/D update.
    pub leaf: u32,
    /// Physical address of the leaf entry (for shadow bookkeeping).
    pub leaf_addr: u32,
    /// `true` if the walker wrote back accessed/dirty bits.
    pub updated_ad: bool,
}

fn perm_ok(flags: u32, access: Access, mode: Mode) -> bool {
    if flags & pte::V == 0 {
        return false;
    }
    if mode == Mode::User && flags & pte::U == 0 {
        return false;
    }
    match access {
        Access::Fetch => flags & pte::X != 0,
        Access::Load => flags & pte::R != 0,
        Access::Store => flags & pte::W != 0,
    }
}

/// Walks the page table rooted at `root` (a physical page address) for `va`.
///
/// When `update_ad` is `true` the walker behaves like the hardware MMU and
/// writes back accessed/dirty bits; pass `false` for side-effect-free
/// translation (monitor and debugger use).
///
/// # Errors
///
/// [`TranslateErr::PageFault`] if any level denies the access;
/// [`TranslateErr::Bus`] if a table entry itself cannot be read or written.
pub fn walk<B: Bus + ?Sized>(
    bus: &mut B,
    root: u32,
    va: u32,
    access: Access,
    mode: Mode,
    update_ad: bool,
) -> Result<Walk, TranslateErr> {
    let l1_addr = (root & pte::PPN_MASK) + l1_index(va) * 4;
    let l1e = bus
        .read(l1_addr, MemSize::Word)
        .map_err(TranslateErr::Bus)?;
    if l1e & pte::V == 0 || l1e & (pte::R | pte::W | pte::X) != 0 {
        // Invalid pointer, or a (reserved) superpage leaf.
        return Err(TranslateErr::PageFault);
    }
    let l2_addr = (l1e & pte::PPN_MASK) + l2_index(va) * 4;
    let mut leaf = bus
        .read(l2_addr, MemSize::Word)
        .map_err(TranslateErr::Bus)?;
    if !perm_ok(leaf, access, mode) {
        return Err(TranslateErr::PageFault);
    }
    let mut updated = false;
    if update_ad {
        let want = pte::A | if access == Access::Store { pte::D } else { 0 };
        if leaf & want != want {
            leaf |= want;
            bus.write(l2_addr, leaf, MemSize::Word)
                .map_err(TranslateErr::Bus)?;
            updated = true;
        }
    }
    Ok(Walk {
        paddr: (leaf & pte::PPN_MASK) | (va & PAGE_MASK),
        leaf,
        leaf_addr: l2_addr,
        updated_ad: updated,
    })
}

/// Installs a single `va → pa` leaf mapping in the page table rooted at
/// `root`, allocating a level-2 table page from the `alloc` bump pointer
/// when the level-1 slot is empty.
///
/// This is the builder used by guest images, monitors and tests; the
/// hardware walker only ever reads tables.
///
/// # Errors
///
/// Returns a [`BusFault`] if a table page cannot be read or written.
pub fn map_page<B: Bus + ?Sized>(
    bus: &mut B,
    root: u32,
    alloc: &mut u32,
    va: u32,
    pa: u32,
    flags: u32,
) -> Result<(), BusFault> {
    let l1a = (root & pte::PPN_MASK) + l1_index(va) * 4;
    let mut l1e = bus.read(l1a, MemSize::Word)?;
    if l1e & pte::V == 0 {
        let table = *alloc;
        *alloc += PAGE_SIZE;
        // Zero the fresh level-2 table.
        for i in 0..1024 {
            bus.write(table + i * 4, 0, MemSize::Word)?;
        }
        l1e = pte::table(table);
        bus.write(l1a, l1e, MemSize::Word)?;
    }
    let l2a = (l1e & pte::PPN_MASK) + l2_index(va) * 4;
    bus.write(l2a, pte::leaf(pa, flags), MemSize::Word)
}

const TLB_ENTRIES: usize = 64;

#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    valid: bool,
    vpn: u32,
    ppn: u32,
    flags: u32,
}

/// A direct-mapped translation lookaside buffer.
///
/// The TLB caches leaf entries *including* their dirty bit; a store that hits
/// a clean entry still takes the walker so the dirty bit is set in memory,
/// matching real hardware and keeping shadow page tables coherent.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: [TlbEntry; TLB_ENTRIES],
    hits: u64,
    misses: u64,
    generation: u64,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new()
    }
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new() -> Tlb {
        Tlb {
            entries: [TlbEntry::default(); TLB_ENTRIES],
            hits: 0,
            misses: 0,
            generation: 0,
        }
    }

    fn slot(vpn: u32) -> usize {
        (vpn as usize) % TLB_ENTRIES
    }

    /// Looks up a translation; returns the physical address on a usable hit.
    pub fn lookup(&mut self, va: u32, access: Access, mode: Mode) -> Option<u32> {
        let vpn = vpn(va);
        let e = &self.entries[Self::slot(vpn)];
        if e.valid
            && e.vpn == vpn
            && perm_ok(e.flags, access, mode)
            && (access != Access::Store || e.flags & pte::D != 0)
        {
            self.hits += 1;
            Some(e.ppn | (va & PAGE_MASK))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Caches a leaf entry produced by the walker.
    pub fn insert(&mut self, va: u32, leaf: u32) {
        let vpn = vpn(va);
        self.entries[Self::slot(vpn)] = TlbEntry {
            valid: true,
            vpn,
            ppn: leaf & pte::PPN_MASK,
            flags: leaf & pte::FLAGS_MASK,
        };
        self.generation += 1;
    }

    /// Invalidates every entry (the `tlbflush` instruction).
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
        self.generation += 1;
    }

    /// `(hits, misses)` counters, for performance analysis.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Monotonic counter bumped on every mutation (insert or flush).
    ///
    /// The CPU's fetch fast path memoises one translation and revalidates it
    /// against this counter: as long as the generation is unchanged, the TLB
    /// provably still holds the memoised entry.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records a hit that was answered by the fetch fast path instead of
    /// [`Tlb::lookup`], keeping hit/miss statistics identical whether or not
    /// the fast path is enabled.
    pub(crate) fn note_hit(&mut self) {
        self.hits += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatRam;
    use proptest::prelude::*;

    #[test]
    fn walk_translates_and_sets_ad() {
        let mut ram = FlatRam::new(64 * 1024);
        let root = 0x1000;
        let mut alloc = 0x2000;
        map_page(
            &mut ram,
            root,
            &mut alloc,
            0x0040_0000,
            0x5000,
            pte::V | pte::R | pte::W,
        )
        .unwrap();

        let w = walk(
            &mut ram,
            root,
            0x0040_0123,
            Access::Load,
            Mode::Supervisor,
            true,
        )
        .unwrap();
        assert_eq!(w.paddr, 0x5123);
        assert!(w.leaf & pte::A != 0);
        assert!(w.leaf & pte::D == 0);
        assert!(w.updated_ad);

        let w = walk(
            &mut ram,
            root,
            0x0040_0200,
            Access::Store,
            Mode::Supervisor,
            true,
        )
        .unwrap();
        assert!(w.leaf & pte::D != 0);
        // Dirty bit persisted to memory.
        let stored = ram.load_word(w.leaf_addr);
        assert!(stored & pte::D != 0);
    }

    #[test]
    fn walk_without_update_leaves_table_untouched() {
        let mut ram = FlatRam::new(64 * 1024);
        let root = 0x1000;
        let mut alloc = 0x2000;
        map_page(&mut ram, root, &mut alloc, 0x1000, 0x5000, pte::V | pte::R).unwrap();
        let before = ram.clone();
        walk(
            &mut ram,
            root,
            0x1004,
            Access::Load,
            Mode::Supervisor,
            false,
        )
        .unwrap();
        assert_eq!(ram, before);
    }

    #[test]
    fn permission_checks() {
        let mut ram = FlatRam::new(64 * 1024);
        let root = 0x1000;
        let mut alloc = 0x2000;
        map_page(&mut ram, root, &mut alloc, 0x1000, 0x5000, pte::V | pte::R).unwrap(); // read-only, no U
        map_page(
            &mut ram,
            root,
            &mut alloc,
            0x2000,
            0x6000,
            pte::V | pte::R | pte::U,
        )
        .unwrap();

        // Store to read-only page fails.
        assert_eq!(
            walk(
                &mut ram,
                root,
                0x1000,
                Access::Store,
                Mode::Supervisor,
                true
            ),
            Err(TranslateErr::PageFault)
        );
        // User access to supervisor page fails.
        assert_eq!(
            walk(&mut ram, root, 0x1000, Access::Load, Mode::User, true),
            Err(TranslateErr::PageFault)
        );
        // User access to user page succeeds.
        assert!(walk(&mut ram, root, 0x2000, Access::Load, Mode::User, true).is_ok());
        // Fetch needs X.
        assert_eq!(
            walk(&mut ram, root, 0x2000, Access::Fetch, Mode::User, true),
            Err(TranslateErr::PageFault)
        );
        // Unmapped VA faults at level 1.
        assert_eq!(
            walk(
                &mut ram,
                root,
                0x8000_0000,
                Access::Load,
                Mode::Supervisor,
                true
            ),
            Err(TranslateErr::PageFault)
        );
    }

    #[test]
    fn l1_leaf_bits_are_reserved() {
        let mut ram = FlatRam::new(64 * 1024);
        let root = 0x1000;
        ram.store_word(
            root + l1_index(0x1000) * 4,
            pte::leaf(0x5000, pte::V | pte::R),
        );
        assert_eq!(
            walk(&mut ram, root, 0x1000, Access::Load, Mode::Supervisor, true),
            Err(TranslateErr::PageFault)
        );
    }

    #[test]
    fn pte_table_out_of_ram_is_bus_fault() {
        let mut ram = FlatRam::new(8 * 1024);
        let root = 0x1000;
        ram.store_word(root + l1_index(0) * 4, pte::table(0x0010_0000));
        assert_eq!(
            walk(&mut ram, root, 0, Access::Load, Mode::Supervisor, true),
            Err(TranslateErr::Bus(BusFault::Unmapped))
        );
    }

    #[test]
    fn tlb_store_needs_dirty() {
        let mut tlb = Tlb::new();
        tlb.insert(0x4000, pte::leaf(0x7000, pte::V | pte::R | pte::W | pte::A));
        // Clean entry: loads hit, stores miss (must re-walk to set D).
        assert_eq!(
            tlb.lookup(0x4010, Access::Load, Mode::Supervisor),
            Some(0x7010)
        );
        assert_eq!(tlb.lookup(0x4010, Access::Store, Mode::Supervisor), None);
        tlb.insert(
            0x4000,
            pte::leaf(0x7000, pte::V | pte::R | pte::W | pte::A | pte::D),
        );
        assert_eq!(
            tlb.lookup(0x4010, Access::Store, Mode::Supervisor),
            Some(0x7010)
        );
        let (hits, misses) = tlb.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn tlb_flush_clears() {
        let mut tlb = Tlb::new();
        tlb.insert(0x4000, pte::leaf(0x7000, pte::V | pte::R | pte::A));
        assert!(tlb.lookup(0x4000, Access::Load, Mode::Supervisor).is_some());
        tlb.flush();
        assert!(tlb.lookup(0x4000, Access::Load, Mode::Supervisor).is_none());
    }

    #[test]
    fn tlb_mode_check_on_hit() {
        let mut tlb = Tlb::new();
        tlb.insert(0x4000, pte::leaf(0x7000, pte::V | pte::R | pte::A)); // no U
        assert!(tlb.lookup(0x4000, Access::Load, Mode::User).is_none());
        assert!(tlb.lookup(0x4000, Access::Load, Mode::Supervisor).is_some());
    }

    proptest! {
        /// The walker agrees with a from-scratch reference computation for
        /// arbitrary single-page mappings and accesses.
        #[test]
        fn walker_matches_reference(
            va_page in 0u32..0x10_0000,
            pa_page in 2u32..16,
            flags in 0u32..128,
            offset in 0u32..PAGE_SIZE,
            access_sel in 0u8..3,
            user in proptest::bool::ANY,
        ) {
            let va = va_page << 12;
            let pa = pa_page << 12;
            let mut ram = FlatRam::new(128 * 1024);
            let root = 0x1_0000;
            let mut alloc = 0x1_1000;
            map_page(&mut ram, root, &mut alloc, va, pa, flags).unwrap();
            let access = [Access::Fetch, Access::Load, Access::Store][access_sel as usize];
            let mode = if user { Mode::User } else { Mode::Supervisor };

            let got = walk(&mut ram, root, va | offset, access, mode, false);
            let expect_ok = perm_ok(flags, access, mode);
            match got {
                Ok(w) => {
                    prop_assert!(expect_ok);
                    prop_assert_eq!(w.paddr, pa | offset);
                }
                Err(TranslateErr::PageFault) => prop_assert!(!expect_ok),
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
    }
}
