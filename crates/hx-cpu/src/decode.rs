//! Predecoded-instruction cache and fetch-translation fast path.
//!
//! `Cpu::step` normally pays the full interpreter tax on every instruction:
//! translate the PC, fetch the word from the bus, decode it. Execution-replay
//! monitors avoid this with a *decoded cache* — the same trick is safe here
//! because the simulation is deterministic and every way a cached entry could
//! go stale is an explicit, observable event:
//!
//! * **stores and DMA writes** bump a per-page generation counter in RAM
//!   (surfaced through [`Bus::fetch_page_generation`]); a mismatch drops the
//!   predecoded page;
//! * **page-table changes** (including shadow-page-table activation, which is
//!   a `ptbr` write) flush the TLB, which bumps the TLB generation and kills
//!   the fetch fast-path line.
//!
//! The cache is strictly *timing-neutral*: it caches only work whose cost is
//! already zero in the cycle model (RAM fetch, decode) and replays the TLB
//! hit the slow path would have recorded, so cycle counts, `TimeStats`, TLB
//! statistics and traces are byte-identical with the cache on or off. Only
//! host-side speed changes.

use crate::isa::Instr;
use crate::mmu;
use crate::trap::{Cause, Trap};
use crate::{Bus, Mode};

/// Direct-mapped page slots (keyed by physical page number).
const PAGE_SLOTS: usize = 64;
/// Instruction words per 4 KiB page.
const WORDS_PER_PAGE: usize = (mmu::PAGE_SIZE as usize) / 4;

/// Counters for the decode cache and the fetch-translation fast path.
///
/// These are host-side performance diagnostics: they are **not** part of the
/// guest-visible machine state and never enter state digests, so cache-on and
/// cache-off runs stay bit-identical everywhere else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Instructions served predecoded.
    pub hits: u64,
    /// Instructions fetched from the bus and decoded the slow way.
    pub misses: u64,
    /// Fetch translations served from the one-entry fast-path line.
    pub fast_fetches: u64,
    /// Predecoded pages dropped because their contents changed
    /// (stores or DMA writes into the page).
    pub invalidations: u64,
}

impl DecodeStats {
    /// Decode-cache hit rate in `[0, 1]`; `0` when nothing was fetched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters as `(stable metric name, value)` pairs, so exporters
    /// (the metrics registry, the `qStats` wire sample) stay in sync with
    /// this struct by construction instead of hand-listing fields.
    pub fn kv(&self) -> [(&'static str, u64); 4] {
        [
            ("lwvmm_decode_hits_total", self.hits),
            ("lwvmm_decode_misses_total", self.misses),
            ("lwvmm_decode_fast_fetches_total", self.fast_fetches),
            ("lwvmm_decode_invalidations_total", self.invalidations),
        ]
    }
}

/// One predecoded physical page.
#[derive(Debug, Clone)]
struct PageEntry {
    /// Physical page base address.
    page: u32,
    /// Bus generation the page was predecoded at.
    gen: u64,
    /// Predecoded `(word, instruction)` per word offset. Only successful
    /// decodes are cached; illegal words re-decode (and re-trap) every time.
    slots: Box<[Option<(u32, Instr)>; WORDS_PER_PAGE]>,
}

impl PageEntry {
    fn new(page: u32, gen: u64) -> PageEntry {
        PageEntry {
            page,
            gen,
            slots: Box::new([None; WORDS_PER_PAGE]),
        }
    }
}

/// One-entry fetch-translation cache.
///
/// Valid only while the TLB generation is unchanged: any TLB insert or flush
/// (page-table edit, `ptbr` write, shadow activation, `tlbflush`) kills it,
/// so it can never outlive the translation it memoised. Used only while
/// paging is enabled — with paging off, translation is the identity.
#[derive(Debug, Clone, Copy, Default)]
struct FetchLine {
    valid: bool,
    vpn: u32,
    pa_page: u32,
    mode: Mode,
    tlb_gen: u64,
}

/// The predecoded-instruction cache (see the module docs).
#[derive(Debug, Clone)]
pub struct DecodeCache {
    pages: Vec<Option<PageEntry>>,
    line: FetchLine,
    pub(crate) stats: DecodeStats,
}

impl DecodeCache {
    pub(crate) fn new() -> DecodeCache {
        DecodeCache {
            pages: (0..PAGE_SLOTS).map(|_| None).collect(),
            line: FetchLine::default(),
            stats: DecodeStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> DecodeStats {
        self.stats
    }

    fn slot(pa: u32) -> usize {
        ((pa >> 12) as usize) % PAGE_SLOTS
    }

    /// Fast-path fetch translation: the physical address of `pc` if the
    /// memoised line still provably matches what the TLB would answer.
    pub(crate) fn fetch_pa(&self, pc: u32, mode: Mode, tlb_gen: u64) -> Option<u32> {
        let l = &self.line;
        if l.valid && l.vpn == mmu::vpn(pc) && l.mode == mode && l.tlb_gen == tlb_gen {
            Some(l.pa_page | (pc & mmu::PAGE_MASK))
        } else {
            None
        }
    }

    /// Memoises a successful fetch translation for [`DecodeCache::fetch_pa`].
    pub(crate) fn remember_fetch(&mut self, pc: u32, pa: u32, mode: Mode, tlb_gen: u64) {
        self.line = FetchLine {
            valid: true,
            vpn: mmu::vpn(pc),
            pa_page: pa & !mmu::PAGE_MASK,
            mode,
            tlb_gen,
        };
    }

    /// Returns the predecoded instruction at physical address `pa`, filling
    /// the cache on a miss. `gen` is the bus's current generation for the
    /// page (see [`Bus::fetch_page_generation`]); a stale predecoded page is
    /// dropped and refilled.
    ///
    /// # Errors
    ///
    /// The same traps the slow path raises: [`Cause::InstrAccessFault`] if
    /// the fetch fails, [`Cause::IllegalInstruction`] if the word does not
    /// decode (`tval` = the word, as the trap contract requires).
    pub(crate) fn lookup_or_fill<B: Bus + ?Sized>(
        &mut self,
        bus: &mut B,
        pa: u32,
        gen: u64,
        pc: u32,
    ) -> Result<(u32, Instr), Trap> {
        let slot = Self::slot(pa);
        let page = pa & !mmu::PAGE_MASK;
        let wi = ((pa & mmu::PAGE_MASK) >> 2) as usize;

        let reuse = match &self.pages[slot] {
            Some(e) if e.page == page && e.gen == gen => true,
            Some(e) if e.page == page => {
                self.stats.invalidations += 1;
                false
            }
            _ => false,
        };
        if reuse {
            if let Some(cached) = self.pages[slot].as_ref().and_then(|e| e.slots[wi]) {
                self.stats.hits += 1;
                return Ok(cached);
            }
        }

        self.stats.misses += 1;
        let word = bus
            .fetch(pa)
            .map_err(|_| Trap::new(Cause::InstrAccessFault, pc, pc))?;
        let instr =
            Instr::decode(word).map_err(|_| Trap::new(Cause::IllegalInstruction, pc, word))?;

        if !reuse {
            match &mut self.pages[slot] {
                Some(e) => {
                    e.page = page;
                    e.gen = gen;
                    e.slots.fill(None);
                }
                empty => *empty = Some(PageEntry::new(page, gen)),
            }
        }
        if let Some(e) = &mut self.pages[slot] {
            e.slots[wi] = Some((word, instr));
        }
        Ok((word, instr))
    }
}
