//! Trap causes and the trap descriptor exchanged between the CPU and the
//! platform.
//!
//! HX32 traps are **precise**: when [`crate::Cpu::step`] reports a trap, no
//! architectural state of the faulting instruction has been committed (except
//! for [`Cause::DebugStep`], which by definition fires *after* an instruction
//! completes). The CPU does **not** vector automatically — the platform
//! decides whether to deliver the trap architecturally
//! ([`crate::Cpu::take_trap`], what real hardware does) or to hand it to a
//! virtual machine monitor first. That decision point is exactly where the
//! paper's lightweight monitor sits.

use core::fmt;

/// Architectural trap causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cause {
    /// External interrupt; `tval` carries the vector supplied by the
    /// interrupt controller.
    Interrupt,
    /// Instruction fetch from a non-word-aligned PC.
    InstrAddrMisaligned,
    /// Instruction fetch hit an unmapped/refused physical address.
    InstrAccessFault,
    /// Undefined instruction word; `tval` carries the word.
    IllegalInstruction,
    /// `ebreak` executed.
    Breakpoint,
    /// Load from a misaligned address.
    LoadAddrMisaligned,
    /// Load hit an unmapped/refused physical address.
    LoadAccessFault,
    /// Store to a misaligned address.
    StoreAddrMisaligned,
    /// Store hit an unmapped/refused physical address.
    StoreAccessFault,
    /// `ecall` from user mode.
    EcallU,
    /// `ecall` from supervisor mode.
    EcallS,
    /// Instruction fetch failed translation; `tval` carries the virtual PC.
    InstrPageFault,
    /// Load failed translation; `tval` carries the virtual address.
    LoadPageFault,
    /// Store failed translation; `tval` carries the virtual address.
    StorePageFault,
    /// A privileged instruction was executed in user mode; `tval` carries
    /// the instruction word. The lightweight monitor lives off this trap.
    PrivilegedInstruction,
    /// Single-step trap (`STATUS.TF`); fires after the stepped instruction.
    DebugStep,
}

impl Cause {
    /// All causes, in code order.
    pub const ALL: [Cause; 16] = [
        Cause::Interrupt,
        Cause::InstrAddrMisaligned,
        Cause::InstrAccessFault,
        Cause::IllegalInstruction,
        Cause::Breakpoint,
        Cause::LoadAddrMisaligned,
        Cause::LoadAccessFault,
        Cause::StoreAddrMisaligned,
        Cause::StoreAccessFault,
        Cause::EcallU,
        Cause::EcallS,
        Cause::InstrPageFault,
        Cause::LoadPageFault,
        Cause::StorePageFault,
        Cause::PrivilegedInstruction,
        Cause::DebugStep,
    ];

    /// The numeric code stored in the `CAUSE` CSR.
    pub fn code(self) -> u32 {
        Cause::ALL.iter().position(|&c| c == self).unwrap() as u32
    }

    /// Looks a cause up by its code.
    pub fn from_code(code: u32) -> Option<Cause> {
        Cause::ALL.get(code as usize).copied()
    }

    /// Returns `true` for the three page-fault causes.
    pub fn is_page_fault(self) -> bool {
        matches!(
            self,
            Cause::InstrPageFault | Cause::LoadPageFault | Cause::StorePageFault
        )
    }

    /// Returns `true` for causes produced by the debug facilities
    /// (`ebreak`, single step).
    pub fn is_debug(self) -> bool {
        matches!(self, Cause::Breakpoint | Cause::DebugStep)
    }
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cause::Interrupt => "external interrupt",
            Cause::InstrAddrMisaligned => "instruction address misaligned",
            Cause::InstrAccessFault => "instruction access fault",
            Cause::IllegalInstruction => "illegal instruction",
            Cause::Breakpoint => "breakpoint",
            Cause::LoadAddrMisaligned => "load address misaligned",
            Cause::LoadAccessFault => "load access fault",
            Cause::StoreAddrMisaligned => "store address misaligned",
            Cause::StoreAccessFault => "store access fault",
            Cause::EcallU => "environment call from user mode",
            Cause::EcallS => "environment call from supervisor mode",
            Cause::InstrPageFault => "instruction page fault",
            Cause::LoadPageFault => "load page fault",
            Cause::StorePageFault => "store page fault",
            Cause::PrivilegedInstruction => "privileged instruction in user mode",
            Cause::DebugStep => "single step",
        };
        f.write_str(s)
    }
}

/// A raised trap, not yet delivered.
///
/// `epc` is the PC the trap handler should see in the `EPC` CSR: the faulting
/// instruction for synchronous faults, the *next* instruction for
/// [`Cause::DebugStep`], and the interrupted instruction for interrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Trap {
    /// Why the trap was raised.
    pub cause: Cause,
    /// Value for the `EPC` CSR.
    pub epc: u32,
    /// Value for the `TVAL` CSR (faulting address, instruction word or
    /// interrupt vector, depending on `cause`).
    pub tval: u32,
}

impl Trap {
    /// Convenience constructor.
    pub fn new(cause: Cause, epc: u32, tval: u32) -> Trap {
        Trap { cause, epc, tval }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at pc={:#010x} (tval={:#010x})",
            self.cause, self.epc, self.tval
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_code_roundtrip() {
        for c in Cause::ALL {
            assert_eq!(Cause::from_code(c.code()), Some(c));
        }
        assert_eq!(Cause::from_code(16), None);
        assert_eq!(Cause::Interrupt.code(), 0);
    }

    #[test]
    fn classification() {
        assert!(Cause::LoadPageFault.is_page_fault());
        assert!(!Cause::LoadAccessFault.is_page_fault());
        assert!(Cause::Breakpoint.is_debug());
        assert!(Cause::DebugStep.is_debug());
        assert!(!Cause::EcallU.is_debug());
    }

    #[test]
    fn display_nonempty() {
        for c in Cause::ALL {
            assert!(!format!("{c}").is_empty());
        }
        let t = Trap::new(Cause::Breakpoint, 0x100, 0);
        assert!(format!("{t}").contains("breakpoint"));
    }
}
