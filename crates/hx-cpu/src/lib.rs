//! HX32: a deterministic 32-bit CPU model with two privilege modes, a paged
//! MMU and precise traps.
//!
//! HX32 is the processor substrate for the reproduction of *"OS Debugging
//! Method Using a Lightweight Virtual Machine Monitor"* (Takeuchi, DATE
//! 2005). It deliberately mirrors the properties of the paper's PC/AT target
//! that the debugging method depends on:
//!
//! * exactly **two hardware privilege modes** ([`Mode::Supervisor`] and
//!   [`Mode::User`]) — the lightweight monitor builds its third protection
//!   level on top of these, just as the paper does on x86;
//! * a **two-level paged MMU** with per-page user/write/execute permissions
//!   and a TLB that must be explicitly flushed (shadow paging relies on it);
//! * **precise traps** for privileged instructions, page faults, breakpoints
//!   (`ebreak`), system calls (`ecall`) and a hardware **single-step flag**
//!   (`STATUS.TF`, like the x86 trap flag) used by the debug stub;
//! * a deterministic **cycle-cost model** ([`cost`]) so that CPU-load
//!   measurements are reproducible bit-for-bit.
//!
//! The crate knows nothing about devices or machines; physical memory and
//! MMIO are reached through the [`Bus`] trait implemented by `hx-machine`.
//!
//! # Example
//!
//! Execute a two-instruction program that adds two registers:
//!
//! ```
//! use hx_cpu::{Cpu, FlatRam, StepOutcome, isa::{Instr, Reg}};
//!
//! let mut ram = FlatRam::new(4096);
//! ram.store_word(0, Instr::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 7 }.encode());
//! ram.store_word(4, Instr::Addi { rd: Reg::R2, rs1: Reg::R1, imm: 35 }.encode());
//!
//! let mut cpu = Cpu::new();
//! cpu.set_pc(0);
//! assert!(matches!(cpu.step(&mut ram), StepOutcome::Executed { .. }));
//! assert!(matches!(cpu.step(&mut ram), StepOutcome::Executed { .. }));
//! assert_eq!(cpu.reg(Reg::R2), 42);
//! ```

pub mod cost;
pub mod cpu;
pub mod csr;
pub mod decode;
pub mod isa;
pub mod mmu;
pub mod trap;

pub use cpu::{Cpu, StepOutcome, Vcpu};
pub use csr::{Csr, Status};
pub use decode::DecodeStats;
pub use isa::{Instr, Reg};
pub use mmu::{pte, Tlb, TranslateErr};
pub use trap::{Cause, Trap};

use core::fmt;

/// Width of a single memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Half,
    /// 32-bit access.
    Word,
}

impl MemSize {
    /// Number of bytes moved by an access of this size.
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::Byte => 1,
            MemSize::Half => 2,
            MemSize::Word => 4,
        }
    }
}

/// Error returned by a [`Bus`] access that cannot be satisfied.
///
/// The CPU converts bus faults into access-fault traps
/// ([`Cause::LoadAccessFault`] / [`Cause::StoreAccessFault`] /
/// [`Cause::InstrAccessFault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFault {
    /// No RAM or device is mapped at the physical address.
    Unmapped,
    /// A device refused the access (wrong size, read-only register, …).
    Denied,
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusFault::Unmapped => write!(f, "physical address is unmapped"),
            BusFault::Denied => write!(f, "device denied the access"),
        }
    }
}

impl std::error::Error for BusFault {}

/// Physical address space abstraction the CPU executes against.
///
/// Implementations route accesses to RAM and memory-mapped devices. All
/// addresses are **physical**; virtual-to-physical translation happens inside
/// the CPU ([`mmu`]). Reads and writes of [`MemSize::Half`] /
/// [`MemSize::Word`] are always aligned when issued by the CPU (misalignment
/// traps first).
///
/// A `&mut B where B: Bus` also implements `Bus`, so bus references can be
/// passed down call chains.
pub trait Bus {
    /// Reads `size` bytes at `paddr`, zero-extended into a `u32`.
    ///
    /// # Errors
    ///
    /// Returns a [`BusFault`] if nothing is mapped at `paddr` or the device
    /// refuses the access.
    fn read(&mut self, paddr: u32, size: MemSize) -> Result<u32, BusFault>;

    /// Writes the low `size` bytes of `val` at `paddr`.
    ///
    /// # Errors
    ///
    /// Returns a [`BusFault`] if nothing is mapped at `paddr` or the device
    /// refuses the access.
    fn write(&mut self, paddr: u32, val: u32, size: MemSize) -> Result<(), BusFault>;

    /// Fetches the instruction word at `paddr` (always word-sized).
    ///
    /// # Errors
    ///
    /// Returns a [`BusFault`] under the same conditions as [`Bus::read`].
    fn fetch(&mut self, paddr: u32) -> Result<u32, BusFault> {
        self.read(paddr, MemSize::Word)
    }

    /// Generation stamp of the physical page containing `paddr`, or `None`
    /// if instruction fetches from it must not be cached.
    ///
    /// Buses that can track writes (stores *and* DMA) per page return a
    /// counter that changes whenever the page's contents may have changed;
    /// the CPU's predecoded-instruction cache ([`decode`]) keys on it.
    /// The default (`None`) disables caching, which is always safe — device
    /// pages and side-effectful fetch paths must stay uncached.
    fn fetch_page_generation(&mut self, paddr: u32) -> Option<u64> {
        let _ = paddr;
        None
    }
}

impl<B: Bus + ?Sized> Bus for &mut B {
    fn read(&mut self, paddr: u32, size: MemSize) -> Result<u32, BusFault> {
        (**self).read(paddr, size)
    }
    fn write(&mut self, paddr: u32, val: u32, size: MemSize) -> Result<(), BusFault> {
        (**self).write(paddr, val, size)
    }
    fn fetch(&mut self, paddr: u32) -> Result<u32, BusFault> {
        (**self).fetch(paddr)
    }
    fn fetch_page_generation(&mut self, paddr: u32) -> Option<u64> {
        (**self).fetch_page_generation(paddr)
    }
}

/// A plain block of RAM starting at physical address zero.
///
/// `FlatRam` is the simplest possible [`Bus`]: no devices, no holes. It is
/// used throughout unit tests and doc examples; real machines live in
/// `hx-machine`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRam {
    bytes: Vec<u8>,
}

impl FlatRam {
    /// Creates `len` bytes of zeroed RAM.
    pub fn new(len: usize) -> Self {
        FlatRam {
            bytes: vec![0; len],
        }
    }

    /// Total size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the RAM has zero length.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Stores a little-endian word, for test setup.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the RAM size.
    pub fn store_word(&mut self, addr: u32, val: u32) {
        let a = addr as usize;
        self.bytes[a..a + 4].copy_from_slice(&val.to_le_bytes());
    }

    /// Loads a little-endian word, for test inspection.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the RAM size.
    pub fn load_word(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.bytes[a..a + 4].try_into().unwrap())
    }

    /// Raw byte view.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw byte view.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }
}

impl Bus for FlatRam {
    fn read(&mut self, paddr: u32, size: MemSize) -> Result<u32, BusFault> {
        let a = paddr as usize;
        let n = size.bytes() as usize;
        if a.checked_add(n).is_none_or(|end| end > self.bytes.len()) {
            return Err(BusFault::Unmapped);
        }
        let mut v = 0u32;
        for i in 0..n {
            v |= (self.bytes[a + i] as u32) << (8 * i);
        }
        Ok(v)
    }

    fn write(&mut self, paddr: u32, val: u32, size: MemSize) -> Result<(), BusFault> {
        let a = paddr as usize;
        let n = size.bytes() as usize;
        if a.checked_add(n).is_none_or(|end| end > self.bytes.len()) {
            return Err(BusFault::Unmapped);
        }
        for i in 0..n {
            self.bytes[a + i] = (val >> (8 * i)) as u8;
        }
        Ok(())
    }
}

/// Hardware privilege mode.
///
/// HX32 has exactly two, like the effective x86 situation the paper works
/// with: the monitor's third protection level is built in software on top of
/// these, not provided by the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Unprivileged mode: privileged instructions trap, pages without the
    /// `U` bit fault.
    User,
    /// Privileged mode: full access to CSRs and all mapped pages.
    #[default]
    Supervisor,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::User => write!(f, "user"),
            Mode::Supervisor => write!(f, "supervisor"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_ram_roundtrip() {
        let mut ram = FlatRam::new(64);
        ram.write(8, 0xdead_beef, MemSize::Word).unwrap();
        assert_eq!(ram.read(8, MemSize::Word).unwrap(), 0xdead_beef);
        assert_eq!(ram.read(8, MemSize::Byte).unwrap(), 0xef);
        assert_eq!(ram.read(10, MemSize::Half).unwrap(), 0xdead);
    }

    #[test]
    fn flat_ram_out_of_range() {
        let mut ram = FlatRam::new(16);
        assert_eq!(ram.read(14, MemSize::Word), Err(BusFault::Unmapped));
        assert_eq!(ram.write(16, 0, MemSize::Byte), Err(BusFault::Unmapped));
        assert_eq!(ram.read(12, MemSize::Word).unwrap(), 0);
    }

    #[test]
    fn mem_size_bytes() {
        assert_eq!(MemSize::Byte.bytes(), 1);
        assert_eq!(MemSize::Half.bytes(), 2);
        assert_eq!(MemSize::Word.bytes(), 4);
    }

    #[test]
    fn bus_fault_display_nonempty() {
        assert!(!format!("{}", BusFault::Unmapped).is_empty());
        assert!(!format!("{}", BusFault::Denied).is_empty());
        assert!(!format!("{:?}", BusFault::Denied).is_empty());
    }

    #[test]
    fn mode_default_is_supervisor() {
        assert_eq!(Mode::default(), Mode::Supervisor);
        assert_eq!(format!("{}", Mode::User), "user");
    }
}
