//! The HX32 interpreter: fetch, decode, execute, translate, trap.

use crate::cost;
use crate::csr::{Csr, Status};
use crate::decode::{DecodeCache, DecodeStats};
use crate::isa::{CsrOp, Instr, LoadKind, Reg, StoreKind, SysOp};
use crate::mmu::{self, Access, Tlb, TranslateErr};
use crate::trap::{Cause, Trap};
use crate::{Bus, MemSize, Mode};

/// Result of one [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired normally.
    Executed {
        /// Cycles consumed.
        cycles: u64,
    },
    /// A trap was raised and **not yet delivered**; the platform decides
    /// between [`Cpu::take_trap`] (architectural delivery) and monitor
    /// interception. Architectural state of the faulting instruction is
    /// uncommitted, except for [`Cause::DebugStep`] which fires after
    /// completion.
    Trapped {
        /// The raised trap.
        trap: Trap,
        /// Cycles consumed before the trap was recognized.
        cycles: u64,
    },
    /// A `wfi` retired; the CPU is idle until an interrupt is pending.
    Wfi {
        /// Cycles consumed.
        cycles: u64,
    },
}

enum Flow {
    Next,
    Jump(u32),
    Wfi,
}

/// One virtual CPU: the per-core HX32 processor state — registers, CSRs,
/// privilege mode, TLB and predecoded-instruction cache.
///
/// Everything in this struct is private to one core. State shared between
/// cores (physical RAM with its per-page write generations, devices, the
/// event queue) lives behind the [`Bus`](crate::Bus) in `hx-machine`, so a
/// machine can time-multiplex any number of `Vcpu`s over one memory image
/// without aliasing hazards. [`Cpu`] remains as an alias for the common
/// single-core case.
///
/// See the [crate documentation](crate) for an execution example.
#[derive(Debug, Clone)]
pub struct Vcpu {
    regs: [u32; 32],
    pc: u32,
    mode: Mode,
    status: Status,
    tvec: u32,
    epc: u32,
    cause: u32,
    tval: u32,
    ptbr: u32,
    scratch: u32,
    cycles: u64,
    instret: u64,
    traps_taken: u64,
    tlb: Tlb,
    decode_cache: Option<Box<DecodeCache>>,
}

/// The historical name for [`Vcpu`]: a machine with one core just has one
/// of them. Kept as the public spelling for single-core code.
pub type Cpu = Vcpu;

impl Default for Vcpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Vcpu {
    /// Creates a CPU in supervisor mode at PC 0 with paging disabled and
    /// interrupts masked — the architectural reset state.
    pub fn new() -> Vcpu {
        Vcpu {
            regs: [0; 32],
            pc: 0,
            mode: Mode::Supervisor,
            status: Status::default(),
            tvec: 0,
            epc: 0,
            cause: 0,
            tval: 0,
            ptbr: 0,
            scratch: 0,
            cycles: 0,
            instret: 0,
            traps_taken: 0,
            tlb: Tlb::new(),
            decode_cache: None,
        }
    }

    /// Enables or disables the predecoded-instruction cache
    /// ([`crate::decode`]). Disabled at reset; `hx-machine` enables it on
    /// buses that track per-page write generations. Toggling resets the
    /// cache and its statistics. Simulation results are bit-identical either
    /// way — only host-side speed changes.
    pub fn set_decode_cache(&mut self, enabled: bool) {
        self.decode_cache = enabled.then(|| Box::new(DecodeCache::new()));
    }

    /// Is the predecoded-instruction cache enabled?
    pub fn decode_cache_enabled(&self) -> bool {
        self.decode_cache.is_some()
    }

    /// Decode-cache and fetch fast-path counters (all zero when disabled).
    pub fn decode_stats(&self) -> DecodeStats {
        self.decode_cache
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Reads a general-purpose register (`r0` always reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a general-purpose register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, val: u32) {
        if r != Reg::R0 {
            self.regs[r.index()] = val;
        }
    }

    /// All 32 registers, for debugger snapshots.
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Current privilege mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Forces the privilege mode (platform/monitor use).
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Total cycles consumed since reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Adds externally-accounted cycles (e.g. monitor execution time) to the
    /// cycle counter so guest-visible `cycle` reads stay monotonic with wall
    /// simulation time.
    pub fn add_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Instructions retired since reset.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Traps delivered via [`Cpu::take_trap`] since reset.
    pub fn traps_taken(&self) -> u64 {
        self.traps_taken
    }

    /// Are interrupts enabled (`STATUS.IE`)?
    pub fn interrupts_enabled(&self) -> bool {
        self.status.ie()
    }

    /// Reads a CSR by name. Counter CSRs reflect the live counters.
    pub fn read_csr(&self, csr: Csr) -> u32 {
        match csr {
            Csr::Status => self.status.0,
            Csr::Tvec => self.tvec,
            Csr::Epc => self.epc,
            Csr::Cause => self.cause,
            Csr::Tval => self.tval,
            Csr::Ptbr => self.ptbr,
            Csr::Scratch => self.scratch,
            Csr::Cycle => self.cycles as u32,
            Csr::Cycleh => (self.cycles >> 32) as u32,
            Csr::Instret => self.instret as u32,
            Csr::Instreth => (self.instret >> 32) as u32,
        }
    }

    /// Writes a CSR by name. Writes to read-only counters are ignored here;
    /// the *instruction* path raises an illegal-instruction trap instead.
    pub fn write_csr(&mut self, csr: Csr, val: u32) {
        match csr {
            Csr::Status => self.status = Status::written(val),
            Csr::Tvec => self.tvec = val & !3,
            Csr::Epc => self.epc = val & !3,
            Csr::Cause => self.cause = val,
            Csr::Tval => self.tval = val,
            Csr::Ptbr => {
                self.ptbr = val & (mmu::pte::PPN_MASK | 1);
                self.tlb.flush();
            }
            Csr::Scratch => self.scratch = val,
            Csr::Cycle | Csr::Cycleh | Csr::Instret | Csr::Instreth => {}
        }
    }

    /// Flushes the TLB (the platform/monitor equivalent of `tlbflush`).
    pub fn tlb_flush(&mut self) {
        self.tlb.flush();
    }

    /// `(hits, misses)` of the TLB since reset.
    pub fn tlb_stats(&self) -> (u64, u64) {
        self.tlb.stats()
    }

    /// Is paging currently enabled?
    pub fn paging_enabled(&self) -> bool {
        self.ptbr & 1 != 0
    }

    /// Physical base address of the live level-1 page table.
    pub fn page_table_root(&self) -> u32 {
        self.ptbr & mmu::pte::PPN_MASK
    }

    /// Delivers a trap architecturally: saves `IE`/`TF`/mode into the status
    /// word, enters supervisor mode with interrupts masked, loads
    /// `EPC`/`CAUSE`/`TVAL` and jumps to the trap vector.
    ///
    /// Returns the cycles charged for trap entry.
    pub fn take_trap(&mut self, trap: Trap) -> u64 {
        let s = self.status;
        self.status = s
            .with(Status::PIE, s.ie())
            .with(Status::IE, false)
            .with(Status::PMODE, self.mode == Mode::Supervisor)
            .with(Status::PTF, s.tf())
            .with(Status::TF, false);
        self.mode = Mode::Supervisor;
        self.epc = trap.epc;
        self.cause = trap.cause.code();
        self.tval = trap.tval;
        self.pc = self.tvec;
        self.cycles += cost::TRAP_ENTRY;
        self.traps_taken += 1;
        cost::TRAP_ENTRY
    }

    /// Translates a virtual address for the given access, charging TLB-miss
    /// cycles into `extra`.
    fn translate<B: Bus + ?Sized>(
        &mut self,
        bus: &mut B,
        va: u32,
        access: Access,
        extra: &mut u64,
    ) -> Result<u32, Trap> {
        if !self.paging_enabled() {
            return Ok(va);
        }
        if let Some(pa) = self.tlb.lookup(va, access, self.mode) {
            return Ok(pa);
        }
        match mmu::walk(bus, self.page_table_root(), va, access, self.mode, true) {
            Ok(w) => {
                *extra += cost::TLB_MISS_WALK;
                if w.updated_ad {
                    *extra += cost::TLB_AD_UPDATE;
                }
                self.tlb.insert(va, w.leaf);
                Ok((w.leaf & mmu::pte::PPN_MASK) | (va & mmu::PAGE_MASK))
            }
            Err(TranslateErr::PageFault) => {
                let cause = match access {
                    Access::Fetch => Cause::InstrPageFault,
                    Access::Load => Cause::LoadPageFault,
                    Access::Store => Cause::StorePageFault,
                };
                Err(Trap::new(cause, self.pc, va))
            }
            Err(TranslateErr::Bus(_)) => {
                let cause = match access {
                    Access::Fetch => Cause::InstrAccessFault,
                    Access::Load => Cause::LoadAccessFault,
                    Access::Store => Cause::StoreAccessFault,
                };
                Err(Trap::new(cause, self.pc, va))
            }
        }
    }

    /// Executes one instruction.
    ///
    /// Returns [`StepOutcome::Trapped`] without vectoring — delivery is the
    /// platform's decision (see [`Cpu::take_trap`]).
    pub fn step<B: Bus + ?Sized>(&mut self, bus: &mut B) -> StepOutcome {
        let mut cycles = cost::BASE;
        let tf_at_entry = self.status.tf();
        match self.step_inner(bus, &mut cycles) {
            Ok(flow) => {
                self.instret += 1;
                match flow {
                    Flow::Next => self.pc = self.pc.wrapping_add(4),
                    Flow::Jump(target) => self.pc = target,
                    Flow::Wfi => {
                        self.pc = self.pc.wrapping_add(4);
                        self.cycles += cycles;
                        return if tf_at_entry {
                            StepOutcome::Trapped {
                                trap: Trap::new(Cause::DebugStep, self.pc, 0),
                                cycles,
                            }
                        } else {
                            StepOutcome::Wfi { cycles }
                        };
                    }
                }
                self.cycles += cycles;
                if tf_at_entry {
                    StepOutcome::Trapped {
                        trap: Trap::new(Cause::DebugStep, self.pc, 0),
                        cycles,
                    }
                } else {
                    StepOutcome::Executed { cycles }
                }
            }
            Err(trap) => {
                self.cycles += cycles;
                StepOutcome::Trapped { trap, cycles }
            }
        }
    }

    /// Fetches and decodes the instruction at `pc`, through the predecoded
    /// cache when enabled. Returns `(word, instr)` — the raw word is needed
    /// for `tval` in privileged/illegal traps.
    fn fetch_decode<B: Bus + ?Sized>(
        &mut self,
        bus: &mut B,
        pc: u32,
        cycles: &mut u64,
    ) -> Result<(u32, Instr), Trap> {
        let Some(mut cache) = self.decode_cache.take() else {
            let pa = self.translate(bus, pc, Access::Fetch, cycles)?;
            let word = bus
                .fetch(pa)
                .map_err(|_| Trap::new(Cause::InstrAccessFault, pc, pc))?;
            let instr =
                Instr::decode(word).map_err(|_| Trap::new(Cause::IllegalInstruction, pc, word))?;
            return Ok((word, instr));
        };
        // The cache box is taken out for the duration of the step so the
        // slow paths below can borrow `self` freely; put it back whatever
        // happens.
        let result = self.fetch_decode_cached(bus, &mut cache, pc, cycles);
        self.decode_cache = Some(cache);
        result
    }

    fn fetch_decode_cached<B: Bus + ?Sized>(
        &mut self,
        bus: &mut B,
        cache: &mut DecodeCache,
        pc: u32,
        cycles: &mut u64,
    ) -> Result<(u32, Instr), Trap> {
        let pa = if !self.paging_enabled() {
            pc
        } else if let Some(pa) = cache.fetch_pa(pc, self.mode, self.tlb.generation()) {
            // The slow path would have answered this from the TLB; replay
            // the hit so TLB statistics are identical with the cache off.
            self.tlb.note_hit();
            cache.stats.fast_fetches += 1;
            pa
        } else {
            let pa = self.translate(bus, pc, Access::Fetch, cycles)?;
            cache.remember_fetch(pc, pa, self.mode, self.tlb.generation());
            pa
        };
        match bus.fetch_page_generation(pa) {
            Some(gen) => cache.lookup_or_fill(bus, pa, gen, pc),
            None => {
                // Uncacheable page (device memory): always go to the bus.
                let word = bus
                    .fetch(pa)
                    .map_err(|_| Trap::new(Cause::InstrAccessFault, pc, pc))?;
                let instr = Instr::decode(word)
                    .map_err(|_| Trap::new(Cause::IllegalInstruction, pc, word))?;
                Ok((word, instr))
            }
        }
    }

    fn step_inner<B: Bus + ?Sized>(&mut self, bus: &mut B, cycles: &mut u64) -> Result<Flow, Trap> {
        let pc = self.pc;
        if pc & 3 != 0 {
            return Err(Trap::new(Cause::InstrAddrMisaligned, pc, pc));
        }
        let (word, instr) = self.fetch_decode(bus, pc, cycles)?;

        if instr.is_privileged() && self.mode == Mode::User {
            return Err(Trap::new(Cause::PrivilegedInstruction, pc, word));
        }

        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                use crate::isa::AluOp;
                *cycles += match op {
                    AluOp::Mul | AluOp::Mulhu => cost::MUL_EXTRA,
                    AluOp::Div | AluOp::Rem | AluOp::Divu | AluOp::Remu => cost::DIV_EXTRA,
                    _ => 0,
                };
                let v = op.apply(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                Ok(Flow::Next)
            }
            Instr::Addi { rd, rs1, imm } => {
                self.set_reg(rd, self.reg(rs1).wrapping_add(imm as i32 as u32));
                Ok(Flow::Next)
            }
            Instr::Andi { rd, rs1, imm } => {
                self.set_reg(rd, self.reg(rs1) & (imm as u16 as u32));
                Ok(Flow::Next)
            }
            Instr::Ori { rd, rs1, imm } => {
                self.set_reg(rd, self.reg(rs1) | (imm as u16 as u32));
                Ok(Flow::Next)
            }
            Instr::Xori { rd, rs1, imm } => {
                self.set_reg(rd, self.reg(rs1) ^ (imm as u16 as u32));
                Ok(Flow::Next)
            }
            Instr::Slti { rd, rs1, imm } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) < imm as i32) as u32);
                Ok(Flow::Next)
            }
            Instr::Sltiu { rd, rs1, imm } => {
                self.set_reg(rd, (self.reg(rs1) < imm as i32 as u32) as u32);
                Ok(Flow::Next)
            }
            Instr::Slli { rd, rs1, shamt } => {
                self.set_reg(rd, self.reg(rs1).wrapping_shl(shamt as u32));
                Ok(Flow::Next)
            }
            Instr::Srli { rd, rs1, shamt } => {
                self.set_reg(rd, self.reg(rs1).wrapping_shr(shamt as u32));
                Ok(Flow::Next)
            }
            Instr::Srai { rd, rs1, shamt } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> shamt) as u32);
                Ok(Flow::Next)
            }
            Instr::Lui { rd, imm } => {
                self.set_reg(rd, (imm as u32) << 16);
                Ok(Flow::Next)
            }
            Instr::Auipc { rd, imm } => {
                self.set_reg(rd, pc.wrapping_add((imm as u32) << 16));
                Ok(Flow::Next)
            }
            Instr::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                *cycles += cost::MEM_EXTRA;
                let va = self.reg(rs1).wrapping_add(offset as i32 as u32);
                let size = match kind {
                    LoadKind::B | LoadKind::Bu => MemSize::Byte,
                    LoadKind::H | LoadKind::Hu => MemSize::Half,
                    LoadKind::W => MemSize::Word,
                };
                if va & (size.bytes() - 1) != 0 {
                    return Err(Trap::new(Cause::LoadAddrMisaligned, pc, va));
                }
                let pa = self.translate(bus, va, Access::Load, cycles)?;
                let raw = bus
                    .read(pa, size)
                    .map_err(|_| Trap::new(Cause::LoadAccessFault, pc, va))?;
                let v = match kind {
                    LoadKind::B => raw as u8 as i8 as i32 as u32,
                    LoadKind::Bu => raw & 0xff,
                    LoadKind::H => raw as u16 as i16 as i32 as u32,
                    LoadKind::Hu => raw & 0xffff,
                    LoadKind::W => raw,
                };
                self.set_reg(rd, v);
                Ok(Flow::Next)
            }
            Instr::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                *cycles += cost::MEM_EXTRA;
                let va = self.reg(rs1).wrapping_add(offset as i32 as u32);
                let size = match kind {
                    StoreKind::B => MemSize::Byte,
                    StoreKind::H => MemSize::Half,
                    StoreKind::W => MemSize::Word,
                };
                if va & (size.bytes() - 1) != 0 {
                    return Err(Trap::new(Cause::StoreAddrMisaligned, pc, va));
                }
                let pa = self.translate(bus, va, Access::Store, cycles)?;
                bus.write(pa, self.reg(rs2), size)
                    .map_err(|_| Trap::new(Cause::StoreAccessFault, pc, va))?;
                Ok(Flow::Next)
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                if cond.holds(self.reg(rs1), self.reg(rs2)) {
                    *cycles += cost::BRANCH_TAKEN_EXTRA;
                    Ok(Flow::Jump(pc.wrapping_add(offset as i32 as u32)))
                } else {
                    Ok(Flow::Next)
                }
            }
            Instr::Jal { rd, offset } => {
                *cycles += cost::BRANCH_TAKEN_EXTRA;
                self.set_reg(rd, pc.wrapping_add(4));
                Ok(Flow::Jump(pc.wrapping_add(offset as u32)))
            }
            Instr::Jalr { rd, rs1, offset } => {
                *cycles += cost::BRANCH_TAKEN_EXTRA;
                let target = self.reg(rs1).wrapping_add(offset as i32 as u32) & !3;
                self.set_reg(rd, pc.wrapping_add(4));
                Ok(Flow::Jump(target))
            }
            Instr::Sys { op } => match op {
                SysOp::Ecall => {
                    let cause = if self.mode == Mode::User {
                        Cause::EcallU
                    } else {
                        Cause::EcallS
                    };
                    Err(Trap::new(cause, pc, 0))
                }
                SysOp::Ebreak => Err(Trap::new(Cause::Breakpoint, pc, 0)),
                SysOp::Tret => {
                    *cycles += cost::TRET - cost::BASE;
                    let s = self.status;
                    self.mode = if s.pmode_supervisor() {
                        Mode::Supervisor
                    } else {
                        Mode::User
                    };
                    self.status = s.with(Status::IE, s.pie()).with(Status::TF, s.ptf());
                    Ok(Flow::Jump(self.epc))
                }
                SysOp::Wfi => {
                    *cycles += cost::WFI_ENTER - cost::BASE;
                    Ok(Flow::Wfi)
                }
                SysOp::TlbFlush => {
                    *cycles += cost::TLB_FLUSH - cost::BASE;
                    self.tlb.flush();
                    Ok(Flow::Next)
                }
            },
            Instr::Csr { op, rd, rs1, csr } => {
                *cycles += cost::CSR_EXTRA;
                let Some(c) = Csr::from_number(csr) else {
                    return Err(Trap::new(Cause::IllegalInstruction, pc, word));
                };
                let old = self.read_csr(c);
                let writes = match op {
                    CsrOp::Rw => true,
                    CsrOp::Rs | CsrOp::Rc => rs1 != Reg::R0,
                };
                if writes {
                    if c.is_read_only() {
                        return Err(Trap::new(Cause::IllegalInstruction, pc, word));
                    }
                    let src = self.reg(rs1);
                    let new = match op {
                        CsrOp::Rw => src,
                        CsrOp::Rs => old | src,
                        CsrOp::Rc => old & !src,
                    };
                    self.write_csr(c, new);
                }
                self.set_reg(rd, old);
                Ok(Flow::Next)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, BranchCond};
    use crate::mmu::pte;
    use crate::FlatRam;

    fn run_program(words: &[u32], steps: usize) -> (Cpu, FlatRam) {
        let mut ram = FlatRam::new(64 * 1024);
        for (i, w) in words.iter().enumerate() {
            ram.store_word((i * 4) as u32, *w);
        }
        let mut cpu = Cpu::new();
        for _ in 0..steps {
            match cpu.step(&mut ram) {
                StepOutcome::Executed { .. } => {}
                other => panic!("unexpected outcome {other:?} at pc={:#x}", cpu.pc()),
            }
        }
        (cpu, ram)
    }

    #[test]
    fn arithmetic_and_registers() {
        let (cpu, _) = run_program(
            &[
                Instr::Addi {
                    rd: Reg::R1,
                    rs1: Reg::R0,
                    imm: 100,
                }
                .encode(),
                Instr::Addi {
                    rd: Reg::R2,
                    rs1: Reg::R1,
                    imm: -58,
                }
                .encode(),
                Instr::Alu {
                    op: AluOp::Add,
                    rd: Reg::R3,
                    rs1: Reg::R1,
                    rs2: Reg::R2,
                }
                .encode(),
                Instr::Addi {
                    rd: Reg::R0,
                    rs1: Reg::R1,
                    imm: 0,
                }
                .encode(), // write to r0
            ],
            4,
        );
        assert_eq!(cpu.reg(Reg::R1), 100);
        assert_eq!(cpu.reg(Reg::R2), 42);
        assert_eq!(cpu.reg(Reg::R3), 142);
        assert_eq!(cpu.reg(Reg::R0), 0);
        assert_eq!(cpu.instret(), 4);
    }

    #[test]
    fn loads_and_stores_with_extension() {
        let (cpu, ram) = run_program(
            &[
                Instr::Lui {
                    rd: Reg::R1,
                    imm: 0x8000,
                }
                .encode(), // r1 = 0x8000_0000? out of ram
                Instr::Addi {
                    rd: Reg::R1,
                    rs1: Reg::R0,
                    imm: 0x1000,
                }
                .encode(),
                Instr::Addi {
                    rd: Reg::R2,
                    rs1: Reg::R0,
                    imm: -1,
                }
                .encode(),
                Instr::Store {
                    kind: StoreKind::W,
                    rs1: Reg::R1,
                    rs2: Reg::R2,
                    offset: 0,
                }
                .encode(),
                Instr::Load {
                    kind: LoadKind::B,
                    rd: Reg::R3,
                    rs1: Reg::R1,
                    offset: 0,
                }
                .encode(),
                Instr::Load {
                    kind: LoadKind::Bu,
                    rd: Reg::R4,
                    rs1: Reg::R1,
                    offset: 0,
                }
                .encode(),
                Instr::Load {
                    kind: LoadKind::H,
                    rd: Reg::R5,
                    rs1: Reg::R1,
                    offset: 0,
                }
                .encode(),
                Instr::Load {
                    kind: LoadKind::Hu,
                    rd: Reg::R6,
                    rs1: Reg::R1,
                    offset: 2,
                }
                .encode(),
                Instr::Store {
                    kind: StoreKind::B,
                    rs1: Reg::R1,
                    rs2: Reg::R0,
                    offset: 1,
                }
                .encode(),
            ],
            9,
        );
        assert_eq!(cpu.reg(Reg::R3), 0xffff_ffff);
        assert_eq!(cpu.reg(Reg::R4), 0xff);
        assert_eq!(cpu.reg(Reg::R5), 0xffff_ffff);
        assert_eq!(cpu.reg(Reg::R6), 0xffff);
        assert_eq!(ram.load_word(0x1000), 0xffff_00ff);
    }

    #[test]
    fn branches_and_jumps() {
        // r1 = 3; loop: r2 += r1; r1 -= 1; bne r1, r0, loop
        let prog = [
            Instr::Addi {
                rd: Reg::R1,
                rs1: Reg::R0,
                imm: 3,
            }
            .encode(),
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::R2,
                rs1: Reg::R2,
                rs2: Reg::R1,
            }
            .encode(),
            Instr::Addi {
                rd: Reg::R1,
                rs1: Reg::R1,
                imm: -1,
            }
            .encode(),
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::R1,
                rs2: Reg::R0,
                offset: -8,
            }
            .encode(),
            Instr::Jal {
                rd: Reg::RA,
                offset: 8,
            }
            .encode(),
            0, // skipped
            Instr::Jalr {
                rd: Reg::R5,
                rs1: Reg::RA,
                offset: 4,
            }
            .encode(),
        ];
        let (cpu, _) = run_program(&prog, 1 + 3 * 3 + 2);
        assert_eq!(cpu.reg(Reg::R2), 6);
        assert_eq!(cpu.reg(Reg::RA), 20);
        // jalr jumped to ra+4 = 24 and linked 28.
        assert_eq!(cpu.pc(), 24);
        assert_eq!(cpu.reg(Reg::R5), 28);
    }

    #[test]
    fn jalr_same_source_and_dest() {
        let (cpu, _) = run_program(
            &[
                Instr::Addi {
                    rd: Reg::R1,
                    rs1: Reg::R0,
                    imm: 0x40,
                }
                .encode(),
                Instr::Jalr {
                    rd: Reg::R1,
                    rs1: Reg::R1,
                    offset: 0,
                }
                .encode(),
            ],
            2,
        );
        assert_eq!(cpu.pc(), 0x40);
        assert_eq!(cpu.reg(Reg::R1), 8);
    }

    #[test]
    fn ecall_and_ebreak_trap_without_vectoring() {
        let mut ram = FlatRam::new(4096);
        ram.store_word(0, Instr::Sys { op: SysOp::Ecall }.encode());
        let mut cpu = Cpu::new();
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::EcallS);
                assert_eq!(trap.epc, 0);
            }
            other => panic!("{other:?}"),
        }
        // PC unchanged: trap not delivered yet.
        assert_eq!(cpu.pc(), 0);
        assert_eq!(cpu.instret(), 0);
    }

    #[test]
    fn take_trap_and_tret_roundtrip() {
        let mut ram = FlatRam::new(4096);
        ram.store_word(0x100, Instr::Sys { op: SysOp::Tret }.encode());
        let mut cpu = Cpu::new();
        cpu.write_csr(Csr::Tvec, 0x100);
        cpu.write_csr(Csr::Status, Status::IE);
        cpu.set_mode(Mode::User);
        cpu.set_pc(0x40);

        let t = Trap::new(Cause::EcallU, 0x40, 0);
        cpu.take_trap(t);
        assert_eq!(cpu.pc(), 0x100);
        assert_eq!(cpu.mode(), Mode::Supervisor);
        assert!(!cpu.interrupts_enabled());
        assert_eq!(cpu.read_csr(Csr::Cause), Cause::EcallU.code());
        assert_eq!(cpu.read_csr(Csr::Epc), 0x40);
        assert_eq!(cpu.traps_taken(), 1);

        // tret returns to user mode at EPC with IE restored.
        match cpu.step(&mut ram) {
            StepOutcome::Executed { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(cpu.pc(), 0x40);
        assert_eq!(cpu.mode(), Mode::User);
        assert!(cpu.interrupts_enabled());
    }

    #[test]
    fn privileged_instruction_traps_in_user_mode() {
        let mut ram = FlatRam::new(4096);
        let word = Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::R1,
            rs1: Reg::R0,
            csr: 0,
        }
        .encode();
        ram.store_word(0, word);
        let mut cpu = Cpu::new();
        cpu.set_mode(Mode::User);
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::PrivilegedInstruction);
                assert_eq!(trap.tval, word);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wfi_reports_idle() {
        let mut ram = FlatRam::new(4096);
        ram.store_word(0, Instr::Sys { op: SysOp::Wfi }.encode());
        let mut cpu = Cpu::new();
        match cpu.step(&mut ram) {
            StepOutcome::Wfi { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(cpu.pc(), 4); // resumes after the wfi
    }

    #[test]
    fn illegal_and_misaligned() {
        let mut ram = FlatRam::new(4096);
        ram.store_word(0, 0xffff_ffff);
        let mut cpu = Cpu::new();
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => assert_eq!(trap.cause, Cause::IllegalInstruction),
            other => panic!("{other:?}"),
        }
        cpu.set_pc(2);
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::InstrAddrMisaligned)
            }
            other => panic!("{other:?}"),
        }
        // Misaligned load.
        cpu.set_pc(4);
        ram.store_word(
            4,
            Instr::Load {
                kind: LoadKind::W,
                rd: Reg::R1,
                rs1: Reg::R0,
                offset: 2,
            }
            .encode(),
        );
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::LoadAddrMisaligned);
                assert_eq!(trap.tval, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn access_fault_outside_ram() {
        let mut ram = FlatRam::new(4096);
        ram.store_word(
            0,
            Instr::Load {
                kind: LoadKind::W,
                rd: Reg::R1,
                rs1: Reg::R0,
                offset: 0x4000,
            }
            .encode(),
        );
        let mut cpu = Cpu::new();
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::LoadAccessFault);
                assert_eq!(trap.tval, 0x4000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_step_flag_fires_after_one_instruction() {
        let mut ram = FlatRam::new(4096);
        ram.store_word(
            0,
            Instr::Addi {
                rd: Reg::R1,
                rs1: Reg::R0,
                imm: 1,
            }
            .encode(),
        );
        let mut cpu = Cpu::new();
        cpu.write_csr(Csr::Status, Status::TF);
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::DebugStep);
                assert_eq!(trap.epc, 4); // after the instruction
            }
            other => panic!("{other:?}"),
        }
        // The instruction itself retired.
        assert_eq!(cpu.reg(Reg::R1), 1);
        assert_eq!(cpu.instret(), 1);
        // Delivering the trap clears TF into PTF.
        let t = Trap::new(Cause::DebugStep, 4, 0);
        cpu.take_trap(t);
        let s = Status(cpu.read_csr(Csr::Status));
        assert!(!s.tf());
        assert!(s.ptf());
    }

    #[test]
    fn faulting_instruction_suppresses_debug_step() {
        let mut ram = FlatRam::new(4096);
        ram.store_word(0, 0xffff_ffff);
        let mut cpu = Cpu::new();
        cpu.write_csr(Csr::Status, Status::TF);
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::IllegalInstruction)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn csr_read_only_counters() {
        let mut ram = FlatRam::new(4096);
        // csrrs r1, cycle, r0  — read allowed (no write since rs1 == r0)
        ram.store_word(
            0,
            Instr::Csr {
                op: CsrOp::Rs,
                rd: Reg::R1,
                rs1: Reg::R0,
                csr: Csr::Cycle.number(),
            }
            .encode(),
        );
        // csrrw r0, cycle, r1 — write to RO csr must trap
        ram.store_word(
            4,
            Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::R0,
                rs1: Reg::R1,
                csr: Csr::Cycle.number(),
            }
            .encode(),
        );
        let mut cpu = Cpu::new();
        assert!(matches!(cpu.step(&mut ram), StepOutcome::Executed { .. }));
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::IllegalInstruction)
            }
            other => panic!("{other:?}"),
        }
        // Unknown CSR number also traps.
        cpu.set_pc(8);
        ram.store_word(
            8,
            Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::R0,
                rs1: Reg::R0,
                csr: 0xff,
            }
            .encode(),
        );
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::IllegalInstruction)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paged_execution_and_page_fault() {
        let mut ram = FlatRam::new(256 * 1024);
        // Code at PA 0x0000, mapped at VA 0x0040_0000, executable+readable.
        ram.store_word(
            0,
            Instr::Addi {
                rd: Reg::R1,
                rs1: Reg::R0,
                imm: 7,
            }
            .encode(),
        );
        // Store to unmapped VA 0x0080_0000 should page-fault.
        ram.store_word(
            4,
            Instr::Store {
                kind: StoreKind::W,
                rs1: Reg::R2,
                rs2: Reg::R1,
                offset: 0,
            }
            .encode(),
        );
        let root = 0x1_0000u32;
        let mut alloc = 0x1_1000u32;
        crate::mmu::map_page(
            &mut ram,
            root,
            &mut alloc,
            0x0040_0000,
            0,
            pte::V | pte::R | pte::X,
        )
        .unwrap();

        let mut cpu = Cpu::new();
        cpu.write_csr(Csr::Ptbr, root | 1);
        cpu.set_pc(0x0040_0000);
        cpu.set_reg(Reg::R2, 0x0080_0000);
        assert!(matches!(cpu.step(&mut ram), StepOutcome::Executed { .. }));
        assert_eq!(cpu.reg(Reg::R1), 7);
        match cpu.step(&mut ram) {
            StepOutcome::Trapped { trap, .. } => {
                assert_eq!(trap.cause, Cause::StorePageFault);
                assert_eq!(trap.tval, 0x0080_0000);
                assert_eq!(trap.epc, 0x0040_0004);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tlb_miss_then_hit_costs_differ() {
        let mut ram = FlatRam::new(256 * 1024);
        ram.store_word(
            0,
            Instr::Load {
                kind: LoadKind::W,
                rd: Reg::R1,
                rs1: Reg::R2,
                offset: 0,
            }
            .encode(),
        );
        ram.store_word(
            4,
            Instr::Load {
                kind: LoadKind::W,
                rd: Reg::R1,
                rs1: Reg::R2,
                offset: 4,
            }
            .encode(),
        );
        let root = 0x1_0000u32;
        let mut alloc = 0x1_1000u32;
        crate::mmu::map_page(&mut ram, root, &mut alloc, 0, 0, pte::V | pte::R | pte::X).unwrap();
        crate::mmu::map_page(&mut ram, root, &mut alloc, 0x5000, 0x2000, pte::V | pte::R).unwrap();
        let mut cpu = Cpu::new();
        cpu.write_csr(Csr::Ptbr, root | 1);
        cpu.set_reg(Reg::R2, 0x5000);
        let c1 = match cpu.step(&mut ram) {
            StepOutcome::Executed { cycles } => cycles,
            other => panic!("{other:?}"),
        };
        let c2 = match cpu.step(&mut ram) {
            StepOutcome::Executed { cycles } => cycles,
            other => panic!("{other:?}"),
        };
        assert!(
            c1 > c2,
            "first access (TLB miss) must cost more: {c1} vs {c2}"
        );
    }

    #[test]
    fn ptbr_write_flushes_tlb() {
        let mut cpu = Cpu::new();
        // Seed a TLB entry manually via a paged load, then change PTBR.
        let mut ram = FlatRam::new(256 * 1024);
        let root = 0x1_0000u32;
        let mut alloc = 0x1_1000u32;
        crate::mmu::map_page(&mut ram, root, &mut alloc, 0, 0, pte::V | pte::R | pte::X).unwrap();
        ram.store_word(
            0,
            Instr::Addi {
                rd: Reg::R1,
                rs1: Reg::R0,
                imm: 1,
            }
            .encode(),
        );
        cpu.write_csr(Csr::Ptbr, root | 1);
        assert!(matches!(cpu.step(&mut ram), StepOutcome::Executed { .. }));
        let (h0, m0) = cpu.tlb_stats();
        cpu.write_csr(Csr::Ptbr, root | 1); // rewrite flushes
        cpu.set_pc(0);
        assert!(matches!(cpu.step(&mut ram), StepOutcome::Executed { .. }));
        let (h1, m1) = cpu.tlb_stats();
        assert_eq!(h1, h0, "no new hit after flush");
        assert_eq!(m1, m0 + 1, "flush forces a re-walk");
    }

    /// A [`FlatRam`] that tracks per-page write generations, enabling the
    /// predecoded-instruction cache (the machine-level bus in `hx-machine`
    /// does the same for real RAM).
    struct GenRam {
        ram: FlatRam,
        gens: Vec<u64>,
    }

    impl GenRam {
        fn new(len: usize) -> GenRam {
            GenRam {
                ram: FlatRam::new(len),
                gens: vec![0; len.div_ceil(4096)],
            }
        }
    }

    impl Bus for GenRam {
        fn read(&mut self, paddr: u32, size: MemSize) -> Result<u32, crate::BusFault> {
            self.ram.read(paddr, size)
        }
        fn write(&mut self, paddr: u32, val: u32, size: MemSize) -> Result<(), crate::BusFault> {
            self.ram.write(paddr, val, size)?;
            self.gens[(paddr >> 12) as usize] += 1;
            Ok(())
        }
        fn fetch_page_generation(&mut self, paddr: u32) -> Option<u64> {
            self.gens.get((paddr >> 12) as usize).copied()
        }
    }

    /// Same loop, cache on vs cache off: identical architectural state,
    /// cycles and TLB statistics; the cached run mostly hits.
    #[test]
    fn decode_cache_is_invisible_to_the_simulation() {
        let loop_prog = [
            Instr::Addi {
                rd: Reg::R1,
                rs1: Reg::R0,
                imm: 50,
            }
            .encode(),
            Instr::Addi {
                rd: Reg::R2,
                rs1: Reg::R2,
                imm: 3,
            }
            .encode(),
            Instr::Addi {
                rd: Reg::R1,
                rs1: Reg::R1,
                imm: -1,
            }
            .encode(),
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::R1,
                rs2: Reg::R0,
                offset: -8,
            }
            .encode(),
        ];
        let run = |cached: bool| {
            let mut bus = GenRam::new(64 * 1024);
            for (i, w) in loop_prog.iter().enumerate() {
                bus.ram.store_word((i * 4) as u32, *w);
            }
            let mut cpu = Cpu::new();
            cpu.set_decode_cache(cached);
            for _ in 0..151 {
                match cpu.step(&mut bus) {
                    StepOutcome::Executed { .. } => {}
                    other => panic!("{other:?}"),
                }
            }
            let stats = cpu.decode_stats();
            cpu.set_decode_cache(false);
            (cpu, stats)
        };
        let (base, _) = run(false);
        let (cached, stats) = run(true);
        assert_eq!(base.regs(), cached.regs());
        assert_eq!(base.pc(), cached.pc());
        assert_eq!(base.cycles(), cached.cycles());
        assert_eq!(base.instret(), cached.instret());
        assert_eq!(base.tlb_stats(), cached.tlb_stats());
        assert!(
            stats.hits > 100 && stats.misses <= 4,
            "loop must be served predecoded: {stats:?}"
        );
    }

    /// Self-modifying code: a store into a predecoded page must drop the
    /// stale decode.
    #[test]
    fn decode_cache_invalidated_by_store() {
        let mut bus = GenRam::new(64 * 1024);
        let old = Instr::Addi {
            rd: Reg::R1,
            rs1: Reg::R0,
            imm: 1,
        }
        .encode();
        let new = Instr::Addi {
            rd: Reg::R1,
            rs1: Reg::R0,
            imm: 99,
        }
        .encode();
        bus.ram.store_word(0, old);
        bus.ram.store_word(
            4,
            Instr::Store {
                kind: StoreKind::W,
                rs1: Reg::R2,
                rs2: Reg::R3,
                offset: 0,
            }
            .encode(),
        );
        let mut cpu = Cpu::new();
        cpu.set_decode_cache(true);
        cpu.set_reg(Reg::R3, new);
        assert!(matches!(cpu.step(&mut bus), StepOutcome::Executed { .. }));
        assert_eq!(cpu.reg(Reg::R1), 1);
        // Overwrite the first instruction, loop back and re-execute it.
        assert!(matches!(cpu.step(&mut bus), StepOutcome::Executed { .. }));
        cpu.set_pc(0);
        assert!(matches!(cpu.step(&mut bus), StepOutcome::Executed { .. }));
        assert_eq!(cpu.reg(Reg::R1), 99, "stale predecode must not survive");
        assert!(cpu.decode_stats().invalidations >= 1);
    }

    /// Paged fetches: the fast-path line must keep cycle costs and TLB
    /// statistics identical, and a `ptbr` rewrite (shadow activation) must
    /// kill both the line and nothing else.
    #[test]
    fn decode_cache_paged_fetch_matches_uncached() {
        let run = |cached: bool| {
            let mut bus = GenRam::new(256 * 1024);
            let root = 0x1_0000u32;
            let mut alloc = 0x1_1000u32;
            crate::mmu::map_page(
                &mut bus,
                root,
                &mut alloc,
                0x0040_0000,
                0,
                pte::V | pte::R | pte::X,
            )
            .unwrap();
            for i in 0..4u32 {
                bus.ram.store_word(
                    i * 4,
                    Instr::Addi {
                        rd: Reg::R4,
                        rs1: Reg::R4,
                        imm: 1,
                    }
                    .encode(),
                );
            }
            bus.ram.store_word(
                16,
                Instr::Jal {
                    rd: Reg::R0,
                    offset: -16,
                }
                .encode(),
            );
            let mut cpu = Cpu::new();
            cpu.set_decode_cache(cached);
            cpu.write_csr(Csr::Ptbr, root | 1);
            cpu.set_pc(0x0040_0000);
            for _ in 0..40 {
                match cpu.step(&mut bus) {
                    StepOutcome::Executed { .. } => {}
                    other => panic!("{other:?}"),
                }
            }
            // Re-activating the page table flushes the TLB; both runs must
            // pay the re-walk identically.
            cpu.write_csr(Csr::Ptbr, root | 1);
            for _ in 0..10 {
                match cpu.step(&mut bus) {
                    StepOutcome::Executed { .. } => {}
                    other => panic!("{other:?}"),
                }
            }
            let stats = cpu.decode_stats();
            (cpu.cycles(), cpu.tlb_stats(), cpu.reg(Reg::R4), stats)
        };
        let (c0, t0, r0, _) = run(false);
        let (c1, t1, r1, stats) = run(true);
        assert_eq!(c0, c1);
        assert_eq!(t0, t1);
        assert_eq!(r0, r1);
        assert!(stats.fast_fetches > 30, "{stats:?}");
    }

    #[test]
    fn cycle_csr_tracks_cycles() {
        let mut ram = FlatRam::new(4096);
        for i in 0..4 {
            ram.store_word(
                i * 4,
                Instr::Addi {
                    rd: Reg::R1,
                    rs1: Reg::R1,
                    imm: 1,
                }
                .encode(),
            );
        }
        let mut cpu = Cpu::new();
        for _ in 0..4 {
            cpu.step(&mut ram);
        }
        assert_eq!(cpu.read_csr(Csr::Cycle) as u64, cpu.cycles());
        assert_eq!(cpu.read_csr(Csr::Instret), 4);
    }
}
