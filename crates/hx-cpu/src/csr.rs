//! Control and status registers.
//!
//! CSRs are reachable only through the privileged `csrrw`/`csrrs`/`csrrc`
//! instructions. In user mode any CSR access raises
//! [`crate::Cause::PrivilegedInstruction`] — this is the hook that lets the
//! lightweight monitor emulate the CPU resources (status word, trap vector,
//! page-table base, …) of a deprivileged guest kernel.

use core::fmt;

/// CSR numbers.
///
/// The numeric values are part of the ISA (they appear in the `imm16` field
/// of CSR instructions and in assembly source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Csr {
    /// Status word; see [`Status`] for the bit layout.
    Status = 0x000,
    /// Trap vector base address.
    Tvec = 0x001,
    /// Exception program counter.
    Epc = 0x002,
    /// Trap cause code; see [`crate::Cause`].
    Cause = 0x003,
    /// Trap value (faulting address or instruction word).
    Tval = 0x004,
    /// Page-table base: bits `[31:12]` physical base of the level-1 table,
    /// bit 0 enables translation.
    Ptbr = 0x005,
    /// Scratch register for trap handlers.
    Scratch = 0x006,
    /// Cycle counter, low 32 bits (read-only).
    Cycle = 0x008,
    /// Cycle counter, high 32 bits (read-only).
    Cycleh = 0x009,
    /// Retired-instruction counter, low 32 bits (read-only).
    Instret = 0x00a,
    /// Retired-instruction counter, high 32 bits (read-only).
    Instreth = 0x00b,
}

impl Csr {
    /// All architecturally defined CSRs.
    pub const ALL: [Csr; 11] = [
        Csr::Status,
        Csr::Tvec,
        Csr::Epc,
        Csr::Cause,
        Csr::Tval,
        Csr::Ptbr,
        Csr::Scratch,
        Csr::Cycle,
        Csr::Cycleh,
        Csr::Instret,
        Csr::Instreth,
    ];

    /// Looks up a CSR by its number.
    pub fn from_number(n: u16) -> Option<Csr> {
        Csr::ALL.iter().copied().find(|c| c.number() == n)
    }

    /// The CSR number used in instruction encodings.
    pub fn number(self) -> u16 {
        self as u16
    }

    /// Returns `true` for counters that cannot be written.
    pub fn is_read_only(self) -> bool {
        matches!(
            self,
            Csr::Cycle | Csr::Cycleh | Csr::Instret | Csr::Instreth
        )
    }

    /// Assembler name (`status`, `tvec`, …).
    pub fn name(self) -> &'static str {
        match self {
            Csr::Status => "status",
            Csr::Tvec => "tvec",
            Csr::Epc => "epc",
            Csr::Cause => "cause",
            Csr::Tval => "tval",
            Csr::Ptbr => "ptbr",
            Csr::Scratch => "scratch",
            Csr::Cycle => "cycle",
            Csr::Cycleh => "cycleh",
            Csr::Instret => "instret",
            Csr::Instreth => "instreth",
        }
    }

    /// Looks a CSR up by assembler name.
    pub fn from_name(name: &str) -> Option<Csr> {
        Csr::ALL.iter().copied().find(|c| c.name() == name)
    }
}

impl fmt::Display for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The `STATUS` CSR bit layout.
///
/// | bit | name | meaning |
/// |-----|------|---------|
/// | 0 | `IE`  | interrupts enabled |
/// | 1 | `PIE` | `IE` before the last trap |
/// | 2 | `PMODE` | mode before the last trap (1 = supervisor) |
/// | 3 | `TF`  | single-step flag: trap with [`crate::Cause::DebugStep`] after one instruction |
/// | 4 | `PTF` | `TF` before the last trap |
///
/// On trap entry hardware saves `IE`/`TF`/mode into the `P*` fields, clears
/// `IE` and `TF` and enters supervisor mode; `tret` restores them. The `TF`
/// flag is how the debug stub single-steps the guest, mirroring the x86 trap
/// flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Status(pub u32);

impl Status {
    /// Interrupt-enable bit.
    pub const IE: u32 = 1 << 0;
    /// Previous interrupt-enable bit.
    pub const PIE: u32 = 1 << 1;
    /// Previous mode bit (1 = supervisor).
    pub const PMODE: u32 = 1 << 2;
    /// Single-step (trap) flag.
    pub const TF: u32 = 1 << 3;
    /// Previous single-step flag.
    pub const PTF: u32 = 1 << 4;
    /// Mask of all implemented bits; others read as zero.
    pub const MASK: u32 = 0x1f;

    /// Interrupts enabled?
    pub fn ie(self) -> bool {
        self.0 & Self::IE != 0
    }

    /// Previous interrupt-enable state.
    pub fn pie(self) -> bool {
        self.0 & Self::PIE != 0
    }

    /// Was the previous mode supervisor?
    pub fn pmode_supervisor(self) -> bool {
        self.0 & Self::PMODE != 0
    }

    /// Single-step flag set?
    pub fn tf(self) -> bool {
        self.0 & Self::TF != 0
    }

    /// Previous single-step flag.
    pub fn ptf(self) -> bool {
        self.0 & Self::PTF != 0
    }

    /// Returns a copy with the given bit set or cleared.
    #[must_use]
    pub fn with(self, bit: u32, on: bool) -> Status {
        if on {
            Status(self.0 | bit)
        } else {
            Status(self.0 & !bit)
        }
    }

    /// Applies a raw write, masking unimplemented bits.
    #[must_use]
    pub fn written(value: u32) -> Status {
        Status(value & Self::MASK)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ie={} pie={} pmode={} tf={} ptf={}",
            self.ie() as u8,
            self.pie() as u8,
            if self.pmode_supervisor() { 'S' } else { 'U' },
            self.tf() as u8,
            self.ptf() as u8
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_number_roundtrip() {
        for c in Csr::ALL {
            assert_eq!(Csr::from_number(c.number()), Some(c));
            assert_eq!(Csr::from_name(c.name()), Some(c));
        }
        assert_eq!(Csr::from_number(0xfff), None);
        assert_eq!(Csr::from_name("nope"), None);
    }

    #[test]
    fn read_only_set() {
        assert!(Csr::Cycle.is_read_only());
        assert!(Csr::Instreth.is_read_only());
        assert!(!Csr::Status.is_read_only());
        assert!(!Csr::Ptbr.is_read_only());
    }

    #[test]
    fn status_bits() {
        let s = Status::written(0xffff_ffff);
        assert_eq!(s.0, Status::MASK);
        assert!(s.ie() && s.pie() && s.tf() && s.ptf() && s.pmode_supervisor());
        let s = s.with(Status::IE, false);
        assert!(!s.ie());
        assert!(s.tf());
        assert!(!format!("{s}").is_empty());
    }
}
