//! HX32 instruction-set definition: registers, instruction forms, and the
//! binary encoding.
//!
//! Every instruction is one little-endian 32-bit word. Bits `[31:26]` hold
//! the opcode; the remaining fields depend on the format:
//!
//! | format | fields |
//! |--------|--------|
//! | R | `op rd[25:21] rs1[20:16] rs2[15:11] funct[10:0]` |
//! | I | `op rd[25:21] rs1[20:16] imm16[15:0]` |
//! | B | `op rs1[25:21] rs2[20:16] imm16[15:0]` (stores and branches) |
//! | J | `op rd[25:21] imm21[20:0]` |
//!
//! Branch and jump immediates are in **bytes**, PC-relative from the address
//! of the instruction itself, and must be multiples of four.

use core::fmt;

/// A general-purpose register index (`r0`–`r31`).
///
/// `r0` is hardwired to zero: writes are discarded, reads return `0`.
///
/// # Example
///
/// ```
/// use hx_cpu::isa::Reg;
/// assert_eq!(Reg::new(5), Some(Reg::R5));
/// assert_eq!(Reg::new(32), None);
/// assert_eq!(Reg::SP.index(), 2);
/// assert_eq!(Reg::SP.abi_name(), "sp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

macro_rules! reg_consts {
    ($($name:ident = $n:expr;)*) => {
        impl Reg {
            $(
                #[doc = concat!("Register r", stringify!($n), ".")]
                pub const $name: Reg = Reg($n);
            )*
        }
    };
}

reg_consts! {
    R0 = 0; R1 = 1; R2 = 2; R3 = 3; R4 = 4; R5 = 5; R6 = 6; R7 = 7;
    R8 = 8; R9 = 9; R10 = 10; R11 = 11; R12 = 12; R13 = 13; R14 = 14; R15 = 15;
    R16 = 16; R17 = 17; R18 = 18; R19 = 19; R20 = 20; R21 = 21; R22 = 22; R23 = 23;
    R24 = 24; R25 = 25; R26 = 26; R27 = 27; R28 = 28; R29 = 29; R30 = 30; R31 = 31;
}

impl Reg {
    /// The hardwired-zero register (alias of [`Reg::R0`]).
    pub const ZERO: Reg = Reg(0);
    /// Link register (alias of `r1`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (alias of `r2`).
    pub const SP: Reg = Reg(2);
    /// Global pointer (alias of `r3`).
    pub const GP: Reg = Reg(3);
    /// First kernel-scratch register (alias of `r28`).
    pub const K0: Reg = Reg(28);
    /// Second kernel-scratch register (alias of `r29`).
    pub const K1: Reg = Reg(29);
    /// Frame pointer (alias of `r30`).
    pub const FP: Reg = Reg(30);
    /// Assembler temporary (alias of `r31`).
    pub const AT: Reg = Reg(31);

    /// Creates a register from its index, rejecting indices ≥ 32.
    pub fn new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// The register index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// The ABI name used by the assembler (`zero`, `ra`, `sp`, `a0`…`a5`,
    /// `t0`…`t7`, `s0`…`s9`, `k0`, `k1`, `fp`, `at`).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "a0", "a1", "a2", "a3", "a4", "a5", "t0", "t1", "t2", "t3",
            "t4", "t5", "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
            "k0", "k1", "fp", "at",
        ];
        NAMES[self.index()]
    }

    /// Looks a register up by either ABI name (`sp`) or raw name (`r2`).
    pub fn from_name(name: &str) -> Option<Reg> {
        for i in 0..32u8 {
            if Reg(i).abi_name() == name {
                return Some(Reg(i));
            }
        }
        let rest = name.strip_prefix('r')?;
        let n: u8 = rest.parse().ok()?;
        Reg::new(n)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

/// Register-register ALU operation selector (the `funct` field of an R-format
/// instruction with opcode [`op::ALU`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift by `rs2 & 31`.
    Sll,
    /// Logical right shift by `rs2 & 31`.
    Srl,
    /// Arithmetic right shift by `rs2 & 31`.
    Sra,
    /// Signed set-less-than (1 or 0).
    Slt,
    /// Unsigned set-less-than (1 or 0).
    Sltu,
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of the unsigned product.
    Mulhu,
    /// Signed division (`-1` on divide-by-zero, like RISC-V).
    Div,
    /// Signed remainder (`rs1` on divide-by-zero).
    Rem,
    /// Unsigned division (all-ones on divide-by-zero).
    Divu,
    /// Unsigned remainder (`rs1` on divide-by-zero).
    Remu,
}

impl AluOp {
    /// All ALU operations, in `funct` order.
    pub const ALL: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Mul,
        AluOp::Mulhu,
        AluOp::Div,
        AluOp::Rem,
        AluOp::Divu,
        AluOp::Remu,
    ];

    /// The `funct` encoding of this operation.
    pub fn funct(self) -> u32 {
        AluOp::ALL.iter().position(|&o| o == self).unwrap() as u32
    }

    fn from_funct(f: u32) -> Option<AluOp> {
        AluOp::ALL.get(f as usize).copied()
    }

    /// Applies the operation to two operand values.
    ///
    /// This is also the reference semantics used by property tests.
    #[allow(
        clippy::manual_div_ceil,
        clippy::if_then_some_else_none,
        clippy::manual_checked_ops
    )]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
            AluOp::Div => {
                if b == 0 {
                    u32::MAX
                } else {
                    (a as i32).wrapping_div(b as i32) as u32
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i32).wrapping_rem(b as i32) as u32
                }
            }
            AluOp::Divu => {
                if b == 0 {
                    u32::MAX
                } else {
                    a / b
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Mul => "mul",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Divu => "divu",
            AluOp::Remu => "remu",
        }
    }
}

/// Branch comparison selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two register values.
    pub fn holds(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// Assembler mnemonic (`beq`, `bne`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Width + extension selector for loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadKind {
    /// Sign-extended byte.
    B,
    /// Zero-extended byte.
    Bu,
    /// Sign-extended halfword.
    H,
    /// Zero-extended halfword.
    Hu,
    /// Word.
    W,
}

/// Width selector for stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Byte.
    B,
    /// Halfword.
    H,
    /// Word.
    W,
}

/// Zero-operand system operation (`SYS` opcode, selector in the `imm16`
/// field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysOp {
    /// Environment call: traps with [`crate::Cause::EcallU`] or
    /// [`crate::Cause::EcallS`] depending on the current mode.
    Ecall,
    /// Breakpoint: traps with [`crate::Cause::Breakpoint`]. The debug stub
    /// plants these.
    Ebreak,
    /// Trap return (privileged): restores mode, interrupt-enable and
    /// single-step state and jumps to `EPC`.
    Tret,
    /// Wait for interrupt (privileged): idles until an interrupt is pending.
    Wfi,
    /// Flush the entire TLB (privileged). Required after page-table edits.
    TlbFlush,
}

impl SysOp {
    const ALL: [SysOp; 5] = [
        SysOp::Ecall,
        SysOp::Ebreak,
        SysOp::Tret,
        SysOp::Wfi,
        SysOp::TlbFlush,
    ];

    /// Selector value stored in the `imm16` field.
    pub fn selector(self) -> u32 {
        SysOp::ALL.iter().position(|&o| o == self).unwrap() as u32
    }

    fn from_selector(s: u32) -> Option<SysOp> {
        SysOp::ALL.get(s as usize).copied()
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SysOp::Ecall => "ecall",
            SysOp::Ebreak => "ebreak",
            SysOp::Tret => "tret",
            SysOp::Wfi => "wfi",
            SysOp::TlbFlush => "tlbflush",
        }
    }
}

/// CSR access kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// Atomic swap: `rd = csr; csr = rs1`.
    Rw,
    /// Atomic set bits: `rd = csr; csr |= rs1`.
    Rs,
    /// Atomic clear bits: `rd = csr; csr &= !rs1`.
    Rc,
}

/// Opcode byte values, bits `[31:26]` of the instruction word.
pub mod op {
    /// Register-register ALU (R format, `funct` = [`super::AluOp`]).
    pub const ALU: u32 = 0x00;
    /// Add immediate.
    pub const ADDI: u32 = 0x01;
    /// AND immediate.
    pub const ANDI: u32 = 0x02;
    /// OR immediate.
    pub const ORI: u32 = 0x03;
    /// XOR immediate.
    pub const XORI: u32 = 0x04;
    /// Signed set-less-than immediate.
    pub const SLTI: u32 = 0x05;
    /// Unsigned set-less-than immediate.
    pub const SLTIU: u32 = 0x06;
    /// Shift left logical immediate.
    pub const SLLI: u32 = 0x07;
    /// Shift right logical immediate.
    pub const SRLI: u32 = 0x08;
    /// Shift right arithmetic immediate.
    pub const SRAI: u32 = 0x09;
    /// Load upper immediate (`rd = imm16 << 16`).
    pub const LUI: u32 = 0x0a;
    /// Add upper immediate to PC (`rd = pc + (imm16 << 16)`).
    pub const AUIPC: u32 = 0x0b;
    /// Load signed byte.
    pub const LB: u32 = 0x10;
    /// Load unsigned byte.
    pub const LBU: u32 = 0x11;
    /// Load signed halfword.
    pub const LH: u32 = 0x12;
    /// Load unsigned halfword.
    pub const LHU: u32 = 0x13;
    /// Load word.
    pub const LW: u32 = 0x14;
    /// Store byte.
    pub const SB: u32 = 0x18;
    /// Store halfword.
    pub const SH: u32 = 0x19;
    /// Store word.
    pub const SW: u32 = 0x1a;
    /// Branch if equal.
    pub const BEQ: u32 = 0x20;
    /// Branch if not equal.
    pub const BNE: u32 = 0x21;
    /// Branch if signed less-than.
    pub const BLT: u32 = 0x22;
    /// Branch if signed greater-or-equal.
    pub const BGE: u32 = 0x23;
    /// Branch if unsigned less-than.
    pub const BLTU: u32 = 0x24;
    /// Branch if unsigned greater-or-equal.
    pub const BGEU: u32 = 0x25;
    /// Jump and link (J format, PC-relative).
    pub const JAL: u32 = 0x28;
    /// Jump and link register (I format).
    pub const JALR: u32 = 0x29;
    /// System operation (selector in `imm16`).
    pub const SYS: u32 = 0x30;
    /// CSR read-write.
    pub const CSRRW: u32 = 0x31;
    /// CSR read-set.
    pub const CSRRS: u32 = 0x32;
    /// CSR read-clear.
    pub const CSRRC: u32 = 0x33;
}

/// A decoded HX32 instruction.
///
/// `Instr` is the exchange type between the decoder ([`Instr::decode`]), the
/// interpreter, the assembler and the disassembler. [`Instr::encode`] is the
/// exact inverse of `decode` for every value constructible from safe code
/// (verified by property tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Register-register ALU operation.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = rs1 + imm` (wrapping).
    Addi {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// `rd = rs1 & imm` (immediate **zero**-extended, MIPS-style, so `lui`+`ori` pairs build arbitrary 32-bit constants).
    Andi {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// `rd = rs1 | imm` (immediate zero-extended).
    Ori {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// `rd = rs1 ^ imm` (immediate zero-extended).
    Xori {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// `rd = (rs1 <s imm) ? 1 : 0`.
    Slti {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// `rd = (rs1 <u imm) ? 1 : 0` (immediate sign-extended, then compared
    /// unsigned, like RISC-V `sltiu`).
    Sltiu {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// `rd = rs1 << shamt`.
    Slli {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Shift amount, `0..32`.
        shamt: u8,
    },
    /// `rd = rs1 >>u shamt`.
    Srli {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Shift amount, `0..32`.
        shamt: u8,
    },
    /// `rd = rs1 >>s shamt`.
    Srai {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Shift amount, `0..32`.
        shamt: u8,
    },
    /// `rd = imm << 16`.
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper immediate.
        imm: u16,
    },
    /// `rd = pc + (imm << 16)`.
    Auipc {
        /// Destination.
        rd: Reg,
        /// Upper immediate.
        imm: u16,
    },
    /// Memory load: `rd = mem[rs1 + offset]`.
    Load {
        /// Width/extension.
        kind: LoadKind,
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Sign-extended byte offset.
        offset: i16,
    },
    /// Memory store: `mem[rs1 + offset] = rs2`.
    Store {
        /// Width.
        kind: StoreKind,
        /// Base address register.
        rs1: Reg,
        /// Source register.
        rs2: Reg,
        /// Sign-extended byte offset.
        offset: i16,
    },
    /// Conditional PC-relative branch.
    Branch {
        /// Comparison.
        cond: BranchCond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Byte offset from this instruction; multiple of 4.
        offset: i16,
    },
    /// `rd = pc + 4; pc += offset`.
    Jal {
        /// Link destination (`r0` discards the link).
        rd: Reg,
        /// Byte offset from this instruction; multiple of 4, ±4 MiB reach.
        offset: i32,
    },
    /// `rd = pc + 4; pc = (rs1 + offset) & !3`.
    Jalr {
        /// Link destination.
        rd: Reg,
        /// Target base register.
        rs1: Reg,
        /// Sign-extended byte offset.
        offset: i16,
    },
    /// System operation (`ecall`, `ebreak`, `tret`, `wfi`, `tlbflush`).
    Sys {
        /// Which operation.
        op: SysOp,
    },
    /// CSR access (privileged): `rd = csr` combined with write/set/clear of
    /// `rs1`.
    Csr {
        /// Access kind.
        op: CsrOp,
        /// Destination for the old CSR value.
        rd: Reg,
        /// Source operand.
        rs1: Reg,
        /// CSR number (see [`crate::csr`]).
        csr: u16,
    },
}

/// Error returned by [`Instr::decode`] on an undefined instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "undefined instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn field_rd(w: u32) -> Reg {
    Reg::from_field(w >> 21)
}
fn field_rs1_i(w: u32) -> Reg {
    Reg::from_field(w >> 16)
}
fn field_rs2_r(w: u32) -> Reg {
    Reg::from_field(w >> 11)
}
fn field_imm16(w: u32) -> i16 {
    (w & 0xffff) as u16 as i16
}

impl Instr {
    /// Decodes one instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the opcode or a sub-selector is
    /// undefined; the CPU turns this into an illegal-instruction trap.
    ///
    /// # Example
    ///
    /// ```
    /// use hx_cpu::isa::{Instr, Reg};
    /// let i = Instr::Addi { rd: Reg::R1, rs1: Reg::R0, imm: -4 };
    /// assert_eq!(Instr::decode(i.encode()), Ok(i));
    /// ```
    pub fn decode(w: u32) -> Result<Instr, DecodeError> {
        let opcode = w >> 26;
        let err = Err(DecodeError { word: w });
        Ok(match opcode {
            op::ALU => match AluOp::from_funct(w & 0x7ff) {
                Some(a) => Instr::Alu {
                    op: a,
                    rd: field_rd(w),
                    rs1: field_rs1_i(w),
                    rs2: field_rs2_r(w),
                },
                None => return err,
            },
            op::ADDI => Instr::Addi {
                rd: field_rd(w),
                rs1: field_rs1_i(w),
                imm: field_imm16(w),
            },
            op::ANDI => Instr::Andi {
                rd: field_rd(w),
                rs1: field_rs1_i(w),
                imm: field_imm16(w),
            },
            op::ORI => Instr::Ori {
                rd: field_rd(w),
                rs1: field_rs1_i(w),
                imm: field_imm16(w),
            },
            op::XORI => Instr::Xori {
                rd: field_rd(w),
                rs1: field_rs1_i(w),
                imm: field_imm16(w),
            },
            op::SLTI => Instr::Slti {
                rd: field_rd(w),
                rs1: field_rs1_i(w),
                imm: field_imm16(w),
            },
            op::SLTIU => Instr::Sltiu {
                rd: field_rd(w),
                rs1: field_rs1_i(w),
                imm: field_imm16(w),
            },
            op::SLLI | op::SRLI | op::SRAI => {
                if w & 0xffff >= 32 {
                    return err;
                }
                let (rd, rs1, shamt) = (field_rd(w), field_rs1_i(w), (w & 0x1f) as u8);
                match opcode {
                    op::SLLI => Instr::Slli { rd, rs1, shamt },
                    op::SRLI => Instr::Srli { rd, rs1, shamt },
                    _ => Instr::Srai { rd, rs1, shamt },
                }
            }
            op::LUI => Instr::Lui {
                rd: field_rd(w),
                imm: (w & 0xffff) as u16,
            },
            op::AUIPC => Instr::Auipc {
                rd: field_rd(w),
                imm: (w & 0xffff) as u16,
            },
            op::LB | op::LBU | op::LH | op::LHU | op::LW => {
                let kind = match opcode {
                    op::LB => LoadKind::B,
                    op::LBU => LoadKind::Bu,
                    op::LH => LoadKind::H,
                    op::LHU => LoadKind::Hu,
                    _ => LoadKind::W,
                };
                Instr::Load {
                    kind,
                    rd: field_rd(w),
                    rs1: field_rs1_i(w),
                    offset: field_imm16(w),
                }
            }
            op::SB | op::SH | op::SW => {
                let kind = match opcode {
                    op::SB => StoreKind::B,
                    op::SH => StoreKind::H,
                    _ => StoreKind::W,
                };
                Instr::Store {
                    kind,
                    rs1: field_rd(w),
                    rs2: field_rs1_i(w),
                    offset: field_imm16(w),
                }
            }
            op::BEQ | op::BNE | op::BLT | op::BGE | op::BLTU | op::BGEU => {
                let cond = match opcode {
                    op::BEQ => BranchCond::Eq,
                    op::BNE => BranchCond::Ne,
                    op::BLT => BranchCond::Lt,
                    op::BGE => BranchCond::Ge,
                    op::BLTU => BranchCond::Ltu,
                    _ => BranchCond::Geu,
                };
                Instr::Branch {
                    cond,
                    rs1: field_rd(w),
                    rs2: field_rs1_i(w),
                    offset: field_imm16(w),
                }
            }
            op::JAL => {
                let raw = w & 0x1f_ffff;
                let offset = ((raw << 11) as i32) >> 11;
                Instr::Jal {
                    rd: field_rd(w),
                    offset,
                }
            }
            op::JALR => Instr::Jalr {
                rd: field_rd(w),
                rs1: field_rs1_i(w),
                offset: field_imm16(w),
            },
            op::SYS => match SysOp::from_selector(w & 0xffff) {
                Some(s) => Instr::Sys { op: s },
                None => return err,
            },
            op::CSRRW | op::CSRRS | op::CSRRC => {
                let csr_op = match opcode {
                    op::CSRRW => CsrOp::Rw,
                    op::CSRRS => CsrOp::Rs,
                    _ => CsrOp::Rc,
                };
                Instr::Csr {
                    op: csr_op,
                    rd: field_rd(w),
                    rs1: field_rs1_i(w),
                    csr: (w & 0xffff) as u16,
                }
            }
            _ => return err,
        })
    }

    /// Encodes the instruction into its 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if a [`Instr::Jal`] offset does not fit in the signed 21-bit
    /// field (±4 MiB) — the assembler checks reach before encoding.
    pub fn encode(self) -> u32 {
        fn r(opc: u32, rd: Reg, rs1: Reg, rs2: Reg, funct: u32) -> u32 {
            (opc << 26)
                | ((rd.index() as u32) << 21)
                | ((rs1.index() as u32) << 16)
                | ((rs2.index() as u32) << 11)
                | (funct & 0x7ff)
        }
        fn i(opc: u32, rd: Reg, rs1: Reg, imm: u32) -> u32 {
            (opc << 26)
                | ((rd.index() as u32) << 21)
                | ((rs1.index() as u32) << 16)
                | (imm & 0xffff)
        }
        match self {
            Instr::Alu { op, rd, rs1, rs2 } => r(op::ALU, rd, rs1, rs2, op.funct()),
            Instr::Addi { rd, rs1, imm } => i(op::ADDI, rd, rs1, imm as u16 as u32),
            Instr::Andi { rd, rs1, imm } => i(op::ANDI, rd, rs1, imm as u16 as u32),
            Instr::Ori { rd, rs1, imm } => i(op::ORI, rd, rs1, imm as u16 as u32),
            Instr::Xori { rd, rs1, imm } => i(op::XORI, rd, rs1, imm as u16 as u32),
            Instr::Slti { rd, rs1, imm } => i(op::SLTI, rd, rs1, imm as u16 as u32),
            Instr::Sltiu { rd, rs1, imm } => i(op::SLTIU, rd, rs1, imm as u16 as u32),
            Instr::Slli { rd, rs1, shamt } => i(op::SLLI, rd, rs1, (shamt & 31) as u32),
            Instr::Srli { rd, rs1, shamt } => i(op::SRLI, rd, rs1, (shamt & 31) as u32),
            Instr::Srai { rd, rs1, shamt } => i(op::SRAI, rd, rs1, (shamt & 31) as u32),
            Instr::Lui { rd, imm } => i(op::LUI, rd, Reg::R0, imm as u32),
            Instr::Auipc { rd, imm } => i(op::AUIPC, rd, Reg::R0, imm as u32),
            Instr::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let opc = match kind {
                    LoadKind::B => op::LB,
                    LoadKind::Bu => op::LBU,
                    LoadKind::H => op::LH,
                    LoadKind::Hu => op::LHU,
                    LoadKind::W => op::LW,
                };
                i(opc, rd, rs1, offset as u16 as u32)
            }
            Instr::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let opc = match kind {
                    StoreKind::B => op::SB,
                    StoreKind::H => op::SH,
                    StoreKind::W => op::SW,
                };
                i(opc, rs1, rs2, offset as u16 as u32)
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let opc = match cond {
                    BranchCond::Eq => op::BEQ,
                    BranchCond::Ne => op::BNE,
                    BranchCond::Lt => op::BLT,
                    BranchCond::Ge => op::BGE,
                    BranchCond::Ltu => op::BLTU,
                    BranchCond::Geu => op::BGEU,
                };
                i(opc, rs1, rs2, offset as u16 as u32)
            }
            Instr::Jal { rd, offset } => {
                assert!(
                    (-(1 << 20)..(1 << 20)).contains(&offset),
                    "jal offset {offset} out of 21-bit range"
                );
                (op::JAL << 26) | ((rd.index() as u32) << 21) | ((offset as u32) & 0x1f_ffff)
            }
            Instr::Jalr { rd, rs1, offset } => i(op::JALR, rd, rs1, offset as u16 as u32),
            Instr::Sys { op: s } => (op::SYS << 26) | s.selector(),
            Instr::Csr {
                op: c,
                rd,
                rs1,
                csr,
            } => {
                let opc = match c {
                    CsrOp::Rw => op::CSRRW,
                    CsrOp::Rs => op::CSRRS,
                    CsrOp::Rc => op::CSRRC,
                };
                i(opc, rd, rs1, csr as u32)
            }
        }
    }

    /// Returns `true` for instructions that only execute in supervisor mode.
    ///
    /// In user mode these raise [`crate::Cause::PrivilegedInstruction`] —
    /// the hook the lightweight monitor uses to emulate a deprivileged guest
    /// kernel's CPU resources.
    pub fn is_privileged(self) -> bool {
        matches!(
            self,
            Instr::Csr { .. }
                | Instr::Sys { op: SysOp::Tret }
                | Instr::Sys { op: SysOp::Wfi }
                | Instr::Sys {
                    op: SysOp::TlbFlush
                }
        )
    }
}

/// The `ebreak` instruction word, used by debug stubs to plant breakpoints.
pub const EBREAK_WORD: u32 = (op::SYS << 26) | 1;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reg_names_roundtrip() {
        for i in 0..32 {
            let r = Reg::new(i).unwrap();
            assert_eq!(Reg::from_name(r.abi_name()), Some(r));
            assert_eq!(Reg::from_name(&format!("r{i}")), Some(r));
        }
        assert_eq!(Reg::from_name("r32"), None);
        assert_eq!(Reg::from_name("bogus"), None);
    }

    #[test]
    fn ebreak_word_decodes_to_ebreak() {
        assert_eq!(
            Instr::decode(EBREAK_WORD),
            Ok(Instr::Sys { op: SysOp::Ebreak })
        );
    }

    #[test]
    fn undefined_opcode_is_error() {
        assert!(Instr::decode(0x3f << 26).is_err());
        assert!(Instr::decode((op::SYS << 26) | 99).is_err());
        assert!(Instr::decode(0x7ff).is_err()); // ALU funct out of range
    }

    #[test]
    fn jal_range_asserts() {
        let ok = Instr::Jal {
            rd: Reg::RA,
            offset: -(1 << 20),
        };
        assert_eq!(Instr::decode(ok.encode()), Ok(ok));
        let r = std::panic::catch_unwind(|| {
            Instr::Jal {
                rd: Reg::RA,
                offset: 1 << 20,
            }
            .encode()
        });
        assert!(r.is_err());
    }

    #[test]
    fn privileged_classification() {
        assert!(Instr::Sys { op: SysOp::Tret }.is_privileged());
        assert!(Instr::Sys { op: SysOp::Wfi }.is_privileged());
        assert!(Instr::Sys {
            op: SysOp::TlbFlush
        }
        .is_privileged());
        assert!(Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::R0,
            rs1: Reg::R0,
            csr: 0
        }
        .is_privileged());
        assert!(!Instr::Sys { op: SysOp::Ecall }.is_privileged());
        assert!(!Instr::Sys { op: SysOp::Ebreak }.is_privileged());
        assert!(!Instr::Addi {
            rd: Reg::R0,
            rs1: Reg::R0,
            imm: 0
        }
        .is_privileged());
    }

    #[test]
    fn div_by_zero_semantics() {
        assert_eq!(AluOp::Div.apply(7, 0), u32::MAX);
        assert_eq!(AluOp::Divu.apply(7, 0), u32::MAX);
        assert_eq!(AluOp::Rem.apply(7, 0), 7);
        assert_eq!(AluOp::Remu.apply(7, 0), 7);
        // i32::MIN / -1 must not panic.
        assert_eq!(AluOp::Div.apply(i32::MIN as u32, u32::MAX), i32::MIN as u32);
        assert_eq!(AluOp::Rem.apply(i32::MIN as u32, u32::MAX), 0);
    }

    pub(crate) fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(|n| Reg::new(n).unwrap())
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        let reg = arb_reg;
        prop_oneof![
            (
                proptest::sample::select(&AluOp::ALL[..]),
                reg(),
                reg(),
                reg()
            )
                .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
            (reg(), reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Addi { rd, rs1, imm }),
            (reg(), reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Andi { rd, rs1, imm }),
            (reg(), reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Ori { rd, rs1, imm }),
            (reg(), reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Xori { rd, rs1, imm }),
            (reg(), reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Slti { rd, rs1, imm }),
            (reg(), reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Sltiu { rd, rs1, imm }),
            (reg(), reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Slli { rd, rs1, shamt }),
            (reg(), reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srli { rd, rs1, shamt }),
            (reg(), reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srai { rd, rs1, shamt }),
            (reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
            (reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Auipc { rd, imm }),
            (
                prop_oneof![
                    Just(LoadKind::B),
                    Just(LoadKind::Bu),
                    Just(LoadKind::H),
                    Just(LoadKind::Hu),
                    Just(LoadKind::W)
                ],
                reg(),
                reg(),
                any::<i16>()
            )
                .prop_map(|(kind, rd, rs1, offset)| Instr::Load {
                    kind,
                    rd,
                    rs1,
                    offset
                }),
            (
                prop_oneof![Just(StoreKind::B), Just(StoreKind::H), Just(StoreKind::W)],
                reg(),
                reg(),
                any::<i16>()
            )
                .prop_map(|(kind, rs1, rs2, offset)| Instr::Store {
                    kind,
                    rs1,
                    rs2,
                    offset
                }),
            (
                prop_oneof![
                    Just(BranchCond::Eq),
                    Just(BranchCond::Ne),
                    Just(BranchCond::Lt),
                    Just(BranchCond::Ge),
                    Just(BranchCond::Ltu),
                    Just(BranchCond::Geu)
                ],
                reg(),
                reg(),
                any::<i16>()
            )
                .prop_map(|(cond, rs1, rs2, offset)| Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset
                }),
            (reg(), -(1i32 << 20)..(1i32 << 20)).prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
            (reg(), reg(), any::<i16>()).prop_map(|(rd, rs1, offset)| Instr::Jalr {
                rd,
                rs1,
                offset
            }),
            proptest::sample::select(&SysOp::ALL[..]).prop_map(|op| Instr::Sys { op }),
            (
                prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)],
                reg(),
                reg(),
                any::<u16>()
            )
                .prop_map(|(op, rd, rs1, csr)| Instr::Csr { op, rd, rs1, csr }),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(instr in arb_instr()) {
            prop_assert_eq!(Instr::decode(instr.encode()), Ok(instr));
        }

        #[test]
        fn decode_is_idempotent(word in any::<u32>()) {
            // decode(word) may fail; when it succeeds, re-encoding and
            // re-decoding yields the same instruction.
            if let Ok(instr) = Instr::decode(word) {
                prop_assert_eq!(Instr::decode(instr.encode()), Ok(instr));
            }
        }

        #[test]
        fn alu_shift_masks(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(AluOp::Sll.apply(a, b), a.wrapping_shl(b & 31));
            prop_assert_eq!(AluOp::Srl.apply(a, b), a.wrapping_shr(b & 31));
        }

        #[test]
        fn alu_add_sub_inverse(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(AluOp::Sub.apply(AluOp::Add.apply(a, b), b), a);
        }

        #[test]
        fn alu_divmod_identity(a in any::<u32>(), b in 1u32..) {
            let q = AluOp::Divu.apply(a, b);
            let r = AluOp::Remu.apply(a, b);
            prop_assert_eq!(q * b + r, a);
            prop_assert!(r < b);
        }
    }
}
