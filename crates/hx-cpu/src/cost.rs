//! The CPU cycle-cost model.
//!
//! All constants are in CPU cycles. They approximate a simple in-order
//! pipeline of the Pentium III era, scaled to the simulated clock documented
//! in `DESIGN.md` §6. The figure the reproduction targets compares *ratios*
//! between three platforms sharing this model, so the absolute values only
//! need to be mutually consistent, not silicon-accurate.

/// Base cost of any instruction that completes.
pub const BASE: u64 = 1;

/// Additional cost of a load or store that reaches memory (cache-hit
/// approximation). MMIO devices add their own penalty at the bus.
pub const MEM_EXTRA: u64 = 2;

/// Additional cost of `mul`/`mulhu`.
pub const MUL_EXTRA: u64 = 3;

/// Additional cost of `div`/`rem`/`divu`/`remu`.
pub const DIV_EXTRA: u64 = 18;

/// Additional cost of a taken branch or any jump (pipeline refill).
pub const BRANCH_TAKEN_EXTRA: u64 = 2;

/// Additional cost of a CSR access.
pub const CSR_EXTRA: u64 = 3;

/// Cost of hardware trap entry (mode switch, pipeline flush, vector fetch).
pub const TRAP_ENTRY: u64 = 24;

/// Cost of `tret`.
pub const TRET: u64 = 10;

/// Cost of a hardware page-table walk on a TLB miss (two dependent memory
/// reads plus permission logic); charged on top of the access itself.
pub const TLB_MISS_WALK: u64 = 20;

/// Extra cost when the walker must write back accessed/dirty bits.
pub const TLB_AD_UPDATE: u64 = 4;

/// Cost of `tlbflush`.
pub const TLB_FLUSH: u64 = 12;

/// Cost charged when `wfi` is executed (entering the idle state).
pub const WFI_ENTER: u64 = 2;
