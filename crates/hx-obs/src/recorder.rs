//! The recorder: one per machine/platform, threaded through the simulation.
//!
//! Two cost tiers:
//!
//! - **Metrics** (exit histograms) are always on — O(1) array updates with
//!   no allocation, replacing the monitors' old flat counters.
//! - **Tracing** (event ring + span track) is off by default and enabled
//!   explicitly (`--trace` in the bench binaries). When disabled, event
//!   and span calls are a branch and return.
//!
//! Nothing in here reads host time or mutates simulation state, so a
//! recorder can never perturb determinism — it only observes it.

use crate::event::{Dev, EventKind, ExitCause, TraceEvent};
use crate::hist::ExitHists;
use crate::ring::TraceRing;
use crate::span::{SpanTrack, Track};

#[derive(Clone, Debug)]
pub struct Recorder {
    tracing: bool,
    pub ring: TraceRing,
    pub exits: ExitHists,
    pub spans: SpanTrack,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            tracing: false,
            ring: TraceRing::new(TraceRing::DEFAULT_CAPACITY),
            exits: ExitHists::default(),
            spans: SpanTrack::new(SpanTrack::DEFAULT_CAPACITY),
        }
    }
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn event/span tracing on (metrics are always on).
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Record a raw event at simulated cycle `at`.
    pub fn event(&mut self, at: u64, kind: EventKind) {
        if self.tracing {
            self.ring.push(TraceEvent { at, kind });
        }
    }

    /// Record one guest→monitor exit: `cycles` of monitor time attributed
    /// to `cause`, finishing at cycle `at`. Feeds both the histogram
    /// (always) and the event ring (when tracing).
    pub fn exit(&mut self, at: u64, cause: ExitCause, cycles: u64) {
        self.exits.record(cause, cycles);
        if self.tracing {
            self.ring.push(TraceEvent {
                at,
                kind: EventKind::VmExit { cause, cycles },
            });
        }
    }

    /// Attribute `cycles` to a time bucket on the span timeline.
    pub fn charge(&mut self, track: Track, cycles: u64) {
        if self.tracing {
            self.spans.charge(track, cycles);
        }
    }

    pub fn irq(&mut self, at: u64, dev: Dev, irq: u32) {
        self.event(at, EventKind::DeviceIrq { dev, irq });
    }

    pub fn dma(&mut self, at: u64, dev: Dev, bytes: u32) {
        self.event(at, EventKind::DeviceDma { dev, bytes });
    }

    pub fn doorbell(&mut self, at: u64, dev: Dev, reg: u32) {
        self.event(at, EventKind::Doorbell { dev, reg });
    }

    pub fn debug_command(&mut self, at: u64, code: u8) {
        self.event(at, EventKind::DebugCommand { code });
    }

    /// Reset all recorded data (ring, spans, histograms) but keep the
    /// tracing flag — used when a bench discards its warmup window.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.spans.clear();
        self.exits = ExitHists::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_keeps_metrics_but_no_events() {
        let mut r = Recorder::new();
        r.exit(100, ExitCause::Mmio, 990);
        r.irq(120, Dev::Nic, 5);
        r.charge(Track::Guest, 50);
        assert_eq!(r.exits.get(ExitCause::Mmio).count(), 1);
        assert!(r.ring.is_empty());
        assert!(r.spans.spans().is_empty());
    }

    #[test]
    fn enabled_recorder_captures_everything() {
        let mut r = Recorder::new();
        r.enable_tracing();
        r.exit(100, ExitCause::Mmio, 990);
        r.irq(120, Dev::Nic, 5);
        r.charge(Track::Guest, 50);
        assert_eq!(r.ring.len(), 2);
        assert_eq!(r.spans.grand_total(), 50);
    }
}
