//! The recorder: one per machine/platform, threaded through the simulation.
//!
//! Three cost tiers:
//!
//! - **Metrics** (exit histograms) are always on — O(1) array updates with
//!   no allocation, replacing the monitors' old flat counters.
//! - **Tracing** (event ring + span track) is off by default and enabled
//!   explicitly (`--trace` in the bench binaries). When disabled, event
//!   and span calls are a branch and return.
//! - **Journaling** (flight-recorder record mode) is off by default and
//!   captures the *complete* nondeterministic history of the run — every
//!   external input payload plus an unbounded device-event stream — into a
//!   [`Journal`] that replay and divergence audits consume. Unlike the
//!   ring, the journal never drops.
//!
//! Nothing in here mutates simulation state, so a recorder can never
//! perturb determinism — it only observes it. The opt-in host-time
//! self-profiler ([`HostProf`]) is the one piece that reads host clocks;
//! its readings flow only into its own accumulators (see
//! [`crate::hostprof`]), never back into the simulation.

use crate::causal::{CausalTracker, TraceOp};
use crate::event::{Dev, EventKind, ExitCause, TraceEvent};
use crate::hist::ExitHists;
use crate::hostprof::{HostAttribution, HostPhase, HostProf};
use crate::journal::{Journal, JournalEvent, JournalInput};
use crate::prof::Profiler;
use crate::ring::TraceRing;
use crate::span::{SpanTrack, Track};
use std::sync::Arc;

#[derive(Clone, Debug)]
pub struct Recorder {
    tracing: bool,
    /// Core currently executing; stays 0 forever on a single-core machine,
    /// so nothing downstream (journal text, profiler folds) changes shape.
    active_core: u8,
    pub ring: TraceRing,
    pub exits: ExitHists,
    /// Exit count per core, indexed by core id and grown lazily — stays
    /// `[total]`-shaped on a single-core machine.
    core_exits: Vec<u64>,
    pub spans: SpanTrack,
    /// Boxed so an idle recorder stays one pointer wide; `None` unless
    /// record mode was enabled.
    journal: Option<Box<Journal>>,
    /// Guest-aware profiler; `None` unless profiling was enabled.
    prof: Option<Box<Profiler>>,
    /// Causal flow tracker; `None` unless causal tracing was enabled.
    /// Plain data, so flight-recorder snapshots rewind it with the machine.
    causal: Option<Box<CausalTracker>>,
    /// Host-time self-profiler; `None` unless enabled. Shared behind an
    /// `Arc` so snapshot clones (flight recorder, time travel) keep feeding
    /// the *same* accumulator — host time already spent never rewinds.
    hostprof: Option<Arc<HostProf>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            tracing: false,
            active_core: 0,
            ring: TraceRing::new(TraceRing::DEFAULT_CAPACITY),
            exits: ExitHists::default(),
            core_exits: Vec::new(),
            spans: SpanTrack::new(SpanTrack::DEFAULT_CAPACITY),
            journal: None,
            prof: None,
            causal: None,
            hostprof: None,
        }
    }
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Notes a vCPU-scheduler switch: journal events recorded and guest
    /// cycles charged from here on belong to core `core`.
    pub fn set_active_core(&mut self, core: u8) {
        self.active_core = core;
        if let Some(p) = self.prof.as_deref_mut() {
            p.set_core(core);
        }
    }

    /// The core the recorder currently attributes to.
    pub fn active_core(&self) -> u8 {
        self.active_core
    }

    /// Exit counts per core (indexed by core id; a core with no exits yet
    /// may be beyond the end). Single-core machines see one entry equal to
    /// the total.
    pub fn core_exit_counts(&self) -> &[u64] {
        &self.core_exits
    }

    /// Exit count for core `i` (0 when the core has recorded none).
    pub fn core_exit_count(&self, i: usize) -> u64 {
        self.core_exits.get(i).copied().unwrap_or(0)
    }

    /// Turn event/span tracing on (metrics are always on).
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Start flight-recorder record mode: inputs and device events are
    /// journaled from this point on.
    pub fn enable_journal(&mut self, platform: &str) {
        self.journal = Some(Box::new(Journal::new(platform)));
    }

    pub fn journaling(&self) -> bool {
        self.journal.is_some()
    }

    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_deref()
    }

    pub fn journal_mut(&mut self) -> Option<&mut Journal> {
        self.journal.as_deref_mut()
    }

    /// Detach the journal, ending record mode.
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.journal.take().map(|b| *b)
    }

    /// Turn on the guest-aware profiler: from this point every guest-track
    /// cycle charge is attributed to the symbol of the current instruction
    /// boundary. Platforms disable instruction batching while a profiler is
    /// installed, so boundaries arrive per instruction.
    pub fn enable_profiler(&mut self, prof: Profiler) {
        self.prof = Some(Box::new(prof));
    }

    pub fn profiling(&self) -> bool {
        self.prof.is_some()
    }

    pub fn prof(&self) -> Option<&Profiler> {
        self.prof.as_deref()
    }

    pub fn prof_mut(&mut self) -> Option<&mut Profiler> {
        self.prof.as_deref_mut()
    }

    /// Detach the profiler, ending profiling.
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.prof.take().map(|b| *b)
    }

    /// Turn on causal flow tracking: from this point every asynchronous
    /// handoff (IRQ raise→ISR entry→EOI, IPI send→delivery, disk/NIC
    /// command→completion, guest tracepoint begin→end) is connected into a
    /// flow and fed to per-class latency histograms. Pure observation —
    /// the hooks never touch simulation state.
    pub fn enable_causal(&mut self) {
        self.causal = Some(Box::new(CausalTracker::new()));
    }

    pub fn causal_tracking(&self) -> bool {
        self.causal.is_some()
    }

    pub fn causal(&self) -> Option<&CausalTracker> {
        self.causal.as_deref()
    }

    /// Detach the causal tracker, ending flow tracking.
    pub fn take_causal(&mut self) -> Option<CausalTracker> {
        self.causal.take().map(|b| *b)
    }

    /// Turn on the host-time self-profiler: from this point,
    /// [`Recorder::host_mark`] calls charge wall-clock nanoseconds to the
    /// named phase. Unlike the guest profiler this does **not** disable
    /// instruction batching — marks are taken only at phase boundaries, so
    /// the hot loop stays hot.
    pub fn enable_hostprof(&mut self) {
        self.hostprof = Some(Arc::new(HostProf::new()));
    }

    pub fn host_profiling(&self) -> bool {
        self.hostprof.is_some()
    }

    /// Charges host time since the previous mark to `phase`. A single
    /// `Option` branch when the profiler is off.
    pub fn host_mark(&self, phase: HostPhase) {
        if let Some(hp) = &self.hostprof {
            hp.mark(phase);
        }
    }

    /// Plain-data host-attribution snapshot, `None` when disabled.
    pub fn host_attribution(&self) -> Option<HostAttribution> {
        self.hostprof.as_ref().map(|hp| hp.snapshot())
    }

    /// Re-anchors profiler attribution to the instruction at `pc` (called
    /// by the engine before that instruction's cycles are charged).
    pub fn instr_boundary(&mut self, pc: u32) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.instr_boundary(pc);
        }
    }

    /// Notes a virtual-interrupt injection at cycle `at` for the profiler's
    /// entry→EOI latency histograms.
    pub fn prof_irq_entry(&mut self, irq: u32, at: u64) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.irq_entry(irq, at);
        }
    }

    /// Notes the guest's EOI write at cycle `at` (see
    /// [`Profiler::irq_eoi`]).
    pub fn prof_irq_eoi(&mut self, at: u64) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.irq_eoi(at);
        }
    }

    /// Journal one nondeterministic input applied at cycle `at`.
    pub fn journal_input(&mut self, at: u64, input: JournalInput) {
        if let Some(j) = self.journal.as_deref_mut() {
            j.input(at, input);
        }
    }

    fn journal_event(&mut self, at: u64, ev: JournalEvent) {
        let core = self.active_core;
        if let Some(j) = self.journal.as_deref_mut() {
            j.event_on(at, ev, core);
        }
    }

    /// Record a raw event at simulated cycle `at`.
    pub fn event(&mut self, at: u64, kind: EventKind) {
        if self.tracing {
            self.ring.push(TraceEvent { at, kind });
        }
    }

    /// Record one guest→monitor exit: `cycles` of monitor time attributed
    /// to `cause`, finishing at cycle `at`. Feeds both the histogram
    /// (always) and the event ring (when tracing).
    pub fn exit(&mut self, at: u64, cause: ExitCause, cycles: u64) {
        self.exits.record(cause, cycles);
        let core = self.active_core as usize;
        if core >= self.core_exits.len() {
            self.core_exits.resize(core + 1, 0);
        }
        self.core_exits[core] += 1;
        if self.tracing {
            self.ring.push(TraceEvent {
                at,
                kind: EventKind::VmExit { cause, cycles },
            });
        }
    }

    /// Attribute `cycles` to a time bucket on the span timeline (and, for
    /// guest cycles, to the profiler's current symbol). Because the span
    /// track and the profiler are fed from this one funnel, per-symbol
    /// totals reconcile exactly with the guest-track total.
    pub fn charge(&mut self, track: Track, cycles: u64) {
        if self.tracing {
            self.spans.charge(track, cycles);
        }
        if track == Track::Guest {
            if let Some(p) = self.prof.as_deref_mut() {
                p.charge_guest(cycles);
            }
        }
    }

    pub fn irq(&mut self, at: u64, dev: Dev, irq: u32) {
        self.event(at, EventKind::DeviceIrq { dev, irq });
        let core = self.active_core;
        if let Some(c) = self.causal.as_deref_mut() {
            c.device_irq(at, core, dev, irq);
        }
        self.journal_event(at, JournalEvent::Irq { dev, irq });
    }

    pub fn dma(&mut self, at: u64, dev: Dev, bytes: u32) {
        self.dma_digest(at, dev, bytes, 0);
    }

    /// DMA with a payload digest — devices compute the FNV-1a of the moved
    /// bytes only when journaling, so the plain [`Recorder::dma`] path stays
    /// free of hashing cost.
    pub fn dma_digest(&mut self, at: u64, dev: Dev, bytes: u32, digest: u64) {
        self.event(at, EventKind::DeviceDma { dev, bytes });
        self.journal_event(at, JournalEvent::Dma { dev, bytes, digest });
    }

    pub fn doorbell(&mut self, at: u64, dev: Dev, reg: u32) {
        self.event(at, EventKind::Doorbell { dev, reg });
        let core = self.active_core;
        if let Some(c) = self.causal.as_deref_mut() {
            c.doorbell(at, core, dev, reg);
        }
        self.journal_event(at, JournalEvent::Doorbell { dev, reg });
    }

    /// The guest entered the ISR for line `irq` — architectural INTA on
    /// raw hardware, virtual-PIC INTA at injection under a monitor. A
    /// branch-and-return unless causal tracing is on; ring and journal
    /// records are causal-gated too, so traces and journals recorded
    /// without causal tracing keep their pre-causal bytes.
    pub fn inta(&mut self, at: u64, irq: u32) {
        if self.causal.is_none() {
            return;
        }
        self.event(at, EventKind::IrqEntry { irq });
        let core = self.active_core;
        if let Some(c) = self.causal.as_deref_mut() {
            c.inta(at, core, irq);
        }
        self.journal_event(at, JournalEvent::Inta { irq });
    }

    /// The guest wrote the PIC EOI register, retiring the most recent ISR.
    /// Causal-gated like [`Recorder::inta`].
    pub fn eoi(&mut self, at: u64) {
        if self.causal.is_none() {
            return;
        }
        self.event(at, EventKind::IrqEoi);
        let core = self.active_core;
        if let Some(c) = self.causal.as_deref_mut() {
            c.eoi(at, core);
        }
        self.journal_event(at, JournalEvent::Eoi);
    }

    /// An IPI send was issued toward `target`, line `line`. Feeds only the
    /// causal tracker — the send is already journaled as a PIC doorbell
    /// and the delivery as a PIC IRQ, so no new journal stream is needed.
    pub fn ipi_send(&mut self, at: u64, target: u8, line: u32) {
        let core = self.active_core;
        if let Some(c) = self.causal.as_deref_mut() {
            c.ipi_send(at, core, target, line);
        }
    }

    /// An IPI was delivered to `target` (startup or pending-mask latch).
    pub fn ipi_deliver(&mut self, at: u64, target: u8, line: u32) {
        if let Some(c) = self.causal.as_deref_mut() {
            c.ipi_deliver(at, target, line);
        }
    }

    /// The guest wrote a `TRACE`-page register: `op` at tracepoint `id`.
    /// Guest-driven like a doorbell, so the ring (when tracing) and the
    /// journal (when journaling) record it regardless of causal tracking —
    /// pre-causal guests emit none, so their outputs are unchanged.
    pub fn tracepoint(&mut self, at: u64, op: TraceOp, id: u32) {
        self.event(at, EventKind::Tracepoint { op, id });
        let core = self.active_core;
        if let Some(c) = self.causal.as_deref_mut() {
            c.tracepoint(at, core, op, id);
        }
        self.journal_event(at, JournalEvent::Trace { op, id });
    }

    pub fn debug_command(&mut self, at: u64, code: u8) {
        self.event(at, EventKind::DebugCommand { code });
        self.journal_event(at, JournalEvent::DebugCommand { code });
    }

    /// Record one injected fault: `code` is the `hx-fault` class code,
    /// `arg` a class-specific detail (target address, IRQ mask, unit).
    /// Faults are deterministic machine state — journaled for audits, never
    /// replayed as inputs.
    pub fn fault(&mut self, at: u64, code: u8, arg: u32) {
        self.event(at, EventKind::FaultInjected { code, arg });
        self.journal_event(at, JournalEvent::Fault { code, arg });
    }

    /// Record one logpoint hit: the instruction at `addr` retired at cycle
    /// `at` with condition value `value`. Logpoints are pure observation,
    /// so the hit stream is journaled and audited like a device stream —
    /// a live run and its replay must match hit-for-hit.
    pub fn logpoint(&mut self, at: u64, addr: u32, value: u64) {
        self.event(at, EventKind::Logpoint { addr, value });
        self.journal_event(at, JournalEvent::Log { addr, value });
    }

    /// Reset all recorded data (ring, spans, histograms, profiler counts,
    /// causal flows) but keep the tracing flag, the profiler's
    /// configuration and the journal — the journal must span a whole run,
    /// warmup included, or replay would miss early inputs.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.spans.clear();
        self.exits = ExitHists::default();
        self.core_exits.clear();
        if let Some(p) = self.prof.as_deref_mut() {
            p.reset_counts();
        }
        if let Some(c) = self.causal.as_deref_mut() {
            *c = CausalTracker::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_keeps_metrics_but_no_events() {
        let mut r = Recorder::new();
        r.exit(100, ExitCause::Mmio, 990);
        r.irq(120, Dev::Nic, 5);
        r.charge(Track::Guest, 50);
        assert_eq!(r.exits.get(ExitCause::Mmio).count(), 1);
        assert!(r.ring.is_empty());
        assert!(r.spans.spans().is_empty());
    }

    #[test]
    fn exits_attribute_to_the_active_core() {
        let mut r = Recorder::new();
        r.exit(10, ExitCause::Mmio, 5);
        r.set_active_core(2);
        r.exit(20, ExitCause::Privileged, 5);
        r.exit(30, ExitCause::Mmio, 5);
        assert_eq!(r.core_exit_counts(), &[1, 0, 2]);
        assert_eq!(r.core_exit_count(1), 0);
        assert_eq!(r.core_exit_count(7), 0);
        r.reset();
        assert!(r.core_exit_counts().is_empty());
    }

    #[test]
    fn enabled_recorder_captures_everything() {
        let mut r = Recorder::new();
        r.enable_tracing();
        r.exit(100, ExitCause::Mmio, 990);
        r.irq(120, Dev::Nic, 5);
        r.charge(Track::Guest, 50);
        assert_eq!(r.ring.len(), 2);
        assert_eq!(r.spans.grand_total(), 50);
    }

    #[test]
    fn journal_captures_events_independent_of_tracing() {
        let mut r = Recorder::new();
        assert!(!r.journaling());
        r.irq(10, Dev::Nic, 5); // before enable: not journaled
        r.enable_journal("lvmm");
        r.irq(120, Dev::Nic, 5);
        r.dma_digest(130, Dev::Hdc, 512, 0xdead);
        r.doorbell(140, Dev::Nic, 4);
        r.debug_command(150, b'g');
        r.journal_input(160, JournalInput::UartRx(vec![0x24]));
        // Tracing stayed off: ring empty, but journal has everything.
        assert!(r.ring.is_empty());
        let j = r.journal().unwrap();
        assert_eq!(j.events.len(), 4);
        assert_eq!(j.inputs.len(), 1);
        assert_eq!(
            j.events[1].ev,
            JournalEvent::Dma {
                dev: Dev::Hdc,
                bytes: 512,
                digest: 0xdead
            }
        );
        // Reset keeps the journal; take detaches it.
        r.reset();
        assert!(r.journaling());
        let j = r.take_journal().unwrap();
        assert_eq!(j.events.len(), 4);
        assert!(!r.journaling());
    }

    #[test]
    fn causal_funnels_are_gated_and_feed_tracker_and_journal() {
        use crate::causal::FlowClass;
        let mut r = Recorder::new();
        r.enable_journal("lvmm");
        // Causal off: inta/eoi are a branch and return — not journaled, so
        // pre-causal journal bytes are preserved.
        r.inta(10, 0);
        r.eoi(20);
        assert_eq!(r.journal().unwrap().events.len(), 0);
        // Tracepoints are guest-driven: journaled even without causal.
        r.tracepoint(30, TraceOp::Instant, 9);
        assert_eq!(r.journal().unwrap().events.len(), 1);

        r.enable_causal();
        r.irq(100, Dev::Pit, 0);
        r.inta(150, 0);
        r.eoi(200);
        r.set_active_core(1);
        r.tracepoint(250, TraceOp::Begin, 7);
        r.tracepoint(300, TraceOp::End, 7);
        let c = r.causal().unwrap();
        assert_eq!(c.flows().len(), 3);
        assert_eq!(c.hist(FlowClass::IrqDispatch).max(), 50);
        assert_eq!(c.flows()[2].begin_core, 1);
        // irq + inta + eoi + 2 tracepoints journaled after enable.
        assert_eq!(r.journal().unwrap().events.len(), 6);

        // Reset clears flows but keeps the tracker installed; take detaches.
        r.reset();
        assert!(r.causal_tracking());
        assert!(r.causal().unwrap().flows().is_empty());
        let t = r.take_causal().unwrap();
        assert!(t.flows().is_empty());
        assert!(!r.causal_tracking());
    }

    #[test]
    fn hostprof_is_shared_across_clones_and_survives_reset() {
        use crate::hostprof::HostPhase;
        let mut r = Recorder::new();
        assert!(!r.host_profiling());
        r.host_mark(HostPhase::GuestExec); // disabled: a branch and return
        assert!(r.host_attribution().is_none());
        r.enable_hostprof();
        r.host_mark(HostPhase::GuestExec);
        // A snapshot clone (what the flight recorder stores) feeds the SAME
        // accumulator: restoring old machine state must not rewind host time.
        let snap = r.clone();
        snap.host_mark(HostPhase::Journal);
        assert_eq!(r.host_attribution().unwrap().marks, 2);
        r.reset();
        assert!(r.host_profiling(), "reset keeps the host profiler");
        assert_eq!(r.host_attribution().unwrap().marks, 2);
    }

    #[test]
    fn profiler_receives_guest_charges_independent_of_tracing() {
        use crate::prof::{Profiler, SymbolMap};
        let mut r = Recorder::new();
        assert!(!r.profiling());
        let map = SymbolMap::from_ranges([("f".to_string(), 0x100, 0x200)]);
        r.enable_profiler(Profiler::new(map, 1000));
        assert!(r.profiling());
        r.instr_boundary(0x104);
        r.charge(Track::Guest, 40);
        r.charge(Track::Monitor, 7); // not guest: not attributed
        r.prof_irq_entry(0, 10);
        r.prof_irq_eoi(25);
        assert_eq!(r.prof().unwrap().total_cycles(), 40);
        assert_eq!(r.prof().unwrap().top(1), vec![("f", 40, 0)]);
        assert_eq!(r.prof().unwrap().irq_latencies().count(), 1);
        // Tracing stayed off: spans empty, profiler still fed.
        assert!(r.spans.spans().is_empty());
        // Reset zeroes counts but keeps the profiler installed.
        r.reset();
        assert!(r.profiling());
        assert_eq!(r.prof().unwrap().total_cycles(), 0);
        let p = r.take_profiler().unwrap();
        assert!(!r.profiling());
        assert_eq!(p.interval(), 1000);
    }
}
