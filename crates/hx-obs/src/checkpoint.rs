//! Periodic machine-state checkpoints for the flight recorder.
//!
//! A [`CheckpointStore`] keeps full snapshots of some opaque platform state
//! `S` on a fixed cycle cadence, each tagged with a [`StateDigest`] —
//! FNV-1a checksums of guest RAM, the register file and the monitor region
//! (shadow tables live there). Snapshots make time travel cheap: seeking to
//! cycle `T` restores the nearest checkpoint at or before `T` and
//! deterministically re-runs the remainder; digests let a replay or an
//! audit verify it reconstructed the same machine without shipping the
//! whole snapshot.
//!
//! The store is generic because it lives below the platform crates: the
//! monitors decide what a snapshot *is* (for the lightweight monitor, a
//! clone of machine + vcpu + shadow pager + chipset + stub); this module
//! only owns cadence and lookup.

/// Checksums of the architecturally interesting state regions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateDigest {
    /// FNV-1a over guest RAM (below the monitor region).
    pub ram: u64,
    /// FNV-1a over the register file and PC.
    pub regs: u64,
    /// FNV-1a over the monitor region (shadow tables and monitor data).
    pub shadow: u64,
}

/// One snapshot: the cycle it was taken at, its digests, and the state.
#[derive(Clone, Debug)]
pub struct Checkpoint<S> {
    /// Simulated cycle of the snapshot.
    pub at: u64,
    /// Checksums at snapshot time.
    pub digest: StateDigest,
    /// The opaque platform state.
    pub state: S,
}

/// Snapshots on a fixed cadence, ordered by cycle.
#[derive(Clone, Debug)]
pub struct CheckpointStore<S> {
    every: u64,
    next_at: u64,
    cps: Vec<Checkpoint<S>>,
}

impl<S> CheckpointStore<S> {
    /// Default cadence: one full snapshot every 2 M cycles (≈13 ms of
    /// simulated time at the 150 MHz machine clock).
    pub const DEFAULT_EVERY: u64 = 2_000_000;

    /// A store snapshotting every `every` cycles (clamped to ≥ 1).
    pub fn new(every: u64) -> CheckpointStore<S> {
        CheckpointStore {
            every: every.max(1),
            next_at: 0,
            cps: Vec::new(),
        }
    }

    /// Is a snapshot due at cycle `now`?
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_at
    }

    /// The configured cadence in cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Records a snapshot taken at cycle `at` and schedules the next one.
    pub fn record(&mut self, at: u64, digest: StateDigest, state: S) {
        self.cps.push(Checkpoint { at, digest, state });
        self.next_at = at + self.every;
    }

    /// The latest checkpoint at or before `cycle`, if any.
    pub fn nearest_at_or_before(&self, cycle: u64) -> Option<&Checkpoint<S>> {
        self.cps.iter().rev().find(|c| c.at <= cycle)
    }

    /// Drops every checkpoint strictly after `cycle` — time travel
    /// invalidates the discarded future — and re-arms the cadence so the
    /// new timeline re-snapshots from the surviving tip.
    pub fn truncate_after(&mut self, cycle: u64) {
        self.cps.retain(|c| c.at <= cycle);
        self.next_at = self.cps.last().map_or(0, |c| c.at + self.every);
    }

    /// Number of stored checkpoints.
    pub fn len(&self) -> usize {
        self.cps.len()
    }

    /// True when no checkpoint has been taken yet.
    pub fn is_empty(&self) -> bool {
        self.cps.is_empty()
    }

    /// The most recent checkpoint.
    pub fn latest(&self) -> Option<&Checkpoint<S>> {
        self.cps.last()
    }

    /// All checkpoints, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Checkpoint<S>> {
        self.cps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_and_lookup() {
        let mut s: CheckpointStore<u32> = CheckpointStore::new(1000);
        assert!(s.due(0));
        s.record(0, StateDigest::default(), 10);
        assert!(!s.due(999));
        assert!(s.due(1000));
        s.record(1200, StateDigest::default(), 11);
        s.record(2200, StateDigest::default(), 12);
        assert_eq!(s.len(), 3);
        assert_eq!(s.nearest_at_or_before(1199).unwrap().state, 10);
        assert_eq!(s.nearest_at_or_before(1200).unwrap().state, 11);
        assert_eq!(s.nearest_at_or_before(9999).unwrap().state, 12);
        assert!(s.nearest_at_or_before(0).is_some());
    }

    #[test]
    fn truncate_rewinds_the_cadence() {
        let mut s: CheckpointStore<u32> = CheckpointStore::new(1000);
        s.record(0, StateDigest::default(), 1);
        s.record(1000, StateDigest::default(), 2);
        s.record(2000, StateDigest::default(), 3);
        s.truncate_after(1500);
        assert_eq!(s.len(), 2);
        assert_eq!(s.latest().unwrap().at, 1000);
        assert!(!s.due(1999));
        assert!(s.due(2000));
    }

    #[test]
    fn empty_store() {
        let s: CheckpointStore<u32> = CheckpointStore::new(0);
        assert_eq!(s.every(), 1);
        assert!(s.is_empty());
        assert!(s.nearest_at_or_before(u64::MAX).is_none());
        assert!(s.latest().is_none());
    }
}
