//! # hx-obs — deterministic, cycle-attributed observability
//!
//! The measurement substrate for the lightweight-VMM reproduction. Every
//! number the benches report (Fig. 3.1 CPU loads, exit-cost ablations,
//! debug-latency tables) flows through this crate, which guarantees two
//! properties end to end:
//!
//! 1. **Simulated time only.** All timestamps in traces, journals and
//!    histograms are simulated cycles. The one deliberate exception is the
//!    host-time self-profiler ([`HostProf`]) and the metrics registry
//!    ([`MetricsRegistry`]): they *do* read host clocks, but those reads
//!    flow only into their own side buffers — never into machine state,
//!    cycle accounting, traces or journals — so every deterministic export
//!    stays a pure function of the run.
//! 2. **Observation never perturbs.** Recording writes only to side
//!    buffers; enabling or disabling tracing cannot change simulation
//!    state, so determinism is preserved — and *testable*, because two
//!    identical runs must export byte-identical traces.
//!
//! ## Event taxonomy
//!
//! | event | meaning | payload |
//! |---|---|---|
//! | `VmExit` | guest → monitor exit | [`ExitCause`] + monitor cycles |
//! | `ShadowFault` | shadow page-table miss | guest virtual address |
//! | `DeviceIrq` | device asserted an IRQ line | [`Dev`] + irq number |
//! | `DeviceDma` | device moved payload bytes | [`Dev`] + byte count |
//! | `Doorbell` | guest rang a device kick register | [`Dev`] + register offset |
//! | `DebugCommand` | debug stub executed a wire command | command byte |
//! | `GuestSample` | guest-stats snapshot sampled | cumulative bytes/frames |
//! | `IrqEntry` | guest entered an ISR (INTA) | irq line (causal-gated) |
//! | `IrqEoi` | guest retired an ISR (EOI write) | — (causal-gated) |
//! | `Tracepoint` | guest wrote a `TRACE`-page register | [`TraceOp`] + id |
//!
//! Exit causes: `privileged`, `mmio`, `shadow`, `irq-reflect`,
//! `irq-inject`, `protection`, `debug`, and (hosted monitor only)
//! `host-relay`.
//!
//! ## Pieces
//!
//! - [`Recorder`] — one per machine; histograms always on, event ring and
//!   span track opt-in (`--trace`), journal opt-in (record mode).
//! - [`CausalTracker`]/[`Flow`]/[`FlowClass`] — deterministic causal
//!   tracing: flow IDs across asynchronous handoffs (IRQ raise→ISR→EOI,
//!   IPI send→delivery, disk/NIC command→completion, guest tracepoint
//!   spans) with per-class end-to-end latency histograms. Opt-in
//!   (`enable_causal`); every hook is a branch-and-return when off.
//! - [`TraceRing`] — bounded event buffer that wraps keeping the newest
//!   events, with exact drop accounting.
//! - [`CycleHist`]/[`ExitHists`] — log2-bucket histograms with
//!   p50/p99/p99.9, replacing the monitors' flat exit counters.
//! - [`SpanTrack`] — guest/monitor/host-model/idle timeline whose totals
//!   reconcile exactly with the platform `TimeStats`.
//! - [`Profiler`]/[`SymbolMap`] — guest-aware deterministic profiler:
//!   per-symbol exact cycle attribution of the guest track, cycle-driven
//!   PC sampling, collapsed-stack flamegraph output, and per-IRQ
//!   entry→EOI latency histograms.
//! - [`ChromeTrace`] — Perfetto-compatible JSON exporter.
//! - [`Report`] — the one table formatter (text + CSV) all bench binaries
//!   share.
//! - [`HostProf`]/[`HostPhase`] — host wall-clock self-profiler: attributes
//!   real nanoseconds across monitor phases (guest execution, per-cause
//!   exits, per-device emulation, journal, debug link) without ever feeding
//!   a host-time value back into the simulation.
//! - [`MetricsRegistry`]/[`MetricsSnapshot`] — process-wide counters,
//!   gauges and host-ns histograms with Prometheus text exposition.
//!
//! ## Flight recorder
//!
//! - [`Journal`] — the record/replay journal: every nondeterministic input
//!   (UART bytes, NIC RX frames) with payloads, plus an unbounded stream of
//!   device events (IRQs, DMA completions with payload digests, doorbells,
//!   debug commands) for divergence auditing. Text-serializable.
//! - [`ReplayCursor`] — walks a journal's inputs in cycle order for
//!   re-injection by a replay driver.
//! - [`CheckpointStore`] — periodic full-state snapshots with
//!   [`StateDigest`] checksums; the substrate for time-travel debugging.
//! - [`audit`]/[`first_divergence`] — per-device-stream comparison of two
//!   journals, reporting the first point where runs disagree.

pub mod causal;
pub mod checkpoint;
pub mod chrome;
pub mod event;
pub mod hist;
pub mod hostprof;
pub mod journal;
pub mod metrics;
pub mod prof;
pub mod recorder;
pub mod replay;
pub mod report;
pub mod ring;
pub mod span;

pub use causal::{CausalTracker, Flow, FlowClass, TraceOp};
pub use checkpoint::{Checkpoint, CheckpointStore, StateDigest};
pub use chrome::ChromeTrace;
pub use event::{Dev, EventKind, ExitCause, TraceEvent};
pub use hist::{CycleHist, ExitHists};
pub use hostprof::{HostAttribution, HostPhase, HostProf};
pub use journal::{
    audit, digest, first_divergence, fnv1a, Divergence, DivergenceMode, EventRecord, InputRecord,
    Journal, JournalEvent, JournalInput, JournalParseError, StreamAudit,
};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use prof::{Profiler, SymbolMap};
pub use recorder::Recorder;
pub use replay::ReplayCursor;
pub use report::{Align, Report};
pub use ring::TraceRing;
pub use span::{Span, SpanTrack, Track};

/// Compile-time proof the observability state stays [`Send`] (and the
/// process-wide metrics registry [`Sync`]): recorders, journals and causal
/// trackers ride inside machines that the debug farm moves across worker
/// threads, while all threads publish into one registry.
#[allow(dead_code)]
fn assert_send_types() {
    fn is_send<T: Send>() {}
    fn is_sync<T: Sync>() {}
    is_send::<Recorder>();
    is_send::<Journal>();
    is_send::<CausalTracker>();
    is_send::<Profiler>();
    is_send::<HostProf>();
    is_sync::<MetricsRegistry>();
}
