//! hx-prof: the guest-aware deterministic profiler.
//!
//! The paper debugs an original OS *from the monitor side*, without
//! instrumenting the guest; this module extends that stance to profiling.
//! The monitor already attributes every simulated cycle to a track
//! (guest / monitor / host-model / idle); the profiler splits the **guest**
//! track further, by the guest symbol containing the executing PC:
//!
//! - **Exact attribution.** Every guest-track cycle charged through the
//!   [`Recorder`](crate::Recorder) is added to the symbol of the current
//!   instruction boundary, so per-symbol totals sum *exactly* to the
//!   [`SpanTrack`](crate::SpanTrack) guest total — an invariant the test
//!   suite asserts on all three platforms.
//! - **Deterministic sampling.** A PC sample is taken every
//!   [`Profiler::interval`] cumulative guest cycles — simulated cycles,
//!   never wall clock — so recording a run and replaying its journal
//!   produce byte-identical profiles.
//! - **IRQ latency.** The monitor observes virtual-interrupt injection and
//!   the guest's EOI write to the virtual PIC; the entry→EOI distance per
//!   IRQ feeds a [`CycleHist`]. Nested injections resolve LIFO, matching
//!   the interrupt nesting discipline.
//!
//! Cycles charged before the first instruction boundary (or at a PC outside
//! every symbol) land in the `[unknown]` bucket, keeping totals exact.

use crate::hist::CycleHist;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One symbolized guest function: a half-open `[start, end)` PC range.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Sym {
    name: String,
    start: u32,
    end: u32,
}

/// Sorted, non-overlapping symbol ranges with binary-search resolution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolMap {
    syms: Vec<Sym>,
}

impl SymbolMap {
    /// Builds a map from `(name, start, end)` half-open ranges (e.g. from
    /// [`hx_asm::Program::code_symbols`], spelled out so hx-obs stays
    /// dependency-free). Ranges are sorted by start address; empty ranges
    /// are dropped.
    pub fn from_ranges(ranges: impl IntoIterator<Item = (String, u32, u32)>) -> SymbolMap {
        let mut syms: Vec<Sym> = ranges
            .into_iter()
            .filter(|&(_, start, end)| start < end)
            .map(|(name, start, end)| Sym { name, start, end })
            .collect();
        syms.sort_by_key(|s| s.start);
        SymbolMap { syms }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True when the map holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Index of the symbol whose range contains `pc`.
    fn index_of(&self, pc: u32) -> Option<usize> {
        let i = self.syms.partition_point(|s| s.start <= pc);
        let s = &self.syms[i.checked_sub(1)?];
        (pc < s.end).then_some(i - 1)
    }

    /// Name of the symbol containing `pc`.
    pub fn resolve(&self, pc: u32) -> Option<&str> {
        self.index_of(pc).map(|i| self.syms[i].name.as_str())
    }
}

/// Cycle and sample totals for one symbol, plus the latency histograms —
/// see the [module docs](self).
#[derive(Debug, Clone)]
pub struct Profiler {
    symbols: SymbolMap,
    interval: u64,
    /// Exact guest cycles per symbol (index-parallel with `symbols`).
    cycles: Vec<u64>,
    /// Deterministic PC samples per symbol.
    samples: Vec<u64>,
    /// Guest cycles at PCs outside every symbol (boot, pre-first-boundary).
    unknown_cycles: u64,
    unknown_samples: u64,
    /// Symbol index at the most recent instruction boundary.
    cur: Option<usize>,
    /// Core charges are currently attributed to (set by the recorder at
    /// vCPU-scheduler switches; stays 0 on single-core machines).
    core: u8,
    /// Per-core guest cycles: outer index is the core, inner rows are
    /// index-parallel with `symbols` plus one trailing `[unknown]` slot.
    /// Rows are grown lazily, so a single-core run only ever touches row 0.
    per_core: Vec<Vec<u64>>,
    /// Guest cycles accumulated towards the next sample.
    acc: u64,
    /// Injected-but-not-yet-EOI'd virtual interrupts, innermost last.
    pending_irq: Vec<(u32, u64)>,
    /// Entry→EOI latency per IRQ number.
    irq_latency: BTreeMap<u32, CycleHist>,
}

impl Profiler {
    /// Default sampling interval in guest cycles. Prime, so periodic guest
    /// loops cannot alias against the sampler.
    pub const DEFAULT_INTERVAL: u64 = 997;

    /// Creates a profiler over `symbols`, sampling every `interval` guest
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(symbols: SymbolMap, interval: u64) -> Profiler {
        assert!(interval > 0, "sampling interval must be positive");
        let n = symbols.len();
        Profiler {
            symbols,
            interval,
            cycles: vec![0; n],
            samples: vec![0; n],
            unknown_cycles: 0,
            unknown_samples: 0,
            cur: None,
            core: 0,
            per_core: Vec::new(),
            acc: 0,
            pending_irq: Vec::new(),
            irq_latency: BTreeMap::new(),
        }
    }

    /// The sampling interval in guest cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The symbol map the profiler attributes against.
    pub fn symbols(&self) -> &SymbolMap {
        &self.symbols
    }

    /// Re-anchors attribution: the next guest cycles belong to the symbol
    /// containing `pc`. Called by the engine at every (unbatched)
    /// instruction boundary, before the instruction's cycles are charged.
    pub fn instr_boundary(&mut self, pc: u32) {
        self.cur = self.symbols.index_of(pc);
    }

    /// Points attribution at `core` (see [`Profiler::per_core`]).
    pub fn set_core(&mut self, core: u8) {
        self.core = core;
    }

    /// Attributes `cycles` of guest time to the current symbol — both in
    /// the flat totals and in the current core's row — and advances the
    /// deterministic sampler.
    pub fn charge_guest(&mut self, cycles: u64) {
        match self.cur {
            Some(i) => self.cycles[i] += cycles,
            None => self.unknown_cycles += cycles,
        }
        let core = self.core as usize;
        if self.per_core.len() <= core {
            self.per_core.resize_with(core + 1, Vec::new);
        }
        let row = &mut self.per_core[core];
        if row.is_empty() {
            row.resize(self.symbols.len() + 1, 0);
        }
        row[self.cur.unwrap_or(self.symbols.len())] += cycles;
        self.acc += cycles;
        while self.acc >= self.interval {
            self.acc -= self.interval;
            match self.cur {
                Some(i) => self.samples[i] += 1,
                None => self.unknown_samples += 1,
            }
        }
    }

    /// Notes a virtual-interrupt injection for `irq` at cycle `at`.
    pub fn irq_entry(&mut self, irq: u32, at: u64) {
        self.pending_irq.push((irq, at));
    }

    /// Notes the guest's EOI at cycle `at`, closing the innermost pending
    /// injection (LIFO — interrupts nest). A spurious EOI with no pending
    /// entry is ignored.
    pub fn irq_eoi(&mut self, at: u64) {
        if let Some((irq, entry)) = self.pending_irq.pop() {
            self.irq_latency
                .entry(irq)
                .or_default()
                .record(at.saturating_sub(entry));
        }
    }

    /// Entry→EOI latency histograms, keyed by IRQ number.
    pub fn irq_latencies(&self) -> impl Iterator<Item = (u32, &CycleHist)> {
        self.irq_latency.iter().map(|(&irq, h)| (irq, h))
    }

    /// Total guest cycles attributed (== the span-track guest total when
    /// the profiler was enabled for the whole window).
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum::<u64>() + self.unknown_cycles
    }

    /// Total deterministic PC samples taken.
    pub fn total_samples(&self) -> u64 {
        self.samples.iter().sum::<u64>() + self.unknown_samples
    }

    /// Per-symbol `(name, cycles, samples)` in descending cycle order
    /// (ties: address order), at most `n` entries. Zero-cycle symbols are
    /// skipped; the `[unknown]` bucket competes like any symbol.
    pub fn top(&self, n: usize) -> Vec<(&str, u64, u64)> {
        let mut rows: Vec<(&str, u64, u64)> = self
            .symbols
            .syms
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.cycles[i] > 0)
            .map(|(i, s)| (s.name.as_str(), self.cycles[i], self.samples[i]))
            .collect();
        if self.unknown_cycles > 0 {
            rows.push(("[unknown]", self.unknown_cycles, self.unknown_samples));
        }
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows.truncate(n);
        rows
    }

    /// Collapsed-stack (`.folded`) rendering: one `guest;symbol cycles`
    /// line per non-zero symbol, address order, `[unknown]` last. The
    /// weights are the exact cycle counts, so downstream flamegraph tools
    /// render true cost, not sample noise.
    pub fn fold(&self) -> String {
        self.fold_prefixed("")
    }

    /// Number of cores that have been charged guest cycles (1 on every
    /// single-core run).
    pub fn cores_seen(&self) -> usize {
        self.per_core.iter().filter(|r| !r.is_empty()).count()
    }

    /// Exact per-(core, symbol) guest cycles in (core, address) order;
    /// zero entries are skipped and the `[unknown]` bucket is labeled like
    /// in [`Profiler::top`]. A single-core run reports one core-0 row per
    /// active symbol.
    pub fn per_core(&self) -> Vec<(u8, &str, u64)> {
        let mut rows = Vec::new();
        for (core, row) in self.per_core.iter().enumerate() {
            for (i, &cycles) in row.iter().enumerate() {
                if cycles == 0 {
                    continue;
                }
                let name = self
                    .symbols
                    .syms
                    .get(i)
                    .map_or("[unknown]", |s| s.name.as_str());
                rows.push((core as u8, name, cycles));
            }
        }
        rows
    }

    /// [`Profiler::fold`] with a stack prefix (e.g. `"lvmm;"`), letting one
    /// file merge several platforms' profiles. When more than one core was
    /// charged, per-core `core<N>;guest;symbol` stacks follow the flat ones
    /// (a single-core fold is byte-identical to the pre-SMP output).
    pub fn fold_prefixed(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (i, s) in self.symbols.syms.iter().enumerate() {
            if self.cycles[i] > 0 {
                let _ = writeln!(out, "{prefix}guest;{} {}", s.name, self.cycles[i]);
            }
        }
        if self.unknown_cycles > 0 {
            let _ = writeln!(out, "{prefix}guest;[unknown] {}", self.unknown_cycles);
        }
        if self.cores_seen() > 1 {
            for (core, name, cycles) in self.per_core() {
                let _ = writeln!(out, "{prefix}core{core};guest;{name} {cycles}");
            }
        }
        out
    }

    /// Zeroes every counter (cycles, samples, sampler phase, IRQ state) but
    /// keeps the symbol map, interval and current-symbol anchor — used by
    /// the bench harness to discard warmup before the measured window.
    pub fn reset_counts(&mut self) {
        self.cycles.iter_mut().for_each(|c| *c = 0);
        self.samples.iter_mut().for_each(|c| *c = 0);
        self.unknown_cycles = 0;
        self.unknown_samples = 0;
        self.per_core.clear();
        self.acc = 0;
        self.pending_irq.clear();
        self.irq_latency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> SymbolMap {
        SymbolMap::from_ranges([
            ("main".to_string(), 0x1000, 0x1100),
            ("isr".to_string(), 0x1100, 0x1180),
            ("empty".to_string(), 0x2000, 0x2000),
        ])
    }

    #[test]
    fn resolve_uses_half_open_ranges() {
        let m = map();
        assert_eq!(m.len(), 2, "empty range dropped");
        assert_eq!(m.resolve(0x1000), Some("main"));
        assert_eq!(m.resolve(0x10ff), Some("main"));
        assert_eq!(m.resolve(0x1100), Some("isr"));
        assert_eq!(m.resolve(0x1180), None);
        assert_eq!(m.resolve(0x0fff), None);
    }

    #[test]
    fn exact_attribution_and_unknown_bucket() {
        let mut p = Profiler::new(map(), 100);
        p.charge_guest(7); // before any boundary: unknown
        p.instr_boundary(0x1004);
        p.charge_guest(10);
        p.instr_boundary(0x1104);
        p.charge_guest(5);
        p.instr_boundary(0x9000); // outside every symbol
        p.charge_guest(3);
        assert_eq!(p.total_cycles(), 25);
        let top = p.top(10);
        assert_eq!(top[0], ("main", 10, 0));
        assert_eq!(top[1], ("[unknown]", 10, 0));
        assert_eq!(top[2], ("isr", 5, 0));
    }

    #[test]
    fn sampler_fires_every_interval_deterministically() {
        let mut p = Profiler::new(map(), 10);
        p.instr_boundary(0x1000);
        for _ in 0..7 {
            p.charge_guest(3); // 21 cycles -> 2 samples by cycle 20
        }
        assert_eq!(p.total_samples(), 2);
        p.charge_guest(100); // one big charge still yields 10 more
        assert_eq!(p.total_samples(), 12);
    }

    #[test]
    fn fold_is_deterministic_and_address_ordered() {
        let mut p = Profiler::new(map(), 100);
        p.instr_boundary(0x1100);
        p.charge_guest(5);
        p.instr_boundary(0x1000);
        p.charge_guest(9);
        p.charge_guest(1); // no boundary between: same symbol
        assert_eq!(p.fold(), "guest;main 10\nguest;isr 5\n");
        assert_eq!(
            p.fold_prefixed("lvmm;"),
            "lvmm;guest;main 10\nlvmm;guest;isr 5\n"
        );
    }

    #[test]
    fn irq_latency_nests_lifo() {
        let mut p = Profiler::new(map(), 100);
        p.irq_entry(0, 1000);
        p.irq_entry(5, 1200); // nested: entered later, EOI'd first
        p.irq_eoi(1300);
        p.irq_eoi(1900);
        p.irq_eoi(2000); // spurious: ignored
        let lat: Vec<(u32, u64)> = p.irq_latencies().map(|(i, h)| (i, h.max())).collect();
        assert_eq!(lat, vec![(0, 900), (5, 100)]);
    }

    #[test]
    fn reset_counts_keeps_map_and_anchor() {
        let mut p = Profiler::new(map(), 10);
        p.instr_boundary(0x1000);
        p.charge_guest(25);
        p.irq_entry(0, 1);
        p.reset_counts();
        assert_eq!(p.total_cycles(), 0);
        assert_eq!(p.total_samples(), 0);
        assert_eq!(p.irq_latencies().count(), 0);
        // The anchor survives: post-reset charges attribute correctly, and
        // the sampler phase restarts from zero.
        p.charge_guest(10);
        assert_eq!(p.top(1), vec![("main", 10, 1)]);
    }
}
