//! Host-time self-profiler: where does the *host's* wall-clock go?
//!
//! Everything else in this crate measures simulated cycles. This module is
//! the one deliberate exception: it attributes real host nanoseconds across
//! the monitor's execution phases (guest execution, per-cause exit handling,
//! per-device MMIO emulation, checkpoint/journal work, debug-link I/O) so
//! the "where would a fast path help?" question has data behind it.
//!
//! The exception is **simulation-invisible by construction**: wall-clock
//! reads flow only *into* the profiler's own accumulators, never into
//! machine state, cycle accounting, traces, or journals. Enabling it cannot
//! change a run — a property the differential tests in `tests/metrics.rs`
//! pin down on every platform.
//!
//! ## The mark model
//!
//! Instrumentation sites call [`HostProf::mark`] with the phase that *just
//! ended*; the profiler charges the nanoseconds since the previous mark to
//! that phase and moves the fence forward. Consecutive marks therefore form
//! an exact partition of wall-clock time from creation to the latest mark —
//! attributed time can never double-count or invent time, and "unattributed"
//! is exactly the tail after the last mark.
//!
//! To keep the hot loop hot, guest execution is *not* marked per
//! instruction or per batch: the engine marks [`HostPhase::GuestExec`] only
//! when leaving guest execution for a handler (trap, interrupt, idle), so a
//! long exit-free stretch costs zero `Instant` reads and its whole duration
//! is charged to `GuestExec` at the next exit. One mark is one raw clock
//! read plus a handful of relaxed atomic operations — the accumulator is
//! lock-free, so marking never blocks and costs the same whether or not
//! snapshot clones share it.
//!
//! On x86-64 the raw clock is `rdtsc` (a few ns, several times cheaper
//! than `clock_gettime` under a hypervisor); the accumulators hold TSC
//! ticks and are converted to nanoseconds with a ratio calibrated against
//! `Instant` once, at the first snapshot taken at least one millisecond
//! in. The frozen ratio makes the conversion deterministic for a given
//! tick count, so republishing an unchanged phase never moves a counter.
//! Other architectures read `Instant` directly (ticks *are* nanoseconds).

use crate::event::{Dev, ExitCause};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Instant;

/// A host-time attribution phase. `Exit` covers the monitor's dispatch and
/// handling of one guest exit (everything `record_exit` closes); `Device`
/// covers the MMIO emulation body for one device model; `Journal` covers
/// flight-recorder checkpoint capture; `DebugLink` covers wire parsing and
/// draining outside command execution (command execution itself lands in
/// `Exit(Debug)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostPhase {
    /// Guest instruction fetch/decode/execute plus engine loop overhead.
    GuestExec,
    /// Exit dispatch + handling for one cause.
    Exit(ExitCause),
    /// MMIO/device-emulation body for one device model.
    Device(Dev),
    /// Flight-recorder checkpoint capture (snapshot + digest).
    Journal,
    /// Debug-link wire I/O outside command execution.
    DebugLink,
    /// Virtually-idle guest: event-queue skips.
    Idle,
    /// Anything an instrumentation site cannot classify better.
    Other,
}

impl HostPhase {
    pub const ALL: [HostPhase; 18] = [
        HostPhase::GuestExec,
        HostPhase::Exit(ExitCause::Privileged),
        HostPhase::Exit(ExitCause::Mmio),
        HostPhase::Exit(ExitCause::Shadow),
        HostPhase::Exit(ExitCause::IrqReflect),
        HostPhase::Exit(ExitCause::IrqInject),
        HostPhase::Exit(ExitCause::Protection),
        HostPhase::Exit(ExitCause::Debug),
        HostPhase::Exit(ExitCause::HostRelay),
        HostPhase::Device(Dev::Nic),
        HostPhase::Device(Dev::Hdc),
        HostPhase::Device(Dev::Pit),
        HostPhase::Device(Dev::Uart),
        HostPhase::Device(Dev::Pic),
        HostPhase::Journal,
        HostPhase::DebugLink,
        HostPhase::Idle,
        HostPhase::Other,
    ];

    pub const COUNT: usize = Self::ALL.len();

    pub fn index(self) -> usize {
        match self {
            HostPhase::GuestExec => 0,
            HostPhase::Exit(c) => 1 + c.index(),
            HostPhase::Device(d) => 1 + ExitCause::COUNT + d.index(),
            HostPhase::Journal => 1 + ExitCause::COUNT + Dev::COUNT,
            HostPhase::DebugLink => 2 + ExitCause::COUNT + Dev::COUNT,
            HostPhase::Idle => 3 + ExitCause::COUNT + Dev::COUNT,
            HostPhase::Other => 4 + ExitCause::COUNT + Dev::COUNT,
        }
    }

    /// Stable label, used as the metrics/JSON phase key.
    pub fn label(self) -> String {
        match self {
            HostPhase::GuestExec => "guest-exec".to_string(),
            HostPhase::Exit(c) => format!("exit-{}", c.label()),
            HostPhase::Device(d) => format!("device-{}", d.label()),
            HostPhase::Journal => "journal".to_string(),
            HostPhase::DebugLink => "debug-link".to_string(),
            HostPhase::Idle => "idle".to_string(),
            HostPhase::Other => "other".to_string(),
        }
    }
}

/// Plain-data attribution snapshot — no `Instant`s, safe to ship over a
/// wire or into JSON. Indexed by [`HostPhase::index`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostAttribution {
    /// Wall-clock nanoseconds from profiler creation to the snapshot.
    pub wall_ns: u64,
    /// Number of marks taken so far.
    pub marks: u64,
    /// Nanoseconds attributed to each phase.
    pub phase_ns: [u64; HostPhase::COUNT],
}

impl HostAttribution {
    /// Total attributed nanoseconds (sum over phases).
    pub fn attributed_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Fraction of wall-clock covered by attribution, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.attributed_ns() as f64 / self.wall_ns as f64
        }
    }

    /// `(label, ns)` per phase in canonical order.
    pub fn phases(&self) -> impl Iterator<Item = (String, u64)> + '_ {
        HostPhase::ALL
            .iter()
            .map(move |&p| (p.label(), self.phase_ns[p.index()]))
    }
}

/// Reads the cheapest monotonic-enough raw clock the host offers. Units
/// are opaque "ticks" — only tick *differences* scaled by the calibrated
/// ratio ever leave this module.
#[inline]
fn raw_now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `rdtsc` is unprivileged and always available on x86-64.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Fallback tick unit: nanoseconds since an arbitrary process-wide
        // epoch, so the calibrated ratio degenerates to 1.0.
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Converts raw ticks to nanoseconds with a calibrated ratio. Truncating
/// (`floor`) so `ticks_a <= ticks_b` implies `to_ns(a) <= to_ns(b)`.
#[inline]
fn to_ns(ticks: u64, ratio: f64) -> u64 {
    (ticks as f64 * ratio) as u64
}

/// The accumulator. One per process-side machine; shared across snapshot
/// clones behind a plain `Arc` (see `Recorder`) so host totals stay
/// monotonic even when time-travel debugging restores old machine state.
/// All state is relaxed atomics: `mark` takes `&self`, never blocks, and
/// the per-mark cost is one raw clock read plus three atomic RMWs.
#[derive(Debug)]
pub struct HostProf {
    start: Instant,
    /// Raw-clock reading at creation.
    start_raw: u64,
    /// Raw-clock reading at the latest mark (the fence).
    last_raw: AtomicU64,
    marks: AtomicU64,
    /// Per-phase totals, in raw ticks.
    totals: [AtomicU64; HostPhase::COUNT],
    /// Nanoseconds per raw tick, frozen at the first conversion taken at
    /// least one millisecond after creation (earlier conversions compute
    /// a throwaway ratio — too little elapsed time to calibrate against).
    ns_per_tick: OnceLock<f64>,
}

impl Default for HostProf {
    fn default() -> Self {
        Self::new()
    }
}

impl HostProf {
    pub fn new() -> HostProf {
        let start_raw = raw_now();
        HostProf {
            start: Instant::now(),
            start_raw,
            last_raw: AtomicU64::new(start_raw),
            marks: AtomicU64::new(0),
            totals: std::array::from_fn(|_| AtomicU64::new(0)),
            ns_per_tick: OnceLock::new(),
        }
    }

    /// Charges the ticks since the previous mark to `phase` and advances
    /// the fence. One raw clock read per call; lock-free.
    pub fn mark(&self, phase: HostPhase) {
        let now = raw_now();
        let prev = self.last_raw.swap(now, Relaxed);
        self.totals[phase.index()].fetch_add(now.saturating_sub(prev), Relaxed);
        self.marks.fetch_add(1, Relaxed);
    }

    /// The calibrated tick→ns ratio. Measures elapsed `Instant` time
    /// against elapsed raw ticks; freezes the ratio once at least 1 ms
    /// has passed (relative calibration error is then well under 0.1 %).
    fn ns_ratio(&self) -> f64 {
        if let Some(&r) = self.ns_per_tick.get() {
            return r;
        }
        let elapsed_ns = self.start.elapsed().as_nanos() as u64;
        let elapsed_ticks = raw_now().saturating_sub(self.start_raw).max(1);
        let r = elapsed_ns as f64 / elapsed_ticks as f64;
        if elapsed_ns >= 1_000_000 {
            let _ = self.ns_per_tick.set(r);
            return *self.ns_per_tick.get().unwrap();
        }
        r
    }

    /// Wall-clock nanoseconds since the profiler was created. Derived
    /// from the raw clock with the same frozen ratio as the phase totals,
    /// so `attributed_ns() <= wall_ns()` holds exactly.
    pub fn wall_ns(&self) -> u64 {
        to_ns(raw_now().saturating_sub(self.start_raw), self.ns_ratio())
    }

    /// Total attributed nanoseconds across all phases.
    pub fn attributed_ns(&self) -> u64 {
        let ticks: u64 = self.totals.iter().map(|t| t.load(Relaxed)).sum();
        to_ns(ticks, self.ns_ratio())
    }

    /// Nanoseconds attributed to one phase.
    pub fn total_ns(&self, phase: HostPhase) -> u64 {
        to_ns(self.totals[phase.index()].load(Relaxed), self.ns_ratio())
    }

    pub fn marks(&self) -> u64 {
        self.marks.load(Relaxed)
    }

    /// Plain-data snapshot for reporting. Phase totals are read before
    /// the wall clock so attribution can never exceed it.
    pub fn snapshot(&self) -> HostAttribution {
        let ratio = self.ns_ratio();
        let phase_ns = std::array::from_fn(|i| to_ns(self.totals[i].load(Relaxed), ratio));
        HostAttribution {
            wall_ns: to_ns(raw_now().saturating_sub(self.start_raw), ratio),
            marks: self.marks.load(Relaxed),
            phase_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_index_is_a_bijection() {
        for (i, &p) in HostPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{p:?}");
        }
        let labels: Vec<String> = HostPhase::ALL.iter().map(|p| p.label()).collect();
        let mut deduped = labels.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), labels.len(), "labels must be unique");
    }

    #[test]
    fn marks_partition_time_exactly() {
        let p = HostProf::new();
        p.mark(HostPhase::GuestExec);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.mark(HostPhase::Exit(ExitCause::Mmio));
        p.mark(HostPhase::Device(Dev::Nic));
        let snap = p.snapshot();
        assert_eq!(snap.marks, 3);
        // The partition property: attributed == sum of per-phase totals,
        // and nothing exceeds wall-clock.
        assert_eq!(snap.attributed_ns(), snap.phase_ns.iter().sum::<u64>());
        assert!(snap.attributed_ns() <= p.wall_ns());
        assert!(snap.phase_ns[HostPhase::Exit(ExitCause::Mmio).index()] >= 1_000_000);
        assert_eq!(
            p.total_ns(HostPhase::Exit(ExitCause::Mmio)),
            snap.phase_ns[2]
        );
        assert!(snap.coverage() > 0.0 && snap.coverage() <= 1.0);
    }

    #[test]
    fn snapshot_phases_follow_canonical_order() {
        let p = HostProf::new();
        p.mark(HostPhase::Journal);
        let snap = p.snapshot();
        let phases: Vec<(String, u64)> = snap.phases().collect();
        assert_eq!(phases.len(), HostPhase::COUNT);
        assert_eq!(phases[0].0, "guest-exec");
        assert_eq!(phases[14].0, "journal");
        assert_eq!(phases[14].1, snap.phase_ns[HostPhase::Journal.index()]);
        assert_eq!(phases[17].0, "other");
    }
}
