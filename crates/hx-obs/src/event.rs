//! The trace-event taxonomy.
//!
//! Every event is timestamped in **simulated cycles** (the machine's `now`
//! counter), never host wall-clock time, so a trace is a pure function of
//! the simulated run and can be compared byte-for-byte across runs.

/// Why the guest exited to the monitor. This refines the flat counters the
/// monitors used to keep: each cause gets its own cycle histogram so
/// ablations can report p50/p99 *cost*, not just counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExitCause {
    /// Privileged-instruction emulation (CSR access, `tret`, `wfi`, ...).
    Privileged,
    /// MMIO access emulated against a virtual device model.
    Mmio,
    /// Shadow page-table service (fill or flush).
    Shadow,
    /// A real device interrupt reflected into the virtual PIC.
    IrqReflect,
    /// A virtual interrupt or exception injected into the guest.
    IrqInject,
    /// Guest attempted an access its privilege does not allow.
    Protection,
    /// Debug-stub service (breakpoint, single-step, UART stub traffic).
    Debug,
    /// Hosted monitor only: a device operation relayed through the host OS.
    HostRelay,
}

impl ExitCause {
    pub const ALL: [ExitCause; 8] = [
        ExitCause::Privileged,
        ExitCause::Mmio,
        ExitCause::Shadow,
        ExitCause::IrqReflect,
        ExitCause::IrqInject,
        ExitCause::Protection,
        ExitCause::Debug,
        ExitCause::HostRelay,
    ];

    pub const COUNT: usize = Self::ALL.len();

    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).unwrap()
    }

    pub fn label(self) -> &'static str {
        match self {
            ExitCause::Privileged => "privileged",
            ExitCause::Mmio => "mmio",
            ExitCause::Shadow => "shadow",
            ExitCause::IrqReflect => "irq-reflect",
            ExitCause::IrqInject => "irq-inject",
            ExitCause::Protection => "protection",
            ExitCause::Debug => "debug",
            ExitCause::HostRelay => "host-relay",
        }
    }
}

/// Which simulated device an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dev {
    Nic,
    Hdc,
    Pit,
    Uart,
    Pic,
}

impl Dev {
    pub const ALL: [Dev; 5] = [Dev::Nic, Dev::Hdc, Dev::Pit, Dev::Uart, Dev::Pic];

    pub const COUNT: usize = Self::ALL.len();

    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&d| d == self).unwrap()
    }

    pub fn label(self) -> &'static str {
        match self {
            Dev::Nic => "nic",
            Dev::Hdc => "hdc",
            Dev::Pit => "pit",
            Dev::Uart => "uart",
            Dev::Pic => "pic",
        }
    }
}

/// One trace event. Payloads are small and fixed-size; anything bulky
/// belongs in a histogram or the span track instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Guest → monitor exit; `cycles` is the monitor time spent servicing it.
    VmExit { cause: ExitCause, cycles: u64 },
    /// A shadow page-table miss at this guest virtual address.
    ShadowFault { vaddr: u32 },
    /// A device raised (asserted) an interrupt line.
    DeviceIrq { dev: Dev, irq: u32 },
    /// A device moved payload bytes by DMA (NIC ring, disk transfer).
    DeviceDma { dev: Dev, bytes: u32 },
    /// The guest rang a device doorbell register (MMIO store that kicks
    /// the device), e.g. the NIC TX/RX tail pointers.
    Doorbell { dev: Dev, reg: u32 },
    /// The debug stub executed one wire command (`code` is the command
    /// byte, e.g. b'g', b'm', b'q').
    DebugCommand { code: u8 },
    /// A guest-stats snapshot was sampled (bytes/frames are cumulative).
    GuestSample { bytes: u64, frames: u64 },
    /// A deterministic fault was injected (`code` is the fault-class code
    /// from `hx-fault`, `arg` a class-specific detail such as the target
    /// address or IRQ mask).
    FaultInjected { code: u8, arg: u32 },
    /// A logpoint fired: the instruction at `addr` retired and the
    /// logpoint's condition evaluated to the nonzero `value`. Emitted from
    /// the instruction-boundary path without stopping the guest.
    Logpoint { addr: u32, value: u64 },
    /// The guest entered the ISR for `irq` (architectural INTA on raw
    /// hardware, virtual-PIC INTA under a monitor). Recorded only while
    /// causal tracing is enabled.
    IrqEntry { irq: u32 },
    /// The guest wrote the PIC EOI register, retiring the most recently
    /// entered ISR. Recorded only while causal tracing is enabled.
    IrqEoi,
    /// The guest wrote a `TRACE`-page tracepoint register.
    Tracepoint { op: crate::causal::TraceOp, id: u32 },
}

impl EventKind {
    /// Short stable name used by the Chrome exporter.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::VmExit { .. } => "vm-exit",
            EventKind::ShadowFault { .. } => "shadow-fault",
            EventKind::DeviceIrq { .. } => "irq",
            EventKind::DeviceDma { .. } => "dma",
            EventKind::Doorbell { .. } => "doorbell",
            EventKind::DebugCommand { .. } => "debug-cmd",
            EventKind::GuestSample { .. } => "guest-sample",
            EventKind::FaultInjected { .. } => "fault-inject",
            EventKind::Logpoint { .. } => "logpoint",
            EventKind::IrqEntry { .. } => "inta",
            EventKind::IrqEoi => "eoi",
            EventKind::Tracepoint { .. } => "tracepoint",
        }
    }
}

/// A timestamped event: `at` is the simulated cycle count at record time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub at: u64,
    pub kind: EventKind,
}
