//! Log2-bucketed cycle histograms.
//!
//! Bucket `i` holds values whose bit length is `i` — i.e. bucket 0 is the
//! value 0, bucket 1 is {1}, bucket 2 is {2,3}, bucket 3 is {4..7}, and so
//! on up to bucket 64. Percentiles are answered with the *upper bound* of
//! the bucket the rank falls in, which over-estimates by at most 2× — the
//! right bias for cost reporting (never under-claim a tail).
//!
//! Recording is O(1) with no allocation, so histograms stay enabled even
//! when event tracing is off: they replace the monitors' old flat exit
//! counters.

use crate::event::ExitCause;

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleHist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for CycleHist {
    fn default() -> Self {
        CycleHist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl CycleHist {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (what percentiles report).
    fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// `p` in [0,100]. Returns the upper bound of the bucket containing the
    /// given rank; exact `min`/`max` are reported at the extremes.
    pub fn percentile(&self, p: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p == 0 {
            return self.min();
        }
        if p >= 100 {
            return self.max;
        }
        // rank: 1-based index of the sample the percentile refers to.
        self.value_at_rank((self.count * p as u64).div_ceil(100).max(1))
    }

    /// Per-mille percentile, for sub-percent tails: `p` in [0,1000].
    pub fn permille(&self, p: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p == 0 {
            return self.min();
        }
        if p >= 1000 {
            return self.max;
        }
        self.value_at_rank((self.count * p as u64).div_ceil(1000).max(1))
    }

    fn value_at_rank(&self, rank: u64) -> u64 {
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Don't report beyond the observed maximum.
                return Self::bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    pub fn p999(&self) -> u64 {
        self.permille(999)
    }

    /// Raw log2 bucket counts (bucket `i` holds values of bit length `i`);
    /// the substrate for external exposition formats.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `i`, for exposition labels.
    pub fn bucket_bound(i: usize) -> u64 {
        Self::bucket_hi(i)
    }

    pub fn merge(&mut self, other: &CycleHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One histogram per exit cause — the replacement for the monitors' flat
/// `exits_*` counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExitHists {
    hists: [CycleHist; ExitCause::COUNT],
}

impl ExitHists {
    pub fn record(&mut self, cause: ExitCause, cycles: u64) {
        self.hists[cause.index()].record(cycles);
    }

    pub fn get(&self, cause: ExitCause) -> &CycleHist {
        &self.hists[cause.index()]
    }

    pub fn iter(&self) -> impl Iterator<Item = (ExitCause, &CycleHist)> {
        ExitCause::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Total number of recorded exits across all causes.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(|h| h.count()).sum()
    }

    /// Total monitor cycles across all causes.
    pub fn total_cycles(&self) -> u64 {
        self.hists.iter().map(|h| h.sum()).sum()
    }

    /// Snapshot of per-cause counts, for delta-based reporting.
    pub fn counts(&self) -> [u64; ExitCause::COUNT] {
        let mut out = [0; ExitCause::COUNT];
        for (i, h) in self.hists.iter().enumerate() {
            out[i] = h.count();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_percentiles() {
        let mut h = CycleHist::new();
        for v in [0u64, 1, 2, 3, 4, 700, 700, 700, 700, 700] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 700);
        // Rank 5 (p50) falls in the bucket of 4 (bucket 3, hi=7).
        assert_eq!(h.p50(), 7);
        // p99 → rank 10 → bucket of 700 (512..1023), capped at observed max.
        assert_eq!(h.p99(), 700);
        assert_eq!(h.percentile(0), 0);
        assert_eq!(h.percentile(100), 700);
    }

    #[test]
    fn empty_hist_is_all_zero() {
        let h = CycleHist::new();
        assert_eq!(
            (h.count(), h.min(), h.max(), h.mean(), h.p50(), h.p99()),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn p999_resolves_sub_percent_tails() {
        // 10_000 samples, 11 outliers: p99's rank (9900) lands in the small
        // bucket, p99.9's rank (9990) lands in the outlier bucket.
        let mut h = CycleHist::new();
        for _ in 0..9_989 {
            h.record(10);
        }
        for _ in 0..11 {
            h.record(100_000);
        }
        assert_eq!(h.p99(), 15); // bucket hi of 10 is 15
        assert_eq!(h.p999(), 100_000); // capped at observed max
        assert_eq!(h.permille(1000), 100_000);
        assert_eq!(h.permille(0), 10);
    }

    #[test]
    fn single_value() {
        let mut h = CycleHist::new();
        h.record(640);
        assert_eq!(h.p50(), 640); // capped at max
        assert_eq!(h.p99(), 640);
        assert_eq!(h.mean(), 640);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CycleHist::new();
        let mut b = CycleHist::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Splitting a sample stream at any point and merging the two
            // halves is indistinguishable from recording the whole stream —
            // the invariant that lets `CycleHist` aggregates be sharded.
            #[test]
            fn merge_of_splits_equals_whole(
                values in proptest::collection::vec(any::<u64>(), 0..64),
                split in 0usize..64,
            ) {
                let split = split.min(values.len());
                let mut whole = CycleHist::new();
                for &v in &values {
                    whole.record(v);
                }
                let mut a = CycleHist::new();
                let mut b = CycleHist::new();
                for &v in &values[..split] {
                    a.record(v);
                }
                for &v in &values[split..] {
                    b.record(v);
                }
                a.merge(&b);
                prop_assert_eq!(a, whole);
            }
        }
    }

    #[test]
    fn exit_hists_by_cause() {
        let mut e = ExitHists::default();
        e.record(ExitCause::Mmio, 990);
        e.record(ExitCause::Mmio, 990);
        e.record(ExitCause::Privileged, 790);
        assert_eq!(e.get(ExitCause::Mmio).count(), 2);
        assert_eq!(e.get(ExitCause::Privileged).count(), 1);
        assert_eq!(e.get(ExitCause::Shadow).count(), 0);
        assert_eq!(e.total_count(), 3);
        assert_eq!(e.total_cycles(), 990 + 990 + 790);
    }
}
