//! Process-wide metrics registry with Prometheus-style text exposition.
//!
//! Three instrument kinds, all keyed by a full metric name that may embed
//! Prometheus labels (e.g. `lwvmm_exits_total{cause="mmio"}`):
//!
//! - **counters** — monotonic `u64` totals (`add`, or `set` for values that
//!   are already cumulative in the simulation and merely re-published);
//! - **gauges** — last-write-wins `f64` values;
//! - **histograms** — host-nanosecond (or any `u64`) span timers reusing
//!   the log2-bucket [`CycleHist`].
//!
//! The registry is internally locked, so a shared reference is enough to
//! record from anywhere; [`MetricsRegistry::global`] hands out the one
//! process-wide instance, while tests and benches build local ones.
//! [`MetricsSnapshot`] is the plain-data view: mergeable (counters add,
//! gauges last-wins, histograms bucket-merge) and renderable as sorted,
//! deterministic-ordered Prometheus text via
//! [`MetricsSnapshot::prometheus`].
//!
//! Like the host profiler, the registry only ever *receives* values — it is
//! never read back into simulation state, so publishing metrics cannot
//! perturb a run.

use crate::hist::CycleHist;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, CycleHist>,
}

/// The registry. All methods take `&self`; an internal mutex serializes
/// updates (metrics recording is far off any per-instruction path).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Adds to a monotonic counter (creating it at zero).
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut g = self.inner.lock().unwrap();
        *g.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets a counter to a cumulative value computed elsewhere. Monotonic
    /// by construction at the source (simulation totals never decrease);
    /// the registry clamps to "never goes backwards" so re-publishing is
    /// idempotent.
    pub fn counter_set(&self, name: &str, v: u64) {
        let mut g = self.inner.lock().unwrap();
        let slot = g.counters.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Sets a gauge (last write wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().unwrap();
        g.gauges.insert(name.to_string(), v);
    }

    /// Records one observation into a histogram (creating it empty).
    pub fn observe(&self, name: &str, v: u64) {
        let mut g = self.inner.lock().unwrap();
        g.hists.entry(name.to_string()).or_default().record(v);
    }

    /// Replaces a histogram wholesale with an externally accumulated one
    /// (e.g. a per-cause exit histogram re-published at report time).
    pub fn hist_set(&self, name: &str, h: &CycleHist) {
        let mut g = self.inner.lock().unwrap();
        g.hists.insert(name.to_string(), h.clone());
    }

    /// Plain-data copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: g.counters.clone(),
            gauges: g.gauges.clone(),
            hists: g.hists.clone(),
        }
    }
}

/// A point-in-time copy of a registry's contents. Maps are ordered, so
/// iteration and exposition are deterministic given the same values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub hists: BTreeMap<String, CycleHist>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: counters add, gauges take `other`'s
    /// value, histograms bucket-merge. Merging split snapshots equals
    /// snapshotting the whole (the proptest below pins this down).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Counter value, defaulting to zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Prometheus text-exposition rendering: one `# TYPE` line per metric
    /// family, families and series in sorted order, histograms as
    /// cumulative `_bucket{le=...}` / `_sum` / `_count` series. Output
    /// order is a pure function of the metric names, so reruns differ only
    /// in values.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let family = family_of(name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last_family = family.to_string();
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, name, "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        let mut last_family = String::new();
        for (name, v) in &self.gauges {
            let family = family_of(name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} gauge\n"));
                last_family = family.to_string();
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        let mut last_family = String::new();
        for (name, h) in &self.hists {
            let family = family_of(name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} histogram\n"));
                last_family = family.to_string();
            }
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let le = CycleHist::bucket_bound(i);
                if le == u64::MAX {
                    continue; // folded into +Inf below
                }
                out.push_str(&format!(
                    "{} {cumulative}\n",
                    series(name, "_bucket", &format!("le=\"{le}\""))
                ));
            }
            out.push_str(&format!(
                "{} {}\n",
                series(name, "_bucket", "le=\"+Inf\""),
                h.count()
            ));
            out.push_str(&format!("{} {}\n", series(name, "_sum", ""), h.sum()));
            out.push_str(&format!("{} {}\n", series(name, "_count", ""), h.count()));
        }
        out
    }
}

/// Metric family (name with any `{labels}` stripped).
fn family_of(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Appends a suffix to the family part of `name`, keeping existing labels
/// and optionally adding one more: `f{a="1"}` + `_bucket` + `le="2"` →
/// `f_bucket{a="1",le="2"}`.
fn series(name: &str, suffix: &str, extra_label: &str) -> String {
    match name.split_once('{') {
        Some((family, rest)) => {
            let labels = rest.trim_end_matches('}');
            if extra_label.is_empty() {
                format!("{family}{suffix}{{{labels}}}")
            } else {
                format!("{family}{suffix}{{{labels},{extra_label}}}")
            }
        }
        None => {
            if extra_label.is_empty() {
                format!("{name}{suffix}")
            } else {
                format!("{name}{suffix}{{{extra_label}}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c_total", 2);
        reg.counter_add("c_total", 3);
        reg.counter_set("s_total", 10);
        reg.counter_set("s_total", 7); // never goes backwards
        reg.gauge_set("g", 1.5);
        reg.gauge_set("g", 2.5);
        reg.observe("h_ns", 100);
        reg.observe("h_ns", 100_000);
        let s = reg.snapshot();
        assert_eq!(s.counter("c_total"), 5);
        assert_eq!(s.counter("s_total"), 10);
        assert_eq!(s.gauges["g"], 2.5);
        assert_eq!(s.hists["h_ns"].count(), 2);
        assert_eq!(s.hists["h_ns"].sum(), 100_100);
    }

    #[test]
    fn exposition_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter_add("lwvmm_exits_total{cause=\"mmio\"}", 4);
        reg.counter_add("lwvmm_exits_total{cause=\"debug\"}", 1);
        reg.gauge_set("lwvmm_cpu_load", 0.5);
        reg.observe("lwvmm_exit_ns{cause=\"mmio\"}", 900);
        let text = reg.snapshot().prometheus();
        let lines: Vec<&str> = text.lines().collect();
        // One TYPE line for the counter family, series sorted after it.
        assert_eq!(lines[0], "# TYPE lwvmm_exits_total counter");
        assert_eq!(lines[1], "lwvmm_exits_total{cause=\"debug\"} 1");
        assert_eq!(lines[2], "lwvmm_exits_total{cause=\"mmio\"} 4");
        assert!(text.contains("# TYPE lwvmm_cpu_load gauge\nlwvmm_cpu_load 0.5\n"));
        assert!(text.contains("# TYPE lwvmm_exit_ns histogram\n"));
        // 900 has bit length 10 → bucket hi 1023; cumulative count 1.
        assert!(text.contains("lwvmm_exit_ns_bucket{cause=\"mmio\",le=\"1023\"} 1\n"));
        assert!(text.contains("lwvmm_exit_ns_bucket{cause=\"mmio\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("lwvmm_exit_ns_sum{cause=\"mmio\"} 900\n"));
        assert!(text.contains("lwvmm_exit_ns_count{cause=\"mmio\"} 1\n"));
    }

    #[test]
    fn global_registry_is_shared() {
        MetricsRegistry::global().counter_add("global_smoke_total", 1);
        assert!(
            MetricsRegistry::global()
                .snapshot()
                .counter("global_smoke_total")
                >= 1
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Add(u8, u64),
            Observe(u8, u64),
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (any::<u8>(), 0u64..1_000_000).prop_map(|(k, v)| Op::Add(k % 4, v)),
                (any::<u8>(), any::<u64>()).prop_map(|(k, v)| Op::Observe(k % 4, v)),
            ]
        }

        fn apply(reg: &MetricsRegistry, ops: &[Op]) {
            for op in ops {
                match *op {
                    Op::Add(k, v) => reg.counter_add(&format!("c{k}_total"), v),
                    Op::Observe(k, v) => reg.observe(&format!("h{k}_ns"), v),
                }
            }
        }

        proptest! {
            // Merging the snapshots of a split op stream equals the
            // snapshot of the whole stream — counters stay monotonic sums,
            // histograms merge bucket-exactly (inheriting the CycleHist
            // merge-of-splits property).
            #[test]
            fn snapshot_merge_of_splits_equals_whole(
                ops in proptest::collection::vec(arb_op(), 0..48),
                split in 0usize..48,
            ) {
                let split = split.min(ops.len());
                let whole = MetricsRegistry::new();
                apply(&whole, &ops);

                let a = MetricsRegistry::new();
                let b = MetricsRegistry::new();
                apply(&a, &ops[..split]);
                apply(&b, &ops[split..]);
                let mut merged = a.snapshot();
                merged.merge(&b.snapshot());

                prop_assert_eq!(merged.clone(), whole.snapshot());
                // Counter monotonicity: every counter in the first half is
                // <= its merged total.
                for (k, v) in &a.snapshot().counters {
                    prop_assert!(merged.counter(k) >= *v);
                }
            }
        }
    }
}
