//! Replay-side view of a [`crate::journal::Journal`]'s input stream.
//!
//! A [`ReplayCursor`] walks the recorded nondeterministic inputs in cycle
//! order and hands them to a driver as simulated time catches up to each
//! record. The cursor is platform-agnostic; the actual injection (UART
//! bytes, RX frames) is done by the replay driver in the monitor crates,
//! which owns a live platform.
//!
//! Timing contract: an input recorded at cycle `T` was applied when the
//! original run's clock read exactly `T`, which is necessarily a step
//! boundary of that run. Because the simulation is deterministic, the
//! replayed run produces the same boundaries, so popping each input at the
//! first boundary where `now >= T` re-applies it at the same point in the
//! instruction stream.

use crate::journal::{InputRecord, Journal};
use std::collections::VecDeque;

/// Cursor over a journal's inputs plus the recorded end cycle.
#[derive(Clone, Debug)]
pub struct ReplayCursor {
    inputs: VecDeque<InputRecord>,
    end: u64,
}

impl ReplayCursor {
    /// A cursor over `journal`'s full input stream.
    pub fn new(journal: &Journal) -> ReplayCursor {
        ReplayCursor {
            inputs: journal.inputs.iter().cloned().collect(),
            end: journal.end,
        }
    }

    /// Drops inputs already applied at or before `now` — used when replay
    /// starts from a checkpoint instead of cycle 0.
    pub fn skip_through(&mut self, now: u64) {
        while self.inputs.front().is_some_and(|r| r.at <= now) {
            self.inputs.pop_front();
        }
    }

    /// Drops the first `n` inputs. When resuming from a snapshot whose own
    /// journal already incorporates `n` inputs, count-based skipping is
    /// exact even if later records share the snapshot's cycle (an input
    /// journaled at cycle `C` may arrive either side of a checkpoint taken
    /// at `C`; the snapshot's input count disambiguates, its cycle cannot).
    pub fn skip_first(&mut self, n: usize) {
        self.inputs.drain(..n.min(self.inputs.len()));
    }

    /// Pops the next input if its cycle has been reached.
    pub fn pop_due(&mut self, now: u64) -> Option<InputRecord> {
        if self.inputs.front().is_some_and(|r| r.at <= now) {
            self.inputs.pop_front()
        } else {
            None
        }
    }

    /// Cycle of the next pending input, if any.
    pub fn next_at(&self) -> Option<u64> {
        self.inputs.front().map(|r| r.at)
    }

    /// The recorded end-of-run cycle.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Inputs not yet replayed.
    pub fn remaining(&self) -> usize {
        self.inputs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalInput;

    #[test]
    fn pops_in_cycle_order() {
        let mut j = Journal::new("lvmm");
        j.input(100, JournalInput::UartRx(vec![1]));
        j.input(100, JournalInput::UartRx(vec![2]));
        j.input(300, JournalInput::NicRx(vec![3]));
        j.seal(1000);
        let mut c = ReplayCursor::new(&j);
        assert_eq!(c.end(), 1000);
        assert_eq!(c.next_at(), Some(100));
        assert!(c.pop_due(99).is_none());
        assert_eq!(c.pop_due(100).unwrap().input, JournalInput::UartRx(vec![1]));
        assert_eq!(c.pop_due(100).unwrap().input, JournalInput::UartRx(vec![2]));
        assert!(c.pop_due(299).is_none());
        assert_eq!(c.pop_due(400).unwrap().at, 300);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn skip_through_resumes_from_checkpoints() {
        let mut j = Journal::new("lvmm");
        j.input(100, JournalInput::UartRx(vec![1]));
        j.input(300, JournalInput::UartRx(vec![2]));
        j.seal(1000);
        let mut c = ReplayCursor::new(&j);
        c.skip_through(100);
        assert_eq!(c.remaining(), 1);
        assert_eq!(c.next_at(), Some(300));
    }
}
