//! The flight-recorder journal: a serializable record of one run.
//!
//! A journal captures two streams, both timestamped in simulated cycles:
//!
//! - **Inputs** — every nondeterministic byte that entered the run from
//!   outside the simulation: host→target UART traffic (debug-stub wire
//!   commands) and injected NIC receive frames. The simulation itself is
//!   deterministic, so re-applying these inputs at their recorded cycles
//!   reproduces the run exactly (see `crate::replay::ReplayCursor`).
//! - **Events** — observed device activity: IRQ assertion cycles, DMA
//!   completions with an FNV-1a digest of the payload moved, doorbell
//!   writes and debug-stub commands. Events are not needed to replay; they
//!   exist so two runs (or the same journal replayed on two platforms) can
//!   be *audited* against each other and the first divergence located.
//!
//! The wire format is a line-based text document (`save`/`parse` round-trip
//! exactly): a header with the platform name, a free-form note and the end
//! cycle, then one line per record in recording order. All numbers are
//! decimal except payload bytes and digests, which are lowercase hex.

use crate::event::Dev;

/// FNV-1a initial state.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a multiplier.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a state.
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// One-shot FNV-1a digest of a byte slice.
pub fn digest(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// A nondeterministic input entering the simulation from the host side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalInput {
    /// Host → target bytes on the debug UART.
    UartRx(Vec<u8>),
    /// A network frame injected into the guest's receive path.
    NicRx(Vec<u8>),
}

/// A timestamped input record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputRecord {
    /// Simulated cycle at which the input was applied.
    pub at: u64,
    /// The input payload.
    pub input: JournalInput,
}

/// An observed (deterministic) event, journaled for divergence auditing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalEvent {
    /// A device asserted an interrupt line.
    Irq { dev: Dev, irq: u32 },
    /// A device completed a DMA transfer; `digest` is the FNV-1a of the
    /// payload bytes moved (0 when the recording site did not digest).
    Dma { dev: Dev, bytes: u32, digest: u64 },
    /// The guest rang a device doorbell register.
    Doorbell { dev: Dev, reg: u32 },
    /// The debug stub executed one wire command.
    DebugCommand { code: u8 },
    /// A deterministic fault was injected (`code` is the fault-class code
    /// from `hx-fault`, `arg` a class-specific detail). Faults are
    /// deterministic machine state, not inputs — they are journaled so a
    /// replay can be audited against the live run fault-for-fault.
    Fault { code: u8, arg: u32 },
    /// A logpoint fired at guest address `addr` with condition value
    /// `value`. Logpoints are pure observation (they never stop the
    /// guest), so journaling them lets a replay be audited hit-for-hit
    /// against the live run — byte-identity of this stream is the
    /// "logpoints do not perturb" invariant in executable form.
    Log { addr: u32, value: u64 },
    /// The guest entered the ISR for line `irq`. Journaled only while
    /// causal tracing is enabled, so journals recorded without it stay
    /// byte-identical to the pre-causal format.
    Inta { irq: u32 },
    /// The guest retired the most recent ISR with an EOI write. Journaled
    /// only while causal tracing is enabled.
    Eoi,
    /// The guest emitted a tracepoint on the `TRACE` page. Guest-driven
    /// like a doorbell, so it is journaled whenever journaling is on —
    /// pre-causal guests emit none, keeping old journals byte-identical.
    Trace { op: crate::causal::TraceOp, id: u32 },
}

impl JournalEvent {
    /// The device this event belongs to (`None` for stub commands and
    /// injected faults).
    pub fn dev(&self) -> Option<Dev> {
        match *self {
            JournalEvent::Irq { dev, .. }
            | JournalEvent::Dma { dev, .. }
            | JournalEvent::Doorbell { dev, .. } => Some(dev),
            JournalEvent::DebugCommand { .. }
            | JournalEvent::Fault { .. }
            | JournalEvent::Log { .. }
            | JournalEvent::Inta { .. }
            | JournalEvent::Eoi
            | JournalEvent::Trace { .. } => None,
        }
    }
}

/// A timestamped observed-event record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Simulated cycle of the observation.
    pub at: u64,
    /// The event.
    pub ev: JournalEvent,
    /// Core that was executing when the event was observed. Serialized as a
    /// trailing `c<N>` token only when nonzero, so single-core journal text
    /// is byte-identical to the pre-SMP format.
    pub core: u8,
}

/// A complete flight-recorder journal for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Journal {
    /// Name of the platform that recorded the run ("lvmm", "real-hw", …).
    pub platform: String,
    /// Core count of the recording machine. Serialized as a `cores` header
    /// key only when above 1 (0 and 1 both mean "classic single-core").
    pub cores: u32,
    /// Free-form workload note (e.g. "streaming:100"), for sanity checks.
    pub note: String,
    /// Cycle the recording was sealed at (0 until [`Journal::seal`]).
    pub end: u64,
    /// Nondeterministic inputs, in application order.
    pub inputs: Vec<InputRecord>,
    /// Observed events, in recording order.
    pub events: Vec<EventRecord>,
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalParseError {
    pub line: usize,
    pub msg: String,
}

impl core::fmt::Display for JournalParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for JournalParseError {}

fn dev_label(dev: Dev) -> &'static str {
    dev.label()
}

fn dev_parse(s: &str) -> Option<Dev> {
    [Dev::Nic, Dev::Hdc, Dev::Pit, Dev::Uart, Dev::Pic]
        .into_iter()
        .find(|d| d.label() == s)
}

fn hex_bytes(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex_bytes(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok())
        .collect()
}

impl Journal {
    /// An empty journal for a named platform.
    pub fn new(platform: &str) -> Journal {
        Journal {
            platform: platform.to_string(),
            ..Journal::default()
        }
    }

    /// Appends an input record.
    pub fn input(&mut self, at: u64, input: JournalInput) {
        self.inputs.push(InputRecord { at, input });
    }

    /// Appends an observed-event record attributed to core 0.
    pub fn event(&mut self, at: u64, ev: JournalEvent) {
        self.event_on(at, ev, 0);
    }

    /// Appends an observed-event record attributed to `core`.
    pub fn event_on(&mut self, at: u64, ev: JournalEvent, core: u8) {
        self.events.push(EventRecord { at, ev, core });
    }

    /// Marks the cycle the recording stops at; replay runs to this cycle.
    pub fn seal(&mut self, at: u64) {
        self.end = at;
    }

    /// Total input payload bytes journaled so far — the cheap size measure
    /// the heartbeat and metrics exports report without serializing.
    pub fn payload_bytes(&self) -> u64 {
        self.inputs
            .iter()
            .map(|r| match &r.input {
                JournalInput::UartRx(b) | JournalInput::NicRx(b) => b.len() as u64,
            })
            .sum()
    }

    /// Discards every record after `cycle` (inclusive boundary is kept)
    /// and moves the seal back. Used when time-travel rewrites the future.
    pub fn truncate_after(&mut self, cycle: u64) {
        self.inputs.retain(|r| r.at <= cycle);
        self.events.retain(|r| r.at <= cycle);
        self.end = self.end.min(cycle);
    }

    /// Serializes the journal into its line-based text form.
    pub fn save(&self) -> String {
        let mut out = String::new();
        out.push_str("# lwvmm journal v1\n");
        out.push_str(&format!("platform {}\n", self.platform));
        if self.cores > 1 {
            out.push_str(&format!("cores {}\n", self.cores));
        }
        if !self.note.is_empty() {
            out.push_str(&format!("note {}\n", self.note));
        }
        out.push_str(&format!("end {}\n", self.end));
        // Merge the two streams into one chronological document so a human
        // reads the run top to bottom; records at equal cycles keep their
        // stream-local order (inputs before events, matching application).
        let (mut i, mut e) = (0, 0);
        while i < self.inputs.len() || e < self.events.len() {
            let take_input = match (self.inputs.get(i), self.events.get(e)) {
                (Some(a), Some(b)) => a.at <= b.at,
                (Some(_), None) => true,
                _ => false,
            };
            if take_input {
                let r = &self.inputs[i];
                match &r.input {
                    JournalInput::UartRx(b) => {
                        out.push_str(&format!("I {} uart {}\n", r.at, hex_bytes(b)));
                    }
                    JournalInput::NicRx(b) => {
                        out.push_str(&format!("I {} rx {}\n", r.at, hex_bytes(b)));
                    }
                }
                i += 1;
            } else {
                let r = &self.events[e];
                match r.ev {
                    JournalEvent::Irq { dev, irq } => {
                        out.push_str(&format!("E {} irq {} {}", r.at, dev_label(dev), irq));
                    }
                    JournalEvent::Dma { dev, bytes, digest } => {
                        out.push_str(&format!(
                            "E {} dma {} {} {digest:016x}",
                            r.at,
                            dev_label(dev),
                            bytes
                        ));
                    }
                    JournalEvent::Doorbell { dev, reg } => {
                        out.push_str(&format!("E {} bell {} {}", r.at, dev_label(dev), reg));
                    }
                    JournalEvent::DebugCommand { code } => {
                        out.push_str(&format!("E {} cmd {}", r.at, code));
                    }
                    JournalEvent::Fault { code, arg } => {
                        out.push_str(&format!("E {} fault {} {}", r.at, code, arg));
                    }
                    JournalEvent::Log { addr, value } => {
                        out.push_str(&format!("E {} log {} {}", r.at, addr, value));
                    }
                    JournalEvent::Inta { irq } => {
                        out.push_str(&format!("E {} inta {}", r.at, irq));
                    }
                    JournalEvent::Eoi => {
                        out.push_str(&format!("E {} eoi", r.at));
                    }
                    JournalEvent::Trace { op, id } => {
                        out.push_str(&format!("E {} trace {} {}", r.at, op.code(), id));
                    }
                }
                if r.core != 0 {
                    out.push_str(&format!(" c{}", r.core));
                }
                out.push('\n');
                e += 1;
            }
        }
        out
    }

    /// Parses the text form back into a journal.
    ///
    /// # Errors
    ///
    /// [`JournalParseError`] with the offending line on any malformed
    /// record; unknown header keys are ignored for forward compatibility.
    pub fn parse(text: &str) -> Result<Journal, JournalParseError> {
        let mut j = Journal::default();
        let err = |line: usize, msg: &str| JournalParseError {
            line,
            msg: msg.to_string(),
        };
        for (n, raw) in text.lines().enumerate() {
            let line = n + 1;
            let l = raw.trim();
            if l.is_empty() || l.starts_with('#') {
                continue;
            }
            let mut w = l.split_whitespace();
            let tag = w.next().unwrap_or_default();
            match tag {
                "platform" => j.platform = w.next().unwrap_or_default().to_string(),
                "cores" => {
                    j.cores = w
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(line, "bad core count"))?;
                }
                "note" => j.note = l["note".len()..].trim().to_string(),
                "end" => {
                    j.end = w
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(line, "bad end cycle"))?;
                }
                "I" => {
                    let at: u64 = w
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(line, "bad input cycle"))?;
                    let kind = w.next().ok_or_else(|| err(line, "missing input kind"))?;
                    let payload = unhex_bytes(w.next().unwrap_or_default())
                        .ok_or_else(|| err(line, "bad input payload hex"))?;
                    let input = match kind {
                        "uart" => JournalInput::UartRx(payload),
                        "rx" => JournalInput::NicRx(payload),
                        _ => return Err(err(line, "unknown input kind")),
                    };
                    j.inputs.push(InputRecord { at, input });
                }
                "E" => {
                    let at: u64 = w
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(line, "bad event cycle"))?;
                    let kind = w.next().ok_or_else(|| err(line, "missing event kind"))?;
                    let ev = match kind {
                        "irq" => {
                            let dev = w
                                .next()
                                .and_then(dev_parse)
                                .ok_or_else(|| err(line, "bad device"))?;
                            let irq = w
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err(line, "bad irq"))?;
                            JournalEvent::Irq { dev, irq }
                        }
                        "dma" => {
                            let dev = w
                                .next()
                                .and_then(dev_parse)
                                .ok_or_else(|| err(line, "bad device"))?;
                            let bytes = w
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err(line, "bad byte count"))?;
                            let digest = w
                                .next()
                                .and_then(|v| u64::from_str_radix(v, 16).ok())
                                .ok_or_else(|| err(line, "bad digest"))?;
                            JournalEvent::Dma { dev, bytes, digest }
                        }
                        "bell" => {
                            let dev = w
                                .next()
                                .and_then(dev_parse)
                                .ok_or_else(|| err(line, "bad device"))?;
                            let reg = w
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err(line, "bad register"))?;
                            JournalEvent::Doorbell { dev, reg }
                        }
                        "cmd" => {
                            let code = w
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err(line, "bad command code"))?;
                            JournalEvent::DebugCommand { code }
                        }
                        "fault" => {
                            let code = w
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err(line, "bad fault code"))?;
                            let arg = w
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err(line, "bad fault arg"))?;
                            JournalEvent::Fault { code, arg }
                        }
                        "log" => {
                            let addr = w
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err(line, "bad logpoint address"))?;
                            let value = w
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err(line, "bad logpoint value"))?;
                            JournalEvent::Log { addr, value }
                        }
                        "inta" => {
                            let irq = w
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err(line, "bad inta irq"))?;
                            JournalEvent::Inta { irq }
                        }
                        "eoi" => JournalEvent::Eoi,
                        "trace" => {
                            let op = w
                                .next()
                                .and_then(crate::causal::TraceOp::parse)
                                .ok_or_else(|| err(line, "bad tracepoint op"))?;
                            let id = w
                                .next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| err(line, "bad tracepoint id"))?;
                            JournalEvent::Trace { op, id }
                        }
                        _ => return Err(err(line, "unknown event kind")),
                    };
                    // Optional trailing `c<N>` core token (absent == core 0).
                    let core = match w.next() {
                        None => 0,
                        Some(tok) => tok
                            .strip_prefix('c')
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err(line, "bad core token"))?,
                    };
                    j.events.push(EventRecord { at, ev, core });
                }
                _ => return Err(err(line, "unknown record tag")),
            }
        }
        Ok(j)
    }
}

/// How [`first_divergence`] compares two event streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceMode {
    /// Events must match exactly, timestamps included — the right check
    /// for a replay of the same journal on the same platform.
    Exact,
    /// Only the event payloads must match, in order; timestamps are
    /// ignored. The right check across platforms, whose cycle counts
    /// legitimately differ (the monitor adds overhead) while the *sequence*
    /// of guest-visible I/O must not.
    Sequence,
}

/// The first point where two event streams disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index into both streams of the first mismatch.
    pub index: usize,
    /// The records at that index (`None` when a stream ended early).
    pub a: Option<EventRecord>,
    pub b: Option<EventRecord>,
}

impl Divergence {
    /// True when the streams agree event-for-event and differ only in
    /// length (one run simply recorded more).
    pub fn is_length_only(&self) -> bool {
        self.a.is_none() || self.b.is_none()
    }
}

/// Compares two event streams and returns the first divergence, if any.
pub fn first_divergence(
    a: &[EventRecord],
    b: &[EventRecord],
    mode: DivergenceMode,
) -> Option<Divergence> {
    let n = a.len().max(b.len());
    for i in 0..n {
        let (ra, rb) = (a.get(i), b.get(i));
        let same = match (ra, rb) {
            (Some(x), Some(y)) => match mode {
                DivergenceMode::Exact => x == y,
                DivergenceMode::Sequence => x.ev == y.ev,
            },
            _ => false,
        };
        if !same {
            return Some(Divergence {
                index: i,
                a: ra.copied(),
                b: rb.copied(),
            });
        }
    }
    None
}

/// One per-device stream comparison inside an [`audit`] report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamAudit {
    /// Stream name ("nic", "hdc", …, or "stub" for debug commands).
    pub name: String,
    /// Events in each journal's stream.
    pub len_a: usize,
    pub len_b: usize,
    /// First mismatch under [`DivergenceMode::Sequence`], if any.
    pub divergence: Option<Divergence>,
}

impl StreamAudit {
    /// True when the common prefix matches (streams may differ in length —
    /// the runs covered different amounts of simulated time).
    pub fn clean(&self) -> bool {
        self.divergence
            .as_ref()
            .is_none_or(Divergence::is_length_only)
    }
}

/// Cross-platform divergence audit: compares the two journals' observed
/// events *per device stream* under [`DivergenceMode::Sequence`].
///
/// Per-device comparison matters because absolute cycle timing differs
/// between platforms, so the global interleaving of (say) PIT ticks and
/// NIC completions legitimately reorders — but within one device, the
/// order and payloads of operations are determined by the guest program
/// and must match if the platforms are behaviourally equivalent.
pub fn audit(a: &Journal, b: &Journal) -> Vec<StreamAudit> {
    fn is_dev(ev: &JournalEvent, dev: Dev) -> bool {
        ev.dev() == Some(dev)
    }
    type StreamFilter = fn(&JournalEvent) -> bool;
    let streams: [(&str, StreamFilter); 10] = [
        ("nic", |e| is_dev(e, Dev::Nic)),
        ("hdc", |e| is_dev(e, Dev::Hdc)),
        ("pit", |e| is_dev(e, Dev::Pit)),
        ("uart", |e| is_dev(e, Dev::Uart)),
        ("pic", |e| is_dev(e, Dev::Pic)),
        ("stub", |e| matches!(e, JournalEvent::DebugCommand { .. })),
        ("fault", |e| matches!(e, JournalEvent::Fault { .. })),
        ("log", |e| matches!(e, JournalEvent::Log { .. })),
        ("isr", |e| {
            matches!(e, JournalEvent::Inta { .. } | JournalEvent::Eoi)
        }),
        ("trace", |e| matches!(e, JournalEvent::Trace { .. })),
    ];
    streams
        .into_iter()
        .map(|(name, belongs)| {
            let pick = |j: &Journal| -> Vec<EventRecord> {
                j.events
                    .iter()
                    .filter(|r| belongs(&r.ev))
                    .copied()
                    .collect()
            };
            let (sa, sb) = (pick(a), pick(b));
            StreamAudit {
                name: name.to_string(),
                len_a: sa.len(),
                len_b: sb.len(),
                divergence: first_divergence(&sa, &sb, DivergenceMode::Sequence),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Journal {
        let mut j = Journal::new("lvmm");
        j.note = "streaming:100".into();
        j.input(120, JournalInput::UartRx(b"$qStats#69".to_vec()));
        j.event(
            130,
            JournalEvent::Irq {
                dev: Dev::Uart,
                irq: 1,
            },
        );
        j.input(500, JournalInput::NicRx(vec![0xde, 0xad, 0xbe, 0xef]));
        j.event(
            700,
            JournalEvent::Dma {
                dev: Dev::Nic,
                bytes: 4,
                digest: digest(&[0xde, 0xad, 0xbe, 0xef]),
            },
        );
        j.event(
            720,
            JournalEvent::Doorbell {
                dev: Dev::Nic,
                reg: 0x0c,
            },
        );
        j.event(800, JournalEvent::DebugCommand { code: b'q' });
        j.seal(10_000);
        j
    }

    #[test]
    fn save_parse_roundtrip() {
        let j = sample();
        let text = j.save();
        assert_eq!(Journal::parse(&text).unwrap(), j);
        // Serialization is deterministic.
        assert_eq!(j.save(), text);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        for (text, line) in [
            ("bogus 1 2\n", 1),
            ("# ok\nI xx uart 00\n", 2),
            ("I 5 uart zz\n", 1),
            ("E 5 irq warp 1\n", 1),
            ("E 5 dma nic 4\n", 1), // missing digest
        ] {
            let e = Journal::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}");
        }
    }

    #[test]
    fn truncate_drops_the_future() {
        let mut j = sample();
        j.truncate_after(600);
        assert_eq!(j.inputs.len(), 2);
        assert_eq!(j.events.len(), 1);
        assert_eq!(j.end, 600);
    }

    #[test]
    fn digest_is_fnv1a() {
        assert_eq!(digest(b""), FNV_OFFSET);
        assert_ne!(digest(b"a"), digest(b"b"));
        assert_eq!(fnv1a(fnv1a(FNV_OFFSET, b"ab"), b"cd"), digest(b"abcd"));
    }

    #[test]
    fn divergence_modes() {
        let j = sample();
        let mut k = sample();
        assert_eq!(
            first_divergence(&j.events, &k.events, DivergenceMode::Exact),
            None
        );
        // Shift timestamps: exact diverges, sequence does not.
        for r in &mut k.events {
            r.at += 37;
        }
        let d = first_divergence(&j.events, &k.events, DivergenceMode::Exact).unwrap();
        assert_eq!(d.index, 0);
        assert!(!d.is_length_only());
        assert_eq!(
            first_divergence(&j.events, &k.events, DivergenceMode::Sequence),
            None
        );
        // Tamper with a digest: sequence diverges at that index.
        if let JournalEvent::Dma { digest, .. } = &mut k.events[1].ev {
            *digest ^= 1;
        }
        let d = first_divergence(&j.events, &k.events, DivergenceMode::Sequence).unwrap();
        assert_eq!(d.index, 1);
        // Length-only differences are flagged as such.
        k.events.truncate(1);
        k.events[0] = j.events[0];
        let d = first_divergence(&j.events, &k.events, DivergenceMode::Sequence).unwrap();
        assert!(d.is_length_only());
    }

    #[test]
    fn audit_splits_streams_per_device() {
        let j = sample();
        let audits = audit(&j, &j);
        assert!(audits.iter().all(|s| s.clean()));
        let nic = audits.iter().find(|s| s.name == "nic").unwrap();
        assert_eq!((nic.len_a, nic.len_b), (2, 2));
        let stub = audits.iter().find(|s| s.name == "stub").unwrap();
        assert_eq!(stub.len_a, 1);
    }

    mod properties {
        use super::*;
        use crate::causal::TraceOp;
        use proptest::prelude::*;

        fn arb_input() -> impl Strategy<Value = JournalInput> {
            prop_oneof![
                proptest::collection::vec(any::<u8>(), 0..16).prop_map(JournalInput::UartRx),
                proptest::collection::vec(any::<u8>(), 0..16).prop_map(JournalInput::NicRx),
            ]
        }

        fn arb_event() -> impl Strategy<Value = JournalEvent> {
            let dev =
                || proptest::sample::select(&[Dev::Nic, Dev::Hdc, Dev::Pit, Dev::Uart, Dev::Pic]);
            prop_oneof![
                (dev(), any::<u32>()).prop_map(|(dev, irq)| JournalEvent::Irq { dev, irq }),
                (dev(), any::<u32>(), any::<u64>())
                    .prop_map(|(dev, bytes, digest)| JournalEvent::Dma { dev, bytes, digest }),
                (dev(), any::<u32>()).prop_map(|(dev, reg)| JournalEvent::Doorbell { dev, reg }),
                any::<u8>().prop_map(|code| JournalEvent::DebugCommand { code }),
                (any::<u8>(), any::<u32>())
                    .prop_map(|(code, arg)| JournalEvent::Fault { code, arg }),
                (any::<u32>(), any::<u64>())
                    .prop_map(|(addr, value)| JournalEvent::Log { addr, value }),
                any::<u32>().prop_map(|irq| JournalEvent::Inta { irq }),
                Just(JournalEvent::Eoi),
                (
                    proptest::sample::select(&[TraceOp::Begin, TraceOp::End, TraceOp::Instant]),
                    any::<u32>()
                )
                    .prop_map(|(op, id)| JournalEvent::Trace { op, id }),
            ]
        }

        // Platform is parsed as a single whitespace-free token and the note
        // is trimmed on parse, so the strategies stick to token-safe,
        // trim-stable alphabets; cycles and payloads are arbitrary.
        fn arb_journal() -> impl Strategy<Value = Journal> {
            (
                "[a-z-]{0,8}",
                "[a-z0-9:]{0,12}",
                any::<u64>(),
                proptest::collection::vec((any::<u64>(), arb_input()), 0..12),
                proptest::collection::vec((any::<u64>(), arb_event(), 0u8..4), 0..12),
                // `cores` of 1 is normalized away by save (it means the same
                // as unset), so the round-trip strategy skips it.
                prop_oneof![Just(0u32), 2u32..5],
            )
                .prop_map(|(platform, note, end, inputs, events, cores)| Journal {
                    platform,
                    cores,
                    note,
                    end,
                    inputs: inputs
                        .into_iter()
                        .map(|(at, input)| InputRecord { at, input })
                        .collect(),
                    events: events
                        .into_iter()
                        .map(|(at, ev, core)| EventRecord { at, ev, core })
                        .collect(),
                })
        }

        proptest! {
            #[test]
            fn text_roundtrip(j in arb_journal()) {
                let text = j.save();
                prop_assert_eq!(Journal::parse(&text).unwrap(), j);
            }

            #[test]
            fn parse_never_panics(s in "\\PC{0,64}") {
                let _ = Journal::parse(&s); // Ok or Err, never a panic
            }
        }
    }
}
