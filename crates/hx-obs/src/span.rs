//! Cycle-attribution span track.
//!
//! The platforms charge every simulated cycle to exactly one of four
//! buckets (guest / monitor / host-model / idle). The span track receives
//! the same charges and lays them out on a single timeline, coalescing
//! consecutive charges to the same bucket into one span. By construction
//! the sum of span lengths equals the sum of charges, so the exported
//! trace reconciles *exactly* with the platform's `TimeStats` — a property
//! the test suite asserts.

/// Where a run's cycles can go. Mirrors the platform layer's `TimeBucket`
/// (hx-obs sits below hx-machine in the dependency graph, so it defines
/// its own copy and the platforms map into it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Track {
    Guest,
    Monitor,
    HostModel,
    Idle,
}

impl Track {
    pub const ALL: [Track; 4] = [Track::Guest, Track::Monitor, Track::HostModel, Track::Idle];

    pub fn index(self) -> usize {
        match self {
            Track::Guest => 0,
            Track::Monitor => 1,
            Track::HostModel => 2,
            Track::Idle => 3,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Track::Guest => "guest",
            Track::Monitor => "monitor",
            Track::HostModel => "host-model",
            Track::Idle => "idle",
        }
    }
}

/// A half-open interval `[start, end)` of cycles attributed to one bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub track: Track,
    pub start: u64,
    pub end: u64,
}

impl Span {
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

#[derive(Clone, Debug, Default)]
pub struct SpanTrack {
    spans: Vec<Span>,
    /// Cycles accounted so far; the next charge starts here.
    cursor: u64,
    /// Per-track totals — kept even when span storage overflows, so
    /// reconciliation still holds on the totals.
    totals: [u64; 4],
    /// Spans discarded after the storage cap was reached.
    dropped: u64,
    cap: usize,
}

impl SpanTrack {
    /// Plenty for a bench window; ~24 bytes per span.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    pub fn new(cap: usize) -> Self {
        SpanTrack {
            cap,
            ..Default::default()
        }
    }

    /// Attribute the next `cycles` cycles to `track`. Zero-length charges
    /// are ignored.
    pub fn charge(&mut self, track: Track, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let start = self.cursor;
        self.cursor += cycles;
        self.totals[track.index()] += cycles;
        if let Some(last) = self.spans.last_mut() {
            if last.track == track && last.end == start {
                last.end = self.cursor;
                return;
            }
        }
        if self.spans.len() < self.cap {
            self.spans.push(Span {
                track,
                start,
                end: self.cursor,
            });
        } else {
            self.dropped += 1;
        }
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn total(&self, track: Track) -> u64 {
        self.totals[track.index()]
    }

    pub fn grand_total(&self) -> u64 {
        self.totals.iter().sum()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// End of the attributed timeline (== grand_total by construction).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    pub fn clear(&mut self) {
        self.spans.clear();
        self.cursor = 0;
        self.totals = [0; 4];
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_adjacent_same_track_charges() {
        let mut t = SpanTrack::new(16);
        t.charge(Track::Guest, 10);
        t.charge(Track::Guest, 5);
        t.charge(Track::Monitor, 3);
        t.charge(Track::Guest, 2);
        assert_eq!(t.spans().len(), 3);
        assert_eq!(
            t.spans()[0],
            Span {
                track: Track::Guest,
                start: 0,
                end: 15
            }
        );
        assert_eq!(
            t.spans()[1],
            Span {
                track: Track::Monitor,
                start: 15,
                end: 18
            }
        );
        assert_eq!(t.total(Track::Guest), 17);
        assert_eq!(t.grand_total(), 20);
        assert_eq!(t.cursor(), 20);
    }

    #[test]
    fn totals_survive_span_overflow() {
        let mut t = SpanTrack::new(1);
        t.charge(Track::Guest, 1);
        t.charge(Track::Idle, 1);
        t.charge(Track::Guest, 1);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.grand_total(), 3);
    }

    #[test]
    fn zero_charge_is_a_noop() {
        let mut t = SpanTrack::new(4);
        t.charge(Track::Idle, 0);
        assert!(t.spans().is_empty());
        assert_eq!(t.grand_total(), 0);
    }
}
